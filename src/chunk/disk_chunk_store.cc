#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "chunk/chunk_store.h"

namespace stdchk {
namespace {

namespace fs = std::filesystem;

// Chunk-per-file store with a 256-way fanout by the first hex byte, the
// usual layout for content-addressed stores (avoids giant directories).
class DiskChunkStore final : public ChunkStore {
 public:
  explicit DiskChunkStore(fs::path root) : root_(std::move(root)) {}

  Status Init() {
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec) return InternalError("create_directories: " + ec.message());
    // Rebuild the index from whatever survived a previous run (a benefactor
    // restart must re-offer its chunks to the manager).
    for (const auto& dir : fs::directory_iterator(root_, ec)) {
      if (!dir.is_directory()) continue;
      for (const auto& f : fs::directory_iterator(dir.path(), ec)) {
        ChunkId id;
        if (!ParseHex(f.path().filename().string(), id)) continue;
        std::uint64_t size = f.file_size(ec);
        index_[id] = size;
        bytes_used_ += size;
      }
    }
    return OkStatus();
  }

  using ChunkStore::Put;

  // Streams the slice to disk; no in-memory duplication.
  Status Put(const ChunkId& id, BufferSlice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.contains(id)) return OkStatus();
    fs::path path = PathFor(id);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) return InternalError("mkdir: " + ec.message());
    // Write to a temp name then rename so a crash never leaves a torn chunk
    // visible under its content address.
    fs::path tmp = path;
    tmp += ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return InternalError("open for write: " + tmp.string());
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
      if (!out) return InternalError("short write: " + tmp.string());
    }
    fs::rename(tmp, path, ec);
    if (ec) return InternalError("rename: " + ec.message());
    index_[id] = data.size();
    bytes_used_ += data.size();
    return OkStatus();
  }

  // Materializes the chunk once off disk into a fresh shared buffer; every
  // consumer downstream aliases that buffer.
  Result<BufferSlice> Get(const ChunkId& id) const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!index_.contains(id)) {
        return NotFoundError("chunk " + id.ToHex() + " not on disk");
      }
    }
    std::ifstream in(PathFor(id), std::ios::binary);
    if (!in) return InternalError("open for read: " + id.ToHex());
    Bytes data((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    copy_stats::RecordMaterialize(data.size());
    return BufferSlice(BufferRef::Take(std::move(data)));
  }

  bool Contains(const ChunkId& id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.contains(id);
  }

  Status Delete(const ChunkId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not on disk");
    }
    std::error_code ec;
    fs::remove(PathFor(id), ec);
    if (ec) return InternalError("remove: " + ec.message());
    bytes_used_ -= it->second;
    index_.erase(it);
    return OkStatus();
  }

  std::vector<ChunkId> List() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ChunkId> out;
    out.reserve(index_.size());
    for (const auto& [id, size] : index_) out.push_back(id);
    return out;
  }

  std::uint64_t BytesUsed() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_used_;
  }

  std::size_t ChunkCount() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  // Chunks live in files; nothing is pinned in memory (Get hands out
  // freshly materialized buffers owned by the readers, not the store).
  std::uint64_t ResidentBytes() const override { return 0; }

 private:
  fs::path PathFor(const ChunkId& id) const {
    std::string hex = id.ToHex();
    return root_ / hex.substr(0, 2) / hex;
  }

  static bool ParseHex(const std::string& hex, ChunkId& out) {
    if (hex.size() != 40) return false;
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    for (std::size_t i = 0; i < 20; ++i) {
      int hi = nibble(hex[2 * i]), lo = nibble(hex[2 * i + 1]);
      if (hi < 0 || lo < 0) return false;
      out.digest.bytes[i] = static_cast<std::uint8_t>(hi << 4 | lo);
    }
    return true;
  }

  fs::path root_;
  mutable std::mutex mu_;
  std::unordered_map<ChunkId, std::uint64_t, ChunkIdHash> index_;
  std::uint64_t bytes_used_ = 0;
};

}  // namespace

Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory) {
  auto store = std::make_unique<DiskChunkStore>(directory);
  STDCHK_RETURN_IF_ERROR(store->Init());
  return std::unique_ptr<ChunkStore>(std::move(store));
}

}  // namespace stdchk
