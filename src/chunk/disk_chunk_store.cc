// Log-structured segment store for scavenged donor disks.
//
// Layout: append-only segment files `seg-<seq>.log` under the store root.
// Each record is a fixed 32-byte header followed by the chunk payload,
// zero-padded to 8-byte alignment:
//
//   +0   u32 magic   "SDC1"
//   +4   u32 length  payload bytes
//   +8   u32 crc     CRC32-C of the whole record: the header with this
//                    field zeroed, then the payload — so a flipped bit
//                    anywhere (id, length, payload) fails recovery rather
//                    than indexing bytes under a wrong address
//   +12  u8[20]      chunk id (SHA-1 content address)
//   +32  payload[length], then 0..7 zero bytes of padding
//
// Write path: a whole PutBatch (one drain generation) lands as a single
// pwritev at the active segment's tail — headers, payloads and padding as
// one iovec chain — then one fsync, and only then does the in-memory index
// publish the chunks (durability before visibility, so a crash never
// exposes an unsynced record). Segments roll at a size target; nothing is
// ever rewritten in place.
//
// Read path: Get() returns a BufferSlice aliasing the lazily mmap'd
// segment — zero copies, no materialization. The mapping is owned by a
// BufferRef with an munmap deleter, so reader-held slices stay valid after
// Delete/Wipe/segment reclamation unlink the file (the pages live until
// the last slice drops). Slices come back unstamped: the benefactor
// re-hashes them against the content address, exactly where a malicious
// or bit-flipping donor would be caught.
//
// Recovery: open() scans every segment in sequence order, CRC-checking
// each record. The first bad record (torn header, impossible length, CRC
// mismatch) truncates the segment there — everything before it is intact
// by checksum, everything after is unreachable garbage. Deleted chunks
// simply stop being indexed; their dead bytes await segment reclamation
// (whole-segment unlink when no live record remains) or compaction.
//
// Compaction (CompactStep): under churn, one live chunk pins a segment's
// dead bytes forever, so a throttled background pass rewrites the live
// records of under-utilized segments into a fresh segment and unlinks the
// victims. The step runs in three phases so the data write never holds
// the store lock: (1) under the lock, pick victims below the utilization
// threshold, pin their mappings and collect live-record slices; (2) with
// the lock released, append every collected record to a brand-new segment
// file (a sequence number reserved in phase 1), fsync it and the
// directory; (3) under the lock again, repoint surviving index entries at
// the new segment, drop records that died mid-copy as dead bytes, and
// unlink the now-fully-dead victims. Reader-held slices alias the victim
// mappings and stay byte-stable throughout. Crash-wise the step is a
// no-op until the unlink: a crash after phase 2 leaves both copies on
// disk and recovery's first-copy-wins rule (lower sequence first) keeps
// the original, counting the compacted duplicates as dead bytes — no
// committed chunk is ever lost. Compacted records are served from the new
// mapping unstamped, like every disk read, so moved bytes always re-hash
// at the verification boundary.
#include <fcntl.h>
#include <limits.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/annotated_mutex.h"
#include "common/crc32.h"

namespace stdchk {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kRecordMagic = 0x31434453u;  // "SDC1" little-endian
constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kRecordAlign = 8;

#ifdef IOV_MAX
constexpr std::size_t kMaxIov = IOV_MAX;
#else
constexpr std::size_t kMaxIov = 1024;
#endif

std::size_t PadFor(std::size_t record_bytes) {
  return (kRecordAlign - record_bytes % kRecordAlign) % kRecordAlign;
}

// File bytes one record occupies: header + payload, padded to alignment.
// Summed over live records this gives a segment's live footprint, the
// numerator of its utilization (a fully-live segment measures exactly 1.0).
std::uint64_t RecordFootprint(std::uint64_t payload_length) {
  std::uint64_t body = kHeaderSize + payload_length;
  return body + PadFor(body);
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

// Encodes the header and patches in the record CRC (header with the crc
// field zeroed, continued over the payload).
void EncodeHeader(std::uint8_t* out, const ChunkId& id, std::uint32_t length,
                  ByteSpan payload) {
  PutU32(out, kRecordMagic);
  PutU32(out + 4, length);
  PutU32(out + 8, 0);
  std::memcpy(out + 12, id.digest.bytes.data(), 20);
  PutU32(out + 8, Crc32c(payload, Crc32c(ByteSpan(out, kHeaderSize))));
}

// The recovery-side mirror of EncodeHeader's CRC: true iff the record's
// stored CRC matches its contents.
bool RecordCrcValid(const std::uint8_t* header, ByteSpan payload) {
  std::uint8_t scratch[kHeaderSize];
  std::memcpy(scratch, header, kHeaderSize);
  std::uint32_t stored = GetU32(scratch + 8);
  PutU32(scratch + 8, 0);
  return Crc32c(payload, Crc32c(ByteSpan(scratch, kHeaderSize))) == stored;
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

class DiskChunkStore final : public ChunkStore {
 public:
  DiskChunkStore(fs::path root, DiskStoreOptions options)
      : root_(std::move(root)), options_(options) {}

  ~DiskChunkStore() override {
    for (auto& [seq, seg] : segments_) {
      if (seg.fd >= 0) ::close(seg.fd);
    }
  }

  Status Init() EXCLUDES(mu_) {
    // Init runs before the store is published to any other thread, but it
    // calls the Locked-contract recovery helpers — take the lock so the
    // contracts hold (uncontended, so effectively free).
    MutexLock lock(mu_);
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec) return InternalError("create_directories: " + ec.message());
    // Rebuild the index from whatever survived a previous run (a benefactor
    // restart must re-offer its chunks to the manager). Segments recover in
    // sequence order so a chunk re-put after a delete keeps its first
    // surviving copy and later duplicates count as dead bytes.
    std::map<std::uint32_t, fs::path> found;
    for (const auto& entry : fs::directory_iterator(root_, ec)) {
      std::uint32_t seq = 0;
      if (entry.is_regular_file() &&
          ParseSegmentName(entry.path().filename().string(), seq)) {
        found[seq] = entry.path();
      }
    }
    for (const auto& [seq, path] : found) {
      STDCHK_RETURN_IF_ERROR(RecoverSegment(seq, path));
      next_seq_ = seq + 1;
      active_seq_ = seq;
    }
    // A recovered segment can be entirely dead — every record a duplicate
    // of an earlier segment (re-puts after deletes). Unlink those now
    // rather than carrying them until some Delete happens to notice.
    for (auto it = segments_.begin(); it != segments_.end();) {
      if (it->first != active_seq_ && it->second.live_records == 0) {
        it = ReclaimSegmentLocked(it);
      } else {
        ++it;
      }
    }
    return OkStatus();
  }

  using ChunkStore::Put;

  Status Put(const ChunkId& id, BufferSlice data) override {
    ChunkPut put{id, std::move(data)};
    MutexLock lock(mu_);
    return PutBatchLocked(std::span<const ChunkPut>(&put, 1));
  }

  Status PutBatch(std::span<const ChunkPut> puts) override {
    MutexLock lock(mu_);
    return PutBatchLocked(puts);
  }

  Result<BufferSlice> Get(const ChunkId& id) const override {
    MutexLock lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not on disk");
    }
    const Entry& entry = it->second;
    if (entry.length == 0) return BufferSlice();
    Segment& seg = segments_.at(entry.seq);
    STDCHK_RETURN_IF_ERROR(
        EnsureMapped(seg, entry.offset + entry.length));
    ++stats_.mmap_reads;
    return BufferSlice(seg.mapping, entry.offset, entry.length);
  }

  bool Contains(const ChunkId& id) const override {
    MutexLock lock(mu_);
    return index_.contains(id);
  }

  Status Delete(const ChunkId& id) override {
    MutexLock lock(mu_);
    auto it = index_.find(id);
    if (it == index_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not on disk");
    }
    auto sit = segments_.find(it->second.seq);
    bytes_used_ -= it->second.length;
    sit->second.live_bytes -= it->second.length;
    sit->second.live_records -= 1;
    sit->second.live_footprint -= RecordFootprint(it->second.length);
    index_.erase(it);
    // A fully dead non-active segment is reclaimed wholesale — the log
    // structure's GC unit is the segment, not the chunk. Reader-held mmap
    // slices survive the unlink (pages stay until the mapping drops). A
    // segment mid-compaction is left for the compaction publish phase,
    // which reclaims it once its in-flight copies resolve.
    if (sit->second.live_records == 0 && sit->first != active_seq_ &&
        !sit->second.compacting) {
      ReclaimSegmentLocked(sit);
    }
    return OkStatus();
  }

  Status Wipe() override {
    MutexLock lock(mu_);
    for (auto it = segments_.begin(); it != segments_.end();) {
      it = ReclaimSegmentLocked(it);
    }
    index_.clear();
    bytes_used_ = 0;
    active_seq_ = 0;  // next write starts a fresh segment
    return OkStatus();
  }

  // One throttled compaction pass (see the file comment for the phase
  // structure and crash story). Only phase 1 and phase 3 hold the lock —
  // the data write and fsync run concurrently with foreground puts/gets.
  Result<CompactionStepReport> CompactStep(
      const CompactionPolicy& policy) override EXCLUDES(mu_) {
    CompactionStepReport report;
    if (policy.utilization_threshold <= 0.0) return report;

    struct Moved {
      ChunkId id;
      std::uint32_t victim_seq = 0;
      BufferSlice data;               // aliases the victim's mapping
      std::uint64_t new_offset = 0;   // payload offset in the output segment
    };
    std::vector<Moved> moved;
    std::vector<std::uint32_t> victims;
    std::uint32_t out_seq = 0;

    // ---- Phase 1: select victims, pin their mappings, collect slices.
    {
      MutexLock lock(mu_);
      struct Candidate {
        double utilization;
        std::uint32_t seq;
        std::uint64_t live_bytes;
      };
      std::vector<Candidate> candidates;
      for (auto& [seq, seg] : segments_) {
        if (seq == active_seq_ || seg.compacting || seg.size == 0 ||
            seg.live_records == 0) {
          continue;  // fully dead segments are Delete/roll reclaim's job
        }
        double utilization = static_cast<double>(seg.live_footprint) /
                             static_cast<double>(seg.size);
        if (utilization < policy.utilization_threshold) {
          candidates.push_back(Candidate{utilization, seq, seg.live_bytes});
        }
      }
      if (candidates.empty()) return report;
      // Deadest first gives the most reclaim per rewritten byte; sequence
      // breaks ties so a step is deterministic for a given state.
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.utilization != b.utilization
                             ? a.utilization < b.utilization
                             : a.seq < b.seq;
                });
      std::uint64_t budget_used = 0;
      for (const Candidate& candidate : candidates) {
        if (!victims.empty() &&
            budget_used + candidate.live_bytes > policy.max_bytes_per_step) {
          break;
        }
        victims.push_back(candidate.seq);
        budget_used += candidate.live_bytes;
        if (budget_used >= policy.max_bytes_per_step) break;
      }
      std::unordered_set<std::uint32_t> victim_set(victims.begin(),
                                                   victims.end());
      // Map every victim before marking any: a mapping failure here must
      // leave no segment stuck in the compacting state.
      for (std::uint32_t seq : victims) {
        STDCHK_RETURN_IF_ERROR(EnsureMapped(segments_.at(seq),
                                            segments_.at(seq).size));
      }
      for (std::uint32_t seq : victims) {
        segments_.at(seq).compacting = true;
      }
      for (const auto& [id, entry] : index_) {
        if (!victim_set.contains(entry.seq)) continue;
        const Segment& seg = segments_.at(entry.seq);
        moved.push_back(Moved{
            id, entry.seq,
            BufferSlice(seg.mapping, entry.offset, entry.length), 0});
      }
      out_seq = next_seq_++;  // reserved: nothing else can take this name
    }

    // ---- Phase 2: write the output segment, no lock held. The collected
    // slices stay byte-stable whatever the foreground does (the mappings
    // outlive deletes, wipes, even the victims' unlink).
    auto abandon = [this, &victims](Status why) EXCLUDES(mu_) -> Status {
      MutexLock lock(mu_);
      for (std::uint32_t seq : victims) {
        auto it = segments_.find(seq);
        if (it != segments_.end()) it->second.compacting = false;
      }
      return why;
    };
    fs::path out_path = SegmentPath(out_seq);
    int out_fd = ::open(out_path.c_str(),
                        O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (out_fd < 0) return abandon(ErrnoError("create " + out_path.string()));

    static constexpr std::uint8_t kZeros[kRecordAlign] = {};
    std::vector<std::array<std::uint8_t, kHeaderSize>> headers(moved.size());
    std::vector<struct iovec> iov;
    iov.reserve(moved.size() * 3);
    std::uint64_t out_size = 0;
    for (std::size_t i = 0; i < moved.size(); ++i) {
      Moved& rec = moved[i];
      auto length = static_cast<std::uint32_t>(rec.data.size());
      EncodeHeader(headers[i].data(), rec.id, length, rec.data.span());
      iov.push_back({headers[i].data(), kHeaderSize});
      if (length > 0) {
        iov.push_back({const_cast<std::uint8_t*>(rec.data.data()), length});
      }
      std::size_t pad = PadFor(kHeaderSize + length);
      if (pad > 0) iov.push_back({const_cast<std::uint8_t*>(kZeros), pad});
      rec.new_offset = out_size + kHeaderSize;
      out_size += kHeaderSize + length + pad;
    }
    std::uint64_t write_syscalls = 0;
    Status wrote = WriteVecTo(out_fd, out_path, iov, 0, &write_syscalls);
    if (wrote.ok() && ::fsync(out_fd) != 0) {
      wrote = ErrnoError("fsync " + out_path.string());
    }
    if (wrote.ok()) wrote = SyncDir();
    if (!wrote.ok()) {
      ::close(out_fd);
      std::error_code ec;
      fs::remove(out_path, ec);  // never published, safe to drop
      return abandon(std::move(wrote));
    }
    if (options_.testing_compaction_abort_before_publish) {
      ::close(out_fd);
      return abandon(InternalError(
          "injected crash: compacted segment durable, not yet published"));
    }

    // ---- Phase 3: publish. Repoint every record that is still live and
    // still homed in its victim; anything deleted (or re-put elsewhere)
    // mid-copy stays dead bytes in the output. The victims are then fully
    // dead by construction and unlink; an output left with zero live
    // records (everything died mid-copy) unlinks right away too.
    MutexLock lock(mu_);
    stats_.data_syscalls += write_syscalls;
    ++stats_.fsyncs;
    Segment out_seg;
    out_seg.path = std::move(out_path);
    out_seg.fd = out_fd;
    out_seg.size = out_size;
    ++stats_.segments_created;
    auto [out_it, out_inserted] = segments_.emplace(out_seq,
                                                    std::move(out_seg));
    (void)out_inserted;
    for (const Moved& rec : moved) {
      auto it = index_.find(rec.id);
      if (it == index_.end() || it->second.seq != rec.victim_seq) continue;
      auto length = static_cast<std::uint32_t>(rec.data.size());
      it->second = Entry{out_seq, rec.new_offset, length};
      out_it->second.live_bytes += length;
      out_it->second.live_records += 1;
      out_it->second.live_footprint += RecordFootprint(length);
      auto victim_it = segments_.find(rec.victim_seq);
      if (victim_it != segments_.end()) {  // gone only if Wipe() raced us
        victim_it->second.live_bytes -= length;
        victim_it->second.live_records -= 1;
        victim_it->second.live_footprint -= RecordFootprint(length);
      }
      report.bytes_rewritten += length;
    }
    for (std::uint32_t seq : victims) {
      auto victim_it = segments_.find(seq);
      if (victim_it == segments_.end()) continue;  // Wipe() beat us to it
      victim_it->second.compacting = false;
      if (victim_it->second.live_records == 0 && seq != active_seq_) {
        report.bytes_reclaimed += victim_it->second.size;
        ReclaimSegmentLocked(victim_it);
        ++report.segments_compacted;
      }
    }
    if (out_it->second.live_records == 0) {
      report.bytes_reclaimed += out_it->second.size;
      ReclaimSegmentLocked(out_it);
      --stats_.segments_reclaimed;  // never visible; not a reclaim event
    }
    report.bytes_reclaimed -=
        std::min<std::uint64_t>(report.bytes_reclaimed, out_size);
    stats_.segments_compacted += report.segments_compacted;
    stats_.compacted_bytes_rewritten += report.bytes_rewritten;
    ++stats_.compaction_steps;
    return report;
  }

  std::vector<ChunkId> List() const override {
    MutexLock lock(mu_);
    std::vector<ChunkId> out;
    out.reserve(index_.size());
    for (const auto& [id, entry] : index_) out.push_back(id);
    return out;
  }

  std::uint64_t BytesUsed() const override {
    MutexLock lock(mu_);
    return bytes_used_;
  }

  std::size_t ChunkCount() const override {
    MutexLock lock(mu_);
    return index_.size();
  }

  // Chunks live in files, and mappings of *linked* segments are page cache
  // the kernel can reclaim at will — those count nothing. What does count
  // is mapped-but-unlinked bytes: a reader-held slice of a reclaimed or
  // compacted segment keeps the unlinked file's pages (and disk blocks)
  // alive, invisible to the filesystem, until the last slice drops. That
  // is real space the donor machine has not gotten back yet.
  std::uint64_t ResidentBytes() const override EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::erase_if(unlinked_pins_,
                  [](const MappingPin& pin) { return pin.alive.expired(); });
    std::uint64_t pinned = 0;
    for (const MappingPin& pin : unlinked_pins_) pinned += pin.bytes;
    return pinned;
  }

  ChunkStoreStats Stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  struct Entry {
    std::uint32_t seq = 0;
    std::uint64_t offset = 0;  // payload start within the segment
    std::uint32_t length = 0;
  };

  // A mapping (or former mapping) we may still be pinning disk/page-cache
  // bytes through: alive stops reporting it once the last slice drops.
  struct MappingPin {
    std::weak_ptr<const void> alive;
    std::uint64_t bytes = 0;
  };

  struct Segment {
    fs::path path;
    int fd = -1;
    std::uint64_t size = 0;        // durable, record-aligned append offset
    std::uint64_t live_bytes = 0;  // payload bytes still indexed
    std::uint64_t live_records = 0;
    // File bytes occupied by live records (headers + padding included):
    // live_footprint / size is the segment's utilization.
    std::uint64_t live_footprint = 0;
    // A compaction pass has collected this segment's live records and is
    // writing them out without the lock: defer reclamation to its publish
    // phase and never select it as a victim twice.
    bool compacting = false;
    // Zero-copy read view of [0, mapped_size), established lazily and
    // replaced (never grown in place) when the segment outgrows it;
    // superseded mappings stay alive through the slices aliasing them and
    // are tracked here so an eventual unlink can account them.
    BufferRef mapping;
    std::uint64_t mapped_size = 0;
    std::vector<MappingPin> old_mappings;
  };

  static bool ParseSegmentName(const std::string& name, std::uint32_t& seq) {
    constexpr std::string_view kPrefix = "seg-", kSuffix = ".log";
    if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
    if (name.rfind(kPrefix, 0) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      return false;
    }
    std::uint64_t value = 0;
    for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size();
         ++i) {
      if (name[i] < '0' || name[i] > '9') return false;
      value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
      if (value > 0xFFFFFFFFull) return false;
    }
    seq = static_cast<std::uint32_t>(value);
    return seq != 0;
  }

  fs::path SegmentPath(std::uint32_t seq) const {
    char name[32];
    std::snprintf(name, sizeof name, "seg-%08u.log", seq);
    return root_ / name;
  }

  Status RecoverSegment(std::uint32_t seq, const fs::path& path)
      REQUIRES(mu_) {
    int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) return ErrnoError("open " + path.string());
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return ErrnoError("fstat " + path.string());
    }
    auto file_size = static_cast<std::uint64_t>(st.st_size);

    Segment seg;
    seg.path = path;
    seg.fd = fd;

    const std::uint8_t* base = nullptr;
    if (file_size > 0) {
      void* addr = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        return ErrnoError("mmap " + path.string());
      }
      base = static_cast<const std::uint8_t*>(addr);
    }

    std::uint64_t off = 0;
    while (off + kHeaderSize <= file_size) {
      const std::uint8_t* header = base + off;
      if (GetU32(header) != kRecordMagic) break;
      std::uint64_t length = GetU32(header + 4);
      if (off + kHeaderSize + length > file_size) break;  // torn payload
      if (!RecordCrcValid(header, ByteSpan(header + kHeaderSize, length))) {
        break;
      }
      ChunkId id;
      std::memcpy(id.digest.bytes.data(), header + 12, 20);
      auto [it, inserted] = index_.try_emplace(
          id, Entry{seq, off + kHeaderSize,
                    static_cast<std::uint32_t>(length)});
      if (inserted) {
        bytes_used_ += length;
        seg.live_bytes += length;
        seg.live_records += 1;
        seg.live_footprint += RecordFootprint(length);
        ++stats_.recovered_chunks;
      }
      off += kHeaderSize + length + PadFor(kHeaderSize + length);
    }

    if (base != nullptr) ::munmap(const_cast<std::uint8_t*>(base), file_size);

    if (off < file_size) {
      // Torn or corrupt tail: cut the segment back to its last intact
      // record so subsequent appends extend a clean log.
      if (::ftruncate(fd, static_cast<off_t>(off)) != 0) {
        ::close(fd);
        return ErrnoError("ftruncate " + path.string());
      }
      if (::fsync(fd) != 0) {
        ::close(fd);
        return ErrnoError("fsync " + path.string());
      }
      ++stats_.torn_tails_truncated;
    }
    seg.size = off;
    segments_.emplace(seq, std::move(seg));
    return OkStatus();
  }

  Status EnsureActiveSegmentLocked() REQUIRES(mu_) {
    if (active_seq_ != 0) {
      auto it = segments_.find(active_seq_);
      if (it->second.size < options_.segment_target_bytes) return OkStatus();
      // Rolling away from a fully dead active segment is the last chance
      // to notice it: Delete skips the active segment and compaction never
      // selects it, so reclaim it here rather than never.
      if (it->second.live_records == 0) ReclaimSegmentLocked(it);
    }
    std::uint32_t seq = next_seq_++;
    fs::path path = SegmentPath(seq);
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC,
                    0644);
    if (fd < 0) return ErrnoError("create " + path.string());
    Segment seg;
    seg.path = std::move(path);
    seg.fd = fd;
    segments_.emplace(seq, std::move(seg));
    active_seq_ = seq;
    ++stats_.segments_created;
    // The directory entry must be durable before any batch in this segment
    // is acknowledged — otherwise a crash could drop the whole file and
    // with it every fsync-acknowledged record it held.
    return SyncDir();
  }

  Status SyncDir() {
    int dirfd = ::open(root_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirfd < 0) return ErrnoError("open dir " + root_.string());
    int rc = ::fsync(dirfd);
    int saved_errno = errno;
    ::close(dirfd);
    // Filesystems that cannot sync directories (EINVAL/ENOTSUP) get the
    // pre-segment-store durability story; real I/O errors must surface.
    if (rc != 0 && saved_errno != EINVAL && saved_errno != ENOTSUP) {
      errno = saved_errno;
      return ErrnoError("fsync dir " + root_.string());
    }
    return OkStatus();
  }

  Status PutBatchLocked(std::span<const ChunkPut> puts) REQUIRES(mu_) {
    // Skip chunks already stored and intra-batch duplicates (repeated
    // content, e.g. zeroed pages): content addressing makes re-puts
    // byte-identical, so first copy wins.
    std::vector<const ChunkPut*> fresh;
    fresh.reserve(puts.size());
    std::unordered_set<ChunkId, ChunkIdHash> in_batch;
    for (const ChunkPut& put : puts) {
      if (index_.contains(put.id)) continue;
      if (!in_batch.insert(put.id).second) continue;
      fresh.push_back(&put);
    }
    if (fresh.empty()) return OkStatus();

    STDCHK_RETURN_IF_ERROR(EnsureActiveSegmentLocked());
    Segment& seg = segments_.at(active_seq_);

    // One iovec chain for the whole generation: header, payload, padding
    // per record, writing the sender's slices in place (no staging copy).
    static constexpr std::uint8_t kZeros[kRecordAlign] = {};
    std::vector<std::array<std::uint8_t, kHeaderSize>> headers(fresh.size());
    std::vector<Entry> entries(fresh.size());
    std::vector<struct iovec> iov;
    iov.reserve(fresh.size() * 3);
    std::uint64_t off = seg.size;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      const ChunkPut& put = *fresh[i];
      auto length = static_cast<std::uint32_t>(put.data.size());
      EncodeHeader(headers[i].data(), put.id, length, put.data.span());
      iov.push_back({headers[i].data(), kHeaderSize});
      if (length > 0) {
        iov.push_back({const_cast<std::uint8_t*>(put.data.data()), length});
      }
      std::size_t pad = PadFor(kHeaderSize + length);
      if (pad > 0) {
        iov.push_back({const_cast<std::uint8_t*>(kZeros), pad});
      }
      entries[i] = Entry{active_seq_, off + kHeaderSize, length};
      off += kHeaderSize + length + pad;
    }

    STDCHK_RETURN_IF_ERROR(WriteVecLocked(seg, iov, seg.size));
    // Durability before visibility: the index publishes a record only
    // after its bytes are synced, so a crash never exposes chunks that
    // recovery would then drop.
    if (::fsync(seg.fd) != 0) return ErrnoError("fsync " + seg.path.string());
    ++stats_.fsyncs;
    ++stats_.put_batches;
    seg.size = off;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      index_.emplace(fresh[i]->id, entries[i]);
      bytes_used_ += entries[i].length;
      seg.live_bytes += entries[i].length;
      seg.live_records += 1;
      seg.live_footprint += RecordFootprint(entries[i].length);
    }
    return OkStatus();
  }

  Status WriteVecLocked(Segment& seg, std::vector<struct iovec>& iov,
                        std::uint64_t offset) REQUIRES(mu_) {
    std::uint64_t syscalls = 0;
    Status wrote = WriteVecTo(seg.fd, seg.path, iov, offset, &syscalls);
    stats_.data_syscalls += syscalls;
    return wrote;
  }

  // Lock-free core of the vectored append (compaction writes its output
  // segment without the store lock; PutBatch counts syscalls under it).
  static Status WriteVecTo(int fd, const fs::path& path,
                           std::vector<struct iovec>& iov,
                           std::uint64_t offset, std::uint64_t* syscalls) {
    std::size_t idx = 0;
    while (idx < iov.size()) {
      auto count = static_cast<int>(
          std::min<std::size_t>(iov.size() - idx, kMaxIov));
      ssize_t n = ::pwritev(fd, &iov[idx], count,
                            static_cast<off_t>(offset));
      ++*syscalls;
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoError("pwritev " + path.string());
      }
      offset += static_cast<std::uint64_t>(n);
      auto remaining = static_cast<std::size_t>(n);
      while (remaining > 0 && idx < iov.size()) {
        if (remaining >= iov[idx].iov_len) {
          remaining -= iov[idx].iov_len;
          ++idx;
        } else {
          iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) +
                              remaining;
          iov[idx].iov_len -= remaining;
          remaining = 0;
        }
      }
      // A zero-byte pwritev with bytes left would loop forever; surface it.
      if (n == 0 && idx < iov.size()) {
        return InternalError("pwritev wrote nothing: " + path.string());
      }
    }
    return OkStatus();
  }

  Status EnsureMapped(Segment& seg, std::uint64_t needed) const
      REQUIRES(mu_) {
    if (seg.mapping && seg.mapped_size >= needed) return OkStatus();
    void* addr = ::mmap(nullptr, seg.size, PROT_READ, MAP_SHARED, seg.fd, 0);
    if (addr == MAP_FAILED) return ErrnoError("mmap " + seg.path.string());
    // Readers drain whole generations front to back; prefetching the
    // segment turns per-page faults into streamed readahead.
    ::madvise(addr, seg.size, MADV_WILLNEED);
    if (seg.mapping) {
      // The superseded mapping lives on through any slices aliasing it; if
      // this segment is ever unlinked those slices pin unlinked bytes too.
      seg.old_mappings.push_back(
          MappingPin{seg.mapping.backing_handle(), seg.mapped_size});
    }
    seg.mapping = BufferRef::WrapMmap(addr, seg.size);
    seg.mapped_size = seg.size;
    return OkStatus();
  }

  std::map<std::uint32_t, Segment>::iterator ReclaimSegmentLocked(
      std::map<std::uint32_t, Segment>::iterator it) REQUIRES(mu_) {
    Segment& seg = it->second;
    if (seg.fd >= 0) ::close(seg.fd);
    std::error_code ec;
    fs::remove(seg.path, ec);  // mapping (if any) outlives the unlink
    // From this point any still-held mapping of the segment pins unlinked
    // bytes — move every live mapping handle into the resident accounting.
    // (If no reader holds a slice, the handles expire the moment the
    // Segment is erased below and ResidentBytes() prunes them for free.)
    if (seg.mapping) {
      unlinked_pins_.push_back(
          MappingPin{seg.mapping.backing_handle(), seg.mapped_size});
    }
    for (MappingPin& pin : seg.old_mappings) {
      if (!pin.alive.expired()) unlinked_pins_.push_back(std::move(pin));
    }
    ++stats_.segments_reclaimed;
    return segments_.erase(it);
  }

  fs::path root_;
  DiskStoreOptions options_;
  mutable Mutex mu_{LockRank::kChunkStore, 0, "disk_chunk_store"};
  std::unordered_map<ChunkId, Entry, ChunkIdHash> index_ GUARDED_BY(mu_);
  // mutable: Get() is logically const but establishes mappings lazily.
  mutable std::map<std::uint32_t, Segment> segments_ GUARDED_BY(mu_);
  std::uint32_t active_seq_ GUARDED_BY(mu_) = 0;  // 0 = none yet
  std::uint32_t next_seq_ GUARDED_BY(mu_) = 1;
  std::uint64_t bytes_used_ GUARDED_BY(mu_) = 0;
  // Mappings of unlinked segments that readers may still hold slices of
  // (the ResidentBytes() accounting); expired entries prune lazily.
  mutable std::vector<MappingPin> unlinked_pins_ GUARDED_BY(mu_);
  mutable ChunkStoreStats stats_ GUARDED_BY(mu_);
};

}  // namespace

Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory, const DiskStoreOptions& options) {
  auto store = std::make_unique<DiskChunkStore>(directory, options);
  STDCHK_RETURN_IF_ERROR(store->Init());
  return std::unique_ptr<ChunkStore>(std::move(store));
}

}  // namespace stdchk
