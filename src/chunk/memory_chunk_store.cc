#include <unordered_map>

#include "chunk/chunk_store.h"
#include "common/annotated_mutex.h"

namespace stdchk {
namespace {

class MemoryChunkStore final : public ChunkStore {
 public:
  using ChunkStore::Put;

  // Aliases the caller's slice — zero-copy insertion. The backing buffer
  // (often a whole planner drain generation) stays alive while any of its
  // chunks is stored or any reader still holds a slice.
  Status Put(const ChunkId& id, BufferSlice data) override {
    MutexLock lock(mu_);
    PutLocked(id, std::move(data));
    return OkStatus();
  }

  // One lock acquisition for a whole drain generation.
  Status PutBatch(std::span<const ChunkPut> puts) override {
    MutexLock lock(mu_);
    for (const ChunkPut& put : puts) PutLocked(put.id, put.data);
    return OkStatus();
  }

  // Shares the stored slice; concurrent readers alias one buffer.
  Result<BufferSlice> Get(const ChunkId& id) const override {
    MutexLock lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    return it->second;
  }

  bool Contains(const ChunkId& id) const override {
    MutexLock lock(mu_);
    return chunks_.contains(id);
  }

  Status Delete(const ChunkId& id) override {
    MutexLock lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    bytes_used_ -= it->second.size();
    UnpinBacking(it->second);
    chunks_.erase(it);
    return OkStatus();
  }

  Status Wipe() override {
    MutexLock lock(mu_);
    chunks_.clear();
    backings_.clear();
    bytes_used_ = 0;
    resident_bytes_ = 0;
    return OkStatus();
  }

  std::vector<ChunkId> List() const override {
    MutexLock lock(mu_);
    std::vector<ChunkId> out;
    out.reserve(chunks_.size());
    for (const auto& [id, data] : chunks_) out.push_back(id);
    return out;
  }

  std::uint64_t BytesUsed() const override {
    MutexLock lock(mu_);
    return bytes_used_;
  }

  std::size_t ChunkCount() const override {
    MutexLock lock(mu_);
    return chunks_.size();
  }

  // Each distinct backing buffer counted once at its full size: aliasing
  // slices means a chunk pins its whole drain generation, and BytesUsed()
  // alone under-reports what the donor machine actually gives up.
  std::uint64_t ResidentBytes() const override {
    MutexLock lock(mu_);
    return resident_bytes_;
  }

 private:
  struct Backing {
    std::size_t refs = 0;
    std::size_t bytes = 0;
  };

  void PutLocked(const ChunkId& id, BufferSlice data) REQUIRES(mu_) {
    auto [it, inserted] = chunks_.try_emplace(id, std::move(data));
    if (inserted) {
      bytes_used_ += it->second.size();
      PinBacking(it->second);
    }
  }

  void PinBacking(const BufferSlice& data) REQUIRES(mu_) {
    if (data.backing_id() == nullptr) return;
    Backing& b = backings_[data.backing_id()];
    if (b.refs++ == 0) {
      b.bytes = data.backing_size();
      resident_bytes_ += b.bytes;
    }
  }

  void UnpinBacking(const BufferSlice& data) REQUIRES(mu_) {
    if (data.backing_id() == nullptr) return;
    auto it = backings_.find(data.backing_id());
    if (it == backings_.end()) return;
    if (--it->second.refs == 0) {
      resident_bytes_ -= it->second.bytes;
      backings_.erase(it);
    }
  }

  mutable Mutex mu_{LockRank::kChunkStore, 0, "memory_chunk_store"};
  std::unordered_map<ChunkId, BufferSlice, ChunkIdHash> chunks_ GUARDED_BY(mu_);
  std::unordered_map<const void*, Backing> backings_ GUARDED_BY(mu_);
  std::uint64_t bytes_used_ GUARDED_BY(mu_) = 0;
  std::uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
};

}  // namespace

std::unique_ptr<ChunkStore> MakeMemoryChunkStore() {
  return std::make_unique<MemoryChunkStore>();
}

}  // namespace stdchk
