#include <algorithm>
#include <unordered_map>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/annotated_mutex.h"

namespace stdchk {
namespace {

// In-memory store. Slices alias their callers' buffers (zero-copy
// insertion), which means one retained chunk pins its whole drain
// generation — the ResidentBytes()/BytesUsed() gap. CompactStep closes it:
// when a backing's live fraction drops below the policy threshold, the
// surviving slices are copied into a fresh tightly-packed backing and the
// store's pin on the old generation is released (reader-held slices keep
// the old heap alive until they drop, exactly like disk mmap slices
// surviving an unlink). Compacted copies are NEW bytes in a NEW buffer, so
// they deliberately carry no digest stamp — a post-compaction read
// re-hashes at the verification boundary instead of trusting a stamp that
// was computed on the original buffer.
class MemoryChunkStore final : public ChunkStore {
 public:
  using ChunkStore::Put;

  // Aliases the caller's slice — zero-copy insertion. The backing buffer
  // (often a whole planner drain generation) stays alive while any of its
  // chunks is stored or any reader still holds a slice.
  Status Put(const ChunkId& id, BufferSlice data) override {
    MutexLock lock(mu_);
    PutLocked(id, std::move(data));
    return OkStatus();
  }

  // One lock acquisition for a whole drain generation.
  Status PutBatch(std::span<const ChunkPut> puts) override {
    MutexLock lock(mu_);
    for (const ChunkPut& put : puts) PutLocked(put.id, put.data);
    return OkStatus();
  }

  // Shares the stored slice; concurrent readers alias one buffer.
  Result<BufferSlice> Get(const ChunkId& id) const override {
    MutexLock lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    return it->second;
  }

  bool Contains(const ChunkId& id) const override {
    MutexLock lock(mu_);
    return chunks_.contains(id);
  }

  Status Delete(const ChunkId& id) override {
    MutexLock lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    bytes_used_ -= it->second.size();
    UnpinBacking(it->second);
    chunks_.erase(it);
    return OkStatus();
  }

  Status Wipe() override {
    MutexLock lock(mu_);
    chunks_.clear();
    backings_.clear();
    bytes_used_ = 0;
    resident_bytes_ = 0;
    return OkStatus();
  }

  std::vector<ChunkId> List() const override {
    MutexLock lock(mu_);
    std::vector<ChunkId> out;
    out.reserve(chunks_.size());
    for (const auto& [id, data] : chunks_) out.push_back(id);
    return out;
  }

  std::uint64_t BytesUsed() const override {
    MutexLock lock(mu_);
    return bytes_used_;
  }

  std::size_t ChunkCount() const override {
    MutexLock lock(mu_);
    return chunks_.size();
  }

  // Each distinct backing buffer counted once at its full size: aliasing
  // slices means a chunk pins its whole drain generation, and BytesUsed()
  // alone under-reports what the donor machine actually gives up.
  std::uint64_t ResidentBytes() const override {
    MutexLock lock(mu_);
    return resident_bytes_;
  }

  // One throttled generation-compaction pass: re-own the live slices of
  // under-utilized backings and release the store's pin on the originals.
  Result<CompactionStepReport> CompactStep(
      const CompactionPolicy& policy) override EXCLUDES(mu_) {
    CompactionStepReport report;
    if (policy.utilization_threshold <= 0.0) return report;
    MutexLock lock(mu_);

    // Victims: backings whose live bytes are a sub-threshold fraction of
    // the buffer they pin, deadest first, whole victims up to the budget.
    struct Candidate {
      double utilization;
      const void* backing;
      std::uint64_t live_bytes;
    };
    std::vector<Candidate> candidates;
    for (const auto& [backing_id, backing] : backings_) {
      if (backing.bytes == 0 || backing.live_bytes >= backing.bytes) continue;
      double utilization = static_cast<double>(backing.live_bytes) /
                           static_cast<double>(backing.bytes);
      if (utilization < policy.utilization_threshold) {
        candidates.push_back(
            Candidate{utilization, backing_id, backing.live_bytes});
      }
    }
    if (candidates.empty()) return report;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.utilization != b.utilization
                           ? a.utilization < b.utilization
                           : a.backing < b.backing;
              });
    std::vector<const void*> victims;
    std::uint64_t budget_used = 0;
    for (const Candidate& candidate : candidates) {
      if (!victims.empty() &&
          budget_used + candidate.live_bytes > policy.max_bytes_per_step) {
        break;
      }
      victims.push_back(candidate.backing);
      budget_used += candidate.live_bytes;
      if (budget_used >= policy.max_bytes_per_step) break;
    }

    // One pass over the index groups the surviving chunks per victim.
    std::unordered_map<const void*, std::vector<ChunkId>> survivors;
    for (const auto& [id, data] : chunks_) {
      const void* backing_id = data.backing_id();
      if (backing_id == nullptr) continue;
      if (std::find(victims.begin(), victims.end(), backing_id) !=
          victims.end()) {
        survivors[backing_id].push_back(id);
      }
    }

    const std::uint64_t resident_before = resident_bytes_;
    for (const void* victim : victims) {
      std::vector<ChunkId>& ids = survivors[victim];
      std::size_t total = 0;
      for (const ChunkId& id : ids) total += chunks_.at(id).size();
      // An honest payload copy: the rewrite is what hands the dead bytes
      // back, and copy_stats keeps the zero-copy benches able to prove the
      // foreground path still copies nothing.
      Bytes packed;
      packed.reserve(total);
      for (const ChunkId& id : ids) {
        ByteSpan span = chunks_.at(id).span();
        packed.insert(packed.end(), span.begin(), span.end());
      }
      copy_stats::RecordCopy(packed.size());
      BufferRef fresh = BufferRef::Take(std::move(packed));
      std::size_t offset = 0;
      for (const ChunkId& id : ids) {
        BufferSlice& slot = chunks_.at(id);
        std::size_t length = slot.size();
        // The replacement slice is unstamped by construction (new buffer,
        // new bytes): verification can never trust a stale stamp here.
        BufferSlice replacement(fresh, offset, length);
        UnpinBacking(slot);
        slot = std::move(replacement);
        PinBacking(slot);
        offset += length;
        report.bytes_rewritten += length;
      }
      ++report.generations_released;
    }
    // Every store pin moved off the victims, so each was released in full
    // and replaced by its tightly-packed copy: the resident drop is the
    // dead weight handed back (readers still holding old-generation slices
    // keep the heap alive, but that is their pin now, not the store's).
    report.bytes_reclaimed = resident_before - resident_bytes_;
    stats_.generations_released += report.generations_released;
    stats_.compacted_bytes_rewritten += report.bytes_rewritten;
    ++stats_.compaction_steps;
    return report;
  }

  ChunkStoreStats Stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  struct Backing {
    std::size_t refs = 0;
    std::size_t bytes = 0;       // full backing-buffer size (pinned once)
    std::size_t live_bytes = 0;  // bytes of it still reachable via chunks_
  };

  void PutLocked(const ChunkId& id, BufferSlice data) REQUIRES(mu_) {
    auto [it, inserted] = chunks_.try_emplace(id, std::move(data));
    if (inserted) {
      bytes_used_ += it->second.size();
      PinBacking(it->second);
    }
  }

  void PinBacking(const BufferSlice& data) REQUIRES(mu_) {
    if (data.backing_id() == nullptr) return;
    Backing& b = backings_[data.backing_id()];
    if (b.refs++ == 0) {
      b.bytes = data.backing_size();
      resident_bytes_ += b.bytes;
    }
    b.live_bytes += data.size();
  }

  void UnpinBacking(const BufferSlice& data) REQUIRES(mu_) {
    if (data.backing_id() == nullptr) return;
    auto it = backings_.find(data.backing_id());
    if (it == backings_.end()) return;
    it->second.live_bytes -= data.size();
    if (--it->second.refs == 0) {
      resident_bytes_ -= it->second.bytes;
      backings_.erase(it);
    }
  }

  mutable Mutex mu_{LockRank::kChunkStore, 0, "memory_chunk_store"};
  std::unordered_map<ChunkId, BufferSlice, ChunkIdHash> chunks_ GUARDED_BY(mu_);
  std::unordered_map<const void*, Backing> backings_ GUARDED_BY(mu_);
  std::uint64_t bytes_used_ GUARDED_BY(mu_) = 0;
  std::uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
  mutable ChunkStoreStats stats_ GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<ChunkStore> MakeMemoryChunkStore() {
  return std::make_unique<MemoryChunkStore>();
}

}  // namespace stdchk
