#include <mutex>
#include <unordered_map>

#include "chunk/chunk_store.h"

namespace stdchk {
namespace {

class MemoryChunkStore final : public ChunkStore {
 public:
  using ChunkStore::Put;

  // Aliases the caller's slice — zero-copy insertion. The backing buffer
  // (often a whole planner drain generation) stays alive while any of its
  // chunks is stored or any reader still holds a slice.
  Status Put(const ChunkId& id, BufferSlice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = chunks_.try_emplace(id, std::move(data));
    if (inserted) bytes_used_ += it->second.size();
    return OkStatus();
  }

  // Shares the stored slice; concurrent readers alias one buffer.
  Result<BufferSlice> Get(const ChunkId& id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    return it->second;
  }

  bool Contains(const ChunkId& id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.contains(id);
  }

  Status Delete(const ChunkId& id) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return NotFoundError("chunk " + id.ToHex() + " not in store");
    }
    bytes_used_ -= it->second.size();
    chunks_.erase(it);
    return OkStatus();
  }

  std::vector<ChunkId> List() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ChunkId> out;
    out.reserve(chunks_.size());
    for (const auto& [id, data] : chunks_) out.push_back(id);
    return out;
  }

  std::uint64_t BytesUsed() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_used_;
  }

  std::size_t ChunkCount() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return chunks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<ChunkId, BufferSlice, ChunkIdHash> chunks_;
  std::uint64_t bytes_used_ = 0;
};

}  // namespace

std::unique_ptr<ChunkStore> MakeMemoryChunkStore() {
  return std::make_unique<MemoryChunkStore>();
}

}  // namespace stdchk
