// Chunk vocabulary: stdchk fragments every dataset into fixed-size chunks
// that are striped across benefactor nodes (paper §IV.A). Chunks are named
// by the SHA-1 of their content ("content based addressability", §IV.C),
// which both enables incremental-checkpoint dedup and lets any reader verify
// integrity against tampering by faulty benefactors.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/hash.h"

namespace stdchk {

// The default chunk size used throughout the paper's evaluation.
inline constexpr std::size_t kDefaultChunkSize = 1_MiB;

// Content address of a chunk.
struct ChunkId {
  Sha1Digest digest;

  auto operator<=>(const ChunkId&) const = default;
  std::string ToHex() const { return digest.ToHex(); }

  static ChunkId For(ByteSpan data) { return ChunkId{Sha1(data)}; }

  // Slices stamped at naming time answer from the memo in O(1); unstamped
  // slices (disk reads, copies, external callers) pay the full hash.
  static ChunkId For(const BufferSlice& data) {
    if (const Sha1Digest* d = data.stamped_digest()) return ChunkId{*d};
    return For(data.span());
  }
};

struct ChunkIdHash {
  std::size_t operator()(const ChunkId& id) const {
    return static_cast<std::size_t>(id.digest.Prefix64());
  }
};

// One entry of a file's chunk map: which chunk, where it sits in the file,
// and which benefactors hold replicas.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

// One shard of an erasure-coded chunk: its own content address (the SHA-1
// of the stored shard bytes, so benefactor put/get integrity checks work
// unchanged) and the single benefactor holding it. kInvalidNode marks a
// shard whose holder departed (awaiting repair).
struct ShardLocation {
  ChunkId id;
  NodeId node = kInvalidNode;

  auto operator<=>(const ShardLocation&) const = default;
};

struct ChunkLocation {
  ChunkLocation() = default;
  ChunkLocation(ChunkId chunk_id, std::uint64_t offset, std::uint32_t len,
                std::vector<NodeId> nodes)
      : id(chunk_id),
        file_offset(offset),
        size(len),
        replicas(std::move(nodes)) {}

  ChunkId id;
  std::uint64_t file_offset = 0;
  std::uint32_t size = 0;
  std::vector<NodeId> replicas;  // benefactor nodes holding this chunk

  // Erasure-coded placement (ClientOptions::erasure): instead of whole
  // replicas, the chunk is striped into ec_k data + ec_m parity shards on
  // distinct benefactors — `shards` lists them in shard order (data first,
  // then parity) and `replicas` stays empty (zero full copies, ~(k+m)/k
  // storage overhead). `id` remains the whole-chunk content address; a
  // reader verifies it after reassembly/reconstruction. Shard sizes are
  // derived, not stored: ErasureShardSize/ErasureShardLength below.
  std::uint16_t ec_k = 0;
  std::uint16_t ec_m = 0;
  std::vector<ShardLocation> shards;

  bool erasure_coded() const { return ec_k > 0; }
};

// Nominal shard width of an erasure-coded chunk: ceil(size / k).
inline std::size_t ErasureShardSize(std::uint32_t chunk_size, int k) {
  return (static_cast<std::size_t>(chunk_size) + static_cast<std::size_t>(k) -
          1) /
         static_cast<std::size_t>(k);
}

// Stored length of shard `index` (0-based, data shards first): data shards
// are stored unpadded — the tail shard is short (possibly empty) and the
// codec treats it as virtually zero-padded — while parity shards are always
// full width.
inline std::size_t ErasureShardLength(std::uint32_t chunk_size, int k,
                                      int index) {
  std::size_t shard_size = ErasureShardSize(chunk_size, k);
  if (index >= k) return shard_size;
  std::size_t offset = static_cast<std::size_t>(index) * shard_size;
  if (offset >= chunk_size) return 0;
  return std::min(shard_size, static_cast<std::size_t>(chunk_size) - offset);
}

// One element of a batched multi-chunk store request (the write engine
// coalesces per-benefactor puts into one RPC). `data` shares the sender's
// staging buffers — receivers may alias it (zero-copy) or hold it past the
// call; the refcount keeps the backing alive.
struct ChunkPut {
  ChunkPut() = default;
  ChunkPut(ChunkId put_id, BufferSlice put_data)
      : id(put_id), data(std::move(put_data)) {}

  ChunkId id;
  BufferSlice data;

  // Shard-group tag for erasure-coded uploads: the whole-chunk id this put
  // is a shard of, and its position in the group (data shards first). A
  // default-constructed group (shard_index < 0) marks a plain whole-chunk
  // put. Benefactors store shards like any content-addressed chunk; the tag
  // rides along for observability and wire-protocol parity.
  ChunkId group;
  std::int32_t shard_index = -1;
};

// The chunk map of one file version: ordered chunk locations covering
// [0, file_size). Committed atomically to the manager at close() — this
// atomic commit is what provides session semantics (§IV.A).
struct ChunkMap {
  std::vector<ChunkLocation> chunks;

  std::uint64_t FileSize() const {
    return chunks.empty()
               ? 0
               : chunks.back().file_offset + chunks.back().size;
  }
};

}  // namespace stdchk
