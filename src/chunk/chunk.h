// Chunk vocabulary: stdchk fragments every dataset into fixed-size chunks
// that are striped across benefactor nodes (paper §IV.A). Chunks are named
// by the SHA-1 of their content ("content based addressability", §IV.C),
// which both enables incremental-checkpoint dedup and lets any reader verify
// integrity against tampering by faulty benefactors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/hash.h"

namespace stdchk {

// The default chunk size used throughout the paper's evaluation.
inline constexpr std::size_t kDefaultChunkSize = 1_MiB;

// Content address of a chunk.
struct ChunkId {
  Sha1Digest digest;

  auto operator<=>(const ChunkId&) const = default;
  std::string ToHex() const { return digest.ToHex(); }

  static ChunkId For(ByteSpan data) { return ChunkId{Sha1(data)}; }

  // Slices stamped at naming time answer from the memo in O(1); unstamped
  // slices (disk reads, copies, external callers) pay the full hash.
  static ChunkId For(const BufferSlice& data) {
    if (const Sha1Digest* d = data.stamped_digest()) return ChunkId{*d};
    return For(data.span());
  }
};

struct ChunkIdHash {
  std::size_t operator()(const ChunkId& id) const {
    return static_cast<std::size_t>(id.digest.Prefix64());
  }
};

// One entry of a file's chunk map: which chunk, where it sits in the file,
// and which benefactors hold replicas.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

struct ChunkLocation {
  ChunkId id;
  std::uint64_t file_offset = 0;
  std::uint32_t size = 0;
  std::vector<NodeId> replicas;  // benefactor nodes holding this chunk
};

// One element of a batched multi-chunk store request (the write engine
// coalesces per-benefactor puts into one RPC). `data` shares the sender's
// staging buffers — receivers may alias it (zero-copy) or hold it past the
// call; the refcount keeps the backing alive.
struct ChunkPut {
  ChunkId id;
  BufferSlice data;
};

// The chunk map of one file version: ordered chunk locations covering
// [0, file_size). Committed atomically to the manager at close() — this
// atomic commit is what provides session semantics (§IV.A).
struct ChunkMap {
  std::vector<ChunkLocation> chunks;

  std::uint64_t FileSize() const {
    return chunks.empty()
               ? 0
               : chunks.back().file_offset + chunks.back().size;
  }
};

}  // namespace stdchk
