// Storage backends a benefactor uses to hold donated-space chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chunk/chunk.h"
#include "common/status.h"

namespace stdchk {

// I/O-shape introspection a store may expose (test/bench assertions, ops
// visibility). All counters are cumulative since the store opened; a store
// with nothing to report returns the zero snapshot.
struct ChunkStoreStats {
  // Write path.
  std::uint64_t put_batches = 0;    // PutBatch calls that stored >= 1 chunk
  std::uint64_t data_syscalls = 0;  // data-write syscalls (pwritev/pwrite)
  std::uint64_t fsyncs = 0;
  // Segment lifecycle (log-structured disk store).
  std::uint64_t segments_created = 0;
  std::uint64_t segments_reclaimed = 0;  // fully dead, unlinked
  // Read path.
  std::uint64_t mmap_reads = 0;  // Gets served zero-copy from a mapping
  // Startup recovery.
  std::uint64_t recovered_chunks = 0;      // index entries rebuilt at open
  std::uint64_t torn_tails_truncated = 0;  // segments cut at a bad record
};

// Abstract chunk store. Implementations must be safe for concurrent use.
//
// Payload ownership: Put hands the store a shared slice — the memory store
// aliases it outright (zero-copy insertion); the disk store writes it out.
// Get returns a shared slice into the store's holdings; it remains valid
// after the chunk is Delete()d, Wipe()d or GC'd (the refcount keeps the
// backing — heap buffer or mmap'd segment — alive until the last reader
// drops it, even once the segment file is unlinked).
class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `data` under `id`. Idempotent: re-putting an existing chunk is OK
  // (content addressing guarantees the bytes are identical).
  virtual Status Put(const ChunkId& id, BufferSlice data) = 0;

  // Stores a whole batch — one drain generation — in a single call so the
  // store can amortize it (the disk store lands the batch as one vectored
  // write + one fsync). Duplicate ids, within the batch or vs the store,
  // are stored once. Not atomic across store-level I/O failure: chunks
  // admitted before the error remain (content addressed, so they are
  // usable replicas or GC-reclaimable orphans — same contract as
  // Benefactor::PutChunkBatch).
  virtual Status PutBatch(std::span<const ChunkPut> puts) {
    for (const ChunkPut& put : puts) {
      STDCHK_RETURN_IF_ERROR(Put(put.id, put.data));
    }
    return OkStatus();
  }

  virtual Result<BufferSlice> Get(const ChunkId& id) const = 0;

  virtual bool Contains(const ChunkId& id) const = 0;

  // Convenience for borrowed bytes (tests, tools): copies into an owned
  // slice first. The hot path passes slices and never copies.
  Status Put(const ChunkId& id, ByteSpan data) {
    return Put(id, BufferSlice::Copy(data));
  }

  virtual Status Delete(const ChunkId& id) = 0;

  // Drops every chunk (scavenged space reclaimed by its owner). Slices
  // already handed out stay valid. The disk store unlinks whole segments
  // instead of walking Delete chunk by chunk.
  virtual Status Wipe() {
    for (const ChunkId& id : List()) {
      STDCHK_RETURN_IF_ERROR(Delete(id));
    }
    return OkStatus();
  }

  // All chunk ids currently held; used for the GC exchange with the manager.
  virtual std::vector<ChunkId> List() const = 0;

  virtual std::uint64_t BytesUsed() const = 0;
  virtual std::size_t ChunkCount() const = 0;

  // Process memory pinned by the stored payloads. For slice-aliasing stores
  // this counts each distinct backing buffer once at its full size: a
  // high-dedup memory store that keeps 1% of a 64 MiB drain generation
  // still pins all 64 MiB, so ResidentBytes() can exceed BytesUsed() by
  // orders of magnitude (the over-retention ROADMAP's generation-compaction
  // item targets). Disk-backed stores pin nothing and report 0 (mapped
  // segments are page cache, reclaimable by the kernel).
  virtual std::uint64_t ResidentBytes() const { return BytesUsed(); }

  virtual ChunkStoreStats Stats() const { return {}; }
};

// In-memory store (unit tests, simulation, RAM-donor scenarios).
std::unique_ptr<ChunkStore> MakeMemoryChunkStore();

struct DiskStoreOptions {
  // A batch landing in a segment at or past this size rolls to a fresh
  // segment first. Tests shrink it to force multi-segment layouts.
  std::uint64_t segment_target_bytes = 64_MiB;
};

// On-disk store rooted at `directory`: a log-structured segment store.
// Batches append to seg-NNNNNNNN.log files via one vectored write, reads
// are zero-copy slices of the mmap'd segment, and open() recovers the
// index by scanning segments and truncating torn tails (see README "Disk
// store").
Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory, const DiskStoreOptions& options = {});

}  // namespace stdchk
