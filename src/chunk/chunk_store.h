// Storage backends a benefactor uses to hold donated-space chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chunk/chunk.h"
#include "common/status.h"

namespace stdchk {

// Abstract chunk store. Implementations must be safe for concurrent use.
//
// Payload ownership: Put hands the store a shared slice — the memory store
// aliases it outright (zero-copy insertion); the disk store writes it out.
// Get returns a shared slice into the store's holdings; it remains valid
// after the chunk is Delete()d or GC'd (the refcount keeps the backing
// buffer alive until the last reader drops it).
class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `data` under `id`. Idempotent: re-putting an existing chunk is OK
  // (content addressing guarantees the bytes are identical).
  virtual Status Put(const ChunkId& id, BufferSlice data) = 0;

  virtual Result<BufferSlice> Get(const ChunkId& id) const = 0;

  virtual bool Contains(const ChunkId& id) const = 0;

  // Convenience for borrowed bytes (tests, tools): copies into an owned
  // slice first. The hot path passes slices and never copies.
  Status Put(const ChunkId& id, ByteSpan data) {
    return Put(id, BufferSlice::Copy(data));
  }

  virtual Status Delete(const ChunkId& id) = 0;

  // All chunk ids currently held; used for the GC exchange with the manager.
  virtual std::vector<ChunkId> List() const = 0;

  virtual std::uint64_t BytesUsed() const = 0;
  virtual std::size_t ChunkCount() const = 0;

  // Process memory pinned by the stored payloads. For slice-aliasing stores
  // this counts each distinct backing buffer once at its full size: a
  // high-dedup memory store that keeps 1% of a 64 MiB drain generation
  // still pins all 64 MiB, so ResidentBytes() can exceed BytesUsed() by
  // orders of magnitude (the over-retention ROADMAP's generation-compaction
  // item targets). Disk-backed stores pin nothing and report 0.
  virtual std::uint64_t ResidentBytes() const { return BytesUsed(); }
};

// In-memory store (unit tests, simulation, RAM-donor scenarios).
std::unique_ptr<ChunkStore> MakeMemoryChunkStore();

// On-disk store rooted at `directory`: each chunk is a file named by its
// hex content address, fanned out over 256 subdirectories.
Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory);

}  // namespace stdchk
