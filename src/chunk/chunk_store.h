// Storage backends a benefactor uses to hold donated-space chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chunk/chunk.h"
#include "common/status.h"

namespace stdchk {

// I/O-shape introspection a store may expose (test/bench assertions, ops
// visibility). All counters are cumulative since the store opened; a store
// with nothing to report returns the zero snapshot.
struct ChunkStoreStats {
  // Write path.
  std::uint64_t put_batches = 0;    // PutBatch calls that stored >= 1 chunk
  std::uint64_t data_syscalls = 0;  // data-write syscalls (pwritev/pwrite)
  std::uint64_t fsyncs = 0;
  // Segment lifecycle (log-structured disk store).
  std::uint64_t segments_created = 0;
  std::uint64_t segments_reclaimed = 0;  // fully dead, unlinked
  // Read path.
  std::uint64_t mmap_reads = 0;  // Gets served zero-copy from a mapping
  // Startup recovery.
  std::uint64_t recovered_chunks = 0;      // index entries rebuilt at open
  std::uint64_t torn_tails_truncated = 0;  // segments cut at a bad record
  // Live compaction (CompactStep): dead-byte reclamation under traffic.
  std::uint64_t compaction_steps = 0;      // CompactStep calls that did work
  std::uint64_t segments_compacted = 0;    // disk victims rewritten + unlinked
  std::uint64_t generations_released = 0;  // memory backings replaced
  std::uint64_t compacted_bytes_rewritten = 0;  // live payload bytes moved
};

// Tuning for one CompactStep() pass. The caller (the benefactor's
// background pump) owns pacing: a step visits whole victims but never
// rewrites more than max_bytes_per_step of live payload, so a pass bounds
// the latency it can add in front of foreground puts and gets.
struct CompactionPolicy {
  // A segment (disk) or generation backing (memory) whose live fraction —
  // live payload footprint over total bytes held — is below this becomes a
  // compaction victim. 0 disables compaction entirely.
  double utilization_threshold = 0.5;
  // Per-step rewrite budget. At least one victim is taken per step even if
  // its live bytes exceed the budget, so a single oversized segment cannot
  // pin its dead bytes forever.
  std::uint64_t max_bytes_per_step = 8_MiB;
};

// What one CompactStep() accomplished.
struct CompactionStepReport {
  std::uint64_t segments_compacted = 0;    // disk segments rewritten+unlinked
  std::uint64_t generations_released = 0;  // memory backings replaced
  std::uint64_t bytes_rewritten = 0;       // live payload bytes copied
  std::uint64_t bytes_reclaimed = 0;       // dead bytes handed back
};

// Abstract chunk store. Implementations must be safe for concurrent use.
//
// Payload ownership: Put hands the store a shared slice — the memory store
// aliases it outright (zero-copy insertion); the disk store writes it out.
// Get returns a shared slice into the store's holdings; it remains valid
// after the chunk is Delete()d, Wipe()d or GC'd (the refcount keeps the
// backing — heap buffer or mmap'd segment — alive until the last reader
// drops it, even once the segment file is unlinked).
class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `data` under `id`. Idempotent: re-putting an existing chunk is OK
  // (content addressing guarantees the bytes are identical).
  virtual Status Put(const ChunkId& id, BufferSlice data) = 0;

  // Stores a whole batch — one drain generation — in a single call so the
  // store can amortize it (the disk store lands the batch as one vectored
  // write + one fsync). Duplicate ids, within the batch or vs the store,
  // are stored once. Not atomic across store-level I/O failure: chunks
  // admitted before the error remain (content addressed, so they are
  // usable replicas or GC-reclaimable orphans — same contract as
  // Benefactor::PutChunkBatch).
  virtual Status PutBatch(std::span<const ChunkPut> puts) {
    for (const ChunkPut& put : puts) {
      STDCHK_RETURN_IF_ERROR(Put(put.id, put.data));
    }
    return OkStatus();
  }

  virtual Result<BufferSlice> Get(const ChunkId& id) const = 0;

  virtual bool Contains(const ChunkId& id) const = 0;

  // Convenience for borrowed bytes (tests, tools): copies into an owned
  // slice first. The hot path passes slices and never copies.
  Status Put(const ChunkId& id, ByteSpan data) {
    return Put(id, BufferSlice::Copy(data));
  }

  virtual Status Delete(const ChunkId& id) = 0;

  // Drops every chunk (scavenged space reclaimed by its owner). Slices
  // already handed out stay valid. The disk store unlinks whole segments
  // instead of walking Delete chunk by chunk.
  virtual Status Wipe() {
    for (const ChunkId& id : List()) {
      STDCHK_RETURN_IF_ERROR(Delete(id));
    }
    return OkStatus();
  }

  // All chunk ids currently held; used for the GC exchange with the manager.
  virtual std::vector<ChunkId> List() const = 0;

  virtual std::uint64_t BytesUsed() const = 0;
  virtual std::size_t ChunkCount() const = 0;

  // Bytes pinned beyond what the filesystem/allocator could otherwise
  // reclaim. For slice-aliasing memory stores this counts each distinct
  // backing buffer once at its full size: a high-dedup store that keeps 1%
  // of a 64 MiB drain generation still pins all 64 MiB, so ResidentBytes()
  // can exceed BytesUsed() by orders of magnitude. The disk store counts
  // mapped-but-unlinked segment bytes: reader-held mmap slices keep a
  // reclaimed/compacted segment's pages (and thus its disk blocks) alive
  // after the unlink, invisible to `du` — this is what makes the
  // compaction invariant measurable. Both gaps close as readers drop their
  // slices; CompactStep() is what closes the memory store's gap early.
  virtual std::uint64_t ResidentBytes() const { return BytesUsed(); }

  // One throttled pass of live compaction: rewrite the live records of
  // under-utilized storage units (disk segments / memory generation
  // backings) into fresh, fully-live ones and release the old units.
  // Safe to call concurrently with the data path; reader-held slices stay
  // byte-stable across the move (old backings live until the last slice
  // drops). Moved bytes never inherit digest stamps — post-compaction
  // reads re-verify from the bytes. The default is a no-op for stores
  // with nothing to compact.
  virtual Result<CompactionStepReport> CompactStep(const CompactionPolicy&) {
    return CompactionStepReport{};
  }

  virtual ChunkStoreStats Stats() const { return {}; }
};

// In-memory store (unit tests, simulation, RAM-donor scenarios).
std::unique_ptr<ChunkStore> MakeMemoryChunkStore();

struct DiskStoreOptions {
  // A batch landing in a segment at or past this size rolls to a fresh
  // segment first. Tests shrink it to force multi-segment layouts.
  std::uint64_t segment_target_bytes = 64_MiB;
  // Test-only crash injection: CompactStep fails after the compacted
  // segment is durable on disk but before the index repoints and the
  // victims unlink — exactly the on-disk state a crash at that boundary
  // leaves (both copies present; recovery must keep the first and count
  // the duplicates as dead bytes).
  bool testing_compaction_abort_before_publish = false;
};

// On-disk store rooted at `directory`: a log-structured segment store.
// Batches append to seg-NNNNNNNN.log files via one vectored write, reads
// are zero-copy slices of the mmap'd segment, and open() recovers the
// index by scanning segments and truncating torn tails (see README "Disk
// store").
Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory, const DiskStoreOptions& options = {});

}  // namespace stdchk
