// Storage backends a benefactor uses to hold donated-space chunks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chunk/chunk.h"
#include "common/status.h"

namespace stdchk {

// Abstract chunk store. Implementations must be safe for concurrent use.
class ChunkStore {
 public:
  virtual ~ChunkStore() = default;

  // Stores `data` under `id`. Idempotent: re-putting an existing chunk is OK
  // (content addressing guarantees the bytes are identical).
  virtual Status Put(const ChunkId& id, ByteSpan data) = 0;

  virtual Result<Bytes> Get(const ChunkId& id) const = 0;

  virtual bool Contains(const ChunkId& id) const = 0;

  virtual Status Delete(const ChunkId& id) = 0;

  // All chunk ids currently held; used for the GC exchange with the manager.
  virtual std::vector<ChunkId> List() const = 0;

  virtual std::uint64_t BytesUsed() const = 0;
  virtual std::size_t ChunkCount() const = 0;
};

// In-memory store (unit tests, simulation, RAM-donor scenarios).
std::unique_ptr<ChunkStore> MakeMemoryChunkStore();

// On-disk store rooted at `directory`: each chunk is a file named by its
// hex content address, fanned out over 256 subdirectories.
Result<std::unique_ptr<ChunkStore>> MakeDiskChunkStore(
    const std::string& directory);

}  // namespace stdchk
