#include "workload/xen_canonicalize.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace stdchk {

Result<CanonicalXenImage> CanonicalizeXenImage(ByteSpan image,
                                               const XenImageLayout& layout) {
  if (layout.pfn_bytes == 0 || layout.pfn_bytes > 8 ||
      layout.pfn_bytes > layout.header_bytes) {
    return InvalidArgumentError("bad pfn field layout");
  }
  const std::size_t record = layout.header_bytes + layout.page_bytes;
  if (record == 0 || image.size() % record != 0) {
    return InvalidArgumentError(
        "image size is not a whole number of (header, page) records");
  }
  const std::size_t records = image.size() / record;

  // pfn -> record index; ordered map gives the canonical (sorted) order.
  std::map<std::uint64_t, std::size_t> by_pfn;
  CanonicalXenImage out;
  out.layout = layout;
  out.original_order.reserve(records);
  const std::size_t volatile_bytes = layout.header_bytes - layout.pfn_bytes;
  out.volatile_headers.reserve(records * volatile_bytes);

  for (std::size_t i = 0; i < records; ++i) {
    const std::uint8_t* rec = image.data() + i * record;
    std::uint64_t pfn = 0;
    std::memcpy(&pfn, rec, layout.pfn_bytes);
    if (!by_pfn.emplace(pfn, i).second) {
      return InvalidArgumentError("duplicate pfn " + std::to_string(pfn) +
                                  " in Xen image");
    }
    out.original_order.push_back(pfn);
    Append(out.volatile_headers,
           ByteSpan(rec + layout.pfn_bytes, volatile_bytes));
  }

  out.pages.resize(records * layout.page_bytes);
  std::size_t slot = 0;
  for (const auto& [pfn, index] : by_pfn) {
    const std::uint8_t* page =
        image.data() + index * record + layout.header_bytes;
    std::memcpy(out.pages.data() + slot * layout.page_bytes, page,
                layout.page_bytes);
    ++slot;
  }
  return out;
}

Result<Bytes> ReassembleXenImage(const CanonicalXenImage& canonical) {
  const XenImageLayout& layout = canonical.layout;
  const std::size_t record = layout.header_bytes + layout.page_bytes;
  const std::size_t records = canonical.original_order.size();
  const std::size_t volatile_bytes = layout.header_bytes - layout.pfn_bytes;
  if (canonical.pages.size() != records * layout.page_bytes ||
      canonical.volatile_headers.size() != records * volatile_bytes) {
    return InvalidArgumentError("canonical image pieces are inconsistent");
  }

  // Sorted pfn -> canonical slot.
  std::vector<std::uint64_t> sorted = canonical.original_order;
  std::sort(sorted.begin(), sorted.end());
  std::map<std::uint64_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < sorted.size(); ++i) slot_of[sorted[i]] = i;

  Bytes out(records * record);
  for (std::size_t i = 0; i < records; ++i) {
    std::uint8_t* rec = out.data() + i * record;
    std::uint64_t pfn = canonical.original_order[i];
    std::memcpy(rec, &pfn, layout.pfn_bytes);
    std::memcpy(rec + layout.pfn_bytes,
                canonical.volatile_headers.data() + i * volatile_bytes,
                volatile_bytes);
    auto it = slot_of.find(pfn);
    if (it == slot_of.end()) return InternalError("pfn lost in round trip");
    std::memcpy(rec + layout.header_bytes,
                canonical.pages.data() + it->second * layout.page_bytes,
                layout.page_bytes);
  }
  return out;
}

}  // namespace stdchk
