// Synthetic checkpoint-image trace generators (DESIGN.md §2 substitution
// for the paper's BMS and BLAST traces).
//
// Table 3 of the paper shows that similarity between successive checkpoint
// images is determined by *how* the checkpointer serializes state:
//
//  * application-level (BMS): user-controlled, "ideally-compressed" format
//    -> no detectable cross-version similarity. We generate fresh
//    pseudo-random bytes per image.
//
//  * library-level (BLCR): a linear dump of the address space -> unchanged
//    pages produce identical byte ranges, but heap growth inserts bytes and
//    shifts everything behind it. CbCH detects the unchanged content (high
//    similarity); FsCH only matches the prefix before the first shift
//    (moderate similarity, dropping with interval length as more
//    insertions/mutations accumulate per interval).
//
//  * VM-level (Xen): pages saved "in essentially random order", each with
//    added bookkeeping metadata -> neither heuristic finds much (only
//    zero/constant pages repeat).
//
// Each generator evolves a persistent memory image so consecutive calls to
// Next() produce *successive* checkpoints of the same synthetic process.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace stdchk {

class CheckpointTrace {
 public:
  virtual ~CheckpointTrace() = default;
  // Produces the next checkpoint image in the trace.
  virtual Bytes Next() = 0;
  virtual std::string name() const = 0;
};

// ---- Application-level (BMS-like) -------------------------------------------
struct AppLevelTraceOptions {
  std::size_t image_bytes = 2'831'155;  // ~2.7 MB, as in Table 2
  double size_jitter = 0.02;            // +/- fraction of size variation
  std::uint64_t seed = 1;
};
std::unique_ptr<CheckpointTrace> MakeAppLevelTrace(AppLevelTraceOptions options);

// ---- Library-level (BLCR-like) ----------------------------------------------
struct BlcrTraceOptions {
  std::size_t page_bytes = 4096;
  std::size_t initial_pages = 8192;  // 32 MiB image (scaled-down default;
                                     // ratios are size-invariant)
  // Fraction of pages whose content is rewritten per checkpoint interval.
  double dirty_fraction = 0.10;
  // Dirty pages arrive in contiguous runs of ~this many pages (applications
  // touch whole buffers/arrays, not uniformly random pages). Clustering is
  // what lets FsCH find clean chunks between dirty regions — with uniform
  // page dirtying every 256 KB chunk would contain a dirty page and FsCH
  // similarity would collapse to zero, which is not what Table 3 shows.
  std::size_t dirty_run_pages = 64;
  // Expected count of page insertions (heap/stack growth) per interval;
  // each insertion shifts all following bytes by a page.
  double mean_insertions = 3.0;
  // Expected count of odd-sized insertions per interval: variable-length
  // segment records (BLCR dumps interleave bookkeeping with page data).
  // These shift downstream content by amounts that are NOT multiples of
  // any chunk grid, which is what caps FsCH at ~25% in the paper's Table 3
  // even for 1 KB chunks; content-defined (CbCH) boundaries absorb them.
  double mean_odd_insertions = 2.0;
  // Probability that an interval also removes a page (e.g. free()d arena).
  double deletion_prob = 0.2;
  // Fraction of pages that are all-zero (untouched allocations); these
  // produce the small residual similarity even Xen-style dumps show.
  double zero_page_fraction = 0.05;
  std::uint64_t seed = 2;
};
std::unique_ptr<CheckpointTrace> MakeBlcrLikeTrace(BlcrTraceOptions options);

// BLCR options matching the paper's 5- and 15-minute checkpoint intervals:
// a longer interval accumulates ~3x the mutations and insertions.
BlcrTraceOptions BlcrOptionsForInterval(int interval_minutes,
                                        std::size_t image_pages,
                                        std::uint64_t seed);

// ---- VM-level (Xen-like) ------------------------------------------------------
struct XenTraceOptions {
  std::size_t page_bytes = 4096;
  std::size_t pages = 8192;
  double dirty_fraction = 0.10;
  std::size_t dirty_run_pages = 64;
  // Per-page bookkeeping header Xen prepends (pfn, flags, ...).
  std::size_t header_bytes = 16;
  double zero_page_fraction = 0.10;
  std::uint64_t seed = 3;
};
std::unique_ptr<CheckpointTrace> MakeXenLikeTrace(XenTraceOptions options);

// ---- Table 2 descriptors --------------------------------------------------------
// The paper's collected-trace characteristics, used to parameterize
// generators and to print the Table 2 bench.
struct TraceSpec {
  std::string application;
  std::string checkpointing_type;
  int interval_minutes = 0;
  std::size_t checkpoint_count = 0;
  double avg_size_mb = 0;
};
std::vector<TraceSpec> PaperTable2Specs();

}  // namespace stdchk
