#include "workload/trace_generators.h"

#include <algorithm>
#include <cstring>

namespace stdchk {
namespace {

// ---- Application-level -------------------------------------------------------
class AppLevelTrace final : public CheckpointTrace {
 public:
  explicit AppLevelTrace(AppLevelTraceOptions options)
      : options_(options), rng_(options.seed) {}

  Bytes Next() override {
    double jitter = 1.0 + options_.size_jitter * (2 * rng_.NextDouble() - 1);
    std::size_t size = static_cast<std::size_t>(
        static_cast<double>(options_.image_bytes) * jitter);
    // A user-controlled, compressed format: statistically fresh bytes each
    // time, so compare-by-hash finds nothing across versions.
    return rng_.RandomBytes(size);
  }

  std::string name() const override { return "app-level"; }

 private:
  AppLevelTraceOptions options_;
  Rng rng_;
};

// ---- Shared page-image machinery -----------------------------------------------
// A synthetic process address space: a sequence of pages, some all-zero,
// the rest filled from a per-page seed so a page's bytes are stable until
// the page is dirtied.
class PageImage {
 public:
  PageImage(std::size_t pages, std::size_t page_bytes, double zero_fraction,
            Rng* rng)
      : page_bytes_(page_bytes) {
    pages_.reserve(pages);
    for (std::size_t i = 0; i < pages; ++i) {
      pages_.push_back(Page{rng->Next(), rng->NextDouble() < zero_fraction});
    }
  }

  std::size_t page_count() const { return pages_.size(); }
  std::size_t page_bytes() const { return page_bytes_; }

  // Dirties ~fraction of all pages in contiguous runs of ~run_pages each
  // (applications rewrite whole buffers, not uniformly scattered pages).
  void DirtyRandomPages(double fraction, std::size_t run_pages, Rng* rng) {
    if (pages_.empty()) return;
    std::size_t budget = static_cast<std::size_t>(
        fraction * static_cast<double>(pages_.size()));
    run_pages = std::max<std::size_t>(1, run_pages);
    while (budget > 0) {
      std::size_t start = rng->NextBelow(pages_.size());
      // Run length: uniform in [run_pages/2, 3*run_pages/2].
      std::size_t len = run_pages / 2 + rng->NextBelow(run_pages + 1);
      len = std::max<std::size_t>(1, std::min(len, budget));
      for (std::size_t i = 0; i < len && start + i < pages_.size(); ++i) {
        Page& page = pages_[start + i];
        page.seed = rng->Next();
        page.zero = false;  // a dirtied page has real content now
      }
      budget -= len;
    }
  }

  void InsertPage(std::size_t at, Rng* rng) {
    at = std::min(at, pages_.size());
    pages_.insert(pages_.begin() + static_cast<std::ptrdiff_t>(at),
                  Page{rng->Next(), false});
  }

  void DeletePage(std::size_t at) {
    if (pages_.empty()) return;
    at = std::min(at, pages_.size() - 1);
    pages_.erase(pages_.begin() + static_cast<std::ptrdiff_t>(at));
  }

  // Renders page `idx`'s content into `out` (page_bytes_ bytes).
  void RenderPage(std::size_t idx, std::uint8_t* out) const {
    const Page& page = pages_[idx];
    if (page.zero) {
      std::memset(out, 0, page_bytes_);
      return;
    }
    // Deterministic per-seed content: cheap xorshift stream.
    std::uint64_t x = page.seed | 1;
    std::size_t i = 0;
    while (i + 8 <= page_bytes_) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      std::memcpy(out + i, &x, 8);
      i += 8;
    }
    for (; i < page_bytes_; ++i) out[i] = static_cast<std::uint8_t>(x >> (i % 8));
  }

 private:
  struct Page {
    std::uint64_t seed;
    bool zero;
  };
  std::vector<Page> pages_;
  std::size_t page_bytes_;
};

// ---- BLCR-like -----------------------------------------------------------------
class BlcrLikeTrace final : public CheckpointTrace {
 public:
  explicit BlcrLikeTrace(BlcrTraceOptions options)
      : options_(options),
        rng_(options.seed),
        image_(options.initial_pages, options.page_bytes,
               options.zero_page_fraction, &rng_) {}

  Bytes Next() override {
    if (emitted_ > 0) Evolve();
    ++emitted_;
    // BLCR dumps the address space linearly — page contents back to back —
    // with variable-length segment records interleaved at segment starts.
    std::size_t blob_bytes = 0;
    for (const Blob& blob : blobs_) blob_bytes += blob.data.size();
    Bytes out(image_.page_count() * image_.page_bytes() + blob_bytes);

    std::size_t pos = 0;
    std::size_t next_blob = 0;
    for (std::size_t i = 0; i < image_.page_count(); ++i) {
      while (next_blob < blobs_.size() && blobs_[next_blob].page_index == i) {
        const Bytes& data = blobs_[next_blob].data;
        std::memcpy(out.data() + pos, data.data(), data.size());
        pos += data.size();
        ++next_blob;
      }
      image_.RenderPage(i, out.data() + pos);
      pos += image_.page_bytes();
    }
    // Trailing blobs (page_index == page_count).
    while (next_blob < blobs_.size()) {
      const Bytes& data = blobs_[next_blob].data;
      std::memcpy(out.data() + pos, data.data(), data.size());
      pos += data.size();
      ++next_blob;
    }
    out.resize(pos);
    return out;
  }

  std::string name() const override { return "blcr-like"; }

 private:
  // Poisson-distributed count via thinning (small means).
  std::size_t PoissonCount(double mean) {
    std::size_t count = 0;
    double remaining = mean;
    while (remaining > 0) {
      if (rng_.NextDouble() < std::min(1.0, remaining)) ++count;
      remaining -= 1.0;
    }
    return count;
  }

  void ShiftBlobIndices(std::size_t at, std::ptrdiff_t delta) {
    for (Blob& blob : blobs_) {
      if (blob.page_index >= at) {
        blob.page_index = static_cast<std::size_t>(
            static_cast<std::ptrdiff_t>(blob.page_index) + delta);
      }
    }
  }

  void Evolve() {
    image_.DirtyRandomPages(options_.dirty_fraction, options_.dirty_run_pages,
                            &rng_);
    std::size_t insertions = PoissonCount(options_.mean_insertions);
    for (std::size_t i = 0; i < insertions; ++i) {
      std::size_t at = rng_.NextBelow(image_.page_count() + 1);
      image_.InsertPage(at, &rng_);
      ShiftBlobIndices(at, +1);
    }
    std::size_t odd = PoissonCount(options_.mean_odd_insertions);
    for (std::size_t i = 0; i < odd; ++i) {
      Blob blob;
      blob.page_index = rng_.NextBelow(image_.page_count() + 1);
      // Odd length in [65, 2111]: never a multiple of any chunk grid.
      blob.data = rng_.RandomBytes(65 + 2 * rng_.NextBelow(1024));
      blobs_.push_back(blob);
      std::sort(blobs_.begin(), blobs_.end(),
                [](const Blob& a, const Blob& b) {
                  return a.page_index < b.page_index;
                });
    }
    if (rng_.NextDouble() < options_.deletion_prob) {
      std::size_t at = rng_.NextBelow(image_.page_count());
      image_.DeletePage(at);
      ShiftBlobIndices(at + 1, -1);
    }
  }

  struct Blob {
    std::size_t page_index;  // rendered just before this page
    Bytes data;              // stable content once created
  };

  BlcrTraceOptions options_;
  Rng rng_;
  PageImage image_;
  std::vector<Blob> blobs_;
  std::size_t emitted_ = 0;
};

// ---- Xen-like ------------------------------------------------------------------
class XenLikeTrace final : public CheckpointTrace {
 public:
  explicit XenLikeTrace(XenTraceOptions options)
      : options_(options),
        rng_(options.seed),
        image_(options.pages, options.page_bytes, options.zero_page_fraction,
               &rng_) {}

  Bytes Next() override {
    if (emitted_ > 0) {
      image_.DirtyRandomPages(options_.dirty_fraction,
                              options_.dirty_run_pages, &rng_);
    }
    ++emitted_;

    // Xen "optimizes for speed ... saves memory pages in essentially random
    // order" and "adds additional information to each saved memory page".
    std::vector<std::size_t> order(image_.page_count());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng_);

    const std::size_t record = options_.header_bytes + image_.page_bytes();
    Bytes out(order.size() * record);
    std::size_t pos = 0;
    for (std::size_t idx : order) {
      // Header: pfn + per-save flags (differ run to run, like Xen's).
      std::uint64_t pfn = idx;
      std::uint64_t flags = rng_.Next();
      std::memcpy(out.data() + pos, &pfn, std::min<std::size_t>(8, options_.header_bytes));
      if (options_.header_bytes > 8) {
        std::size_t n = std::min<std::size_t>(8, options_.header_bytes - 8);
        std::memcpy(out.data() + pos + 8, &flags, n);
      }
      image_.RenderPage(idx, out.data() + pos + options_.header_bytes);
      pos += record;
    }
    return out;
  }

  std::string name() const override { return "xen-like"; }

 private:
  XenTraceOptions options_;
  Rng rng_;
  PageImage image_;
  std::size_t emitted_ = 0;
};

}  // namespace

std::unique_ptr<CheckpointTrace> MakeAppLevelTrace(
    AppLevelTraceOptions options) {
  return std::make_unique<AppLevelTrace>(options);
}

std::unique_ptr<CheckpointTrace> MakeBlcrLikeTrace(BlcrTraceOptions options) {
  return std::make_unique<BlcrLikeTrace>(options);
}

BlcrTraceOptions BlcrOptionsForInterval(int interval_minutes,
                                        std::size_t image_pages,
                                        std::uint64_t seed) {
  BlcrTraceOptions options;
  options.initial_pages = image_pages;
  options.seed = seed;
  // Mutation volume scales with the interval: a 15-minute interval
  // accumulates ~3x the dirty pages and heap-growth events of a 5-minute
  // one, which is what separates the two columns of Table 3.
  double scale = static_cast<double>(interval_minutes) / 5.0;
  options.dirty_fraction = std::min(0.9, 0.08 * scale);
  options.mean_insertions = 0.5 * scale;
  options.mean_odd_insertions = 2.0 * scale;
  options.deletion_prob = std::min(0.9, 0.1 * scale);
  return options;
}

std::unique_ptr<CheckpointTrace> MakeXenLikeTrace(XenTraceOptions options) {
  return std::make_unique<XenLikeTrace>(options);
}

std::vector<TraceSpec> PaperTable2Specs() {
  return {
      {"BMS", "Application", 1, 100, 2.7},
      {"BLAST", "Library (BLCR)", 5, 902, 279.6},
      {"BLAST", "Library (BLCR)", 15, 654, 308.1},
      {"BLAST", "VM (Xen)", 5, 100, 1024.8},
      {"BLAST", "VM (Xen)", 15, 300, 1024.8},
  };
}

}  // namespace stdchk
