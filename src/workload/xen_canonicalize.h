// Xen checkpoint canonicalization — the paper's open problem, implemented.
//
// §V.E: "A surprising result is the near-zero similarity observed using
// virtual machine based checkpointing... Xen optimizes for speed, and when
// creating checkpoints it saves memory pages in essentially random order.
// Further... Xen adds additional information to each saved memory page. We
// are currently exploring solutions to create Xen checkpoint images that
// preserve the similarity between incremental checkpoint images."
//
// The fix is a storage-side canonicalization pass: parse the (header,
// page) records, re-order pages by their physical frame number, and strip
// the per-save volatile header fields. The canonical image is a linear
// pfn-ordered dump — exactly the layout whose cross-version similarity the
// BLCR experiments show compare-by-hash can exploit. Restoring the
// original record order on read is possible by keeping the (pfn ->
// original index, flags) table, which is tiny relative to the image.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace stdchk {

struct XenImageLayout {
  std::size_t page_bytes = 4096;
  std::size_t header_bytes = 16;
  // Leading bytes of each record header holding the pfn (the stable part);
  // the rest of the header is per-save metadata and is dropped.
  std::size_t pfn_bytes = 8;
};

struct CanonicalXenImage {
  // pfn-sorted page contents, back to back.
  Bytes pages;
  // Sidecar needed to reproduce the original image exactly: for each
  // original record position, the pfn it held, plus the volatile header
  // remainders in original order.
  std::vector<std::uint64_t> original_order;
  Bytes volatile_headers;  // (header_bytes - pfn_bytes) per record
  XenImageLayout layout;
};

// Splits a raw Xen-style image into the canonical page dump + sidecar.
// Fails if the image size is not a whole number of records or a pfn
// repeats.
Result<CanonicalXenImage> CanonicalizeXenImage(ByteSpan image,
                                               const XenImageLayout& layout);

// Inverse transform: byte-exact reconstruction of the original image.
Result<Bytes> ReassembleXenImage(const CanonicalXenImage& canonical);

}  // namespace stdchk
