// Chunking heuristics for incremental checkpointing (paper §IV.C).
//
// Two heuristics detect commonality between successive checkpoint images
// without application or OS support:
//
//  * FsCH (fixed-size compare-by-hash): split into equal-size chunks and
//    compare chunk hashes. Fast, but any byte insertion/deletion shifts all
//    following chunk boundaries and destroys detectable similarity.
//
//  * CbCH (content-based compare-by-hash, after LBFS): slide an m-byte
//    window, advancing p bytes per step; declare a boundary when the low k
//    bits of the window hash are zero. Boundaries move with the content, so
//    insertions/deletions perturb at most the chunks they touch. p=1 is the
//    paper's "overlap" variant (every offset inspected, expensive); p=m is
//    "no-overlap" (cheaper, coarser boundaries).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "common/bytes.h"

namespace stdchk {

// A chunk boundary decision: [offset, offset+size) within the image.
struct ChunkSpan {
  std::uint64_t offset = 0;
  std::uint32_t size = 0;

  bool operator==(const ChunkSpan&) const = default;
};

// Stateful streaming boundary detector. Feed() consumes the next bytes of
// the stream and reports every newly *sealed* boundary — final no matter
// what is appended later — so a caller that streams data in arbitrary
// pieces sees exactly the boundary sequence of a whole-file scan, without
// ever re-scanning bytes it already offered (the planner's old
// re-offer-the-suffix discipline cost O(n·drains) for CbCH). Finish()
// seals the tail at end-of-stream; the scanner is spent afterwards.
class ChunkScanner {
 public:
  virtual ~ChunkScanner() = default;

  // Consumes `data`; appends the absolute stream offset of each newly
  // sealed boundary (the chunk's exclusive end) to `out`, ascending.
  virtual void Feed(ByteSpan data, std::vector<std::uint64_t>& out) = 0;

  // End of stream: appends the remaining tail boundaries (if any bytes
  // lie beyond the last sealed boundary). Terminal.
  virtual void Finish(std::vector<std::uint64_t>& out) = 0;

  // Total stream bytes consumed so far.
  virtual std::uint64_t consumed() const = 0;
};

class Chunker {
 public:
  virtual ~Chunker() = default;

  // Splits `data` into contiguous spans covering [0, data.size()) exactly.
  virtual std::vector<ChunkSpan> Split(ByteSpan data) const = 0;

  // Streaming support: returns the prefix of Split(data) whose boundaries
  // are *sealed* — final no matter how much data is appended after `data`.
  // The caller keeps the uncovered suffix buffered and re-offers it with
  // more bytes later. The default withholds the trailing span, whose end
  // is the buffer end rather than a content-determined boundary; chunkers
  // that can prove the tail final (e.g. a full fixed-size chunk) may
  // override. Prefer MakeScanner(), which never re-scans.
  virtual std::vector<ChunkSpan> SplitSealed(ByteSpan data) const;

  // Creates a streaming scanner equivalent to this chunker: feeding it a
  // stream in any piece sizes, then Finish(), yields the boundary ends of
  // Split(whole stream). The scanner must not outlive the chunker. The
  // base implementation is a buffering adapter over SplitSealed/Split
  // (correct for any chunker, but re-scans); FsCH and CbCH provide O(1)-
  // state native scanners.
  virtual std::unique_ptr<ChunkScanner> MakeScanner() const;

  virtual std::string name() const = 0;
};

// FsCH with the given chunk size (paper evaluates 1 KB, 256 KB, 1 MB).
class FixedSizeChunker final : public Chunker {
 public:
  explicit FixedSizeChunker(std::size_t chunk_size);

  std::vector<ChunkSpan> Split(ByteSpan data) const override;
  // A trailing span of exactly chunk_size is sealed: appended data starts
  // the next chunk.
  std::vector<ChunkSpan> SplitSealed(ByteSpan data) const override;
  std::unique_ptr<ChunkScanner> MakeScanner() const override;
  std::string name() const override;
  std::size_t chunk_size() const { return chunk_size_; }

 private:
  std::size_t chunk_size_;
};

// Which per-byte hash drives the p==1 streaming boundary scan.
enum class CbchBoundaryHash {
  // Table-driven gear/CDC hash: one shift+add+lookup per byte, boundary =
  // top k bits zero. ~3x cheaper per byte than kMix64Rolling (no
  // multiplies, no ring-buffer byte removal) with the same 2^-k boundary
  // density; the effective window is the last 64 bytes regardless of
  // window_m (window_m still sets the warm-up, i.e. the minimum chunk).
  kGear,
  // The original polynomial rolling hash finalized with Mix64 per byte.
  // Kept selectable for differential testing and as the boundary-compatible
  // reading of pre-gear chunk maps.
  kMix64Rolling,
};

struct CbchParams {
  std::size_t window_m = 20;   // bytes covered by the rolling window
  // Boundary density: a boundary fires when k chosen hash bits are all
  // zero (probability 2^-k per inspected position). Which k bits depends
  // on the scan: the gear hash (default) masks the TOP k bits (the most
  // mixed ones — see gear::BoundaryMask), Mix64/hop scans the low k bits
  // of the finalized hash.
  int boundary_bits_k = 14;
  std::size_t advance_p = 1;   // window advance per step; p==1 -> overlap
  // Safety bound so adversarial content cannot produce unbounded chunks;
  // 0 disables. The paper's tables report multi-MB max chunks, so the
  // default is generous.
  std::uint32_t max_chunk = 16u << 20;
  // Lower bound on chunk size: after each boundary the scan skips ahead so
  // no boundary can land before chunk_start + min_chunk, saving the hash
  // work on the skipped bytes (LBFS-style low-bound). Values <= window_m
  // (including the 0 default) change nothing — the window itself already
  // enforces a min of window_m.
  std::uint32_t min_chunk = 0;

  // Paper-faithful cost model: compute a cryptographic (SHA-1) hash of the
  // m-byte window from scratch at each position. The paper's measured
  // throughputs (~1 MB/s overlap, ~26 MB/s no-overlap, i.e. a fixed ~1 us
  // per window) are consistent with exactly this. When false (default),
  // the scan uses cheap non-cryptographic hashing (`boundary_hash` below
  // for p==1, FNV per window otherwise) — the optimization the paper
  // leaves as future work ("offloading the intensive hashing
  // computations"). Boundary placement differs between modes (different
  // hash functions) but both are content-defined.
  bool recompute_per_window = false;

  // Boundary hash for the p==1 non-recompute scan (the write hot path).
  // Ignored by hopping (p>1) and recompute scans, which hash whole windows
  // (FNV / SHA-1) rather than rolling per byte. Boundary *placement*
  // differs between the two (different hash functions); both are
  // content-defined with the same expected chunk size.
  CbchBoundaryHash boundary_hash = CbchBoundaryHash::kGear;

  bool overlap() const { return advance_p == 1; }
};

class ContentBasedChunker final : public Chunker {
 public:
  explicit ContentBasedChunker(CbchParams params);

  std::vector<ChunkSpan> Split(ByteSpan data) const override;
  std::unique_ptr<ChunkScanner> MakeScanner() const override;
  std::string name() const override;
  const CbchParams& params() const { return params_; }

 private:
  CbchParams params_;
};

// Statistics over the chunk-size distribution of one image (Table 4 columns).
struct ChunkSizeStats {
  std::size_t count = 0;
  double avg_bytes = 0;
  std::uint32_t min_bytes = 0;
  std::uint32_t max_bytes = 0;
};
ChunkSizeStats ComputeChunkSizeStats(const std::vector<ChunkSpan>& spans);

// Hashes every span of `data`, producing the content addresses used for
// compare-by-hash.
std::vector<ChunkId> HashChunks(ByteSpan data,
                                const std::vector<ChunkSpan>& spans);

}  // namespace stdchk
