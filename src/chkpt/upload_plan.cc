#include "chkpt/upload_plan.h"

namespace stdchk {

Result<UploadPlan> PlanUpload(ByteSpan image, const Chunker& chunker,
                              const KnownChunksFn& known) {
  std::vector<ChunkSpan> spans = chunker.Split(image);
  std::vector<ChunkId> ids = HashChunks(image, spans);

  std::vector<bool> have(ids.size(), false);
  if (known) {
    STDCHK_ASSIGN_OR_RETURN(have, known(ids));
    if (have.size() != ids.size()) {
      return InternalError("known-chunks oracle returned wrong cardinality");
    }
  }

  UploadPlan plan;
  plan.chunks.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    PlannedChunk pc;
    pc.span = spans[i];
    pc.id = ids[i];
    pc.novel = !have[i];
    plan.total_bytes += spans[i].size;
    if (pc.novel) plan.novel_bytes += spans[i].size;
    plan.chunks.push_back(pc);
  }
  return plan;
}

}  // namespace stdchk
