// Copy-on-write upload planning (paper §IV.C, "architectural support").
//
// When a new version of a checkpoint image is written with incremental
// checkpointing enabled, only chunks the system does not already store are
// transferred; the new chunk map interleaves freshly uploaded chunks with
// references to chunks persisted by earlier versions.
#pragma once

#include <functional>
#include <vector>

#include "chkpt/chunker.h"
#include "chunk/chunk.h"
#include "common/status.h"

namespace stdchk {

struct PlannedChunk {
  ChunkSpan span;
  ChunkId id;
  bool novel = true;  // false -> already stored; reuse, do not transfer
};

struct UploadPlan {
  std::vector<PlannedChunk> chunks;
  std::uint64_t total_bytes = 0;
  std::uint64_t novel_bytes = 0;

  std::uint64_t reused_bytes() const { return total_bytes - novel_bytes; }
  double dedup_ratio() const {
    return total_bytes ? static_cast<double>(reused_bytes()) /
                             static_cast<double>(total_bytes)
                       : 0.0;
  }
};

// Oracle answering "which of these chunk ids does the system already
// store?" — in the functional cluster this is
// MetadataManager::FilterKnownChunks.
using KnownChunksFn =
    std::function<Result<std::vector<bool>>(const std::vector<ChunkId>&)>;

// Chunks + hashes `image` with `chunker`, queries the oracle once, and
// marks each chunk novel or reusable.
Result<UploadPlan> PlanUpload(ByteSpan image, const Chunker& chunker,
                              const KnownChunksFn& known);

}  // namespace stdchk
