#include "chkpt/similarity.h"

#include <chrono>

#include "common/hash.h"

namespace stdchk {

ImageSimilarity SimilarityTracker::AddImage(ByteSpan image) {
  auto start = std::chrono::steady_clock::now();

  std::vector<ChunkSpan> spans = chunker_->Split(image);
  std::vector<ChunkId> hashes = HashChunks(image, spans);

  ImageSimilarity result;
  result.total_bytes = image.size();
  result.chunk_count = spans.size();

  std::unordered_set<std::uint64_t> current;
  current.reserve(hashes.size() * 2);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    std::uint64_t key = hashes[i].digest.Prefix64();
    if (images_ > 0 && prev_hashes_.contains(key)) {
      result.duplicate_bytes += spans[i].size;
    }
    current.insert(key);
  }

  auto end = std::chrono::steady_clock::now();
  result.seconds_spent =
      std::chrono::duration<double>(end - start).count();

  if (images_ > 0) {
    similarity_.Add(result.ratio());
    duplicate_bytes_ += result.duplicate_bytes;
  }
  ChunkSizeStats css = ComputeChunkSizeStats(spans);
  if (css.count > 0) {
    avg_chunk_.Add(css.avg_bytes);
    min_chunk_.Add(css.min_bytes);
    max_chunk_.Add(css.max_bytes);
  }

  prev_hashes_ = std::move(current);
  ++images_;
  total_bytes_ += image.size();
  seconds_ += result.seconds_spent;
  return result;
}

double SimilarityTracker::ThroughputMBps() const {
  return seconds_ > 0
             ? static_cast<double>(total_bytes_) / 1048576.0 / seconds_
             : 0.0;
}

}  // namespace stdchk
