#include "chkpt/chunker.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/rolling_hash.h"

namespace stdchk {

std::vector<ChunkSpan> Chunker::SplitSealed(ByteSpan data) const {
  std::vector<ChunkSpan> spans = Split(data);
  // Conservative default: the trailing span ends at the buffer edge, not at
  // a content-determined boundary, so it may still grow.
  if (!spans.empty()) spans.pop_back();
  return spans;
}

FixedSizeChunker::FixedSizeChunker(std::size_t chunk_size)
    : chunk_size_(chunk_size) {
  assert(chunk_size_ > 0);
}

std::vector<ChunkSpan> FixedSizeChunker::Split(ByteSpan data) const {
  std::vector<ChunkSpan> out;
  out.reserve(data.size() / chunk_size_ + 1);
  std::uint64_t offset = 0;
  while (offset < data.size()) {
    std::uint32_t size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk_size_, data.size() - offset));
    out.push_back(ChunkSpan{offset, size});
    offset += size;
  }
  return out;
}

std::vector<ChunkSpan> FixedSizeChunker::SplitSealed(ByteSpan data) const {
  std::vector<ChunkSpan> spans = Split(data);
  if (!spans.empty() && spans.back().size < chunk_size_) spans.pop_back();
  return spans;
}

std::string FixedSizeChunker::name() const {
  return "FsCH(" + std::to_string(chunk_size_) + ")";
}

ContentBasedChunker::ContentBasedChunker(CbchParams params)
    : params_(params) {
  assert(params_.window_m > 0);
  assert(params_.advance_p > 0);
  assert(params_.boundary_bits_k > 0 && params_.boundary_bits_k < 64);
}

std::vector<ChunkSpan> ContentBasedChunker::Split(ByteSpan data) const {
  if (data.empty()) return {};
  if (data.size() <= params_.window_m) {
    return {ChunkSpan{0, static_cast<std::uint32_t>(data.size())}};
  }
  return params_.overlap() ? SplitOverlap(data) : SplitNoOverlap(data);
}

// p == 1: the window slides one byte at a time; the rolling hash updates in
// O(1) per position. Every offset is inspected, so boundary placement is
// maximally content-sensitive — and the whole file is effectively hashed
// once per byte of window, which is why the paper measures ~1 MB/s here.
//
// The window restarts after every declared boundary (as SplitNoOverlap
// already does): windows never straddle chunk boundaries, so a scan that
// resumes at the last boundary — the streaming ChunkPlanner's sealed-drain
// discipline — reproduces the whole-file scan bit for bit.
std::vector<ChunkSpan> ContentBasedChunker::SplitOverlap(ByteSpan data) const {
  if (params_.recompute_per_window) return SplitOverlapRecompute(data);
  std::vector<ChunkSpan> out;
  const std::size_t m = params_.window_m;
  RollingHash hash(m);

  std::uint64_t chunk_start = 0;
  std::size_t pos = 0;  // the window covers [pos, pos+m)
  for (std::size_t i = 0; i < m; ++i) hash.Push(data[i]);
  for (;;) {
    std::uint64_t window_end = pos + m;
    bool boundary = hash.IsBoundary(params_.boundary_bits_k);
    bool forced = params_.max_chunk != 0 &&
                  window_end - chunk_start >= params_.max_chunk;
    if (boundary || forced) {
      out.push_back(ChunkSpan{
          chunk_start, static_cast<std::uint32_t>(window_end - chunk_start)});
      chunk_start = window_end;
      if (window_end + m > data.size()) break;
      hash.Reset();
      for (std::size_t i = 0; i < m; ++i) hash.Push(data[window_end + i]);
      pos = window_end;
      continue;
    }
    if (pos + m >= data.size()) break;
    hash.Roll(data[pos], data[pos + m]);
    ++pos;
  }
  if (chunk_start < data.size()) {
    out.push_back(ChunkSpan{
        chunk_start, static_cast<std::uint32_t>(data.size() - chunk_start)});
  }
  return out;
}

// Paper-faithful overlap scan: every position hashes its whole window from
// scratch, costing ~m hash-bytes per input byte. This is what limits the
// paper's overlap CbCH to ~1 MB/s. Restarts at each boundary, like
// SplitOverlap, so streaming scans agree with whole-file scans.
std::vector<ChunkSpan> ContentBasedChunker::SplitOverlapRecompute(
    ByteSpan data) const {
  std::vector<ChunkSpan> out;
  const std::size_t m = params_.window_m;
  const std::uint64_t mask = (1ull << params_.boundary_bits_k) - 1;

  std::uint64_t chunk_start = 0;
  std::size_t pos = 0;
  while (pos + m <= data.size()) {
    std::uint64_t h = Sha1(data.subspan(pos, m)).Prefix64();
    std::uint64_t window_end = pos + m;
    bool boundary = (Mix64(h) & mask) == 0;
    bool forced = params_.max_chunk != 0 &&
                  window_end - chunk_start >= params_.max_chunk;
    if (boundary || forced) {
      out.push_back(ChunkSpan{
          chunk_start, static_cast<std::uint32_t>(window_end - chunk_start)});
      chunk_start = window_end;
      pos = window_end;
    } else {
      ++pos;
    }
  }
  if (chunk_start < data.size()) {
    out.push_back(ChunkSpan{
        chunk_start, static_cast<std::uint32_t>(data.size() - chunk_start)});
  }
  return out;
}

// p == m (or any p > 1): the window hops, hashing each position from
// scratch. Cheaper by ~p but boundaries land only on p-aligned offsets
// relative to the scan start, costing some similarity.
std::vector<ChunkSpan> ContentBasedChunker::SplitNoOverlap(
    ByteSpan data) const {
  std::vector<ChunkSpan> out;
  const std::size_t m = params_.window_m;
  const std::size_t p = params_.advance_p;

  std::uint64_t chunk_start = 0;
  std::size_t pos = 0;
  while (pos + m <= data.size()) {
    std::uint64_t h = params_.recompute_per_window
                          ? Sha1(data.subspan(pos, m)).Prefix64()
                          : Fnv1a64(data.subspan(pos, m));
    std::uint64_t window_end = pos + m;
    const std::uint64_t mask = (1ull << params_.boundary_bits_k) - 1;
    bool boundary = (Mix64(h) & mask) == 0;
    bool forced = params_.max_chunk != 0 &&
                  window_end - chunk_start >= params_.max_chunk;
    if (boundary || forced) {
      out.push_back(ChunkSpan{
          chunk_start, static_cast<std::uint32_t>(window_end - chunk_start)});
      chunk_start = window_end;
      pos = window_end;
    } else {
      pos += p;
    }
  }
  if (chunk_start < data.size()) {
    out.push_back(ChunkSpan{
        chunk_start, static_cast<std::uint32_t>(data.size() - chunk_start)});
  }
  return out;
}

std::string ContentBasedChunker::name() const {
  return "CbCH(m=" + std::to_string(params_.window_m) +
         ",k=" + std::to_string(params_.boundary_bits_k) +
         ",p=" + std::to_string(params_.advance_p) + ")";
}

ChunkSizeStats ComputeChunkSizeStats(const std::vector<ChunkSpan>& spans) {
  ChunkSizeStats stats;
  if (spans.empty()) return stats;
  stats.count = spans.size();
  stats.min_bytes = spans[0].size;
  stats.max_bytes = spans[0].size;
  double total = 0;
  for (const ChunkSpan& span : spans) {
    total += span.size;
    stats.min_bytes = std::min(stats.min_bytes, span.size);
    stats.max_bytes = std::max(stats.max_bytes, span.size);
  }
  stats.avg_bytes = total / static_cast<double>(spans.size());
  return stats;
}

std::vector<ChunkId> HashChunks(ByteSpan data,
                                const std::vector<ChunkSpan>& spans) {
  std::vector<ChunkId> out;
  out.reserve(spans.size());
  for (const ChunkSpan& span : spans) {
    out.push_back(ChunkId::For(data.subspan(span.offset, span.size)));
  }
  return out;
}

}  // namespace stdchk
