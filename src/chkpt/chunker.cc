#include "chkpt/chunker.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/rolling_hash.h"

namespace stdchk {
namespace {

// Buffering adapter: the correctness fallback for chunkers without a
// native scanner. Re-offers the unsealed suffix to SplitSealed, throttled
// geometrically — a re-scan only runs once the buffer has doubled since
// the last one — so total re-hashing stays O(n) no matter how small the
// Feed pieces are. Sealing may lag by up to one buffer doubling, which
// SplitSealed semantics permit (delaying a scan never moves a boundary);
// Finish seals everything regardless. Note the suffix is buffered here in
// addition to any caller-side buffer (the planner keeps its own) — native
// scanners avoid that duplication.
class RescanScanner final : public ChunkScanner {
 public:
  explicit RescanScanner(const Chunker* chunker) : chunker_(chunker) {}

  void Feed(ByteSpan data, std::vector<std::uint64_t>& out) override {
    Append(buffer_, data);
    consumed_ += data.size();
    if (buffer_.size() < next_scan_size_) return;
    Emit(chunker_->SplitSealed(buffer_), out);
    next_scan_size_ = buffer_.size() * 2;
  }

  void Finish(std::vector<std::uint64_t>& out) override {
    if (buffer_.empty()) return;
    Emit(chunker_->Split(buffer_), out);
    buffer_.clear();
  }

  std::uint64_t consumed() const override { return consumed_; }

 private:
  void Emit(const std::vector<ChunkSpan>& spans,
            std::vector<std::uint64_t>& out) {
    if (spans.empty()) return;
    for (const ChunkSpan& span : spans) {
      out.push_back(base_ + span.offset + span.size);
    }
    std::size_t cut = static_cast<std::size_t>(spans.back().offset) +
                      spans.back().size;
    base_ += cut;
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(cut));
  }

  const Chunker* chunker_;
  Bytes buffer_;
  std::uint64_t base_ = 0;
  std::uint64_t consumed_ = 0;
  std::size_t next_scan_size_ = 0;
};

class FixedScanner final : public ChunkScanner {
 public:
  explicit FixedScanner(std::size_t chunk_size) : chunk_size_(chunk_size) {}

  void Feed(ByteSpan data, std::vector<std::uint64_t>& out) override {
    consumed_ += data.size();
    while (consumed_ - sealed_ >= chunk_size_) {
      sealed_ += chunk_size_;
      out.push_back(sealed_);
    }
  }

  void Finish(std::vector<std::uint64_t>& out) override {
    if (consumed_ > sealed_) {
      sealed_ = consumed_;
      out.push_back(sealed_);
    }
  }

  std::uint64_t consumed() const override { return consumed_; }

 private:
  std::size_t chunk_size_;
  std::uint64_t consumed_ = 0;
  std::uint64_t sealed_ = 0;
};

std::size_t SkipAfterBoundary(const CbchParams& params) {
  return params.min_chunk > params.window_m
             ? params.min_chunk - params.window_m
             : 0;
}

// p == 1 with the Mix64 polynomial rolling hash — the pre-gear hot scan,
// kept selectable (CbchBoundaryHash::kMix64Rolling) as the differential
// baseline and for boundary-compatibility with pre-gear chunk maps. The
// steady state is a pointer-bumping inner loop — ring update, one
// multiply-add roll, mix, mask — with no per-byte function calls; after
// each boundary the scan skips min_chunk-m bytes outright before
// refilling the window. Windows never straddle boundaries, so streaming
// feeds reproduce the whole-file scan bit for bit.
class CbchRollingScanner final : public ChunkScanner {
 public:
  explicit CbchRollingScanner(const CbchParams& params)
      : m_(params.window_m),
        mask_((1ull << params.boundary_bits_k) - 1),
        max_chunk_(params.max_chunk),
        skip_init_(SkipAfterBoundary(params)),
        ring_(params.window_m),
        skip_left_(SkipAfterBoundary(params)) {  // min applies to chunk 0 too
    pow_m_ = 1;
    for (std::size_t i = 0; i + 1 < m_; ++i) pow_m_ *= RollingHash::kBase;
  }

  void Feed(ByteSpan data, std::vector<std::uint64_t>& out) override {
    const std::uint8_t* p = data.data();
    const std::uint8_t* const end = p + data.size();
    // Hot state in locals; written back on exit.
    std::uint64_t h = hash_;
    std::uint64_t pos = pos_, chunk_start = chunk_start_;
    std::size_t filled = filled_, rp = ring_pos_, skip = skip_left_;
    std::uint8_t* const ring = ring_.data();

    while (p < end) {
      if (skip > 0) {
        std::size_t take =
            std::min<std::size_t>(skip, static_cast<std::size_t>(end - p));
        p += take;
        pos += take;
        skip -= take;
        continue;
      }
      if (filled < m_) {
        while (p < end && filled < m_) {
          std::uint8_t in = *p++;
          ring[rp] = in;
          rp = (rp + 1 == m_) ? 0 : rp + 1;
          h = h * RollingHash::kBase + in + 1;
          ++filled;
          ++pos;
        }
        if (filled < m_) break;
        if ((Mix64(h) & mask_) == 0 ||
            (max_chunk_ != 0 && pos - chunk_start >= max_chunk_)) {
          out.push_back(pos);
          chunk_start = pos;
          h = 0;
          filled = 0;
          rp = 0;
          skip = skip_init_;
        }
        continue;
      }
      // Steady state: full window sliding one byte per step.
      while (p < end) {
        const std::uint8_t in = *p++;
        const std::uint8_t old = ring[rp];
        ring[rp] = in;
        rp = (rp + 1 == m_) ? 0 : rp + 1;
        h = (h - (old + 1) * pow_m_) * RollingHash::kBase + in + 1;
        ++pos;
        if ((Mix64(h) & mask_) == 0 ||
            (max_chunk_ != 0 && pos - chunk_start >= max_chunk_)) {
          out.push_back(pos);
          chunk_start = pos;
          h = 0;
          filled = 0;
          rp = 0;
          skip = skip_init_;
          break;
        }
      }
    }

    hash_ = h;
    pos_ = pos;
    chunk_start_ = chunk_start;
    filled_ = filled;
    ring_pos_ = rp;
    skip_left_ = skip;
  }

  void Finish(std::vector<std::uint64_t>& out) override {
    if (pos_ > chunk_start_) {
      out.push_back(pos_);
      chunk_start_ = pos_;
    }
  }

  std::uint64_t consumed() const override { return pos_; }

 private:
  const std::size_t m_;
  const std::uint64_t mask_;
  const std::uint64_t max_chunk_;
  const std::size_t skip_init_;
  std::uint64_t pow_m_;

  Bytes ring_;           // last m bytes of the current window
  std::size_t ring_pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t hash_ = 0;
  std::uint64_t pos_ = 0;          // stream bytes consumed
  std::uint64_t chunk_start_ = 0;  // start of the open chunk
  std::size_t skip_left_;          // min-chunk skip-ahead remaining
};

// p == 1 with the gear/CDC hash: the cheapest boundary scan. No ring
// buffer — bytes age out of the 64-bit state by shifting — so the steady
// state is one shift, one add, one table lookup and one mask test per
// byte. window_m is honoured as a warm-up: no boundary can be declared
// until m bytes of the open chunk have been hashed, matching the windowed
// scanners' minimum-chunk behaviour. State never straddles Feed edges,
// so streaming reproduces the whole-file scan bit for bit.
class CbchGearScanner final : public ChunkScanner {
 public:
  explicit CbchGearScanner(const CbchParams& params)
      : m_(params.window_m),
        mask_(gear::BoundaryMask(params.boundary_bits_k)),
        max_chunk_(params.max_chunk),
        skip_init_(SkipAfterBoundary(params)),
        skip_left_(SkipAfterBoundary(params)) {}  // min applies to chunk 0

  void Feed(ByteSpan data, std::vector<std::uint64_t>& out) override {
    const std::uint8_t* p = data.data();
    const std::uint8_t* const end = p + data.size();
    // Hot state in locals; written back on exit.
    std::uint64_t h = hash_;
    std::uint64_t pos = pos_, chunk_start = chunk_start_;
    std::size_t filled = filled_, skip = skip_left_;
    const std::uint64_t* const table = gear::kTable.data();

    while (p < end) {
      if (skip > 0) {
        std::size_t take =
            std::min<std::size_t>(skip, static_cast<std::size_t>(end - p));
        p += take;
        pos += take;
        skip -= take;
        continue;
      }
      if (filled < m_) {
        // Warm-up: accumulate without boundary checks so chunks are at
        // least window_m bytes, as with the windowed scanners.
        while (p < end && filled < m_) {
          h = (h << 1) + table[*p++];
          ++filled;
          ++pos;
        }
        if (filled < m_) break;
        if ((h & mask_) == 0 ||
            (max_chunk_ != 0 && pos - chunk_start >= max_chunk_)) {
          out.push_back(pos);
          chunk_start = pos;
          h = 0;
          filled = 0;
          skip = skip_init_;
        }
        continue;
      }
      // Steady state: one shift+add+lookup+mask per byte.
      while (p < end) {
        h = (h << 1) + table[*p++];
        ++pos;
        if ((h & mask_) == 0 ||
            (max_chunk_ != 0 && pos - chunk_start >= max_chunk_)) {
          out.push_back(pos);
          chunk_start = pos;
          h = 0;
          filled = 0;
          skip = skip_init_;
          break;
        }
      }
    }

    hash_ = h;
    pos_ = pos;
    chunk_start_ = chunk_start;
    filled_ = filled;
    skip_left_ = skip;
  }

  void Finish(std::vector<std::uint64_t>& out) override {
    if (pos_ > chunk_start_) {
      out.push_back(pos_);
      chunk_start_ = pos_;
    }
  }

  std::uint64_t consumed() const override { return pos_; }

 private:
  const std::size_t m_;
  const std::uint64_t mask_;
  const std::uint64_t max_chunk_;
  const std::size_t skip_init_;

  std::uint64_t hash_ = 0;
  std::size_t filled_ = 0;         // warm-up bytes hashed in the open chunk
  std::uint64_t pos_ = 0;          // stream bytes consumed
  std::uint64_t chunk_start_ = 0;  // start of the open chunk
  std::size_t skip_left_;          // min-chunk skip-ahead remaining
};

// Hopping windows (p > 1) and the paper-faithful recompute mode (a full
// window hash — SHA-1 or FNV — at every inspected position). Windows may
// straddle Feed edges; a carry of at most m-1 stream bytes stitches them.
class CbchHopScanner final : public ChunkScanner {
 public:
  explicit CbchHopScanner(const CbchParams& params)
      : params_(params),
        m_(params.window_m),
        advance_(params.advance_p),
        mask_((1ull << params.boundary_bits_k) - 1),
        skip_init_(SkipAfterBoundary(params)),
        next_window_(SkipAfterBoundary(params)) {}  // min applies to chunk 0

  void Feed(ByteSpan data, std::vector<std::uint64_t>& out) override {
    const std::uint64_t data_start = pos_;
    pos_ += data.size();

    // Windows straddling the carry/data border are stitched into `tmp`.
    Bytes tmp;
    while (next_window_ + m_ <= pos_) {
      std::uint64_t h;
      if (next_window_ >= data_start) {
        h = WindowHash(data.subspan(
            static_cast<std::size_t>(next_window_ - data_start), m_));
      } else {
        std::size_t from_carry =
            static_cast<std::size_t>(data_start - next_window_);
        std::size_t carry_off = carry_.size() - from_carry;
        tmp.assign(carry_.begin() + static_cast<std::ptrdiff_t>(carry_off),
                   carry_.end());
        tmp.insert(tmp.end(), data.begin(),
                   data.begin() + static_cast<std::ptrdiff_t>(m_ - from_carry));
        h = WindowHash(tmp);
      }
      std::uint64_t window_end = next_window_ + m_;
      bool boundary = (Mix64(h) & mask_) == 0;
      bool forced = params_.max_chunk != 0 &&
                    window_end - chunk_start_ >= params_.max_chunk;
      if (boundary || forced) {
        out.push_back(window_end);
        chunk_start_ = window_end;
        next_window_ = window_end + skip_init_;
      } else {
        next_window_ += advance_;
      }
    }

    // Keep the stream bytes the next window still needs (< m of them).
    if (next_window_ >= data_start) {
      std::size_t keep_from =
          static_cast<std::size_t>(next_window_ - data_start);
      keep_from = std::min(keep_from, data.size());
      carry_.assign(data.begin() + static_cast<std::ptrdiff_t>(keep_from),
                    data.end());
    } else {
      Append(carry_, data);
    }
  }

  void Finish(std::vector<std::uint64_t>& out) override {
    if (pos_ > chunk_start_) {
      out.push_back(pos_);
      chunk_start_ = pos_;
    }
  }

  std::uint64_t consumed() const override { return pos_; }

 private:
  std::uint64_t WindowHash(ByteSpan window) const {
    return params_.recompute_per_window ? Sha1(window).Prefix64()
                                        : Fnv1a64(window);
  }

  const CbchParams params_;
  const std::size_t m_;
  const std::size_t advance_;
  const std::uint64_t mask_;
  const std::size_t skip_init_;

  Bytes carry_;  // stream bytes [next_window_, pos_) not yet scanned past
  std::uint64_t pos_ = 0;
  std::uint64_t next_window_;  // absolute start of the next window
  std::uint64_t chunk_start_ = 0;
};

std::vector<ChunkSpan> SpansFromEnds(std::uint64_t total,
                                     const std::vector<std::uint64_t>& ends) {
  std::vector<ChunkSpan> out;
  out.reserve(ends.size());
  std::uint64_t start = 0;
  for (std::uint64_t end : ends) {
    out.push_back(ChunkSpan{start, static_cast<std::uint32_t>(end - start)});
    start = end;
  }
  assert(start == total);
  (void)total;
  return out;
}

}  // namespace

std::vector<ChunkSpan> Chunker::SplitSealed(ByteSpan data) const {
  std::vector<ChunkSpan> spans = Split(data);
  // Conservative default: the trailing span ends at the buffer edge, not at
  // a content-determined boundary, so it may still grow.
  if (!spans.empty()) spans.pop_back();
  return spans;
}

std::unique_ptr<ChunkScanner> Chunker::MakeScanner() const {
  return std::make_unique<RescanScanner>(this);
}

FixedSizeChunker::FixedSizeChunker(std::size_t chunk_size)
    : chunk_size_(chunk_size) {
  assert(chunk_size_ > 0);
}

std::vector<ChunkSpan> FixedSizeChunker::Split(ByteSpan data) const {
  std::vector<ChunkSpan> out;
  out.reserve(data.size() / chunk_size_ + 1);
  std::uint64_t offset = 0;
  while (offset < data.size()) {
    std::uint32_t size = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk_size_, data.size() - offset));
    out.push_back(ChunkSpan{offset, size});
    offset += size;
  }
  return out;
}

std::vector<ChunkSpan> FixedSizeChunker::SplitSealed(ByteSpan data) const {
  std::vector<ChunkSpan> spans = Split(data);
  if (!spans.empty() && spans.back().size < chunk_size_) spans.pop_back();
  return spans;
}

std::unique_ptr<ChunkScanner> FixedSizeChunker::MakeScanner() const {
  return std::make_unique<FixedScanner>(chunk_size_);
}

std::string FixedSizeChunker::name() const {
  return "FsCH(" + std::to_string(chunk_size_) + ")";
}

ContentBasedChunker::ContentBasedChunker(CbchParams params)
    : params_(params) {
  assert(params_.window_m > 0);
  assert(params_.advance_p > 0);
  assert(params_.boundary_bits_k > 0 && params_.boundary_bits_k < 64);
}

// The scanner is the single source of truth for boundary placement: the
// whole-file split simply streams the image through a fresh scanner, so
// streaming (planner) and one-shot scans agree by construction.
std::vector<ChunkSpan> ContentBasedChunker::Split(ByteSpan data) const {
  if (data.empty()) return {};
  std::unique_ptr<ChunkScanner> scanner = MakeScanner();
  std::vector<std::uint64_t> ends;
  scanner->Feed(data, ends);
  scanner->Finish(ends);
  return SpansFromEnds(data.size(), ends);
}

std::unique_ptr<ChunkScanner> ContentBasedChunker::MakeScanner() const {
  if (params_.overlap() && !params_.recompute_per_window) {
    if (params_.boundary_hash == CbchBoundaryHash::kGear) {
      return std::make_unique<CbchGearScanner>(params_);
    }
    return std::make_unique<CbchRollingScanner>(params_);
  }
  return std::make_unique<CbchHopScanner>(params_);
}

std::string ContentBasedChunker::name() const {
  std::string out = "CbCH(m=" + std::to_string(params_.window_m) +
                    ",k=" + std::to_string(params_.boundary_bits_k) +
                    ",p=" + std::to_string(params_.advance_p);
  if (params_.min_chunk > 0) {
    out += ",min=" + std::to_string(params_.min_chunk);
  }
  if (params_.overlap() && !params_.recompute_per_window) {
    out += params_.boundary_hash == CbchBoundaryHash::kGear ? ",gear"
                                                            : ",mix64";
  }
  return out + ")";
}

ChunkSizeStats ComputeChunkSizeStats(const std::vector<ChunkSpan>& spans) {
  ChunkSizeStats stats;
  if (spans.empty()) return stats;
  stats.count = spans.size();
  stats.min_bytes = spans[0].size;
  stats.max_bytes = spans[0].size;
  double total = 0;
  for (const ChunkSpan& span : spans) {
    total += span.size;
    stats.min_bytes = std::min(stats.min_bytes, span.size);
    stats.max_bytes = std::max(stats.max_bytes, span.size);
  }
  stats.avg_bytes = total / static_cast<double>(spans.size());
  return stats;
}

std::vector<ChunkId> HashChunks(ByteSpan data,
                                const std::vector<ChunkSpan>& spans) {
  std::vector<ChunkId> out;
  out.reserve(spans.size());
  for (const ChunkSpan& span : spans) {
    out.push_back(ChunkId::For(data.subspan(span.offset, span.size)));
  }
  return out;
}

}  // namespace stdchk
