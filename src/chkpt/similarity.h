// Similarity detection between successive checkpoint images (paper §V.E).
//
// For a chunking heuristic H, the similarity of image V_t to its
// predecessor V_{t-1} is the fraction of V_t's bytes that land in chunks
// whose content hash already appeared in V_{t-1}. This is exactly the
// storage/network saving: those chunks need not be transferred or stored
// again. SimilarityTracker streams a whole trace and reports averages plus
// the heuristic's wall-clock throughput (Table 3 / Table 4 metrics).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "chkpt/chunker.h"
#include "common/stats.h"

namespace stdchk {

// Result of analyzing one image against its predecessor.
struct ImageSimilarity {
  std::uint64_t total_bytes = 0;
  std::uint64_t duplicate_bytes = 0;  // bytes in chunks seen in predecessor
  std::size_t chunk_count = 0;
  double seconds_spent = 0;  // wall-clock chunk+hash time

  double ratio() const {
    return total_bytes ? static_cast<double>(duplicate_bytes) /
                             static_cast<double>(total_bytes)
                       : 0.0;
  }
};

class SimilarityTracker {
 public:
  explicit SimilarityTracker(const Chunker* chunker) : chunker_(chunker) {}

  // Processes the next image in the trace; returns its similarity to the
  // immediately preceding image (zero for the first image, which is also
  // excluded from the averages).
  ImageSimilarity AddImage(ByteSpan image);

  // Average similarity ratio across images 2..N (the paper's "average rate
  // of detected similarity between successive images").
  double AverageSimilarity() const { return similarity_.mean(); }

  // Heuristic throughput: bytes processed / time spent chunking+hashing.
  double ThroughputMBps() const;

  // Chunk-size statistics across all processed images (Table 4 columns:
  // averages of per-image avg/min/max chunk sizes).
  double AvgChunkKB() const { return avg_chunk_.mean() / 1024.0; }
  double AvgMinChunkKB() const { return min_chunk_.mean() / 1024.0; }
  double AvgMaxChunkKB() const { return max_chunk_.mean() / 1024.0; }

  std::size_t images_processed() const { return images_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t duplicate_bytes() const { return duplicate_bytes_; }

 private:
  const Chunker* chunker_;
  std::unordered_set<std::uint64_t> prev_hashes_;  // 64-bit digest prefixes
  std::size_t images_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
  double seconds_ = 0;
  RunningStats similarity_;
  RunningStats avg_chunk_;
  RunningStats min_chunk_;
  RunningStats max_chunk_;
};

}  // namespace stdchk
