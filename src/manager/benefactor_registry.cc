#include "manager/benefactor_registry.h"

#include <algorithm>

#include "common/rolling_hash.h"  // Mix64

namespace stdchk {

NodeId BenefactorRegistry::Register(const BenefactorInfo& info) {
  MutexLock lock(mu_);
  NodeId id = next_id_++;
  BenefactorStatus status;
  status.id = id;
  status.info = info;
  status.last_heartbeat = clock_->NowUs();
  status.online = true;
  nodes_[id] = status;
  ++epoch_;  // membership changed: new table epoch, same mutation
  return id;
}

Status BenefactorRegistry::Heartbeat(NodeId node, std::uint64_t free_bytes) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return NotFoundError("heartbeat from unregistered node");
  }
  it->second.last_heartbeat = clock_->NowUs();
  if (!it->second.online) ++epoch_;  // revival of an expired node
  it->second.online = true;
  it->second.info.free_bytes = free_bytes;
  return OkStatus();
}

Status BenefactorRegistry::SetOffline(NodeId node) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return NotFoundError("unknown node");
  if (it->second.online) ++epoch_;
  it->second.online = false;
  return OkStatus();
}

std::vector<NodeId> BenefactorRegistry::ExpireStale() {
  MutexLock lock(mu_);
  std::vector<NodeId> expired;
  ClockTime now = clock_->NowUs();
  for (auto& [id, status] : nodes_) {
    if (status.online && now - status.last_heartbeat > heartbeat_expiry_us_) {
      status.online = false;
      expired.push_back(id);
    }
  }
  if (!expired.empty()) ++epoch_;
  return expired;
}

PlacementTable BenefactorRegistry::PlacementSnapshot() const {
  MutexLock lock(mu_);
  PlacementTable table;
  table.epoch = epoch_;
  for (const auto& [id, status] : nodes_) {
    if (!status.online) continue;
    PlacementMember member;
    member.id = id;
    member.free_bytes = status.info.free_bytes > status.reserved_bytes
                            ? status.info.free_bytes - status.reserved_bytes
                            : 0;
    table.members.push_back(member);
  }
  return table;
}

bool BenefactorRegistry::IsOnline(NodeId node) const {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.online;
}

Result<BenefactorStatus> BenefactorRegistry::Get(NodeId node) const {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return NotFoundError("unknown node");
  return it->second;
}

std::vector<NodeId> BenefactorRegistry::OnlineNodesLocked() const {
  std::vector<NodeId> out;
  for (const auto& [id, status] : nodes_) {
    if (status.online) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> BenefactorRegistry::OnlineNodes() const {
  MutexLock lock(mu_);
  return OnlineNodesLocked();
}

std::size_t BenefactorRegistry::online_count() const {
  MutexLock lock(mu_);
  return OnlineNodesLocked().size();
}

Result<std::vector<NodeId>> BenefactorRegistry::SelectStripe(
    int width, const std::vector<NodeId>& exclude) const {
  if (width <= 0) return InvalidArgumentError("stripe width must be > 0");
  MutexLock lock(mu_);

  struct Candidate {
    NodeId id;
    std::uint64_t effective_free;
  };
  std::vector<Candidate> candidates;
  for (const auto& [id, status] : nodes_) {
    if (!status.online) continue;
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
      continue;
    }
    std::uint64_t free = status.info.free_bytes > status.reserved_bytes
                             ? status.info.free_bytes - status.reserved_bytes
                             : 0;
    candidates.push_back(Candidate{id, free});
  }
  if (static_cast<int>(candidates.size()) < width) {
    return UnavailableError("not enough online benefactors for stripe width " +
                            std::to_string(width));
  }

  // Most free space first; a per-call hashed tie-break spreads equally-free
  // donors across successive stripes.
  std::uint64_t cursor = rr_cursor_++;
  std::sort(candidates.begin(), candidates.end(),
            [cursor](const Candidate& a, const Candidate& b) {
              if (a.effective_free != b.effective_free) {
                return a.effective_free > b.effective_free;
              }
              return Mix64(a.id * 0x9E3779B97F4A7C15ull + cursor) <
                     Mix64(b.id * 0x9E3779B97F4A7C15ull + cursor);
            });

  std::vector<NodeId> stripe;
  stripe.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) stripe.push_back(candidates[static_cast<std::size_t>(i)].id);
  return stripe;
}

void BenefactorRegistry::AddReserved(NodeId node, std::uint64_t bytes) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.reserved_bytes += bytes;
}

void BenefactorRegistry::ReleaseReserved(NodeId node, std::uint64_t bytes) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) {
    it->second.reserved_bytes =
        it->second.reserved_bytes > bytes ? it->second.reserved_bytes - bytes
                                          : 0;
  }
}

std::vector<BenefactorStatus> BenefactorRegistry::Export() const {
  MutexLock lock(mu_);
  std::vector<BenefactorStatus> out;
  out.reserve(nodes_.size());
  for (const auto& [id, status] : nodes_) out.push_back(status);
  return out;
}

void BenefactorRegistry::Import(const std::vector<BenefactorStatus>& nodes,
                                NodeId next_id, std::uint64_t epoch) {
  MutexLock lock(mu_);
  nodes_.clear();
  for (const BenefactorStatus& status : nodes) {
    nodes_[status.id] = status;
  }
  next_id_ = next_id;
  // Conservative bump past the snapshot's epoch: any table cached against
  // the pre-failover manager is forced to refetch from the promoted one.
  epoch_ = std::max<std::uint64_t>(epoch, 1) + 1;
}

void BenefactorRegistry::AddUsed(NodeId node, std::uint64_t bytes) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) {
    it->second.info.free_bytes = it->second.info.free_bytes > bytes
                                     ? it->second.info.free_bytes - bytes
                                     : 0;
  }
}

void BenefactorRegistry::ReleaseUsed(NodeId node, std::uint64_t bytes) {
  MutexLock lock(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.info.free_bytes += bytes;
}

}  // namespace stdchk
