#include "manager/metadata_manager.h"

#include <algorithm>

#include "common/hash.h"
#include "common/serialize.h"

namespace stdchk {
namespace {

// Fingerprint of a chunk map used to match recovery offers from different
// benefactors: offers endorse the same version only if the maps agree.
std::uint64_t ChunkMapFingerprint(const ChunkMap& map) {
  Sha1Hasher hasher;
  for (const ChunkLocation& loc : map.chunks) {
    hasher.Update(ByteSpan(loc.id.digest.bytes.data(),
                           loc.id.digest.bytes.size()));
    std::uint64_t meta[2] = {loc.file_offset, loc.size};
    hasher.Update(ByteSpan(reinterpret_cast<const std::uint8_t*>(meta),
                           sizeof(meta)));
    // Erasure-coded entries: shard identity is part of the map (offers
    // endorsing the same chunks but a different striping must not match).
    // Replicated entries hash byte-identically to the pre-EC format.
    if (loc.erasure_coded()) {
      std::uint64_t ec[2] = {loc.ec_k, loc.ec_m};
      hasher.Update(ByteSpan(reinterpret_cast<const std::uint8_t*>(ec),
                             sizeof(ec)));
      for (const ShardLocation& sl : loc.shards) {
        hasher.Update(ByteSpan(sl.id.digest.bytes.data(),
                               sl.id.digest.bytes.size()));
      }
    }
  }
  return hasher.Finish().Prefix64();
}

}  // namespace

MetadataManager::MetadataManager(const VirtualClock* clock,
                                 ManagerOptions options)
    : clock_(clock),
      options_(options),
      registry_(clock, options.heartbeat_expiry_us),
      catalog_(clock, options.catalog_shards) {}

Result<NodeId> MetadataManager::RegisterBenefactor(const BenefactorInfo& info) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return registry_.Register(info);
}

Status MetadataManager::Heartbeat(NodeId node, std::uint64_t free_bytes) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return registry_.Heartbeat(node, free_bytes);
}

Result<std::vector<ChunkId>> MetadataManager::GcExchange(
    NodeId node, const std::vector<ChunkId>& held) {
  // Control-plane checks under mu_; the per-chunk sweep below walks the
  // catalog's shards without it, so a long GC exchange never blocks
  // commits or reads on other shards.
  bool node_has_active_reservation = false;
  {
    MutexLock lock(mu_);
    STDCHK_RETURN_IF_ERROR(CheckUp());
    if (!registry_.IsOnline(node)) {
      return UnavailableError("GC exchange from offline node");
    }

    // Chunks the node holds that are not live anywhere are orphans —
    // deleted files, failed writes, or purged versions. Exception: never
    // collect while the node is part of an active write reservation: the
    // unknown chunks may be the in-flight data itself. (A reservation
    // created after this check defers collection to the next exchange —
    // keeping data one round longer is always safe.)
    for (const auto& [id, res] : reservations_) {
      if (std::find(res.stripe.begin(), res.stripe.end(), node) !=
          res.stripe.end()) {
        node_has_active_reservation = true;
        break;
      }
    }
  }

  std::vector<ChunkId> to_delete;
  for (const ChunkId& id : held) {
    if (catalog_.AddReplicaIfLive(id, node)) {
      // Re-integration: a desktop returning from an outage still holds
      // chunks the catalog dropped when its heartbeat expired. Content
      // addressing makes this safe — same id, same bytes — so the copy
      // counts toward availability again instead of being collected.
      continue;
    }
    if (node_has_active_reservation) continue;  // defer: possibly in flight
    to_delete.push_back(id);
  }
  return to_delete;
}

Status MetadataManager::OfferRecoveredVersion(NodeId from,
                                              const VersionRecord& record,
                                              int stripe_width) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  if (stripe_width <= 0) return InvalidArgumentError("stripe width must be > 0");
  if (catalog_.Exists(record.name)) return OkStatus();  // already recovered

  auto key = std::make_pair(record.name.ToString(),
                            ChunkMapFingerprint(record.chunk_map));
  std::set<NodeId>& endorsers = offers_[key];
  endorsers.insert(from);

  // Commit once two-thirds of the stripe width concur (§IV.A).
  if (3 * endorsers.size() >= 2 * static_cast<std::size_t>(stripe_width)) {
    STDCHK_RETURN_IF_ERROR(catalog_.CommitVersion(record));
    offers_.erase(key);
  }
  return OkStatus();
}

Result<WriteReservation> MetadataManager::ReserveStripe(int width,
                                                        std::uint64_t bytes) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  stat_server_placements_.fetch_add(1, std::memory_order_relaxed);
  STDCHK_ASSIGN_OR_RETURN(std::vector<NodeId> stripe,
                          registry_.SelectStripe(width));
  Reservation res;
  res.id = next_reservation_++;
  res.stripe = stripe;
  res.bytes = bytes;
  res.last_touch = clock_->NowUs();
  std::uint64_t per_node = bytes / static_cast<std::uint64_t>(width) + 1;
  for (NodeId node : stripe) registry_.AddReserved(node, per_node);
  reservations_[res.id] = res;

  WriteReservation out;
  out.id = res.id;
  out.stripe = std::move(stripe);
  out.reserved_bytes = bytes;
  return out;
}

Status MetadataManager::ExtendReservation(ReservationId id,
                                          std::uint64_t additional_bytes) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return NotFoundError("unknown reservation");
  it->second.bytes += additional_bytes;
  it->second.last_touch = clock_->NowUs();
  std::uint64_t per_node =
      additional_bytes / it->second.stripe.size() + 1;
  for (NodeId node : it->second.stripe) registry_.AddReserved(node, per_node);
  return OkStatus();
}

Result<NodeId> MetadataManager::ReplaceReservationNode(ReservationId id,
                                                       NodeId dead) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return NotFoundError("unknown reservation");
  Reservation& res = it->second;
  auto slot = std::find(res.stripe.begin(), res.stripe.end(), dead);
  if (slot == res.stripe.end()) {
    return NotFoundError("node is not a member of the reservation stripe");
  }
  // Failover replacement is a server-side pick by design: it needs the
  // freshest membership, and it is off the steady-state write path.
  stat_server_placements_.fetch_add(1, std::memory_order_relaxed);
  STDCHK_ASSIGN_OR_RETURN(std::vector<NodeId> fresh,
                          registry_.SelectStripe(1, res.stripe));
  // Hand the dead member's share of the eager reservation to the
  // replacement so the stripe's accounted capacity is unchanged.
  std::uint64_t per_node = res.bytes / res.stripe.size() + 1;
  registry_.ReleaseReserved(dead, per_node);
  registry_.AddReserved(fresh[0], per_node);
  *slot = fresh[0];
  res.last_touch = clock_->NowUs();
  return fresh[0];
}

void MetadataManager::ReleaseReservationLocked(
    std::map<ReservationId, Reservation>::iterator it) {
  std::uint64_t per_node = it->second.bytes / it->second.stripe.size() + 1;
  for (NodeId node : it->second.stripe) {
    registry_.ReleaseReserved(node, per_node);
  }
  reservations_.erase(it);
}

Status MetadataManager::ReleaseReservation(ReservationId id) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return NotFoundError("unknown reservation");
  ReleaseReservationLocked(it);
  return OkStatus();
}

Status MetadataManager::CommitVersion(ReservationId id,
                                      const VersionRecord& record) {
  return CommitVersionAt(id, record, /*placed_epoch=*/0);
}

Status MetadataManager::CommitVersionAt(ReservationId id,
                                        const VersionRecord& record,
                                        std::uint64_t placed_epoch) {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  VersionRecord to_commit = record;
  // The folder's replication target applies unless the record overrides it.
  FolderPolicy policy = catalog_.GetFolderPolicy(record.name.app);
  if (to_commit.replication_target <= 0) {
    to_commit.replication_target = policy.replication_target;
  }

  if (placed_epoch != 0) {
    MutexLock lock(mu_);
    if (placed_epoch != registry_.placement_epoch()) {
      // Stale placement: membership changed after the client computed its
      // stripe. Drop replicas on departed benefactors; a chunk left with
      // no live replica fails the whole commit (session semantics: the
      // version must never become visible with unreachable data).
      for (ChunkLocation& loc : to_commit.chunk_map.chunks) {
        std::erase_if(loc.replicas, [this](NodeId node) {
          return !registry_.IsOnline(node);
        });
        if (loc.erasure_coded()) {
          // EC entries survive the k-loss rule: shards on departed
          // benefactors are marked lost-in-place (positions are shard
          // indices and must not shift), and the commit stands as long as
          // k shards remain readable. Repair restores the margin later.
          int live = 0;
          for (ShardLocation& sl : loc.shards) {
            if (sl.node != kInvalidNode && !registry_.IsOnline(sl.node)) {
              sl.node = kInvalidNode;
            }
            if (sl.node != kInvalidNode) ++live;
          }
          if (live < static_cast<int>(loc.ec_k)) {
            stat_epoch_mismatches_.fetch_add(1, std::memory_order_relaxed);
            return FailedPreconditionError(
                "placement epoch " + std::to_string(placed_epoch) +
                " is stale and erasure-coded chunk " + loc.id.ToHex() +
                " has fewer than k shards on live benefactors");
          }
          continue;
        }
        if (loc.replicas.empty()) {
          stat_epoch_mismatches_.fetch_add(1, std::memory_order_relaxed);
          return FailedPreconditionError(
              "placement epoch " + std::to_string(placed_epoch) +
              " is stale and chunk " + loc.id.ToHex() +
              " has every replica on departed benefactors");
        }
      }
    }
  }

  // The catalog commit is the atomic visibility point; it serializes on
  // the folder's shard only. The registry accounting below runs under mu_
  // afterwards — a reader observing the committed version before the
  // free-space figures settle is harmless (reservation GC is TTL-based).
  STDCHK_RETURN_IF_ERROR(catalog_.CommitVersion(to_commit));
  MutexLock lock(mu_);
  for (const ChunkLocation& loc : to_commit.chunk_map.chunks) {
    for (NodeId node : loc.replicas) registry_.AddUsed(node, loc.size);
    for (std::size_t s = 0; s < loc.shards.size(); ++s) {
      const ShardLocation& sl = loc.shards[s];
      if (sl.node == kInvalidNode) continue;
      registry_.AddUsed(sl.node, ErasureShardLength(loc.size, loc.ec_k,
                                                    static_cast<int>(s)));
    }
  }
  if (id != 0) {
    auto it = reservations_.find(id);
    if (it != reservations_.end()) ReleaseReservationLocked(it);
  }
  return OkStatus();
}

Result<PlacementTable> MetadataManager::GetPlacementTable() const {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  stat_table_fetches_.fetch_add(1, std::memory_order_relaxed);
  return registry_.PlacementSnapshot();
}

Result<WriteReservation> MetadataManager::ReserveStripeAt(
    std::uint64_t epoch, const std::vector<NodeId>& stripe,
    std::uint64_t bytes) {
  MutexLock lock(mu_);
  STDCHK_RETURN_IF_ERROR(CheckUp());
  if (stripe.empty()) return InvalidArgumentError("empty stripe");
  if (epoch != registry_.placement_epoch()) {
    stat_epoch_mismatches_.fetch_add(1, std::memory_order_relaxed);
    return FailedPreconditionError(
        "placement epoch " + std::to_string(epoch) + " is stale (current " +
        std::to_string(registry_.placement_epoch()) + ")");
  }
  // With a current epoch every table member is registry-online; anything
  // else in the stripe is a client bug, not staleness.
  for (std::size_t i = 0; i < stripe.size(); ++i) {
    if (!registry_.IsOnline(stripe[i])) {
      return InvalidArgumentError("stripe member " +
                                  std::to_string(stripe[i]) +
                                  " is not an online benefactor");
    }
    for (std::size_t j = i + 1; j < stripe.size(); ++j) {
      if (stripe[i] == stripe[j]) {
        return InvalidArgumentError("stripe members must be distinct");
      }
    }
  }

  Reservation res;
  res.id = next_reservation_++;
  res.stripe = stripe;
  res.bytes = bytes;
  res.last_touch = clock_->NowUs();
  std::uint64_t per_node = bytes / stripe.size() + 1;
  for (NodeId node : stripe) registry_.AddReserved(node, per_node);
  reservations_[res.id] = res;

  WriteReservation out;
  out.id = res.id;
  out.stripe = stripe;
  out.reserved_bytes = bytes;
  return out;
}

// Catalog-only RPCs take no manager lock at all: the catalog is internally
// sharded and thread-safe, so these contend only on the touched shard.

Result<VersionRecord> MetadataManager::GetVersion(
    const CheckpointName& name) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.GetVersion(name);
}

Result<VersionRecord> MetadataManager::GetLatest(const std::string& app,
                                                 const std::string& node) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.GetLatest(app, node);
}

Result<std::vector<CheckpointName>> MetadataManager::ListVersions(
    const std::string& app) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.ListVersions(app);
}

Result<std::vector<std::string>> MetadataManager::ListApps() const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.ListApps();
}

Result<std::vector<bool>> MetadataManager::FilterKnownChunks(
    const std::vector<ChunkId>& ids) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.KnownChunks(ids);
}

Result<std::vector<std::vector<NodeId>>> MetadataManager::LocateChunks(
    const std::vector<ChunkId>& ids) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  std::vector<std::vector<NodeId>> out;
  out.reserve(ids.size());
  for (const ChunkId& id : ids) out.push_back(catalog_.ChunkReplicas(id));
  return out;
}

Status MetadataManager::SetFolderPolicy(const std::string& app,
                                        const FolderPolicy& policy) {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  if (policy.replication_target <= 0) {
    return InvalidArgumentError("replication target must be >= 1");
  }
  catalog_.SetFolderPolicy(app, policy);
  return OkStatus();
}

Result<FolderPolicy> MetadataManager::GetFolderPolicy(
    const std::string& app) const {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.GetFolderPolicy(app);
}

Status MetadataManager::DeleteVersion(const CheckpointName& name) {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.DeleteVersion(name);
}

Result<std::size_t> MetadataManager::DeleteApp(const std::string& app) {
  STDCHK_RETURN_IF_ERROR(CheckUp());
  return catalog_.DeleteApp(app);
}

std::vector<NodeId> MetadataManager::TickExpiry() {
  std::vector<NodeId> expired;
  {
    MutexLock lock(mu_);
    if (!up_) return {};
    expired = registry_.ExpireStale();
  }
  if (expired.empty()) return expired;
  // The catalog sweep walks chunk shards under their own locks; mu_ is
  // retaken only to append the data-loss events.
  std::vector<ChunkId> lost;
  for (NodeId node : expired) {
    std::vector<ChunkId> node_lost = catalog_.RemoveNodeReplicas(node);
    lost.insert(lost.end(), node_lost.begin(), node_lost.end());
  }
  MutexLock lock(mu_);
  lost_chunks_.insert(lost_chunks_.end(), lost.begin(), lost.end());
  return expired;
}

std::vector<ReplicationCommand> MetadataManager::TickReplication() {
  MutexLock lock(mu_);
  if (!up_) return {};
  std::set<NodeId> online;
  for (NodeId node : registry_.OnlineNodes()) online.insert(node);

  std::vector<ReplicationCommand> commands;
  for (const auto& ur : catalog_.FindUnderReplicated(online)) {
    if (static_cast<int>(commands.size()) >= options_.max_replications_per_tick) {
      break;
    }
    std::vector<NodeId> holders = catalog_.ChunkReplicas(ur.chunk);
    // Source: any online holder.
    NodeId source = kInvalidNode;
    for (NodeId node : holders) {
      if (online.contains(node)) {
        source = node;
        break;
      }
    }
    if (source == kInvalidNode) continue;

    int missing = ur.want - ur.have;
    // Exclude existing holders and targets already in flight for this chunk.
    std::vector<NodeId> exclude = holders;
    for (const auto& [chunk, target] : inflight_) {
      if (chunk == ur.chunk) exclude.push_back(target);
    }
    int already_inflight = static_cast<int>(
        std::count_if(inflight_.begin(), inflight_.end(),
                      [&](const auto& p) { return p.first == ur.chunk; }));
    missing -= already_inflight;

    for (int i = 0; i < missing; ++i) {
      auto stripe = registry_.SelectStripe(1, exclude);
      if (!stripe.ok()) break;  // no eligible target left
      NodeId target = stripe.value()[0];
      exclude.push_back(target);
      inflight_.insert({ur.chunk, target});
      commands.push_back(ReplicationCommand{ur.chunk, source, target});
      if (static_cast<int>(commands.size()) >=
          options_.max_replications_per_tick) {
        break;
      }
    }
  }
  return commands;
}

Status MetadataManager::AckReplication(const ReplicationCommand& cmd,
                                       bool success) {
  MutexLock lock(mu_);
  inflight_.erase({cmd.chunk, cmd.target});
  if (!up_) return UnavailableError("metadata manager is down");
  if (success) {
    catalog_.AddReplica(cmd.chunk, cmd.target);
    registry_.AddUsed(cmd.target, catalog_.ChunkSize(cmd.chunk));
  }
  return OkStatus();
}

std::vector<ShardRepairCommand> MetadataManager::TickShardRepair() {
  MutexLock lock(mu_);
  if (!up_) return {};
  std::set<NodeId> online;
  for (NodeId node : registry_.OnlineNodes()) online.insert(node);

  std::vector<ShardRepairCommand> commands;
  for (const auto& dg : catalog_.FindDamagedGroups(online)) {
    if (static_cast<int>(commands.size()) >=
        options_.max_replications_per_tick) {
      break;
    }
    // Current holders are excluded as rebuild targets: the group-distinct
    // placement invariant (one node death costs at most one shard) must
    // survive repair.
    std::vector<NodeId> exclude;
    for (const ShardLocation& sl : dg.shards) {
      if (sl.node != kInvalidNode) exclude.push_back(sl.node);
    }

    // The first k live shards source every rebuild of this group.
    std::vector<int> src_indices;
    std::vector<ChunkId> src_ids;
    std::vector<NodeId> src_nodes;
    for (std::size_t s = 0; s < dg.shards.size() &&
                            src_indices.size() < static_cast<std::size_t>(dg.ec_k);
         ++s) {
      if (dg.shards[s].node == kInvalidNode) continue;
      src_indices.push_back(static_cast<int>(s));
      src_ids.push_back(dg.shards[s].id);
      src_nodes.push_back(dg.shards[s].node);
    }
    if (src_indices.size() < static_cast<std::size_t>(dg.ec_k)) continue;

    for (std::size_t s = 0; s < dg.shards.size(); ++s) {
      if (static_cast<int>(commands.size()) >=
          options_.max_replications_per_tick) {
        break;
      }
      if (dg.shards[s].node != kInvalidNode) continue;
      if (inflight_repairs_.contains(dg.shards[s].id)) continue;
      auto stripe = registry_.SelectStripe(1, exclude);
      if (!stripe.ok()) break;  // no distinct target left for this group
      NodeId target = stripe.value()[0];
      exclude.push_back(target);
      inflight_repairs_.insert(dg.shards[s].id);

      ShardRepairCommand cmd;
      cmd.group = dg.group;
      cmd.chunk_size = dg.chunk_size;
      cmd.ec_k = dg.ec_k;
      cmd.ec_m = dg.ec_m;
      cmd.missing_index = static_cast<int>(s);
      cmd.missing_id = dg.shards[s].id;
      cmd.source_indices = src_indices;
      cmd.source_ids = src_ids;
      cmd.source_nodes = src_nodes;
      cmd.target = target;
      commands.push_back(std::move(cmd));
    }
  }
  return commands;
}

Status MetadataManager::AckShardRepair(const ShardRepairCommand& cmd,
                                       bool success) {
  MutexLock lock(mu_);
  inflight_repairs_.erase(cmd.missing_id);
  if (!up_) return UnavailableError("metadata manager is down");
  if (success) {
    catalog_.AddReplica(cmd.missing_id, cmd.target);
    registry_.AddUsed(cmd.target, ErasureShardLength(cmd.chunk_size, cmd.ec_k,
                                                     cmd.missing_index));
  }
  return OkStatus();
}

std::vector<CheckpointName> MetadataManager::TickRetention() {
  // No manager lock: retention walks the catalog's folder shards under
  // their own locks, one shard at a time.
  if (!up_) return {};
  return catalog_.ApplyRetention();
}

void MetadataManager::TickReservationGc() {
  MutexLock lock(mu_);
  if (!up_) return;
  ClockTime now = clock_->NowUs();
  for (auto it = reservations_.begin(); it != reservations_.end();) {
    if (now - it->second.last_touch > options_.reservation_ttl_us) {
      auto doomed = it++;
      ReleaseReservationLocked(doomed);
    } else {
      ++it;
    }
  }
}

std::vector<ChunkId> MetadataManager::TakeLostChunks() {
  MutexLock lock(mu_);
  std::vector<ChunkId> out;
  out.swap(lost_chunks_);
  return out;
}

ManagerCounters MetadataManager::Counters() const {
  ManagerCounters out;
  {
    MutexLock lock(mu_);
    out.placement_epoch = registry_.placement_epoch();
  }
  out.placement_table_fetches =
      stat_table_fetches_.load(std::memory_order_relaxed);
  out.placement_epoch_mismatches =
      stat_epoch_mismatches_.load(std::memory_order_relaxed);
  out.server_side_placements =
      stat_server_placements_.load(std::memory_order_relaxed);
  out.shard_records_released = catalog_.ShardRecordsReleased();
  out.catalog_shards = catalog_.ShardStatsSnapshot();
  return out;
}

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x53544348;  // "STCH"

void WriteChunkId(BinaryWriter& w, const ChunkId& id) {
  w.Blob(ByteSpan(id.digest.bytes.data(), id.digest.bytes.size()));
}

Result<ChunkId> ReadChunkId(BinaryReader& r) {
  STDCHK_ASSIGN_OR_RETURN(Bytes raw, r.Blob());
  if (raw.size() != 20) return DataLossError("bad chunk id in snapshot");
  ChunkId id;
  std::copy(raw.begin(), raw.end(), id.digest.bytes.begin());
  return id;
}

void WriteVersion(BinaryWriter& w, const VersionRecord& v) {
  w.Str(v.name.app);
  w.Str(v.name.node);
  w.U64(v.name.timestep);
  w.U64(v.size);
  w.I64(v.commit_time);
  w.U32(static_cast<std::uint32_t>(v.replication_target));
  w.U32(static_cast<std::uint32_t>(v.chunk_map.chunks.size()));
  for (const ChunkLocation& loc : v.chunk_map.chunks) {
    WriteChunkId(w, loc.id);
    w.U64(loc.file_offset);
    w.U32(loc.size);
    w.U32(static_cast<std::uint32_t>(loc.replicas.size()));
    for (NodeId node : loc.replicas) w.U32(node);
    // Erasure-coded striping (zeros for replicated entries).
    w.U32(loc.ec_k);
    w.U32(loc.ec_m);
    w.U32(static_cast<std::uint32_t>(loc.shards.size()));
    for (const ShardLocation& sl : loc.shards) {
      WriteChunkId(w, sl.id);
      w.U32(sl.node);
    }
  }
}

Result<VersionRecord> ReadVersion(BinaryReader& r) {
  VersionRecord v;
  STDCHK_ASSIGN_OR_RETURN(v.name.app, r.Str());
  STDCHK_ASSIGN_OR_RETURN(v.name.node, r.Str());
  STDCHK_ASSIGN_OR_RETURN(v.name.timestep, r.U64());
  STDCHK_ASSIGN_OR_RETURN(v.size, r.U64());
  STDCHK_ASSIGN_OR_RETURN(v.commit_time, r.I64());
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t target, r.U32());
  v.replication_target = static_cast<int>(target);
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t chunks, r.U32());
  v.chunk_map.chunks.reserve(chunks);
  for (std::uint32_t i = 0; i < chunks; ++i) {
    ChunkLocation loc;
    STDCHK_ASSIGN_OR_RETURN(loc.id, ReadChunkId(r));
    STDCHK_ASSIGN_OR_RETURN(loc.file_offset, r.U64());
    STDCHK_ASSIGN_OR_RETURN(loc.size, r.U32());
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t replicas, r.U32());
    for (std::uint32_t j = 0; j < replicas; ++j) {
      STDCHK_ASSIGN_OR_RETURN(NodeId node, r.U32());
      loc.replicas.push_back(node);
    }
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t ec_k, r.U32());
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t ec_m, r.U32());
    loc.ec_k = static_cast<std::uint16_t>(ec_k);
    loc.ec_m = static_cast<std::uint16_t>(ec_m);
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t shards, r.U32());
    if (loc.erasure_coded() &&
        shards != ec_k + ec_m) {
      return DataLossError("bad shard count in snapshot");
    }
    loc.shards.reserve(shards);
    for (std::uint32_t j = 0; j < shards; ++j) {
      ShardLocation sl;
      STDCHK_ASSIGN_OR_RETURN(sl.id, ReadChunkId(r));
      STDCHK_ASSIGN_OR_RETURN(sl.node, r.U32());
      loc.shards.push_back(sl);
    }
    v.chunk_map.chunks.push_back(std::move(loc));
  }
  return v;
}

}  // namespace

Bytes MetadataManager::SaveSnapshot() const {
  MutexLock lock(mu_);
  BinaryWriter w;
  w.U32(kSnapshotMagic);

  // Registry.
  std::vector<BenefactorStatus> nodes = registry_.Export();
  w.U32(registry_.next_id());
  w.U64(registry_.placement_epoch());
  w.U32(static_cast<std::uint32_t>(nodes.size()));
  for (const BenefactorStatus& node : nodes) {
    w.U32(node.id);
    w.Str(node.info.host);
    w.U64(node.info.total_bytes);
    w.U64(node.info.free_bytes);
    w.I64(node.last_heartbeat);
    w.Bool(node.online);
    w.U64(node.reserved_bytes);
  }

  // Catalog.
  FileCatalog::ExportedState state = catalog_.Export();
  w.U32(static_cast<std::uint32_t>(state.policies.size()));
  for (const auto& [app, policy] : state.policies) {
    w.Str(app);
    w.U8(static_cast<std::uint8_t>(policy.retention));
    w.I64(policy.purge_age_us);
    w.U32(static_cast<std::uint32_t>(policy.keep_last));
    w.U32(static_cast<std::uint32_t>(policy.replication_target));
  }
  w.U32(static_cast<std::uint32_t>(state.versions.size()));
  for (const VersionRecord& v : state.versions) WriteVersion(w, v);
  w.U32(static_cast<std::uint32_t>(state.chunk_replicas.size()));
  for (const auto& [id, replicas] : state.chunk_replicas) {
    WriteChunkId(w, id);
    w.U32(static_cast<std::uint32_t>(replicas.size()));
    for (NodeId node : replicas) w.U32(node);
  }
  return w.Take();
}

Status MetadataManager::LoadSnapshot(ByteSpan snapshot) {
  MutexLock lock(mu_);
  BinaryReader r(snapshot);
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t magic, r.U32());
  if (magic != kSnapshotMagic) {
    return DataLossError("not a stdchk manager snapshot");
  }

  STDCHK_ASSIGN_OR_RETURN(NodeId next_id, r.U32());
  STDCHK_ASSIGN_OR_RETURN(std::uint64_t epoch, r.U64());
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t node_count, r.U32());
  std::vector<BenefactorStatus> nodes;
  nodes.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    BenefactorStatus node;
    STDCHK_ASSIGN_OR_RETURN(node.id, r.U32());
    STDCHK_ASSIGN_OR_RETURN(node.info.host, r.Str());
    STDCHK_ASSIGN_OR_RETURN(node.info.total_bytes, r.U64());
    STDCHK_ASSIGN_OR_RETURN(node.info.free_bytes, r.U64());
    STDCHK_ASSIGN_OR_RETURN(node.last_heartbeat, r.I64());
    STDCHK_ASSIGN_OR_RETURN(node.online, r.Bool());
    STDCHK_ASSIGN_OR_RETURN(node.reserved_bytes, r.U64());
    // Reservations are transient and not restored.
    node.reserved_bytes = 0;
    nodes.push_back(std::move(node));
  }

  FileCatalog::ExportedState state;
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t policy_count, r.U32());
  for (std::uint32_t i = 0; i < policy_count; ++i) {
    std::string app;
    FolderPolicy policy;
    STDCHK_ASSIGN_OR_RETURN(app, r.Str());
    STDCHK_ASSIGN_OR_RETURN(std::uint8_t retention, r.U8());
    if (retention > static_cast<std::uint8_t>(RetentionPolicy::kAutomatedPurge)) {
      return DataLossError("bad retention policy in snapshot");
    }
    policy.retention = static_cast<RetentionPolicy>(retention);
    STDCHK_ASSIGN_OR_RETURN(policy.purge_age_us, r.I64());
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t keep_last, r.U32());
    policy.keep_last = static_cast<int>(keep_last);
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t target, r.U32());
    policy.replication_target = static_cast<int>(target);
    state.policies.emplace_back(std::move(app), policy);
  }
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t version_count, r.U32());
  for (std::uint32_t i = 0; i < version_count; ++i) {
    STDCHK_ASSIGN_OR_RETURN(VersionRecord v, ReadVersion(r));
    state.versions.push_back(std::move(v));
  }
  STDCHK_ASSIGN_OR_RETURN(std::uint32_t replica_count, r.U32());
  for (std::uint32_t i = 0; i < replica_count; ++i) {
    STDCHK_ASSIGN_OR_RETURN(ChunkId id, ReadChunkId(r));
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t n, r.U32());
    std::vector<NodeId> replicas;
    replicas.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      STDCHK_ASSIGN_OR_RETURN(NodeId node, r.U32());
      replicas.push_back(node);
    }
    state.chunk_replicas.emplace_back(id, std::move(replicas));
  }
  if (!r.AtEnd()) return DataLossError("trailing bytes in snapshot");

  // Commit point: only mutate after the whole snapshot parsed.
  registry_.Import(nodes, next_id, epoch);
  STDCHK_RETURN_IF_ERROR(catalog_.Import(state));
  reservations_.clear();
  inflight_.clear();
  offers_.clear();
  lost_chunks_.clear();
  up_ = true;
  return OkStatus();
}

}  // namespace stdchk
