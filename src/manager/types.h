// Shared vocabulary types for the manager <-> benefactor <-> client
// protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chunk/chunk.h"

namespace stdchk {

// Wall-ish time in the functional cluster, in microseconds. Driven by a
// VirtualClock so tests control heartbeat expiry and purge policies.
using ClockTime = std::int64_t;

// Soft-state record a benefactor publishes when registering (paper §IV.A:
// benefactors "publish their status and free space using soft-state
// registration").
struct BenefactorInfo {
  std::string host;
  std::uint64_t total_bytes = 0;
  std::uint64_t free_bytes = 0;
};

// The manager's view of one benefactor.
struct BenefactorStatus {
  NodeId id = kInvalidNode;
  BenefactorInfo info;
  ClockTime last_heartbeat = 0;
  bool online = false;
  std::uint64_t reserved_bytes = 0;  // eager reservations not yet committed
};

// Checkpoint naming convention (paper §IV.D): "A.Ni.Tj stands for an
// application A, running on node Ni and checkpointing at timestep Tj."
struct CheckpointName {
  std::string app;
  std::string node;
  std::uint64_t timestep = 0;

  std::string ToString() const;

  // Parses "A.N3.T17"-style names. The app part may itself contain dots;
  // the last two dot-separated fields must be the node and T<j> timestep.
  static std::optional<CheckpointName> Parse(const std::string& name);
};

// Lifetime-management policies for an application folder (paper §IV.D).
enum class RetentionPolicy {
  kNoIntervention,   // keep all versions indefinitely
  kAutomatedReplace, // a newly committed image obsoletes older ones
  kAutomatedPurge,   // images are purged after a fixed age
};

struct FolderPolicy {
  RetentionPolicy retention = RetentionPolicy::kNoIntervention;
  // For kAutomatedPurge: age after which an image is purged.
  ClockTime purge_age_us = 0;
  // For kAutomatedReplace: number of most-recent timesteps to keep (the
  // paper keeps the newest; keeping N>=1 generalizes it).
  int keep_last = 1;
  // Desired replica count for data availability (user-defined replication
  // target, paper §IV.A).
  int replication_target = 1;
};

// A committed file version in the catalog.
struct VersionRecord {
  CheckpointName name;
  ChunkMap chunk_map;
  std::uint64_t size = 0;
  ClockTime commit_time = 0;
  int replication_target = 1;
};

// Write-session reservation: the stripe of benefactors picked for a write
// plus an identifier so unused eager reservations can be garbage collected.
using ReservationId = std::uint64_t;

struct WriteReservation {
  ReservationId id = 0;
  std::vector<NodeId> stripe;        // round-robin targets, in order
  std::uint64_t reserved_bytes = 0;  // per the eager-reservation request
};

// ---- Epoch-versioned placement (decentralized stripe selection) ----------
//
// The manager publishes benefactor membership + free space under a
// monotonically increasing epoch. Clients cache the table and compute
// stripes locally; the manager is consulted again only when a reservation
// or commit is rejected because the cached epoch went stale (membership
// changed). This takes per-write placement off the manager's critical path
// while keeping a stale client unable to commit onto a departed benefactor.
struct PlacementMember {
  NodeId id = kInvalidNode;
  // Effective free space (free minus eager reservations) at publish time.
  std::uint64_t free_bytes = 0;
};

struct PlacementTable {
  std::uint64_t epoch = 0;
  std::vector<PlacementMember> members;  // online benefactors, ascending id
};

// A single background-replication command: copy `chunk` from `source` to
// `target`. Issued by the manager's replication scheduler; executed by the
// transport layer; acked back to the manager.
struct ReplicationCommand {
  ChunkId chunk;
  NodeId source = kInvalidNode;
  NodeId target = kInvalidNode;
};

// A single shard-repair command for an erasure-coded group that dropped
// below full width but still has >= k live shards: fetch the k source
// shards, reconstruct shard `missing_index`, verify it against its content
// address, and store it on `target`. Issued by the manager's shard-repair
// scheduler (the EC analogue of replication: repair restores the m-loss
// margin instead of a replica count); executed by the transport layer;
// acked back to the manager.
struct ShardRepairCommand {
  ChunkId group;                 // the whole-chunk (group head) address
  std::uint32_t chunk_size = 0;  // shard widths derive from (size, k)
  std::uint16_t ec_k = 0;
  std::uint16_t ec_m = 0;
  int missing_index = -1;        // shard position to rebuild (data first)
  ChunkId missing_id;            // content address the rebuild must match
  // Exactly k live sources, in shard order: parallel arrays of shard
  // position, shard content address, and an online holder of each.
  std::vector<int> source_indices;
  std::vector<ChunkId> source_ids;
  std::vector<NodeId> source_nodes;
  NodeId target = kInvalidNode;  // receives the rebuilt shard
};

}  // namespace stdchk
