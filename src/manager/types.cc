#include "manager/types.h"

#include <charconv>

namespace stdchk {

std::string CheckpointName::ToString() const {
  return app + "." + node + ".T" + std::to_string(timestep);
}

std::optional<CheckpointName> CheckpointName::Parse(const std::string& name) {
  // Split on the last two dots: <app>.<node>.T<j>. The app may contain dots.
  std::size_t last = name.rfind('.');
  if (last == std::string::npos || last + 2 > name.size()) return std::nullopt;
  std::size_t mid = name.rfind('.', last - 1);
  if (mid == std::string::npos || mid == 0) return std::nullopt;

  std::string_view tpart(name.data() + last + 1, name.size() - last - 1);
  if (tpart.size() < 2 || tpart[0] != 'T') return std::nullopt;
  std::uint64_t timestep = 0;
  auto [ptr, ec] = std::from_chars(tpart.data() + 1,
                                   tpart.data() + tpart.size(), timestep);
  if (ec != std::errc() || ptr != tpart.data() + tpart.size()) {
    return std::nullopt;
  }

  CheckpointName out;
  out.app = name.substr(0, mid);
  out.node = name.substr(mid + 1, last - mid - 1);
  out.timestep = timestep;
  if (out.node.empty()) return std::nullopt;
  return out;
}

}  // namespace stdchk
