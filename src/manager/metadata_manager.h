// The centralized metadata manager (paper §IV.A).
//
// Maintains all system metadata: donor status (soft state), file chunk
// distribution, dataset attributes, versioning and replication state. Data
// never flows through the manager — clients receive a stripe / chunk map
// and talk to benefactors directly.
//
// Background work (heartbeat expiry, replication, retention, reservation
// GC) advances through explicit Tick*() pumps so tests are deterministic;
// core/BackgroundDriver wraps them in a thread for the examples.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "manager/benefactor_registry.h"
#include "manager/file_catalog.h"
#include "manager/types.h"
#include "manager/virtual_clock.h"

namespace stdchk {

struct ManagerOptions {
  // Soft-state expiry: a benefactor silent for longer is considered gone.
  ClockTime heartbeat_expiry_us = 10'000'000;  // 10 s
  // Eager reservations unused for longer are garbage collected (§IV.A:
  // "if this space is not used, it is asynchronously garbage collected").
  ClockTime reservation_ttl_us = 60'000'000;  // 60 s
  // Replication commands issued per TickReplication() call. Bounding this
  // implements "creation of new files has priority over replication": the
  // scheduler trickles copies instead of flooding benefactors.
  int max_replications_per_tick = 8;
  // Number of independently locked FileCatalog shards. 1 keeps the
  // historical single-map catalog, bit for bit; N spreads folder and chunk
  // state over N locks so commits, reads, GC and retention on different
  // shards proceed concurrently.
  int catalog_shards = 1;
};

// Control-plane counters for observability and the scale bench. The
// placement counters express the decentralized-placement invariant: in
// steady state (no membership churn) the manager performs zero placement
// work — table fetches happen once per client, mismatches and server-side
// placements stay at zero.
struct ManagerCounters {
  std::uint64_t placement_epoch = 0;
  std::uint64_t placement_table_fetches = 0;    // GetPlacementTable calls
  std::uint64_t placement_epoch_mismatches = 0; // stale-epoch rejections
  std::uint64_t server_side_placements = 0;     // legacy SelectStripe calls
  // Shard records released by version deletion/purge — the metadata half
  // of shard-group GC (physical bytes follow via the GC exchange).
  std::uint64_t shard_records_released = 0;
  std::vector<CatalogShardStats> catalog_shards;
};

class MetadataManager {
 public:
  MetadataManager(const VirtualClock* clock, ManagerOptions options = {});

  // ---- Availability (manager-failure experiments) ------------------------
  // Crash() makes every RPC fail Unavailable; committed catalog state is
  // durable and survives Restart(). In-flight (un-committed) chunk maps are
  // exactly what the benefactor-assisted recovery protocol recovers.
  void Crash() { up_.store(false); }
  void Restart() { up_.store(true); }
  bool IsUp() const { return up_.load(); }

  // ---- Benefactor-facing RPCs --------------------------------------------
  Result<NodeId> RegisterBenefactor(const BenefactorInfo& info);
  Status Heartbeat(NodeId node, std::uint64_t free_bytes);

  // GC exchange (§IV.A): the benefactor reports the full set of chunks it
  // stores; the reply lists the chunks it may delete (orphans).
  Result<std::vector<ChunkId>> GcExchange(NodeId node,
                                          const std::vector<ChunkId>& held);

  // Manager-recovery protocol (§IV.A): after a manager failure, clients
  // stash the final chunk map on the write stripe's benefactors; once the
  // manager is back, each benefactor offers the stashed map. The version
  // commits when two-thirds of the stripe width concur.
  Status OfferRecoveredVersion(NodeId from, const VersionRecord& record,
                               int stripe_width);

  // ---- Client-facing RPCs --------------------------------------------------
  // Eagerly reserves `bytes` across a stripe of `width` benefactors. The
  // legacy (server-side placement) path: the manager picks the stripe.
  Result<WriteReservation> ReserveStripe(int width, std::uint64_t bytes);

  // ---- Decentralized placement (epoch-versioned table) ---------------------
  // Publishes the current placement table; clients cache it and compute
  // stripes locally (client/placement.h: ComputeStripe).
  Result<PlacementTable> GetPlacementTable() const;
  // Reserves a client-chosen stripe placed against table `epoch`. Fails
  // FailedPrecondition when the epoch is stale (membership changed since
  // the client cached the table) — the client refetches and retries.
  Result<WriteReservation> ReserveStripeAt(std::uint64_t epoch,
                                           const std::vector<NodeId>& stripe,
                                           std::uint64_t bytes);
  // Extends an existing reservation (incremental space allocation: stdchk
  // "cannot predict in advance the file size", §IV.A).
  Status ExtendReservation(ReservationId id, std::uint64_t additional_bytes);
  Status ReleaseReservation(ReservationId id);

  // Stripe failover: the client observed `dead` failing its puts. Swaps it
  // for a fresh donor inside the reservation, moving the dead node's
  // reserved-byte accounting to the replacement, and returns the
  // replacement's id. Prefers donors outside the current stripe; fails
  // Unavailable when no distinct replacement exists.
  Result<NodeId> ReplaceReservationNode(ReservationId id, NodeId dead);

  // Atomic commit of a version's chunk map — the session-semantics commit
  // point. Releases the reservation (id 0 = no reservation).
  Status CommitVersion(ReservationId id, const VersionRecord& record);

  // Epoch-validated commit: `placed_epoch` is the table epoch the client
  // placed against (0 = legacy, no validation). If membership changed since
  // placement, replicas on departed benefactors are dropped; the commit is
  // rejected FailedPrecondition if any chunk would be left with no live
  // replica — a stale client can never commit onto a departed benefactor.
  Status CommitVersionAt(ReservationId id, const VersionRecord& record,
                         std::uint64_t placed_epoch);

  Result<VersionRecord> GetVersion(const CheckpointName& name) const;
  Result<VersionRecord> GetLatest(const std::string& app,
                                  const std::string& node) const;
  Result<std::vector<CheckpointName>> ListVersions(const std::string& app) const;
  Result<std::vector<std::string>> ListApps() const;

  // Dedup support (§IV.C content addressability): marks which of `ids` the
  // system already stores, so the client skips transferring those chunks.
  Result<std::vector<bool>> FilterKnownChunks(
      const std::vector<ChunkId>& ids) const;

  // Replica locations for each of `ids` (empty vector for unknown chunks).
  // Used when a deduplicated chunk map must reference already-stored chunks.
  Result<std::vector<std::vector<NodeId>>> LocateChunks(
      const std::vector<ChunkId>& ids) const;

  Status SetFolderPolicy(const std::string& app, const FolderPolicy& policy);
  Result<FolderPolicy> GetFolderPolicy(const std::string& app) const;
  Status DeleteVersion(const CheckpointName& name);
  Result<std::size_t> DeleteApp(const std::string& app);

  // ---- Background pumps -----------------------------------------------------
  // Expires stale benefactors; drops their replicas from the catalog.
  // Returns the ids of newly expired nodes.
  std::vector<NodeId> TickExpiry();

  // Emits replication commands (shadow-map copies) for under-replicated
  // chunks. The caller (transport layer) executes them and must call
  // AckReplication with the outcome.
  std::vector<ReplicationCommand> TickReplication();
  Status AckReplication(const ReplicationCommand& cmd, bool success);
  // Reads the in-flight set under mu_ — the -Wthread-safety sweep caught
  // the previous lock-free read racing TickReplication/AckReplication.
  std::size_t pending_replications() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return inflight_.size();
  }

  // Emits shard-repair commands for erasure-coded groups that are degraded
  // but still hold >= k live shards — the EC analogue of TickReplication:
  // repair restores the m-loss margin instead of a replica count. Shares
  // max_replications_per_tick (file creation keeps priority over repair).
  // The caller executes each command (fetch k shards, reconstruct, verify,
  // store) and must call AckShardRepair with the outcome.
  std::vector<ShardRepairCommand> TickShardRepair();
  Status AckShardRepair(const ShardRepairCommand& cmd, bool success);
  std::size_t pending_shard_repairs() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return inflight_repairs_.size();
  }

  // Applies retention policies; returns purged version names.
  std::vector<CheckpointName> TickRetention();

  // Reclaims expired reservations.
  void TickReservationGc();

  // Chunks that lost every replica since the last call (data loss events;
  // surfaced for monitoring / tests).
  std::vector<ChunkId> TakeLostChunks();

  // ---- Hot-standby snapshots (§IV.A) ---------------------------------------
  // Serializes all durable metadata (catalog + registry). Transient state —
  // reservations, in-flight replication, recovery offers — is deliberately
  // excluded: reservations are client-renewable, replication re-derives
  // from the catalog, and offers are re-pushed by benefactors.
  Bytes SaveSnapshot() const;
  // Replaces this manager's durable state with the snapshot and clears all
  // transient state, as a promoted standby would. The manager comes back
  // up regardless of prior Crash() state.
  Status LoadSnapshot(ByteSpan snapshot);

  // ---- Introspection -----------------------------------------------------
  const FileCatalog& catalog() const { return catalog_; }
  const BenefactorRegistry& registry() const { return registry_; }
  BenefactorRegistry& registry_mutable() { return registry_; }
  ManagerCounters Counters() const;

 private:
  struct Reservation {
    ReservationId id = 0;
    std::vector<NodeId> stripe;
    std::uint64_t bytes = 0;
    ClockTime last_touch = 0;
  };

  Status CheckUp() const {
    return up_.load() ? OkStatus()
                      : UnavailableError("metadata manager is down");
  }
  void ReleaseReservationLocked(
      std::map<ReservationId, Reservation>::iterator it) REQUIRES(mu_);

  const VirtualClock* clock_;
  ManagerOptions options_;
  std::atomic<bool> up_{true};

  // Control-plane lock, scoped to reservations_, inflight_, offers_ and
  // lost_chunks_. The registry is internally locked (rank kRegistry) and
  // the catalog is internally sharded and thread-safe, so catalog-only
  // RPCs (reads, commits, deletes, dedup filters) never touch mu_ — they
  // contend only on their shard. Lock order where several layers nest:
  // mu_ (kManager) before registry mu_ (kRegistry) before catalog shard
  // locks (kCatalogFolder/kCatalogChunk) — none of those call back into
  // the manager, and the rank validator enforces the order.
  mutable Mutex mu_{LockRank::kManager, 0, "metadata_manager"};

  mutable std::atomic<std::uint64_t> stat_table_fetches_{0};
  std::atomic<std::uint64_t> stat_epoch_mismatches_{0};
  std::atomic<std::uint64_t> stat_server_placements_{0};

  BenefactorRegistry registry_;
  FileCatalog catalog_;

  ReservationId next_reservation_ GUARDED_BY(mu_) = 1;
  std::map<ReservationId, Reservation> reservations_ GUARDED_BY(mu_);

  // Replication commands issued but not yet acked, keyed by (chunk, target)
  // so the scheduler does not double-issue.
  std::set<std::pair<ChunkId, NodeId>> inflight_ GUARDED_BY(mu_);

  // Shard repairs issued but not yet acked, keyed by the missing shard's
  // content address (one rebuild per lost shard at a time).
  std::set<ChunkId> inflight_repairs_ GUARDED_BY(mu_);

  // Recovery offers: (version name, chunk-map fingerprint) -> endorsers.
  std::map<std::pair<std::string, std::uint64_t>, std::set<NodeId>> offers_
      GUARDED_BY(mu_);

  std::vector<ChunkId> lost_chunks_ GUARDED_BY(mu_);
};

}  // namespace stdchk
