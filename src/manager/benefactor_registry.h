// Soft-state registry of storage donors (paper §IV.A).
//
// Benefactors register and then refresh their record with periodic
// heartbeats carrying free-space figures. A benefactor whose heartbeat is
// older than the expiry window is considered offline: it is excluded from
// new stripes and its replicas no longer count toward replication targets.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "manager/types.h"
#include "manager/virtual_clock.h"

namespace stdchk {

// Thread-safe: guarded by its own mutex (rank kRegistry). Historically the
// registry relied on the manager's control-plane lock, but the registry()/
// registry_mutable() accessors let tests and stats code call it directly —
// which raced with manager mutations. The internal lock closes that race;
// the manager may hold its own mu_ (rank kManager) while calling in.
class BenefactorRegistry {
 public:
  BenefactorRegistry(const VirtualClock* clock, ClockTime heartbeat_expiry_us)
      : clock_(clock), heartbeat_expiry_us_(heartbeat_expiry_us) {}

  // Registers a new benefactor; returns its assigned node id.
  NodeId Register(const BenefactorInfo& info);

  // Refreshes soft state. Re-registers transparently if the node was
  // expired (the paper's soft-state model: presence == recent heartbeat).
  Status Heartbeat(NodeId node, std::uint64_t free_bytes);

  // Marks a node administratively offline (owner reclaimed the desktop).
  Status SetOffline(NodeId node);

  // Expires nodes whose heartbeat is stale. Returns the newly offline ids.
  std::vector<NodeId> ExpireStale();

  bool IsOnline(NodeId node) const;
  Result<BenefactorStatus> Get(NodeId node) const;
  std::vector<NodeId> OnlineNodes() const;
  std::size_t online_count() const;

  // Picks a stripe of `width` online benefactors, preferring most free
  // space (ties broken by round-robin cursor so load spreads). `exclude`
  // lists nodes that must not be picked (e.g. nodes already holding the
  // chunk when building a shadow map). Fails if fewer than `width`
  // candidates exist.
  Result<std::vector<NodeId>> SelectStripe(
      int width, const std::vector<NodeId>& exclude = {}) const;

  // Eager space reservation bookkeeping (paper §IV.A: "clients eagerly
  // reserve space with the manager for future writes").
  void AddReserved(NodeId node, std::uint64_t bytes);
  void ReleaseReserved(NodeId node, std::uint64_t bytes);

  // Accounts a committed chunk against the node's free space.
  void AddUsed(NodeId node, std::uint64_t bytes);
  void ReleaseUsed(NodeId node, std::uint64_t bytes);

  // ---- Epoch-versioned placement table -------------------------------------
  // Every membership change (register, administrative offline, heartbeat
  // expiry, revival of an expired node) bumps the placement epoch *inside*
  // the same mutation, so a snapshot can never pair a new member list with
  // an old epoch (or vice versa). Free-space-only heartbeats do not bump:
  // they change weights, not membership, and must not invalidate every
  // client cache on every heartbeat.
  std::uint64_t placement_epoch() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return epoch_;
  }
  // Atomic (members, epoch) snapshot of the online membership.
  PlacementTable PlacementSnapshot() const;

  // ---- Snapshot support -----------------------------------------------------
  std::vector<BenefactorStatus> Export() const;
  NodeId next_id() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return next_id_;
  }
  void Import(const std::vector<BenefactorStatus>& nodes, NodeId next_id,
              std::uint64_t epoch);

 private:
  std::vector<NodeId> OnlineNodesLocked() const REQUIRES(mu_);

  const VirtualClock* clock_;
  ClockTime heartbeat_expiry_us_;
  mutable Mutex mu_{LockRank::kRegistry, 0, "benefactor_registry"};
  NodeId next_id_ GUARDED_BY(mu_) = 1;
  std::map<NodeId, BenefactorStatus> nodes_ GUARDED_BY(mu_);
  // mutable: SelectStripe is a logically-const read that advances the
  // tie-break cursor.
  mutable std::uint64_t rr_cursor_ GUARDED_BY(mu_) = 0;
  // Starts at 1 so clients can use 0 as "no cached table / legacy commit".
  std::uint64_t epoch_ GUARDED_BY(mu_) = 1;
};

}  // namespace stdchk
