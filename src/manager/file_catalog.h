// The manager's file catalog: application folders, versioned checkpoint
// images, chunk maps, chunk reference counts and replica locations.
//
// Responsibilities mapped to the paper:
//  * versioning + copy-on-write chunk sharing between successive images
//    (§IV.C): chunks are refcounted across versions, so committing a new
//    version that reuses prior chunks stores no duplicate data;
//  * lifetime management (§IV.D): per-folder retention policies
//    (no-intervention / automated-replace / automated-purge);
//  * replica bookkeeping feeding the replication scheduler and the GC
//    protocol (§IV.A).
#pragma once

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "manager/types.h"
#include "manager/virtual_clock.h"

namespace stdchk {

class FileCatalog {
 public:
  explicit FileCatalog(const VirtualClock* clock) : clock_(clock) {}

  // ---- Folder policies -------------------------------------------------
  void SetFolderPolicy(const std::string& app, const FolderPolicy& policy);
  FolderPolicy GetFolderPolicy(const std::string& app) const;

  // ---- Version lifecycle ------------------------------------------------
  // Atomically commits a version (the session-semantics commit point). The
  // chunk map's replica lists are folded into the catalog's chunk records.
  // Re-committing an existing name fails (checkpoint images are immutable).
  Status CommitVersion(const VersionRecord& record);

  Result<VersionRecord> GetVersion(const CheckpointName& name) const;

  // Latest committed timestep for (app, node).
  Result<VersionRecord> GetLatest(const std::string& app,
                                  const std::string& node) const;

  std::vector<CheckpointName> ListVersions(const std::string& app) const;
  std::vector<std::string> ListApps() const;
  bool Exists(const CheckpointName& name) const;

  Status DeleteVersion(const CheckpointName& name);
  // Deletes every version of an application (e.g. at successful job
  // completion). Returns the number of versions removed.
  Result<std::size_t> DeleteApp(const std::string& app);

  // Applies retention policies (replace/purge). Returns the names removed.
  std::vector<CheckpointName> ApplyRetention();

  // ---- Chunk-level views --------------------------------------------------
  bool IsChunkLive(const ChunkId& id) const;
  // For dedup (FsCH/CbCH): which of `ids` the system already stores.
  std::vector<bool> KnownChunks(const std::vector<ChunkId>& ids) const;
  // Replica locations of a live chunk (empty if unknown).
  std::vector<NodeId> ChunkReplicas(const ChunkId& id) const;
  std::uint32_t ChunkSize(const ChunkId& id) const;

  // Set of live chunks the manager believes `node` holds (GC exchange).
  std::set<ChunkId> LiveChunksOn(NodeId node) const;

  // Records that `node` now holds a replica of `id` (replication ack).
  void AddReplica(const ChunkId& id, NodeId node);

  // Drops `node` from every chunk's replica list (node declared dead).
  // Returns chunks that lost their last replica (actual data loss).
  std::vector<ChunkId> RemoveNodeReplicas(NodeId node);

  // Chunks of committed versions whose live replica count (counting only
  // `online` nodes) is below the version's replication target. Each entry
  // carries the target so the scheduler knows how many copies to add.
  struct UnderReplicated {
    ChunkId chunk;
    int have = 0;
    int want = 0;
  };
  std::vector<UnderReplicated> FindUnderReplicated(
      const std::set<NodeId>& online) const;

  std::size_t TotalVersions() const;
  std::uint64_t TotalLogicalBytes() const;   // sum of file sizes
  std::uint64_t TotalUniqueBytes() const;    // sum of live chunk sizes

  // ---- Snapshot support (hot-standby manager, §IV.A) -----------------------
  struct ExportedState {
    std::vector<std::pair<std::string, FolderPolicy>> policies;
    std::vector<VersionRecord> versions;
    // Current replica locations (may exceed commit-time replicas after
    // background replication).
    std::vector<std::pair<ChunkId, std::vector<NodeId>>> chunk_replicas;
  };
  ExportedState Export() const;
  // Replaces the entire catalog; chunk refcounts are rebuilt from the
  // versions, then replica sets are overwritten from the snapshot.
  Status Import(const ExportedState& state);

 private:
  struct ChunkRecord {
    std::uint32_t size = 0;
    int refcount = 0;
    std::set<NodeId> replicas;
  };

  struct Folder {
    FolderPolicy policy;
    // Ordered by (node, timestep) for deterministic iteration.
    std::map<std::pair<std::string, std::uint64_t>, VersionRecord> versions;
  };

  void Ref(const ChunkLocation& loc);
  // Unrefs and erases dead chunk records.
  void Unref(const ChunkId& id);
  void RemoveVersionChunks(const VersionRecord& record);

  const VirtualClock* clock_;
  std::map<std::string, Folder> folders_;
  std::unordered_map<ChunkId, ChunkRecord, ChunkIdHash> chunks_;
};

}  // namespace stdchk
