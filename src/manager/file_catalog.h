// The manager's file catalog: application folders, versioned checkpoint
// images, chunk maps, chunk reference counts and replica locations.
//
// Responsibilities mapped to the paper:
//  * versioning + copy-on-write chunk sharing between successive images
//    (§IV.C): chunks are refcounted across versions, so committing a new
//    version that reuses prior chunks stores no duplicate data;
//  * lifetime management (§IV.D): per-folder retention policies
//    (no-intervention / automated-replace / automated-purge);
//  * replica bookkeeping feeding the replication scheduler and the GC
//    protocol (§IV.A).
//
// Concurrency: the catalog is internally sharded and thread-safe. State is
// partitioned twice, each partition under its own lock:
//  * folder shards, routed by hash(app) — a folder's versions, policies,
//    retention and lineage walks are shard-local;
//  * chunk shards, routed by hash(chunk id) — refcounts and replica sets
//    stay global (a chunk deduplicated across folders has exactly one
//    record), so dedup never diverges between folder shards.
// Lock hierarchy: a folder-shard lock may be held while taking chunk-shard
// locks (one at a time), never the reverse, and never two folder locks —
// except the snapshot paths (Export/Import), which take every lock in
// ascending index order (all folders, then all chunks) for a consistent
// cut. The hierarchy is enforced, not just documented: shard mutexes carry
// LockRank::kCatalogFolder / kCatalogChunk with the shard index as the
// intra-rank sequence (common/annotated_mutex.h), so a debug build aborts
// on any out-of-order acquisition and Clang's -Wthread-safety checks the
// GUARDED_BY/REQUIRES contracts. `shards == 1` degenerates to the
// historical single-map catalog: one
// folder map, one chunk map, identical iteration orders, bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "manager/types.h"
#include "manager/virtual_clock.h"

namespace stdchk {

// Per-shard observability counters (surfaced through ClusterStats).
struct CatalogShardStats {
  std::uint64_t ops = 0;                // catalog operations routed here
  std::uint64_t lock_acquisitions = 0;  // shard mutex acquisitions
  std::uint64_t lock_contended = 0;     // acquisitions that had to wait
};

// A mutex that counts acquisitions and contention (a failed try_lock before
// the blocking lock). Satisfies BasicLockable for std::unique_lock, carries
// a thread-safety capability for Clang analysis, and participates in the
// lock-rank validator: each shard mutex is constructed with its layer's rank
// and its shard index as the intra-rank sequence, so Export/Import's
// all-shards sweep is legal only in ascending index order.
class CAPABILITY("mutex") ShardMutex {
 public:
  ShardMutex(LockRank rank, std::uint32_t seq, const char* name)
      : rank_(static_cast<std::uint32_t>(rank)), seq_(seq), name_(name) {}

  ShardMutex(const ShardMutex&) = delete;
  ShardMutex& operator=(const ShardMutex&) = delete;

  void lock() ACQUIRE() {
    lockrank::OnAcquire(this, rank_, seq_, name_);
    if (!mu_.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void unlock() RELEASE() {
    mu_.unlock();
    lockrank::OnRelease(this);
  }

  std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::uint32_t rank_;
  std::uint32_t seq_;
  const char* name_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
};

// RAII guard Clang's analysis tracks (std::lock_guard is opaque to it).
class SCOPED_CAPABILITY ShardMutexLock {
 public:
  explicit ShardMutexLock(ShardMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ShardMutexLock() RELEASE() { mu_.unlock(); }

  ShardMutexLock(const ShardMutexLock&) = delete;
  ShardMutexLock& operator=(const ShardMutexLock&) = delete;

 private:
  ShardMutex& mu_;
};

class FileCatalog {
 public:
  explicit FileCatalog(const VirtualClock* clock, int shards = 1);

  // ---- Folder policies -------------------------------------------------
  void SetFolderPolicy(const std::string& app, const FolderPolicy& policy);
  FolderPolicy GetFolderPolicy(const std::string& app) const;

  // ---- Version lifecycle ------------------------------------------------
  // Atomically commits a version (the session-semantics commit point). The
  // chunk map's replica lists are folded into the catalog's chunk records.
  // Re-committing an existing name fails (checkpoint images are immutable).
  Status CommitVersion(const VersionRecord& record);

  Result<VersionRecord> GetVersion(const CheckpointName& name) const;

  // Latest committed timestep for (app, node).
  Result<VersionRecord> GetLatest(const std::string& app,
                                  const std::string& node) const;

  std::vector<CheckpointName> ListVersions(const std::string& app) const;
  std::vector<std::string> ListApps() const;
  bool Exists(const CheckpointName& name) const;

  Status DeleteVersion(const CheckpointName& name);
  // Deletes every version of an application (e.g. at successful job
  // completion). Returns the number of versions removed.
  Result<std::size_t> DeleteApp(const std::string& app);

  // Applies retention policies (replace/purge). Returns the names removed.
  // Walks folder shards independently — retention on one shard never
  // blocks commits on another.
  std::vector<CheckpointName> ApplyRetention();

  // ---- Chunk-level views --------------------------------------------------
  bool IsChunkLive(const ChunkId& id) const;
  // For dedup (FsCH/CbCH): which of `ids` the system already stores.
  std::vector<bool> KnownChunks(const std::vector<ChunkId>& ids) const;
  // Replica locations of a live chunk (empty if unknown).
  std::vector<NodeId> ChunkReplicas(const ChunkId& id) const;
  std::uint32_t ChunkSize(const ChunkId& id) const;

  // Set of live chunks the manager believes `node` holds (GC exchange).
  std::set<ChunkId> LiveChunksOn(NodeId node) const;

  // Records that `node` now holds a replica of `id` (replication ack).
  void AddReplica(const ChunkId& id, NodeId node);
  // GC-exchange reintegration: adds the replica iff the chunk is live,
  // reporting liveness, in one shard-lock acquisition.
  bool AddReplicaIfLive(const ChunkId& id, NodeId node);

  // Drops `node` from every chunk's replica list (node declared dead).
  // Returns chunks that lost their last replica (actual data loss).
  // Erasure-coded state is judged by the k-survivor rule instead: a shard
  // losing its only holder is not data loss by itself — the group id is
  // reported lost only when its live shard count drops below k (the paper's
  // replica-count availability generalized to "any k of k+m").
  std::vector<ChunkId> RemoveNodeReplicas(NodeId node);

  // Chunks of committed versions whose live replica count (counting only
  // `online` nodes) is below the version's replication target. Each entry
  // carries the target so the scheduler knows how many copies to add.
  struct UnderReplicated {
    ChunkId chunk;
    int have = 0;
    int want = 0;
  };
  std::vector<UnderReplicated> FindUnderReplicated(
      const std::set<NodeId>& online) const;

  // Erasure-coded groups of committed versions that are repairable but
  // degraded: at least one shard has no online holder while at least k
  // shards do. `shards` lists one online holder per position (kInvalidNode
  // for the missing ones) so the scheduler can build repair commands
  // without re-querying. Groups below k survivors are not returned — they
  // are unrepairable (surfaced through RemoveNodeReplicas as lost).
  struct DamagedGroup {
    ChunkId group;
    std::uint32_t chunk_size = 0;
    std::uint16_t ec_k = 0;
    std::uint16_t ec_m = 0;
    std::vector<ShardLocation> shards;  // shard order; holders refreshed
  };
  std::vector<DamagedGroup> FindDamagedGroups(
      const std::set<NodeId>& online) const;

  // Shard records released because their last referencing version was
  // deleted/purged (the metadata half of shard-group GC; the physical
  // bytes follow through the normal GC exchange). Cumulative.
  std::uint64_t ShardRecordsReleased() const {
    return shard_unrefs_.load(std::memory_order_relaxed);
  }

  std::size_t TotalVersions() const;
  std::uint64_t TotalLogicalBytes() const;   // sum of file sizes
  std::uint64_t TotalUniqueBytes() const;    // sum of live chunk sizes

  // ---- Snapshot support (hot-standby manager, §IV.A) -----------------------
  struct ExportedState {
    std::vector<std::pair<std::string, FolderPolicy>> policies;
    std::vector<VersionRecord> versions;
    // Current replica locations (may exceed commit-time replicas after
    // background replication).
    std::vector<std::pair<ChunkId, std::vector<NodeId>>> chunk_replicas;
  };
  // Consistent cut across all shards: policies/versions sorted by app then
  // (node, timestep); chunk replicas sorted by id for a stable snapshot.
  ExportedState Export() const;
  // Replaces the entire catalog; chunk refcounts are rebuilt from the
  // versions, then replica sets are overwritten from the snapshot.
  Status Import(const ExportedState& state);

  // ---- Shard observability -------------------------------------------------
  int shard_count() const { return static_cast<int>(folder_shards_.size()); }
  // Entry i merges folder shard i and chunk shard i.
  std::vector<CatalogShardStats> ShardStatsSnapshot() const;

 private:
  struct ChunkRecord {
    std::uint32_t size = 0;
    int refcount = 0;
    std::set<NodeId> replicas;
    // Erasure-coded group head (ChunkLocation::erasure_coded()): the shard
    // ids in shard order. The head's `replicas` lists whole-copy holders
    // only (normally none — parity, not copies, is the durability).
    std::uint16_t ec_k = 0;
    std::uint16_t ec_m = 0;
    std::vector<ChunkId> shard_ids;
    // Shard of an erasure-coded group: sized at its stored (unpadded)
    // length, holders in `replicas` like any chunk, so GC exchange,
    // LiveChunksOn and repair acks work on shards unchanged. `group_of`
    // points at the head for k-survivor loss accounting.
    bool is_shard = false;
    ChunkId group_of;
  };

  struct Folder {
    FolderPolicy policy;
    // Ordered by (node, timestep) for deterministic iteration.
    std::map<std::pair<std::string, std::uint64_t>, VersionRecord> versions;
  };

  struct FolderShard {
    explicit FolderShard(std::uint32_t seq)
        : mu(LockRank::kCatalogFolder, seq, "catalog_folder_shard") {}
    mutable ShardMutex mu;
    std::map<std::string, Folder> folders GUARDED_BY(mu);
    std::atomic<std::uint64_t> ops{0};
  };

  struct ChunkShard {
    explicit ChunkShard(std::uint32_t seq)
        : mu(LockRank::kCatalogChunk, seq, "catalog_chunk_shard") {}
    mutable ShardMutex mu;
    std::unordered_map<ChunkId, ChunkRecord, ChunkIdHash> chunks
        GUARDED_BY(mu);
    std::atomic<std::uint64_t> ops{0};
  };

  std::size_t FolderShardIndex(const std::string& app) const;
  std::size_t ChunkShardIndex(const ChunkId& id) const {
    return static_cast<std::size_t>(ChunkIdHash{}(id)) % chunk_shards_.size();
  }
  FolderShard& FolderShardFor(const std::string& app) const {
    return *folder_shards_[FolderShardIndex(app)];
  }
  ChunkShard& ChunkShardFor(const ChunkId& id) const {
    return *chunk_shards_[ChunkShardIndex(id)];
  }

  // Chunk-record mutation on a shard whose lock the caller already holds.
  static void RefIn(ChunkShard& shard, const ChunkLocation& loc)
      REQUIRES(shard.mu);
  static void RefShardIn(ChunkShard& shard, const ChunkLocation& loc,
                         std::size_t index) REQUIRES(shard.mu);
  void UnrefIn(ChunkShard& shard, const ChunkId& id) REQUIRES(shard.mu);
  // Locks each chunk's shard; caller may hold a folder-shard lock. For
  // erasure-coded locations the group head and every shard record are
  // (un)referenced, one chunk-shard lock at a time — never nested, so the
  // chunk-shard intra-rank order is irrelevant here.
  void RefChunks(const VersionRecord& record);
  void UnrefChunks(const VersionRecord& record);

  // Copies `record` with replica lists refreshed from the chunk records;
  // caller holds the owning folder-shard lock.
  VersionRecord RefreshedCopy(const VersionRecord& record) const;

  const VirtualClock* clock_;
  // unique_ptr: shards hold mutexes/atomics, which are not movable.
  std::vector<std::unique_ptr<FolderShard>> folder_shards_;
  std::vector<std::unique_ptr<ChunkShard>> chunk_shards_;
  std::atomic<std::uint64_t> shard_unrefs_{0};
};

}  // namespace stdchk
