// Virtual clock for the functional cluster. Tests advance it explicitly so
// heartbeat expiry, purge policies and replication pacing are deterministic;
// the examples drive it from wall time.
#pragma once

#include <atomic>
#include <cstdint>

#include "manager/types.h"

namespace stdchk {

class VirtualClock {
 public:
  explicit VirtualClock(ClockTime start_us = 0) : now_us_(start_us) {}

  ClockTime NowUs() const { return now_us_.load(std::memory_order_relaxed); }

  void AdvanceUs(ClockTime delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }
  void AdvanceSeconds(double s) {
    AdvanceUs(static_cast<ClockTime>(s * 1e6));
  }

 private:
  std::atomic<ClockTime> now_us_;
};

}  // namespace stdchk
