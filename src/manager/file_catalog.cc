#include "manager/file_catalog.h"

#include <algorithm>

#include "common/rolling_hash.h"  // Mix64

namespace stdchk {

namespace {

// FNV-1a over the application name, finalized with Mix64 so short names
// still spread across shards.
std::uint64_t AppHash(const std::string& app) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : app) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

}  // namespace

FileCatalog::FileCatalog(const VirtualClock* clock, int shards)
    : clock_(clock) {
  int n = std::max(1, shards);
  folder_shards_.reserve(static_cast<std::size_t>(n));
  chunk_shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Shard index doubles as the intra-rank lock sequence: all-shard sweeps
    // (Export/Import) must acquire in ascending index order.
    auto seq = static_cast<std::uint32_t>(i);
    folder_shards_.push_back(std::make_unique<FolderShard>(seq));
    chunk_shards_.push_back(std::make_unique<ChunkShard>(seq));
  }
}

std::size_t FileCatalog::FolderShardIndex(const std::string& app) const {
  return static_cast<std::size_t>(AppHash(app)) % folder_shards_.size();
}

// ---- Folder policies -------------------------------------------------------

void FileCatalog::SetFolderPolicy(const std::string& app,
                                  const FolderPolicy& policy) {
  FolderShard& shard = FolderShardFor(app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  shard.folders[app].policy = policy;
}

FolderPolicy FileCatalog::GetFolderPolicy(const std::string& app) const {
  FolderShard& shard = FolderShardFor(app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto it = shard.folders.find(app);
  return it == shard.folders.end() ? FolderPolicy{} : it->second.policy;
}

// ---- Chunk-record helpers --------------------------------------------------

void FileCatalog::RefIn(ChunkShard& shard, const ChunkLocation& loc) {
  ChunkRecord& rec = shard.chunks[loc.id];
  rec.size = loc.size;
  ++rec.refcount;
  for (NodeId node : loc.replicas) rec.replicas.insert(node);
  if (loc.erasure_coded()) {
    rec.ec_k = loc.ec_k;
    rec.ec_m = loc.ec_m;
    rec.shard_ids.clear();
    rec.shard_ids.reserve(loc.shards.size());
    for (const ShardLocation& sl : loc.shards) rec.shard_ids.push_back(sl.id);
  }
}

void FileCatalog::RefShardIn(ChunkShard& shard, const ChunkLocation& loc,
                             std::size_t index) {
  const ShardLocation& sl = loc.shards[index];
  ChunkRecord& rec = shard.chunks[sl.id];
  rec.size = static_cast<std::uint32_t>(
      ErasureShardLength(loc.size, loc.ec_k, static_cast<int>(index)));
  ++rec.refcount;
  rec.is_shard = true;
  rec.group_of = loc.id;
  if (sl.node != kInvalidNode) rec.replicas.insert(sl.node);
}

void FileCatalog::UnrefIn(ChunkShard& shard, const ChunkId& id) {
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) return;
  if (--it->second.refcount <= 0) {
    if (it->second.is_shard) {
      shard_unrefs_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.chunks.erase(it);
  }
}

void FileCatalog::RefChunks(const VersionRecord& record) {
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    {
      ChunkShard& shard = ChunkShardFor(loc.id);
      ShardMutexLock lock(shard.mu);
      RefIn(shard, loc);
    }
    if (!loc.erasure_coded()) continue;
    for (std::size_t s = 0; s < loc.shards.size(); ++s) {
      ChunkShard& shard = ChunkShardFor(loc.shards[s].id);
      ShardMutexLock lock(shard.mu);
      RefShardIn(shard, loc, s);
    }
  }
}

void FileCatalog::UnrefChunks(const VersionRecord& record) {
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    {
      ChunkShard& shard = ChunkShardFor(loc.id);
      ShardMutexLock lock(shard.mu);
      UnrefIn(shard, loc.id);
    }
    for (const ShardLocation& sl : loc.shards) {
      ChunkShard& shard = ChunkShardFor(sl.id);
      ShardMutexLock lock(shard.mu);
      UnrefIn(shard, sl.id);
    }
  }
}

// ---- Version lifecycle -----------------------------------------------------

Status FileCatalog::CommitVersion(const VersionRecord& record) {
  FolderShard& shard = FolderShardFor(record.name.app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  Folder& folder = shard.folders[record.name.app];
  auto key = std::make_pair(record.name.node, record.name.timestep);
  if (folder.versions.contains(key)) {
    return AlreadyExistsError("version " + record.name.ToString() +
                              " already committed (images are immutable)");
  }
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    if (loc.erasure_coded()) {
      // EC entries commit with zero whole replicas; their availability
      // invariant is "k live shards", not a replica count.
      if (loc.shards.size() !=
          static_cast<std::size_t>(loc.ec_k) + loc.ec_m) {
        return InvalidArgumentError(
            "erasure-coded chunk map entry must carry exactly k+m shards");
      }
      int live = 0;
      for (const ShardLocation& sl : loc.shards) {
        if (sl.node != kInvalidNode) ++live;
      }
      if (live < static_cast<int>(loc.ec_k)) {
        return InvalidArgumentError(
            "erasure-coded chunk map entry with fewer than k live shards");
      }
    } else if (loc.replicas.empty()) {
      return InvalidArgumentError("chunk map entry with no replicas");
    }
  }
  VersionRecord stored = record;
  stored.commit_time = clock_->NowUs();
  // Chunk refs under the folder lock: a concurrent delete of this folder
  // serializes behind us, so refcounts and the version list stay in step.
  RefChunks(stored);
  folder.versions.emplace(key, std::move(stored));
  return OkStatus();
}

VersionRecord FileCatalog::RefreshedCopy(const VersionRecord& record) const {
  // Refresh replica lists from the chunk records (replication may have
  // added copies since commit).
  VersionRecord out = record;
  for (ChunkLocation& loc : out.chunk_map.chunks) {
    {
      ChunkShard& shard = ChunkShardFor(loc.id);
      ShardMutexLock lock(shard.mu);
      auto chunk = shard.chunks.find(loc.id);
      if (chunk != shard.chunks.end()) {
        loc.replicas.assign(chunk->second.replicas.begin(),
                            chunk->second.replicas.end());
      }
    }
    // Shard holders move too (repair rebuilds a lost shard elsewhere; a
    // departed holder's replica entry is dropped): keep the commit-time
    // holder when it still stands, otherwise follow the record.
    for (ShardLocation& sl : loc.shards) {
      ChunkShard& shard = ChunkShardFor(sl.id);
      ShardMutexLock lock(shard.mu);
      auto it = shard.chunks.find(sl.id);
      if (it == shard.chunks.end()) {
        sl.node = kInvalidNode;
        continue;
      }
      const std::set<NodeId>& holders = it->second.replicas;
      if (!holders.contains(sl.node)) {
        sl.node = holders.empty() ? kInvalidNode : *holders.begin();
      }
    }
  }
  return out;
}

Result<VersionRecord> FileCatalog::GetVersion(
    const CheckpointName& name) const {
  FolderShard& shard = FolderShardFor(name.app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto folder = shard.folders.find(name.app);
  if (folder == shard.folders.end()) {
    return NotFoundError("no such application: " + name.app);
  }
  auto it = folder->second.versions.find({name.node, name.timestep});
  if (it == folder->second.versions.end()) {
    return NotFoundError("no such version: " + name.ToString());
  }
  return RefreshedCopy(it->second);
}

Result<VersionRecord> FileCatalog::GetLatest(const std::string& app,
                                             const std::string& node) const {
  FolderShard& shard = FolderShardFor(app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto folder = shard.folders.find(app);
  if (folder == shard.folders.end()) {
    return NotFoundError("no such application: " + app);
  }
  const VersionRecord* best = nullptr;
  for (const auto& [key, record] : folder->second.versions) {
    if (key.first != node) continue;
    if (best == nullptr || record.name.timestep > best->name.timestep) {
      best = &record;
    }
  }
  if (best == nullptr) {
    return NotFoundError("no versions for " + app + "." + node);
  }
  return RefreshedCopy(*best);
}

std::vector<CheckpointName> FileCatalog::ListVersions(
    const std::string& app) const {
  FolderShard& shard = FolderShardFor(app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  std::vector<CheckpointName> out;
  auto folder = shard.folders.find(app);
  if (folder == shard.folders.end()) return out;
  for (const auto& [key, record] : folder->second.versions) {
    out.push_back(record.name);
  }
  return out;
}

std::vector<std::string> FileCatalog::ListApps() const {
  std::vector<std::string> out;
  for (const auto& shard : folder_shards_) {
    shard->ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard->mu);
    for (const auto& [app, folder] : shard->folders) {
      if (!folder.versions.empty()) out.push_back(app);
    }
  }
  // Sorted output == single-map order at shards == 1 (no-op there).
  std::sort(out.begin(), out.end());
  return out;
}

bool FileCatalog::Exists(const CheckpointName& name) const {
  FolderShard& shard = FolderShardFor(name.app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto folder = shard.folders.find(name.app);
  return folder != shard.folders.end() &&
         folder->second.versions.contains({name.node, name.timestep});
}

Status FileCatalog::DeleteVersion(const CheckpointName& name) {
  FolderShard& shard = FolderShardFor(name.app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto folder = shard.folders.find(name.app);
  if (folder == shard.folders.end()) {
    return NotFoundError("no such application: " + name.app);
  }
  auto it = folder->second.versions.find({name.node, name.timestep});
  if (it == folder->second.versions.end()) {
    return NotFoundError("no such version: " + name.ToString());
  }
  UnrefChunks(it->second);
  folder->second.versions.erase(it);
  return OkStatus();
}

Result<std::size_t> FileCatalog::DeleteApp(const std::string& app) {
  FolderShard& shard = FolderShardFor(app);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto folder = shard.folders.find(app);
  if (folder == shard.folders.end()) {
    return NotFoundError("no such application: " + app);
  }
  std::size_t n = folder->second.versions.size();
  for (const auto& [key, record] : folder->second.versions) {
    UnrefChunks(record);
  }
  shard.folders.erase(folder);
  return n;
}

std::vector<CheckpointName> FileCatalog::ApplyRetention() {
  std::vector<CheckpointName> removed;
  ClockTime now = clock_->NowUs();

  // Each folder shard is swept under its own lock: retention on one shard
  // never blocks commits or reads on another.
  for (const auto& shard_ptr : folder_shards_) {
    FolderShard& shard = *shard_ptr;
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    for (auto& [app, folder] : shard.folders) {
      switch (folder.policy.retention) {
        case RetentionPolicy::kNoIntervention:
          break;

        case RetentionPolicy::kAutomatedReplace: {
          // Per (node) lineage keep only the newest `keep_last` timesteps.
          std::map<std::string, std::vector<std::uint64_t>> by_node;
          for (const auto& [key, record] : folder.versions) {
            by_node[key.first].push_back(key.second);
          }
          for (auto& [node, steps] : by_node) {
            std::sort(steps.begin(), steps.end());
            int keep = std::max(1, folder.policy.keep_last);
            if (static_cast<int>(steps.size()) <= keep) continue;
            steps.resize(steps.size() - static_cast<std::size_t>(keep));
            for (std::uint64_t step : steps) {
              auto it = folder.versions.find({node, step});
              removed.push_back(it->second.name);
              UnrefChunks(it->second);
              folder.versions.erase(it);
            }
          }
          break;
        }

        case RetentionPolicy::kAutomatedPurge: {
          for (auto it = folder.versions.begin();
               it != folder.versions.end();) {
            if (now - it->second.commit_time >= folder.policy.purge_age_us) {
              removed.push_back(it->second.name);
              UnrefChunks(it->second);
              it = folder.versions.erase(it);
            } else {
              ++it;
            }
          }
          break;
        }
      }
    }
  }
  return removed;
}

// ---- Chunk-level views -----------------------------------------------------

bool FileCatalog::IsChunkLive(const ChunkId& id) const {
  ChunkShard& shard = ChunkShardFor(id);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  return shard.chunks.contains(id);
}

std::vector<bool> FileCatalog::KnownChunks(
    const std::vector<ChunkId>& ids) const {
  std::vector<bool> out(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ChunkShard& shard = ChunkShardFor(ids[i]);
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    auto it = shard.chunks.find(ids[i]);
    out[i] = it != shard.chunks.end() && !it->second.replicas.empty();
  }
  return out;
}

std::vector<NodeId> FileCatalog::ChunkReplicas(const ChunkId& id) const {
  ChunkShard& shard = ChunkShardFor(id);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) return {};
  return std::vector<NodeId>(it->second.replicas.begin(),
                             it->second.replicas.end());
}

std::uint32_t FileCatalog::ChunkSize(const ChunkId& id) const {
  ChunkShard& shard = ChunkShardFor(id);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto it = shard.chunks.find(id);
  return it == shard.chunks.end() ? 0 : it->second.size;
}

std::set<ChunkId> FileCatalog::LiveChunksOn(NodeId node) const {
  std::set<ChunkId> out;
  for (const auto& shard_ptr : chunk_shards_) {
    ChunkShard& shard = *shard_ptr;
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    for (const auto& [id, rec] : shard.chunks) {
      if (rec.replicas.contains(node)) out.insert(id);
    }
  }
  return out;
}

void FileCatalog::AddReplica(const ChunkId& id, NodeId node) {
  ChunkShard& shard = ChunkShardFor(id);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it != shard.chunks.end()) it->second.replicas.insert(node);
}

bool FileCatalog::AddReplicaIfLive(const ChunkId& id, NodeId node) {
  ChunkShard& shard = ChunkShardFor(id);
  shard.ops.fetch_add(1, std::memory_order_relaxed);
  ShardMutexLock lock(shard.mu);
  auto it = shard.chunks.find(id);
  if (it == shard.chunks.end()) return false;
  it->second.replicas.insert(node);
  return true;
}

std::vector<ChunkId> FileCatalog::RemoveNodeReplicas(NodeId node) {
  // Phase 1: drop the node everywhere, collecting records that lost their
  // last holder. Groups are judged afterwards — the k-survivor check needs
  // other shards' records, and chunk-shard locks are never nested.
  std::vector<ChunkId> lost;
  std::set<ChunkId> damaged_groups;
  for (const auto& shard_ptr : chunk_shards_) {
    ChunkShard& shard = *shard_ptr;
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    for (auto& [id, rec] : shard.chunks) {
      if (rec.replicas.erase(node) > 0 && rec.replicas.empty()) {
        if (rec.is_shard) {
          damaged_groups.insert(rec.group_of);
        } else {
          lost.push_back(id);
        }
      }
    }
  }

  // Phase 2: a group whose live shard count fell below k is unrecoverable
  // — report the whole-chunk id as lost, the same signal a replicated
  // chunk emits when its last copy goes.
  for (const ChunkId& group : damaged_groups) {
    std::vector<ChunkId> shard_ids;
    std::uint16_t k = 0;
    {
      ChunkShard& shard = ChunkShardFor(group);
      ShardMutexLock lock(shard.mu);
      auto it = shard.chunks.find(group);
      if (it == shard.chunks.end()) continue;  // group already unref'd
      k = it->second.ec_k;
      shard_ids = it->second.shard_ids;
    }
    int live = 0;
    for (const ChunkId& sid : shard_ids) {
      ChunkShard& shard = ChunkShardFor(sid);
      ShardMutexLock lock(shard.mu);
      auto it = shard.chunks.find(sid);
      if (it != shard.chunks.end() && !it->second.replicas.empty()) ++live;
    }
    if (live < static_cast<int>(k)) lost.push_back(group);
  }
  return lost;
}

std::vector<FileCatalog::UnderReplicated> FileCatalog::FindUnderReplicated(
    const std::set<NodeId>& online) const {
  // A chunk's target is the max across versions referencing it; since we do
  // not track back-references, recompute per version (catalog sizes in this
  // system are small relative to data). Folder shards are walked in index
  // order so shards == 1 reproduces the historical single-map iteration.
  std::unordered_map<ChunkId, int, ChunkIdHash> targets;
  for (const auto& shard_ptr : folder_shards_) {
    FolderShard& shard = *shard_ptr;
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    for (const auto& [app, folder] : shard.folders) {
      for (const auto& [key, record] : folder.versions) {
        for (const ChunkLocation& loc : record.chunk_map.chunks) {
          int& t = targets[loc.id];
          t = std::max(t, record.replication_target);
        }
      }
    }
  }

  std::vector<UnderReplicated> out;
  for (const auto& [id, want] : targets) {
    ChunkShard& shard = ChunkShardFor(id);
    ShardMutexLock lock(shard.mu);
    auto it = shard.chunks.find(id);
    if (it == shard.chunks.end()) continue;
    int have = 0;
    for (NodeId node : it->second.replicas) {
      if (online.contains(node)) ++have;
    }
    if (have < want && have > 0) {
      out.push_back(UnderReplicated{id, have, want});
    }
  }
  return out;
}

std::vector<FileCatalog::DamagedGroup> FileCatalog::FindDamagedGroups(
    const std::set<NodeId>& online) const {
  // Collect every committed erasure-coded group (deduplicated: a group
  // shared by several versions is repaired once), then judge each against
  // the chunk records' current holders — commit-time placement is stale
  // the moment a holder departs or a repair lands a shard elsewhere.
  struct GroupShape {
    std::uint32_t chunk_size = 0;
    std::uint16_t ec_k = 0;
    std::uint16_t ec_m = 0;
    std::vector<ChunkId> shard_ids;
  };
  std::map<ChunkId, GroupShape> groups;
  for (const auto& shard_ptr : folder_shards_) {
    FolderShard& shard = *shard_ptr;
    shard.ops.fetch_add(1, std::memory_order_relaxed);
    ShardMutexLock lock(shard.mu);
    for (const auto& [app, folder] : shard.folders) {
      for (const auto& [key, record] : folder.versions) {
        for (const ChunkLocation& loc : record.chunk_map.chunks) {
          if (!loc.erasure_coded() || groups.contains(loc.id)) continue;
          GroupShape& shape = groups[loc.id];
          shape.chunk_size = loc.size;
          shape.ec_k = loc.ec_k;
          shape.ec_m = loc.ec_m;
          shape.shard_ids.reserve(loc.shards.size());
          for (const ShardLocation& sl : loc.shards) {
            shape.shard_ids.push_back(sl.id);
          }
        }
      }
    }
  }

  std::vector<DamagedGroup> out;
  for (const auto& [group, shape] : groups) {
    DamagedGroup dg;
    dg.group = group;
    dg.chunk_size = shape.chunk_size;
    dg.ec_k = shape.ec_k;
    dg.ec_m = shape.ec_m;
    int live = 0;
    for (const ChunkId& sid : shape.shard_ids) {
      ShardLocation sl;
      sl.id = sid;
      ChunkShard& shard = ChunkShardFor(sid);
      ShardMutexLock lock(shard.mu);
      auto it = shard.chunks.find(sid);
      if (it != shard.chunks.end()) {
        for (NodeId node : it->second.replicas) {
          if (online.contains(node)) {
            sl.node = node;
            break;
          }
        }
      }
      if (sl.node != kInvalidNode) ++live;
      dg.shards.push_back(sl);
    }
    bool missing = live < static_cast<int>(shape.shard_ids.size());
    if (missing && live >= static_cast<int>(shape.ec_k)) {
      out.push_back(std::move(dg));
    }
  }
  return out;
}

std::size_t FileCatalog::TotalVersions() const {
  std::size_t n = 0;
  for (const auto& shard_ptr : folder_shards_) {
    ShardMutexLock lock(shard_ptr->mu);
    for (const auto& [app, folder] : shard_ptr->folders) {
      n += folder.versions.size();
    }
  }
  return n;
}

std::uint64_t FileCatalog::TotalLogicalBytes() const {
  std::uint64_t n = 0;
  for (const auto& shard_ptr : folder_shards_) {
    ShardMutexLock lock(shard_ptr->mu);
    for (const auto& [app, folder] : shard_ptr->folders) {
      for (const auto& [key, record] : folder.versions) n += record.size;
    }
  }
  return n;
}

std::uint64_t FileCatalog::TotalUniqueBytes() const {
  std::uint64_t n = 0;
  for (const auto& shard_ptr : chunk_shards_) {
    ShardMutexLock lock(shard_ptr->mu);
    for (const auto& [id, rec] : shard_ptr->chunks) n += rec.size;
  }
  return n;
}

// ---- Snapshot support ------------------------------------------------------

// Lock-array pattern: a vector of unique_locks is opaque to Clang's
// analysis, so the whole-shard accesses below are checked by the runtime
// rank validator (ascending folder seq, then ascending chunk seq) instead.
FileCatalog::ExportedState FileCatalog::Export() const
    NO_THREAD_SAFETY_ANALYSIS {
  // Consistent cut: hold every shard lock at once, folders before chunks,
  // each group in ascending index order (the one sanctioned exception to
  // the one-folder-lock rule; see the lock hierarchy note in the header).
  std::vector<std::unique_lock<ShardMutex>> locks;
  locks.reserve(folder_shards_.size() + chunk_shards_.size());
  for (const auto& shard : folder_shards_) locks.emplace_back(shard->mu);
  for (const auto& shard : chunk_shards_) locks.emplace_back(shard->mu);

  ExportedState state;
  for (const auto& shard : folder_shards_) {
    for (const auto& [app, folder] : shard->folders) {
      state.policies.emplace_back(app, folder.policy);
      for (const auto& [key, record] : folder.versions) {
        state.versions.push_back(record);
      }
    }
  }
  for (const auto& shard : chunk_shards_) {
    for (const auto& [id, rec] : shard->chunks) {
      state.chunk_replicas.emplace_back(
          id, std::vector<NodeId>(rec.replicas.begin(), rec.replicas.end()));
    }
  }
  // Deterministic snapshot bytes regardless of shard count: sort the
  // cross-shard aggregates (no-ops for the folder walk at shards == 1).
  std::sort(state.policies.begin(), state.policies.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(state.versions.begin(), state.versions.end(),
            [](const VersionRecord& a, const VersionRecord& b) {
              return std::tie(a.name.app, a.name.node, a.name.timestep) <
                     std::tie(b.name.app, b.name.node, b.name.timestep);
            });
  std::sort(state.chunk_replicas.begin(), state.chunk_replicas.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return state;
}

// Same lock-array pattern as Export: runtime-rank-checked, not
// compile-checked.
Status FileCatalog::Import(const ExportedState& state)
    NO_THREAD_SAFETY_ANALYSIS {
  std::vector<std::unique_lock<ShardMutex>> locks;
  locks.reserve(folder_shards_.size() + chunk_shards_.size());
  for (const auto& shard : folder_shards_) locks.emplace_back(shard->mu);
  for (const auto& shard : chunk_shards_) locks.emplace_back(shard->mu);

  for (const auto& shard : folder_shards_) shard->folders.clear();
  for (const auto& shard : chunk_shards_) shard->chunks.clear();

  for (const auto& [app, policy] : state.policies) {
    folder_shards_[FolderShardIndex(app)]->folders[app].policy = policy;
  }
  for (const VersionRecord& record : state.versions) {
    Folder& folder =
        folder_shards_[FolderShardIndex(record.name.app)]
            ->folders[record.name.app];
    auto key = std::make_pair(record.name.node, record.name.timestep);
    if (folder.versions.contains(key)) {
      return InvalidArgumentError("duplicate version in snapshot: " +
                                  record.name.ToString());
    }
    // Unlike CommitVersion, preserve the snapshot's commit_time. All chunk
    // locks are already held, so mutate the shard maps directly.
    for (const ChunkLocation& loc : record.chunk_map.chunks) {
      RefIn(*chunk_shards_[ChunkShardIndex(loc.id)], loc);
      for (std::size_t s = 0; s < loc.shards.size(); ++s) {
        RefShardIn(*chunk_shards_[ChunkShardIndex(loc.shards[s].id)], loc, s);
      }
    }
    folder.versions.emplace(key, record);
  }
  for (const auto& [id, replicas] : state.chunk_replicas) {
    ChunkShard& shard = *chunk_shards_[ChunkShardIndex(id)];
    auto it = shard.chunks.find(id);
    if (it == shard.chunks.end()) {
      return InvalidArgumentError(
          "snapshot lists replicas for unreferenced chunk " + id.ToHex());
    }
    it->second.replicas.clear();
    it->second.replicas.insert(replicas.begin(), replicas.end());
  }
  return OkStatus();
}

std::vector<CatalogShardStats> FileCatalog::ShardStatsSnapshot() const {
  std::vector<CatalogShardStats> out(folder_shards_.size());
  for (std::size_t i = 0; i < folder_shards_.size(); ++i) {
    out[i].ops = folder_shards_[i]->ops.load(std::memory_order_relaxed) +
                 chunk_shards_[i]->ops.load(std::memory_order_relaxed);
    out[i].lock_acquisitions = folder_shards_[i]->mu.acquisitions() +
                               chunk_shards_[i]->mu.acquisitions();
    out[i].lock_contended =
        folder_shards_[i]->mu.contended() + chunk_shards_[i]->mu.contended();
  }
  return out;
}

}  // namespace stdchk
