#include "manager/file_catalog.h"

#include <algorithm>

namespace stdchk {

void FileCatalog::SetFolderPolicy(const std::string& app,
                                  const FolderPolicy& policy) {
  folders_[app].policy = policy;
}

FolderPolicy FileCatalog::GetFolderPolicy(const std::string& app) const {
  auto it = folders_.find(app);
  return it == folders_.end() ? FolderPolicy{} : it->second.policy;
}

void FileCatalog::Ref(const ChunkLocation& loc) {
  ChunkRecord& rec = chunks_[loc.id];
  rec.size = loc.size;
  ++rec.refcount;
  for (NodeId node : loc.replicas) rec.replicas.insert(node);
}

void FileCatalog::Unref(const ChunkId& id) {
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return;
  if (--it->second.refcount <= 0) chunks_.erase(it);
}

void FileCatalog::RemoveVersionChunks(const VersionRecord& record) {
  for (const ChunkLocation& loc : record.chunk_map.chunks) Unref(loc.id);
}

Status FileCatalog::CommitVersion(const VersionRecord& record) {
  Folder& folder = folders_[record.name.app];
  auto key = std::make_pair(record.name.node, record.name.timestep);
  if (folder.versions.contains(key)) {
    return AlreadyExistsError("version " + record.name.ToString() +
                              " already committed (images are immutable)");
  }
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    if (loc.replicas.empty()) {
      return InvalidArgumentError("chunk map entry with no replicas");
    }
  }
  VersionRecord stored = record;
  stored.commit_time = clock_->NowUs();
  for (const ChunkLocation& loc : stored.chunk_map.chunks) Ref(loc);
  folder.versions.emplace(key, std::move(stored));
  return OkStatus();
}

Result<VersionRecord> FileCatalog::GetVersion(
    const CheckpointName& name) const {
  auto folder = folders_.find(name.app);
  if (folder == folders_.end()) {
    return NotFoundError("no such application: " + name.app);
  }
  auto it = folder->second.versions.find({name.node, name.timestep});
  if (it == folder->second.versions.end()) {
    return NotFoundError("no such version: " + name.ToString());
  }
  // Refresh replica lists from the chunk records (replication may have
  // added copies since commit).
  VersionRecord out = it->second;
  for (ChunkLocation& loc : out.chunk_map.chunks) {
    auto chunk = chunks_.find(loc.id);
    if (chunk != chunks_.end()) {
      loc.replicas.assign(chunk->second.replicas.begin(),
                          chunk->second.replicas.end());
    }
  }
  return out;
}

Result<VersionRecord> FileCatalog::GetLatest(const std::string& app,
                                             const std::string& node) const {
  auto folder = folders_.find(app);
  if (folder == folders_.end()) {
    return NotFoundError("no such application: " + app);
  }
  const VersionRecord* best = nullptr;
  for (const auto& [key, record] : folder->second.versions) {
    if (key.first != node) continue;
    if (best == nullptr || record.name.timestep > best->name.timestep) {
      best = &record;
    }
  }
  if (best == nullptr) {
    return NotFoundError("no versions for " + app + "." + node);
  }
  return GetVersion(best->name);
}

std::vector<CheckpointName> FileCatalog::ListVersions(
    const std::string& app) const {
  std::vector<CheckpointName> out;
  auto folder = folders_.find(app);
  if (folder == folders_.end()) return out;
  for (const auto& [key, record] : folder->second.versions) {
    out.push_back(record.name);
  }
  return out;
}

std::vector<std::string> FileCatalog::ListApps() const {
  std::vector<std::string> out;
  for (const auto& [app, folder] : folders_) {
    if (!folder.versions.empty()) out.push_back(app);
  }
  return out;
}

bool FileCatalog::Exists(const CheckpointName& name) const {
  auto folder = folders_.find(name.app);
  return folder != folders_.end() &&
         folder->second.versions.contains({name.node, name.timestep});
}

Status FileCatalog::DeleteVersion(const CheckpointName& name) {
  auto folder = folders_.find(name.app);
  if (folder == folders_.end()) {
    return NotFoundError("no such application: " + name.app);
  }
  auto it = folder->second.versions.find({name.node, name.timestep});
  if (it == folder->second.versions.end()) {
    return NotFoundError("no such version: " + name.ToString());
  }
  RemoveVersionChunks(it->second);
  folder->second.versions.erase(it);
  return OkStatus();
}

Result<std::size_t> FileCatalog::DeleteApp(const std::string& app) {
  auto folder = folders_.find(app);
  if (folder == folders_.end()) {
    return NotFoundError("no such application: " + app);
  }
  std::size_t n = folder->second.versions.size();
  for (const auto& [key, record] : folder->second.versions) {
    RemoveVersionChunks(record);
  }
  folders_.erase(folder);
  return n;
}

std::vector<CheckpointName> FileCatalog::ApplyRetention() {
  std::vector<CheckpointName> removed;
  ClockTime now = clock_->NowUs();

  for (auto& [app, folder] : folders_) {
    switch (folder.policy.retention) {
      case RetentionPolicy::kNoIntervention:
        break;

      case RetentionPolicy::kAutomatedReplace: {
        // Per (node) lineage keep only the newest `keep_last` timesteps.
        std::map<std::string, std::vector<std::uint64_t>> by_node;
        for (const auto& [key, record] : folder.versions) {
          by_node[key.first].push_back(key.second);
        }
        for (auto& [node, steps] : by_node) {
          std::sort(steps.begin(), steps.end());
          int keep = std::max(1, folder.policy.keep_last);
          if (static_cast<int>(steps.size()) <= keep) continue;
          steps.resize(steps.size() - static_cast<std::size_t>(keep));
          for (std::uint64_t step : steps) {
            auto it = folder.versions.find({node, step});
            removed.push_back(it->second.name);
            RemoveVersionChunks(it->second);
            folder.versions.erase(it);
          }
        }
        break;
      }

      case RetentionPolicy::kAutomatedPurge: {
        for (auto it = folder.versions.begin(); it != folder.versions.end();) {
          if (now - it->second.commit_time >= folder.policy.purge_age_us) {
            removed.push_back(it->second.name);
            RemoveVersionChunks(it->second);
            it = folder.versions.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
    }
  }
  return removed;
}

bool FileCatalog::IsChunkLive(const ChunkId& id) const {
  return chunks_.contains(id);
}

std::vector<bool> FileCatalog::KnownChunks(
    const std::vector<ChunkId>& ids) const {
  std::vector<bool> out(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto it = chunks_.find(ids[i]);
    out[i] = it != chunks_.end() && !it->second.replicas.empty();
  }
  return out;
}

std::vector<NodeId> FileCatalog::ChunkReplicas(const ChunkId& id) const {
  auto it = chunks_.find(id);
  if (it == chunks_.end()) return {};
  return std::vector<NodeId>(it->second.replicas.begin(),
                             it->second.replicas.end());
}

std::uint32_t FileCatalog::ChunkSize(const ChunkId& id) const {
  auto it = chunks_.find(id);
  return it == chunks_.end() ? 0 : it->second.size;
}

std::set<ChunkId> FileCatalog::LiveChunksOn(NodeId node) const {
  std::set<ChunkId> out;
  for (const auto& [id, rec] : chunks_) {
    if (rec.replicas.contains(node)) out.insert(id);
  }
  return out;
}

void FileCatalog::AddReplica(const ChunkId& id, NodeId node) {
  auto it = chunks_.find(id);
  if (it != chunks_.end()) it->second.replicas.insert(node);
}

std::vector<ChunkId> FileCatalog::RemoveNodeReplicas(NodeId node) {
  std::vector<ChunkId> lost;
  for (auto& [id, rec] : chunks_) {
    if (rec.replicas.erase(node) > 0 && rec.replicas.empty()) {
      lost.push_back(id);
    }
  }
  return lost;
}

std::vector<FileCatalog::UnderReplicated> FileCatalog::FindUnderReplicated(
    const std::set<NodeId>& online) const {
  // A chunk's target is the max across versions referencing it; since we do
  // not track back-references, recompute per version (catalog sizes in this
  // system are small relative to data).
  std::unordered_map<ChunkId, int, ChunkIdHash> targets;
  for (const auto& [app, folder] : folders_) {
    for (const auto& [key, record] : folder.versions) {
      for (const ChunkLocation& loc : record.chunk_map.chunks) {
        int& t = targets[loc.id];
        t = std::max(t, record.replication_target);
      }
    }
  }

  std::vector<UnderReplicated> out;
  for (const auto& [id, want] : targets) {
    auto it = chunks_.find(id);
    if (it == chunks_.end()) continue;
    int have = 0;
    for (NodeId node : it->second.replicas) {
      if (online.contains(node)) ++have;
    }
    if (have < want && have > 0) {
      out.push_back(UnderReplicated{id, have, want});
    }
  }
  return out;
}

std::size_t FileCatalog::TotalVersions() const {
  std::size_t n = 0;
  for (const auto& [app, folder] : folders_) n += folder.versions.size();
  return n;
}

std::uint64_t FileCatalog::TotalLogicalBytes() const {
  std::uint64_t n = 0;
  for (const auto& [app, folder] : folders_) {
    for (const auto& [key, record] : folder.versions) n += record.size;
  }
  return n;
}

std::uint64_t FileCatalog::TotalUniqueBytes() const {
  std::uint64_t n = 0;
  for (const auto& [id, rec] : chunks_) n += rec.size;
  return n;
}

FileCatalog::ExportedState FileCatalog::Export() const {
  ExportedState state;
  for (const auto& [app, folder] : folders_) {
    state.policies.emplace_back(app, folder.policy);
    for (const auto& [key, record] : folder.versions) {
      state.versions.push_back(record);
    }
  }
  for (const auto& [id, rec] : chunks_) {
    state.chunk_replicas.emplace_back(
        id, std::vector<NodeId>(rec.replicas.begin(), rec.replicas.end()));
  }
  return state;
}

Status FileCatalog::Import(const ExportedState& state) {
  folders_.clear();
  chunks_.clear();
  for (const auto& [app, policy] : state.policies) {
    folders_[app].policy = policy;
  }
  for (const VersionRecord& record : state.versions) {
    Folder& folder = folders_[record.name.app];
    auto key = std::make_pair(record.name.node, record.name.timestep);
    if (folder.versions.contains(key)) {
      return InvalidArgumentError("duplicate version in snapshot: " +
                                  record.name.ToString());
    }
    // Unlike CommitVersion, preserve the snapshot's commit_time.
    for (const ChunkLocation& loc : record.chunk_map.chunks) Ref(loc);
    folder.versions.emplace(key, record);
  }
  for (const auto& [id, replicas] : state.chunk_replicas) {
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      return InvalidArgumentError(
          "snapshot lists replicas for unreferenced chunk " + id.ToHex());
    }
    it->second.replicas.clear();
    it->second.replicas.insert(replicas.begin(), replicas.end());
  }
  return OkStatus();
}

}  // namespace stdchk
