// Byte-buffer vocabulary types shared across stdchk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace stdchk {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

inline ByteSpan AsBytes(const std::string& s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteSpan bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

inline void Append(Bytes& dst, ByteSpan src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

// Size literals.
constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 10;
}
constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 20;
}
constexpr std::size_t operator""_GiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 30;
}

}  // namespace stdchk
