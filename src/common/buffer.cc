#include "common/buffer.h"

#include <sys/mman.h>

#include <atomic>

namespace stdchk {

BufferRef BufferRef::WrapMmap(void* addr, std::size_t length) {
  // The shared_ptr deleter is the unmap: it runs when the last BufferRef /
  // BufferSlice aliasing the region drops, wherever that happens.
  std::shared_ptr<const void> region(
      addr, [length](const void* p) {
        if (p != nullptr && length != 0) {
          ::munmap(const_cast<void*>(p), length);
        }
      });
  return WrapExternal(static_cast<const std::uint8_t*>(addr), length,
                      std::move(region));
}
namespace copy_stats {
namespace {

// Relaxed atomics: counters are read only at quiescent points (bench/test
// snapshots), never used for synchronization.
std::atomic<std::uint64_t> g_payload_copies{0};
std::atomic<std::uint64_t> g_payload_copy_bytes{0};
std::atomic<std::uint64_t> g_materializations{0};
std::atomic<std::uint64_t> g_materialized_bytes{0};

}  // namespace

void RecordCopy(std::size_t bytes) {
  g_payload_copies.fetch_add(1, std::memory_order_relaxed);
  g_payload_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void RecordMaterialize(std::size_t bytes) {
  g_materializations.fetch_add(1, std::memory_order_relaxed);
  g_materialized_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

CopyStatsSnapshot Snapshot() {
  CopyStatsSnapshot s;
  s.payload_copies = g_payload_copies.load(std::memory_order_relaxed);
  s.payload_copy_bytes = g_payload_copy_bytes.load(std::memory_order_relaxed);
  s.materializations = g_materializations.load(std::memory_order_relaxed);
  s.materialized_bytes = g_materialized_bytes.load(std::memory_order_relaxed);
  return s;
}

void Reset() {
  g_payload_copies.store(0, std::memory_order_relaxed);
  g_payload_copy_bytes.store(0, std::memory_order_relaxed);
  g_materializations.store(0, std::memory_order_relaxed);
  g_materialized_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace copy_stats
}  // namespace stdchk
