// Ref-counted immutable payload buffers — the zero-copy chunk data path.
//
// A chunk's bytes land in owned storage once (at ingest: the planner's
// staging buffer) — or never, when the backing is an mmap'd disk segment
// (BufferRef::WrapMmap) — and from then on every hop — upload plan,
// transport op, benefactor store, read-ahead cache — holds a BufferSlice
// that *aliases* the same backing storage. The backing is released (heap
// freed, region unmapped) when the last slice drops; a reader-held slice
// therefore stays valid even after the originating store deletes or GCs
// the chunk, and an mmap'd slice stays valid even after the segment file
// is unlinked.
//
// Ownership rules (see README "Data path"):
//   * BufferRef/BufferSlice contents are immutable; sharing is always safe.
//   * Whoever turns borrowed bytes (ByteSpan) into owned bytes pays for it
//     exactly once; CopyStats records every such materialization and every
//     later duplication, so benches can assert the hot path copies nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"

namespace stdchk {

// Process-wide payload copy/alloc accounting. `payload_copies` counts
// duplications of bytes that were already owned (BufferSlice::Copy,
// BufferSlice::ToBytes); `materializations` counts borrowed/external bytes
// landing in owned storage for the first time (planner ingest,
// BufferRef::Materialize). The write-path invariant proved by
// bench_datapath is payload_copies == 0 between chunker output and
// memory-store insertion.
struct CopyStatsSnapshot {
  std::uint64_t payload_copies = 0;
  std::uint64_t payload_copy_bytes = 0;
  std::uint64_t materializations = 0;
  std::uint64_t materialized_bytes = 0;
};

namespace copy_stats {
void RecordCopy(std::size_t bytes);
void RecordMaterialize(std::size_t bytes);
CopyStatsSnapshot Snapshot();
void Reset();
}  // namespace copy_stats

namespace detail {

// One immutable backing region: a pointer/size pair plus whatever keeps the
// storage alive — a heap Bytes vector, or an externally managed region such
// as an mmap'd segment file whose shared_ptr deleter munmaps. The Backing
// object itself is the stable identity handed out by backing_id() and the
// unit the stores' resident-bytes accounting counts.
struct BufferBacking {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::shared_ptr<const void> storage;
};

}  // namespace detail

// Shared ownership of one immutable byte buffer.
class BufferRef {
 public:
  BufferRef() = default;

  // Adopts `data` without copying (the canonical way a staging buffer
  // becomes shareable).
  static BufferRef Take(Bytes&& data) {
    auto bytes = std::make_shared<const Bytes>(std::move(data));
    const std::uint8_t* p = bytes->data();
    std::size_t n = bytes->size();
    return BufferRef(std::make_shared<const detail::BufferBacking>(
        detail::BufferBacking{p, n, std::move(bytes)}));
  }

  // Copies borrowed bytes into owned storage; counted as a materialization.
  static BufferRef Materialize(ByteSpan data) {
    copy_stats::RecordMaterialize(data.size());
    return Take(Bytes(data.begin(), data.end()));
  }

  // Wraps caller-provided storage without copying: `storage`'s deleter runs
  // when the last ref/slice aliasing the region drops. The canonical
  // producer is WrapMmap; anything whose lifetime a shared_ptr can manage
  // (arena block, foreign allocation) works the same way.
  static BufferRef WrapExternal(const std::uint8_t* data, std::size_t size,
                                std::shared_ptr<const void> storage) {
    return BufferRef(std::make_shared<const detail::BufferBacking>(
        detail::BufferBacking{data, size, std::move(storage)}));
  }

  // Adopts an mmap'd region: munmap(addr, length) runs when the last
  // ref/slice drops. `addr` must be the address of a successful mmap of
  // `length` bytes; the mapping (and thus every slice of it) stays valid
  // even after the backing file is unlinked. This is what makes disk-store
  // reads zero-copy: Get() hands out slices of the mapped segment instead
  // of materializing each chunk into fresh heap storage.
  static BufferRef WrapMmap(void* addr, std::size_t length);

  ByteSpan span() const {
    return backing_ ? ByteSpan(backing_->data, backing_->size) : ByteSpan();
  }

  // Non-owning liveness handle for the backing region: expired() flips
  // exactly when the last owning ref/slice drops and the storage is
  // actually released. Lets the disk store account mapped-but-unlinked
  // segment bytes (reader-held slices pinning unlinked files) without
  // itself pinning them.
  std::weak_ptr<const void> backing_handle() const { return backing_; }

  const std::uint8_t* data() const {
    return backing_ ? backing_->data : nullptr;
  }
  std::size_t size() const { return backing_ ? backing_->size : 0; }
  bool empty() const { return size() == 0; }
  explicit operator bool() const { return backing_ != nullptr; }

 private:
  friend class BufferSlice;
  explicit BufferRef(std::shared_ptr<const detail::BufferBacking> backing)
      : backing_(std::move(backing)) {}

  std::shared_ptr<const detail::BufferBacking> backing_;
};

// A view of [offset, offset+size) within a BufferRef that shares ownership
// of the backing buffer: copying a slice bumps a refcount, never payload
// bytes. The empty slice owns nothing.
class BufferSlice {
 public:
  BufferSlice() = default;

  explicit BufferSlice(BufferRef buffer)
      : owner_(std::move(buffer.backing_)) {
    if (owner_) span_ = ByteSpan(owner_->data, owner_->size);
  }

  BufferSlice(BufferRef buffer, std::size_t offset, std::size_t size)
      : owner_(std::move(buffer.backing_)) {
    if (owner_) span_ = ByteSpan(owner_->data + offset, size);
  }

  // Duplicates already-owned payload bytes; counted as a payload copy.
  // Boundary adapters (legacy span-based APIs, tests) use this — the hot
  // path must not.
  static BufferSlice Copy(ByteSpan data) {
    copy_stats::RecordCopy(data.size());
    return BufferSlice(BufferRef::Take(Bytes(data.begin(), data.end())));
  }

  ByteSpan span() const { return span_; }
  const std::uint8_t* data() const { return span_.data(); }
  std::size_t size() const { return span_.size(); }
  bool empty() const { return span_.empty(); }

  // A sub-view sharing the same backing buffer.
  BufferSlice Subslice(std::size_t offset, std::size_t size) const {
    BufferSlice out;
    out.owner_ = owner_;
    out.span_ = span_.subspan(offset, size);
    return out;
  }

  // Owned vector copy; counted as a payload copy.
  Bytes ToBytes() const {
    copy_stats::RecordCopy(span_.size());
    return Bytes(span_.begin(), span_.end());
  }

  // True when both slices alias the same backing buffer (test/bench
  // introspection for share-not-copy assertions).
  bool SharesBufferWith(const BufferSlice& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  // ---- Content-digest stamp ------------------------------------------------
  // Process-local memo of Sha1(span()), attached by whoever first names the
  // bytes (the planner's drain naming). The contents are immutable, so the
  // digest is a constant of the slice; stamping it lets every downstream
  // verification (benefactor put admission, read integrity) compare in O(1)
  // instead of re-hashing — "hash each byte once, end to end". Copies share
  // the stamp; Subslice() drops it (different bytes); and any boundary that
  // re-materializes the payload (disk store, a real wire) loses it
  // naturally, falling back to a full re-hash there. Stamp only a digest
  // computed from this very slice's bytes.
  void StampDigest(const Sha1Digest& digest) {
    digest_ = std::make_shared<const Sha1Digest>(digest);
  }
  const Sha1Digest* stamped_digest() const { return digest_.get(); }

  // Bytes the whole backing buffer occupies (>= size()): what this slice
  // actually pins. A slice of a drain generation keeps the entire
  // generation resident — the gap stores report via ResidentBytes(). For a
  // file-backed (mmap) slice this is the mapped region the slice keeps
  // alive, address space + page cache rather than heap.
  std::size_t backing_size() const { return owner_ ? owner_->size : 0; }

  // Identity of the backing buffer, stable for its lifetime; lets a store
  // count each pinned generation once. nullptr for the empty slice.
  const void* backing_id() const { return owner_.get(); }

 private:
  std::shared_ptr<const detail::BufferBacking> owner_;
  ByteSpan span_;
  std::shared_ptr<const Sha1Digest> digest_;  // see StampDigest()
};

// Content equality (spans compare element-wise; Bytes converts implicitly).
inline bool operator==(const BufferSlice& a, const BufferSlice& b) {
  ByteSpan x = a.span(), y = b.span();
  return x.size() == y.size() &&
         (x.size() == 0 || std::memcmp(x.data(), y.data(), x.size()) == 0);
}
inline bool operator==(const BufferSlice& a, ByteSpan b) {
  ByteSpan x = a.span();
  return x.size() == b.size() &&
         (x.size() == 0 || std::memcmp(x.data(), b.data(), x.size()) == 0);
}
inline bool operator==(ByteSpan a, const BufferSlice& b) { return b == a; }

}  // namespace stdchk
