#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace stdchk {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Sample::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Sample::Mean() const {
  if (values_.empty()) return 0.0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

void ThroughputTimeline::Record(double time_seconds, double bytes) {
  if (time_seconds < 0) return;
  std::size_t bucket = static_cast<std::size_t>(time_seconds / bucket_seconds_);
  if (bucket >= bucket_bytes_.size()) bucket_bytes_.resize(bucket + 1, 0.0);
  bucket_bytes_[bucket] += bytes;
}

std::vector<ThroughputTimeline::Point> ThroughputTimeline::Series() const {
  std::vector<Point> out;
  out.reserve(bucket_bytes_.size());
  for (std::size_t i = 0; i < bucket_bytes_.size(); ++i) {
    out.push_back(Point{(static_cast<double>(i) + 0.5) * bucket_seconds_,
                        bucket_bytes_[i] / bucket_seconds_ / (1 << 20)});
  }
  return out;
}

double ThroughputTimeline::PeakMBps() const {
  double peak = 0;
  for (const auto& p : Series()) peak = std::max(peak, p.mb_per_second);
  return peak;
}

double ThroughputTimeline::SustainedMBps() const {
  double total = 0;
  std::size_t active = 0;
  for (const auto& p : Series()) {
    if (p.mb_per_second > 0) {
      total += p.mb_per_second;
      ++active;
    }
  }
  return active ? total / static_cast<double>(active) : 0.0;
}

std::string FormatMBps(double mbps) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", mbps);
  return buf;
}

}  // namespace stdchk
