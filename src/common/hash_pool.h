// Work-stealing thread pool for CPU-bound fan-out, sized for the write
// path's parallel chunk naming (the paper's "offloading the computationally
// intensive hashing" future work).
//
// The shape is a blocking parallel-for, not an async task graph: the caller
// owns a batch of n independent index-addressed tasks, workers and the
// caller steal indices one at a time from a shared cursor (so a straggler
// chunk never serializes the rest behind a static partition), and
// ParallelFor returns only when every index has run. Results are written to
// caller-preallocated slots, so output order is the index order no matter
// which thread ran what — the determinism the committed chunk map relies on.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace stdchk {

class HashPool {
 public:
  // Pool for `threads`-way parallelism: spawns threads-1 persistent
  // workers, since the caller's thread always participates (0 = caller
  // only; values < 0 mean hardware concurrency).
  explicit HashPool(int threads);
  ~HashPool();

  HashPool(const HashPool&) = delete;
  HashPool& operator=(const HashPool&) = delete;

  // Process-wide pool sized to hardware concurrency, created on first use.
  // Sessions share it: hashing is CPU-bound, so one pool per process is the
  // right amount of parallelism regardless of how many writes are open.
  static HashPool& Shared();

  // The shared "how many threads does N mean" rule: values <= 0 resolve to
  // hardware concurrency (min 1). Used by the pool's own sizing and by
  // callers resolving a requested fan-out (ClientOptions::hash_workers).
  static int ResolveThreads(int threads);

  int worker_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(0) .. fn(n-1) across up to `max_workers` threads (including the
  // calling thread) and returns when all have finished. fn must be safe to
  // call concurrently for distinct indices. max_workers <= 1, n <= 1, or an
  // empty pool all degrade to a plain serial loop on the caller's thread —
  // bit-for-bit the serial path, no pool machinery touched.
  //
  // Returns the number of threads that actually worked the batch (caller +
  // workers that joined before it drained) — a measurement, not the
  // requested fan-out; a busy or slow-waking pool can return 1 even when
  // more was allowed.
  int ParallelFor(std::size_t n, int max_workers,
                  const std::function<void(std::size_t)>& fn) EXCLUDES(mu_);

  // Largest number of threads ParallelFor could use for a batch of n under
  // this pool (caller + joinable workers) — the upper bound on its return.
  int EffectiveWorkers(std::size_t n, int max_workers) const;

 private:
  // One ParallelFor call. Workers claim indices via next.fetch_add (the
  // stealing cursor); the last finisher signals the caller.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    int max_helpers = 0;          // workers allowed besides the caller
    std::atomic<int> helpers{0};  // workers that joined
    std::atomic<int> active{0};   // threads that ran >= 1 index
  };

  void WorkerLoop() EXCLUDES(mu_);
  // Claims and runs indices until the batch is drained; returns whether this
  // thread ran the batch's final task.
  bool RunShare(Batch& batch);
  // Pops drained batches off the queue's front and returns the first batch
  // with unclaimed indices and helper headroom (nullptr if none). Helpers
  // never leave a batch, so a non-joinable batch stays that way and wait
  // loops over this cannot busy-spin.
  std::shared_ptr<Batch> JoinableLocked() REQUIRES(mu_);

  Mutex mu_{LockRank::kHashPool, 0, "hash_pool"};
  CondVar work_cv_;  // workers: a batch was queued / stop
  CondVar done_cv_;  // callers: a batch completed
  std::deque<std::shared_ptr<Batch>> batches_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace stdchk
