#include "common/hash_pool.h"

#include <algorithm>

namespace stdchk {

int HashPool::ResolveThreads(int threads) {
  if (threads > 0) return threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

HashPool::HashPool(int threads) {
  if (threads < 0) threads = ResolveThreads(threads);
  // The caller participates in every batch, so a pool for N-way parallelism
  // needs N-1 workers (0 = a caller-only pool, always serial).
  int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HashPool::~HashPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

HashPool& HashPool::Shared() {
  static HashPool pool(-1);  // hardware concurrency
  return pool;
}

int HashPool::EffectiveWorkers(std::size_t n, int max_workers) const {
  if (n <= 1 || max_workers <= 1) return 1;
  std::size_t cap = std::min<std::size_t>(
      {static_cast<std::size_t>(max_workers), workers_.size() + 1, n});
  return static_cast<int>(std::max<std::size_t>(cap, 1));
}

bool HashPool::RunShare(Batch& batch) {
  bool finished_last = false;
  bool claimed_any = false;
  for (;;) {
    std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) break;
    if (!claimed_any) {
      claimed_any = true;
      batch.active.fetch_add(1, std::memory_order_relaxed);
    }
    (*batch.fn)(i);
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.count) {
      finished_last = true;
    }
  }
  return finished_last;
}

std::shared_ptr<HashPool::Batch> HashPool::JoinableLocked() {
  while (!batches_.empty() &&
         batches_.front()->next.load(std::memory_order_relaxed) >=
             batches_.front()->count) {
    batches_.pop_front();
  }
  for (const std::shared_ptr<Batch>& c : batches_) {
    if (c->next.load(std::memory_order_relaxed) < c->count &&
        c->helpers.load(std::memory_order_relaxed) < c->max_helpers) {
      return c;
    }
  }
  return nullptr;
}

void HashPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mu_);
      while (!stop_ && (batch = JoinableLocked()) == nullptr) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      // Join under the lock: max_helpers is never overshot.
      batch->helpers.fetch_add(1, std::memory_order_relaxed);
    }
    if (RunShare(*batch)) {
      {
        MutexLock lock(mu_);  // pair with the caller's wait
      }
      done_cv_.NotifyAll();
    }
  }
}

int HashPool::ParallelFor(std::size_t n, int max_workers,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return 0;
  int helpers = std::min<int>(
      {max_workers - 1, static_cast<int>(workers_.size()),
       static_cast<int>(std::min<std::size_t>(n - 1, 1u << 30))});
  if (helpers <= 0) {
    // Serial path, bit for bit: the pool is never touched.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return 1;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->count = n;
  batch->max_helpers = helpers;
  {
    MutexLock lock(mu_);
    batches_.push_back(batch);
  }
  work_cv_.NotifyAll();

  if (RunShare(*batch)) {
    done_cv_.NotifyAll();
  }
  {
    MutexLock lock(mu_);
    while (batch->done.load(std::memory_order_acquire) != batch->count) {
      done_cv_.Wait(mu_);
    }
  }
  // Threads that claimed at least one index — a joiner that raced to an
  // already-drained cursor worked nothing and is not counted. done==count
  // implies every claimer finished, so the read is final. At least the
  // caller or one worker claimed index 0.
  return std::max(1, batch->active.load(std::memory_order_acquire));
}

}  // namespace stdchk
