// CRC32-C (Castagnoli) — the per-record payload checksum of the disk
// store's segment log. Chosen over the content SHA-1 for recovery because
// a startup scan must classify every record of every segment as intact or
// torn before the store can serve; CRC is an order of magnitude cheaper
// and tampering detection still rests on SHA-1 content addressing at read
// time (the CRC only has to catch torn writes and media corruption).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace stdchk {

// Plain (non-reflected-output tricks, standard CRC32C as in iSCSI/ext4):
// crc of `data` continuing from `seed` (0 for a fresh checksum). Streaming
// use: Crc32c(b, Crc32c(a)) == Crc32c(ab).
std::uint32_t Crc32c(ByteSpan data, std::uint32_t seed = 0);

}  // namespace stdchk
