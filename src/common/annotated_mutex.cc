#include "common/annotated_mutex.h"

#if STDCHK_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>
#include <type_traits>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#define STDCHK_HAVE_BACKTRACE 1
#include <execinfo.h>
#endif
#endif
#ifndef STDCHK_HAVE_BACKTRACE
#define STDCHK_HAVE_BACKTRACE 0
#endif

namespace stdchk::lockrank {
namespace {

constexpr int kMaxFrames = 16;

struct HeldLock {
  const void* mu;
  std::uint32_t rank;
  std::uint32_t seq;
  const char* name;
  void* frames[kMaxFrames];
  int frame_count;
};

// Per-thread stack of ranked locks, in acquisition order. Validated
// acquisitions are strictly ascending by (rank, seq), so the top entry is
// always the maximum held.
//
// Deliberately a fixed array, not a std::vector: the stack must be
// trivially destructible. Static-storage objects (a global HashPool, a
// logger) lock ranked mutexes from their destructors, which run *after*
// __call_tls_dtors has torn down any thread_local with a destructor — a
// heap-backed container here is a use-after-free at exit. Depth covers the
// deepest legal chain (catalog Export holds every folder and chunk shard);
// overflow aborts loudly rather than dropping entries.
constexpr int kMaxHeld = 128;

struct HeldStackTls {
  HeldLock entries[kMaxHeld];
  int depth = 0;
};
static_assert(std::is_trivially_destructible_v<HeldStackTls>);

HeldStackTls& HeldStack() {
  thread_local HeldStackTls held;
  return held;
}

int CaptureFrames(void** frames) {
#if STDCHK_HAVE_BACKTRACE
  return backtrace(frames, kMaxFrames);
#else
  (void)frames;
  return 0;
#endif
}

void DumpFrames(const char* heading, void* const* frames, int count) {
  std::fprintf(stderr, "%s\n", heading);
#if STDCHK_HAVE_BACKTRACE
  if (count > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(frames), count, 2);
  } else {
    std::fprintf(stderr, "  <no frames captured>\n");
  }
#else
  (void)frames;
  (void)count;
  std::fprintf(stderr, "  <backtrace unavailable on this platform>\n");
#endif
}

[[noreturn]] void ReportViolation(const char* what, const HeldLock& conflict,
                                  const void* mu, std::uint32_t rank,
                                  std::uint32_t seq, const char* name) {
  const HeldStackTls& held = HeldStack();
  std::fprintf(stderr,
               "\n==== stdchk lock-rank violation: %s ====\n"
               "attempted: %-24s (rank %3u, seq %3u, %p)\n"
               "conflicts: %-24s (rank %3u, seq %3u, %p)\n"
               "locks held by this thread, in acquisition order:\n",
               what, name, rank, seq, mu, conflict.name, conflict.rank,
               conflict.seq, conflict.mu);
  for (int i = 0; i < held.depth; ++i) {
    const HeldLock& h = held.entries[i];
    std::fprintf(stderr, "  - %-24s (rank %3u, seq %3u, %p)%s\n", h.name,
                 h.rank, h.seq, h.mu, h.mu == conflict.mu ? "  <-- conflict" : "");
  }
  DumpFrames("conflicting lock was acquired at:", conflict.frames,
             conflict.frame_count);
  void* frames[kMaxFrames];
  int count = CaptureFrames(frames);
  DumpFrames("attempted acquisition at:", frames, count);
  std::fprintf(stderr,
               "lock hierarchy is documented in src/common/annotated_mutex.h; "
               "acquire in strictly ascending (rank, seq) order.\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const void* mu, std::uint32_t rank, std::uint32_t seq,
               const char* name) {
  HeldStackTls& held = HeldStack();
  for (int i = 0; i < held.depth; ++i) {
    if (held.entries[i].mu == mu) {
      ReportViolation("recursive acquisition of a held lock", held.entries[i],
                      mu, rank, seq, name);
    }
  }
  if (held.depth > 0) {
    // Ascending invariant makes the top entry the maximum (rank, seq) held.
    const HeldLock& top = held.entries[held.depth - 1];
    if (rank < top.rank || (rank == top.rank && seq <= top.seq)) {
      ReportViolation("out-of-order acquisition", top, mu, rank, seq, name);
    }
  }
  if (held.depth == kMaxHeld) {
    std::fprintf(stderr,
                 "stdchk lock-rank validator: %d ranked locks held by one "
                 "thread — deeper than any legal chain; aborting.\n",
                 kMaxHeld);
    std::abort();
  }
  HeldLock& h = held.entries[held.depth++];
  h.mu = mu;
  h.rank = rank;
  h.seq = seq;
  h.name = name;
  h.frame_count = CaptureFrames(h.frames);
}

void OnRelease(const void* mu) {
  HeldStackTls& held = HeldStack();
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.entries[i].mu == mu) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.depth;
      return;
    }
  }
  // A release we never tracked (lock taken before checks were compiled in,
  // or an unranked handoff): nothing to do.
}

std::size_t HeldDepth() {
  return static_cast<std::size_t>(HeldStack().depth);
}

}  // namespace stdchk::lockrank

#endif  // STDCHK_LOCK_RANK_CHECKS
