#include "common/crc32.h"

#include <array>
#include <cstring>

namespace stdchk {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32-C, reflected

// Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration instead of one — table generation runs once per process.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

std::uint32_t Crc32c(ByteSpan data, std::uint32_t seed) {
  const auto& t = tables().t;
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The 8-byte fold XORs the running crc into the word's low four bytes,
  // which is only the first-four-input-bytes on little-endian hosts.
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: crc folds into the low 4 bytes
    crc = t[7][word & 0xFF] ^ t[6][(word >> 8) & 0xFF] ^
          t[5][(word >> 16) & 0xFF] ^ t[4][(word >> 24) & 0xFF] ^
          t[3][(word >> 32) & 0xFF] ^ t[2][(word >> 40) & 0xFF] ^
          t[1][(word >> 48) & 0xFF] ^ t[0][word >> 56];
    p += 8;
    n -= 8;
  }
#endif
  while (n--) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace stdchk
