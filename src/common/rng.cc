#include "common/rng.h"

#include <cmath>

#include "common/rolling_hash.h"  // Mix64

namespace stdchk {
namespace {

inline std::uint64_t RotL(std::uint64_t v, int n) {
  return (v << n) | (v >> (64 - n));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  // splitmix64 expansion of the seed into the xoshiro state, as recommended
  // by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ull;
    s = Mix64(x);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

void Rng::Fill(MutableByteSpan out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    std::uint64_t v = Next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < out.size()) {
    std::uint64_t v = Next();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

Bytes Rng::RandomBytes(std::size_t n) {
  Bytes out(n);
  Fill(MutableByteSpan(out));
  return out;
}

}  // namespace stdchk
