// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed:
// workload generators, striping tie-breaks, failure injection. Determinism
// matters because both the DES and the functional tests must be replayable.
#pragma once

#include <cstdint>
#include <limits>

#include "common/bytes.h"

namespace stdchk {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66Dull) { Seed(seed); }

  void Seed(std::uint64_t seed);

  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Exponentially distributed value with the given mean (for Poisson
  // arrival processes in the simulator).
  double NextExponential(double mean);

  // Fills `out` with pseudo-random bytes.
  void Fill(MutableByteSpan out);

  // Returns `n` random bytes.
  Bytes RandomBytes(std::size_t n);

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return Next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace stdchk
