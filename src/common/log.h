// Minimal leveled logger. Off by default at DEBUG so tests stay quiet;
// benches and examples raise the level when narrating.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace stdchk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Write(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
  std::mutex mu_;
};

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::Instance().Write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define STDCHK_LOG(severity, component)                        \
  if (::stdchk::Logger::Instance().level() <=                  \
      ::stdchk::LogLevel::severity)                            \
  ::stdchk::internal::LogLine(::stdchk::LogLevel::severity, component)

}  // namespace stdchk
