// Minimal leveled logger. Off by default at DEBUG so tests stay quiet;
// benches and examples raise the level when narrating.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/annotated_mutex.h"

namespace stdchk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance();

  // level_ is a lock-free atomic: the STDCHK_LOG macro reads it on every
  // (possibly filtered-out) log site, and benches flip it concurrently with
  // worker threads logging. Relaxed is enough — it's a filter, not a fence.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  void Write(LogLevel level, std::string_view component, std::string_view msg)
      EXCLUDES(mu_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarning};
  // kLogger is the highest rank: logging is legal while holding any other
  // lock in the system.
  Mutex mu_{LockRank::kLogger, 0, "logger"};
};

namespace internal {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::Instance().Write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define STDCHK_LOG(severity, component)                        \
  if (::stdchk::Logger::Instance().level() <=                  \
      ::stdchk::LogLevel::severity)                            \
  ::stdchk::internal::LogLine(::stdchk::LogLevel::severity, component)

}  // namespace stdchk
