// Small statistics toolkit used by the benchmarks and the simulator:
// running mean/stddev (Welford), min/max, and a time-bucketed throughput
// series for Figure-8 style plots.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stdchk {

class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact percentiles over a retained sample vector (fine at bench scale).
class Sample {
 public:
  void Add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  double Percentile(double p) const;  // p in [0,100]
  double Mean() const;

 private:
  std::vector<double> values_;
};

// Accumulates (time, bytes) completions into fixed-width buckets and
// reports per-bucket throughput — used to regenerate the Figure 8 timeline.
class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(double bucket_seconds)
      : bucket_seconds_(bucket_seconds) {}

  void Record(double time_seconds, double bytes);

  struct Point {
    double time_seconds;
    double mb_per_second;
  };
  std::vector<Point> Series() const;

  double PeakMBps() const;
  // Mean throughput over buckets with any traffic (steady-state estimate).
  double SustainedMBps() const;

 private:
  double bucket_seconds_;
  std::vector<double> bucket_bytes_;
};

// Render helpers for bench output tables.
std::string FormatMBps(double mbps);

}  // namespace stdchk
