// Lightweight Status / Result<T> error-handling vocabulary used across
// stdchk. Modeled after the widely used absl::Status idiom: recoverable
// failures travel as values, exceptions are reserved for programming errors.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace stdchk {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,       // transient: node offline, connection refused
  kResourceExhausted, // out of space / quota
  kDataLoss,          // integrity check failed / chunks unrecoverable
  kTimeout,
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Value type carrying success or an error code plus human-readable detail.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DataLossError(std::string message);
Status TimeoutError(std::string message);
Status InternalError(std::string message);

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = OkStatus();
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

// Propagate a non-OK status out of the current function.
#define STDCHK_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::stdchk::Status status_macro_ = (expr);    \
    if (!status_macro_.ok()) return status_macro_; \
  } while (false)

// Evaluate a Result<T> expression; on error return its status, otherwise
// bind the unwrapped value to `lhs`.
#define STDCHK_ASSIGN_OR_RETURN(lhs, expr)        \
  STDCHK_ASSIGN_OR_RETURN_IMPL_(                  \
      STDCHK_MACRO_CONCAT_(result_, __LINE__), lhs, expr)
#define STDCHK_MACRO_CONCAT_INNER_(a, b) a##b
#define STDCHK_MACRO_CONCAT_(a, b) STDCHK_MACRO_CONCAT_INNER_(a, b)
#define STDCHK_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace stdchk
