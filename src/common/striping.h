// Round-robin striping discipline shared by the functional client's
// placement policy and the perf write-pipeline models (paper §IV.A: chunks
// are "striped across benefactor nodes" in round-robin order).
#pragma once

#include <cstddef>
#include <vector>

namespace stdchk {

// Cursor over a stripe of targets. `Peek(stripe, k)` is the member k steps
// past the cursor (wrapping); `Advance` moves the cursor one member, the
// per-chunk step both the client and the models use.
class RoundRobinCursor {
 public:
  template <typename T>
  const T& Peek(const std::vector<T>& stripe, std::size_t steps = 0) const {
    return stripe[(next_ + steps) % stripe.size()];
  }

  void Advance(std::size_t stripe_size) {
    if (stripe_size != 0) next_ = (next_ + 1) % stripe_size;
  }

  std::size_t position() const { return next_; }

 private:
  std::size_t next_ = 0;
};

}  // namespace stdchk
