// Rabin-Karp style polynomial rolling hash over a fixed window of m bytes.
//
// This is the primitive behind the CbCH (content-based compare-by-hash)
// boundary detector (paper §IV.C, after LBFS): slide an m-byte window over
// the file; declare a chunk boundary whenever the low k bits of the window
// hash are all zero.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace stdchk {

class RollingHash {
 public:
  // `window` is m, the number of bytes covered by the hash.
  explicit RollingHash(std::size_t window);

  std::size_t window() const { return window_; }

  // Resets to the empty-window state.
  void Reset();

  // Pushes one byte into the window. Once the window is full, the oldest
  // byte must be provided via Roll() instead.
  void Push(std::uint8_t in);

  // Slides the window one byte: removes `out` (the byte leaving the window)
  // and appends `in`.
  void Roll(std::uint8_t out, std::uint8_t in);

  std::uint64_t value() const { return hash_; }

  // True when the low `k_bits` of the current hash are all zero — the CbCH
  // chunk-boundary condition. The hash is mixed first so that low-entropy
  // inputs (e.g. runs of zero bytes) do not degenerate.
  bool IsBoundary(int k_bits) const;

  // Polynomial base; public so inlined scan loops (chkpt/chunker.cc) can
  // reproduce this hash exactly without a per-byte function call.
  static constexpr std::uint64_t kBase = 0x100000001b3ull;

 private:
  std::size_t window_;
  std::uint64_t hash_ = 0;
  std::uint64_t base_pow_window_;  // kBase^window, for removing old bytes
};

// 64-bit finalizer (splitmix64-style) used to decorrelate the polynomial
// hash bits before masking.
std::uint64_t Mix64(std::uint64_t v);

// Gear/CDC rolling hash: h' = (h << 1) + kTable[byte]. One shift, one add,
// one table lookup per byte — no multiplies, no explicit window ring (each
// byte's contribution shifts out of the 64-bit state after 64 steps, so the
// effective window is the last 64 bytes). The cheap replacement for the
// polynomial-roll + Mix64 boundary scan in the CbCH hot loop; boundary
// checks mask the TOP bits, which mix the whole effective window (the low
// bits only see the most recent bytes).
namespace gear {

// 256 pseudorandom 64-bit constants, fixed forever: chunk boundaries are
// content addresses' foundation, so the table is part of the on-disk/
// on-wire format once images are deduplicated against each other.
extern const std::array<std::uint64_t, 256> kTable;

inline std::uint64_t Update(std::uint64_t h, std::uint8_t b) {
  return (h << 1) + kTable[b];
}

// Mask selecting the top k bits; boundary when (h & mask) == 0, giving the
// same 2^-k per-position boundary probability as the Mix64 low-bit check.
inline std::uint64_t BoundaryMask(int k_bits) {
  if (k_bits <= 0) return 0;
  if (k_bits >= 64) return ~0ull;
  return ((1ull << k_bits) - 1) << (64 - k_bits);
}

}  // namespace gear

}  // namespace stdchk
