// Content hashing used for content-addressed chunk naming (compare-by-hash).
//
// The paper names chunks by a cryptographic hash of their content (§IV.C,
// "content based addressability"). We implement SHA-1 from scratch (the hash
// LBFS and the 2008-era systems used) plus FNV-1a for cheap non-cryptographic
// needs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace stdchk {

// 160-bit SHA-1 digest. Used as the content address of a chunk.
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  auto operator<=>(const Sha1Digest&) const = default;

  // Lowercase hex rendering, e.g. "da39a3ee5e6b4b0d3255bfef95601890afd80709".
  std::string ToHex() const;

  // First 8 bytes as an integer; convenient hash-table key.
  std::uint64_t Prefix64() const;
};

// One-shot SHA-1.
Sha1Digest Sha1(ByteSpan data);

// Streaming SHA-1 for data that arrives in pieces (e.g. incremental writes).
// Whole multi-block spans are compressed in place — only sub-block
// head/tail fragments stage through the 64-byte buffer.
class Sha1Hasher {
 public:
  Sha1Hasher();
  void Update(ByteSpan data);
  Sha1Digest Finish();

 private:
  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// Which block compressor backs Sha1/Sha1Hasher. kAuto picks the fastest
// the CPU supports (x86 SHA extensions when present, else the unrolled
// portable compressor). kReference is the straightforward textbook
// compressor (w[80] expansion, per-byte loads, branchy round loop) kept
// as the differential-testing oracle and as bench_datapath's faithful
// pre-optimization baseline.
enum class Sha1Impl { kAuto, kPortable, kShaNi, kReference };

// The implementation kAuto resolves to right now.
Sha1Impl Sha1ActiveImpl();

// Forces an implementation (benches compare, tests cross-check). Requesting
// kShaNi on a CPU without SHA extensions falls back to kPortable; kAuto
// restores runtime detection.
void Sha1ForceImpl(Sha1Impl impl);

// FNV-1a 64-bit, for hash tables and cheap fingerprints.
std::uint64_t Fnv1a64(ByteSpan data);
std::uint64_t Fnv1a64(std::string_view data);

struct Sha1DigestHash {
  std::size_t operator()(const Sha1Digest& d) const {
    return static_cast<std::size_t>(d.Prefix64());
  }
};

}  // namespace stdchk
