#include "common/log.h"

#include <cstdio>

namespace stdchk {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (level < this->level()) return;
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n",
               kNames[static_cast<int>(level)],
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace stdchk
