// Minimal binary serialization used for manager-metadata snapshots (the
// hot-standby failover path). Little-endian, length-prefixed, no schema
// evolution — snapshots are same-version, same-process artifacts.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace stdchk {

class BinaryWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Blob(ByteSpan b) {
    U32(static_cast<std::uint32_t>(b.size()));
    Raw(b.data(), b.size());
  }

  const Bytes& buffer() const { return out_; }
  Bytes Take() { return std::move(out_); }

 private:
  void Raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), bytes, bytes + n);
  }
  Bytes out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) : data_(data) {}

  Result<std::uint8_t> U8() {
    STDCHK_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }
  Result<std::uint32_t> U32() { return Fixed<std::uint32_t>(); }
  Result<std::uint64_t> U64() { return Fixed<std::uint64_t>(); }
  Result<std::int64_t> I64() { return Fixed<std::int64_t>(); }
  Result<double> F64() { return Fixed<double>(); }
  Result<bool> Bool() {
    STDCHK_ASSIGN_OR_RETURN(std::uint8_t v, U8());
    return v != 0;
  }

  Result<std::string> Str() {
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t n, U32());
    STDCHK_RETURN_IF_ERROR(Need(n));
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  Result<Bytes> Blob() {
    STDCHK_ASSIGN_OR_RETURN(std::uint32_t n, U32());
    STDCHK_RETURN_IF_ERROR(Need(n));
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> Fixed() {
    STDCHK_RETURN_IF_ERROR(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  Status Need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      return DataLossError("truncated snapshot: need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(pos_));
    }
    return OkStatus();
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace stdchk
