#include "common/rolling_hash.h"

namespace stdchk {

std::uint64_t Mix64(std::uint64_t v) {
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  return v;
}

RollingHash::RollingHash(std::size_t window) : window_(window) {
  // The oldest byte's coefficient is kBase^(window-1); precompute it for
  // O(1) removal in Roll().
  base_pow_window_ = 1;
  for (std::size_t i = 0; i + 1 < window_; ++i) base_pow_window_ *= kBase;
}

void RollingHash::Reset() { hash_ = 0; }

void RollingHash::Push(std::uint8_t in) {
  hash_ = hash_ * kBase + (static_cast<std::uint64_t>(in) + 1);
}

void RollingHash::Roll(std::uint8_t out, std::uint8_t in) {
  hash_ -= (static_cast<std::uint64_t>(out) + 1) * base_pow_window_;
  hash_ = hash_ * kBase + (static_cast<std::uint64_t>(in) + 1);
}

bool RollingHash::IsBoundary(int k_bits) const {
  const std::uint64_t mask = (k_bits >= 64)
                                 ? ~0ull
                                 : ((1ull << k_bits) - 1);
  return (Mix64(hash_) & mask) == 0;
}

namespace gear {
namespace {

// splitmix64 stream (constexpr-friendly duplicate of Mix64's finalizer with
// the standard golden-ratio increment) — deterministic, seedless table.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::array<std::uint64_t, 256> MakeTable() {
  std::array<std::uint64_t, 256> table{};
  std::uint64_t state = 0x7375646368656172ull;  // "gear" table seed
  for (std::uint64_t& entry : table) entry = SplitMix64(state);
  return table;
}

}  // namespace

const std::array<std::uint64_t, 256> kTable = MakeTable();

}  // namespace gear

}  // namespace stdchk
