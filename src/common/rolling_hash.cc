#include "common/rolling_hash.h"

namespace stdchk {

std::uint64_t Mix64(std::uint64_t v) {
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  return v;
}

RollingHash::RollingHash(std::size_t window) : window_(window) {
  // The oldest byte's coefficient is kBase^(window-1); precompute it for
  // O(1) removal in Roll().
  base_pow_window_ = 1;
  for (std::size_t i = 0; i + 1 < window_; ++i) base_pow_window_ *= kBase;
}

void RollingHash::Reset() { hash_ = 0; }

void RollingHash::Push(std::uint8_t in) {
  hash_ = hash_ * kBase + (static_cast<std::uint64_t>(in) + 1);
}

void RollingHash::Roll(std::uint8_t out, std::uint8_t in) {
  hash_ -= (static_cast<std::uint64_t>(out) + 1) * base_pow_window_;
  hash_ = hash_ * kBase + (static_cast<std::uint64_t>(in) + 1);
}

bool RollingHash::IsBoundary(int k_bits) const {
  const std::uint64_t mask = (k_bits >= 64)
                                 ? ~0ull
                                 : ((1ull << k_bits) - 1);
  return (Mix64(hash_) & mask) == 0;
}

}  // namespace stdchk
