// Simulated-time vocabulary. The DES runs on an integer nanosecond clock so
// event ordering is exact and runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace stdchk {

// Nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kSimNever = INT64_MAX;

constexpr SimTime Nanoseconds(std::int64_t n) { return n; }
constexpr SimTime Microseconds(std::int64_t us) { return us * 1'000; }
constexpr SimTime Milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }

// Time to move `bytes` through a resource of `mb_per_s` MB/s (MB = 2^20).
constexpr SimTime TransferTime(double bytes, double mb_per_s) {
  return static_cast<SimTime>(bytes / (mb_per_s * 1048576.0) * 1e9);
}

// Throughput in MB/s for `bytes` moved in `elapsed` simulated time.
constexpr double ThroughputMBps(double bytes, SimTime elapsed) {
  return elapsed > 0 ? bytes / 1048576.0 / ToSeconds(elapsed) : 0.0;
}

}  // namespace stdchk
