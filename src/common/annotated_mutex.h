// Compile-time + debug-runtime concurrency contracts.
//
// Two enforcement layers share this header:
//
//  1. Clang Thread Safety Analysis macros (CAPABILITY / GUARDED_BY /
//     REQUIRES / ACQUIRE / RELEASE / EXCLUDES ...). Under Clang with
//     -Wthread-safety (CMake: -DSTDCHK_THREAD_SAFETY=ON) every guarded
//     member access and every lock contract is checked at compile time;
//     under GCC and other compilers the macros expand to nothing.
//
//  2. A debug-build lock-rank validator. Every stdchk::Mutex carries a
//     static LockRank (plus an intra-rank sequence number for shard
//     arrays); a thread acquiring locks in anything but strictly
//     ascending (rank, seq) order aborts immediately with a report of
//     the attempted lock, every lock the thread holds, the conflicting
//     lock's acquisition backtrace and the current backtrace. This turns
//     the documented lock hierarchy (folder -> chunk, manager ->
//     registry; see LockRank below) from a comment into executable law.
//     Compiled out when STDCHK_LOCK_RANK_CHECKS is 0 (CMake option;
//     default ON so the tier-1 suite always runs it).
//
// Rules for new code:
//  * give every mutex a LockRank from the table below (extend the table
//    when a new subsystem appears — never reuse a rank for a lock that
//    can nest with its rank-mate);
//  * annotate every member a mutex guards with GUARDED_BY(mu_) and every
//    private held-lock helper with REQUIRES(mu_);
//  * lock through MutexLock / ReaderLock / WriterLock so Clang sees the
//    acquisition; raw lock()/unlock() only for lock-array patterns, under
//    a NO_THREAD_SAFETY_ANALYSIS function with a comment saying why.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// Default the runtime validator ON; the build system passes
// -DSTDCHK_LOCK_RANK_CHECKS=0 to compile it out (Release benches).
#ifndef STDCHK_LOCK_RANK_CHECKS
#define STDCHK_LOCK_RANK_CHECKS 1
#endif

// ---- Clang Thread Safety Analysis attribute macros -------------------------
// No-ops everywhere except Clang with the capability attribute available.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define STDCHK_TSA(x) __attribute__((x))
#endif
#endif
#ifndef STDCHK_TSA
#define STDCHK_TSA(x)
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) STDCHK_TSA(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY STDCHK_TSA(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) STDCHK_TSA(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) STDCHK_TSA(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) STDCHK_TSA(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) STDCHK_TSA(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) STDCHK_TSA(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) STDCHK_TSA(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) STDCHK_TSA(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) STDCHK_TSA(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) STDCHK_TSA(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) STDCHK_TSA(release_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) STDCHK_TSA(release_generic_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) STDCHK_TSA(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...) \
  STDCHK_TSA(try_acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) STDCHK_TSA(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) STDCHK_TSA(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) STDCHK_TSA(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS STDCHK_TSA(no_thread_safety_analysis)
#endif

namespace stdchk {

// ---- The system-wide lock hierarchy ----------------------------------------
// A thread may only acquire a mutex whose (rank, seq) is STRICTLY greater
// than every lock it already holds. Ranks are spaced by 10 so a new layer
// can slot in without renumbering. The order below is the acquisition
// order observed (and now enforced) across the whole system:
//
//   rank  lock                         may be held while taking...
//   ----  ---------------------------  -----------------------------------
//    10   BackgroundDriver::mu_        (nothing — released around Tick())
//    20   PlacementTableCache::mu_     manager mu_ (table fetch RPC)
//    30   ReadSession::mu_             transport mu_ (pump/harvest RPCs)
//    40   MetadataManager::mu_         registry mu_, catalog shard locks
//    50   BenefactorRegistry::mu_      (leaf of the metadata plane)
//    60   FileCatalog folder shards    chunk shard locks (one at a time;
//                                      Export/Import: all, ascending seq)
//    70   FileCatalog chunk shards     (leaf of the catalog)
//    80   LocalTransport::mu_          chunk store mu_, hash pool mu_
//                                      (eager execution runs under it)
//    90   ChunkStore mu_ (mem + disk)  hash pool mu_ (verify fan-out)
//   100   HashPool::mu_                (leaf)
//   110   Logger::mu_                  (leaf — logging is legal anywhere)
//
// kUnranked mutexes are exempt from order checking (for locks that can
// never nest with the hierarchy, e.g. test scaffolding).
enum class LockRank : std::uint32_t {
  kUnranked = 0,
  kBackgroundDriver = 10,
  kClientPlacement = 20,
  kClientReadSession = 30,
  kManager = 40,
  kRegistry = 50,
  kCatalogFolder = 60,
  kCatalogChunk = 70,
  kTransport = 80,
  kChunkStore = 90,
  kHashPool = 100,
  kLogger = 110,
};

namespace lockrank {
#if STDCHK_LOCK_RANK_CHECKS
// Validates ascending (rank, seq) order against this thread's held set and
// pushes the lock; aborts with a full report on violation. Called BEFORE
// the underlying lock blocks, so an inversion reports instead of
// deadlocking. Unranked locks are ignored.
void OnAcquire(const void* mu, std::uint32_t rank, std::uint32_t seq,
               const char* name);
// Pops the lock from this thread's held set (out-of-order release is fine).
void OnRelease(const void* mu);
// Number of ranked locks the calling thread currently holds (test hook).
std::size_t HeldDepth();
#else
inline void OnAcquire(const void*, std::uint32_t, std::uint32_t,
                      const char*) {}
inline void OnRelease(const void*) {}
inline std::size_t HeldDepth() { return 0; }
#endif
}  // namespace lockrank

// ---- Annotated mutexes -----------------------------------------------------

// std::mutex wrapper carrying a capability annotation and a lock rank.
class CAPABILITY("mutex") Mutex {
 public:
  // Unranked: capability-annotated but exempt from rank checking.
  Mutex() = default;
  explicit Mutex(LockRank rank, std::uint32_t seq = 0,
                 const char* name = "mutex")
      : rank_(static_cast<std::uint32_t>(rank)), seq_(seq), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    if (rank_ != 0) lockrank::OnAcquire(this, rank_, seq_, name_);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (rank_ != 0) lockrank::OnAcquire(this, rank_, seq_, name_);
    if (mu_.try_lock()) return true;
    if (rank_ != 0) lockrank::OnRelease(this);
    return false;
  }
  void unlock() RELEASE() {
    mu_.unlock();
    if (rank_ != 0) lockrank::OnRelease(this);
  }

 private:
  std::mutex mu_;
  std::uint32_t rank_ = 0;
  std::uint32_t seq_ = 0;
  const char* name_ = "mutex";
};

// std::shared_mutex wrapper. Shared acquisitions obey the same rank order
// as exclusive ones (a reader can deadlock a writer just the same).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, std::uint32_t seq = 0,
                       const char* name = "shared_mutex")
      : rank_(static_cast<std::uint32_t>(rank)), seq_(seq), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    if (rank_ != 0) lockrank::OnAcquire(this, rank_, seq_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    if (rank_ != 0) lockrank::OnRelease(this);
  }
  void lock_shared() ACQUIRE_SHARED() {
    if (rank_ != 0) lockrank::OnAcquire(this, rank_, seq_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    if (rank_ != 0) lockrank::OnRelease(this);
  }

 private:
  std::shared_mutex mu_;
  std::uint32_t rank_ = 0;
  std::uint32_t seq_ = 0;
  const char* name_ = "shared_mutex";
};

// ---- RAII guards -----------------------------------------------------------

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Exclusive hold of a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Shared hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---- Condition variable over the annotated Mutex ---------------------------
// Mirrors absl::CondVar's contract: Wait* REQUIRES the mutex held, releases
// it while blocked, and reacquires (rank-checked) before returning. Callers
// write the predicate loop themselves so Thread Safety Analysis sees every
// guarded access in a context where the mutex is known held:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<Mutex> lock(mu, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-acquired mutex
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<Mutex> lock(mu, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace stdchk
