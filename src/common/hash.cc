#include "common/hash.h"

#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define STDCHK_SHA_NI_CANDIDATE 1
#endif

namespace stdchk {
namespace {

inline std::uint32_t RotL(std::uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}

inline std::uint32_t Be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

// ---- Reference compressor ---------------------------------------------------
// The textbook formulation: full 80-word schedule, byte-at-a-time loads,
// round-type branch in the loop. Kept verbatim as the oracle the fast
// compressors are differential-tested against (hash_test) and as the
// faithful "before" in bench_datapath.
void ProcessBlocksReference(std::uint32_t* state, const std::uint8_t* block,
                            std::size_t nblocks) {
  while (nblocks--) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
             (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                  e = state[4];
    for (int i = 0; i < 80; ++i) {
      std::uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      std::uint32_t temp = RotL(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = RotL(b, 30);
      b = a;
      a = temp;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    block += 64;
  }
}

// ---- Portable compressor ----------------------------------------------------
// Fully unrolled rounds over a 16-word circular schedule: no w[80]
// expansion pass, no per-round branch on the round index.
void ProcessBlocksPortable(std::uint32_t* state, const std::uint8_t* p,
                           std::size_t nblocks) {
  std::uint32_t w[16];
  while (nblocks--) {
#define STDCHK_W(i) w[(i) & 15]
#define STDCHK_SRC(i) (w[i] = Be32(p + 4 * (i)))
#define STDCHK_MIX(i)                                              \
  (STDCHK_W(i) = RotL(STDCHK_W((i) + 13) ^ STDCHK_W((i) + 8) ^     \
                          STDCHK_W((i) + 2) ^ STDCHK_W(i),         \
                      1))
#define STDCHK_RND(a, b, c, d, e, F, K, X) \
  e += RotL(a, 5) + (F) + (K) + (X);       \
  b = RotL(b, 30);
#define STDCHK_F1(b, c, d) ((((c) ^ (d)) & (b)) ^ (d))
#define STDCHK_F2(b, c, d) ((b) ^ (c) ^ (d))
#define STDCHK_F3(b, c, d) ((((b) | (c)) & (d)) | ((b) & (c)))
#define STDCHK_R0(a, b, c, d, e, i) \
  STDCHK_RND(a, b, c, d, e, STDCHK_F1(b, c, d), 0x5A827999u, STDCHK_SRC(i))
#define STDCHK_R1(a, b, c, d, e, i) \
  STDCHK_RND(a, b, c, d, e, STDCHK_F1(b, c, d), 0x5A827999u, STDCHK_MIX(i))
#define STDCHK_R2(a, b, c, d, e, i) \
  STDCHK_RND(a, b, c, d, e, STDCHK_F2(b, c, d), 0x6ED9EBA1u, STDCHK_MIX(i))
#define STDCHK_R3(a, b, c, d, e, i) \
  STDCHK_RND(a, b, c, d, e, STDCHK_F3(b, c, d), 0x8F1BBCDCu, STDCHK_MIX(i))
#define STDCHK_R4(a, b, c, d, e, i) \
  STDCHK_RND(a, b, c, d, e, STDCHK_F2(b, c, d), 0xCA62C1D6u, STDCHK_MIX(i))

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                  e = state[4];
    STDCHK_R0(a, b, c, d, e, 0);
    STDCHK_R0(e, a, b, c, d, 1);
    STDCHK_R0(d, e, a, b, c, 2);
    STDCHK_R0(c, d, e, a, b, 3);
    STDCHK_R0(b, c, d, e, a, 4);
    STDCHK_R0(a, b, c, d, e, 5);
    STDCHK_R0(e, a, b, c, d, 6);
    STDCHK_R0(d, e, a, b, c, 7);
    STDCHK_R0(c, d, e, a, b, 8);
    STDCHK_R0(b, c, d, e, a, 9);
    STDCHK_R0(a, b, c, d, e, 10);
    STDCHK_R0(e, a, b, c, d, 11);
    STDCHK_R0(d, e, a, b, c, 12);
    STDCHK_R0(c, d, e, a, b, 13);
    STDCHK_R0(b, c, d, e, a, 14);
    STDCHK_R0(a, b, c, d, e, 15);
    STDCHK_R1(e, a, b, c, d, 16);
    STDCHK_R1(d, e, a, b, c, 17);
    STDCHK_R1(c, d, e, a, b, 18);
    STDCHK_R1(b, c, d, e, a, 19);
    STDCHK_R2(a, b, c, d, e, 20);
    STDCHK_R2(e, a, b, c, d, 21);
    STDCHK_R2(d, e, a, b, c, 22);
    STDCHK_R2(c, d, e, a, b, 23);
    STDCHK_R2(b, c, d, e, a, 24);
    STDCHK_R2(a, b, c, d, e, 25);
    STDCHK_R2(e, a, b, c, d, 26);
    STDCHK_R2(d, e, a, b, c, 27);
    STDCHK_R2(c, d, e, a, b, 28);
    STDCHK_R2(b, c, d, e, a, 29);
    STDCHK_R2(a, b, c, d, e, 30);
    STDCHK_R2(e, a, b, c, d, 31);
    STDCHK_R2(d, e, a, b, c, 32);
    STDCHK_R2(c, d, e, a, b, 33);
    STDCHK_R2(b, c, d, e, a, 34);
    STDCHK_R2(a, b, c, d, e, 35);
    STDCHK_R2(e, a, b, c, d, 36);
    STDCHK_R2(d, e, a, b, c, 37);
    STDCHK_R2(c, d, e, a, b, 38);
    STDCHK_R2(b, c, d, e, a, 39);
    STDCHK_R3(a, b, c, d, e, 40);
    STDCHK_R3(e, a, b, c, d, 41);
    STDCHK_R3(d, e, a, b, c, 42);
    STDCHK_R3(c, d, e, a, b, 43);
    STDCHK_R3(b, c, d, e, a, 44);
    STDCHK_R3(a, b, c, d, e, 45);
    STDCHK_R3(e, a, b, c, d, 46);
    STDCHK_R3(d, e, a, b, c, 47);
    STDCHK_R3(c, d, e, a, b, 48);
    STDCHK_R3(b, c, d, e, a, 49);
    STDCHK_R3(a, b, c, d, e, 50);
    STDCHK_R3(e, a, b, c, d, 51);
    STDCHK_R3(d, e, a, b, c, 52);
    STDCHK_R3(c, d, e, a, b, 53);
    STDCHK_R3(b, c, d, e, a, 54);
    STDCHK_R3(a, b, c, d, e, 55);
    STDCHK_R3(e, a, b, c, d, 56);
    STDCHK_R3(d, e, a, b, c, 57);
    STDCHK_R3(c, d, e, a, b, 58);
    STDCHK_R3(b, c, d, e, a, 59);
    STDCHK_R4(a, b, c, d, e, 60);
    STDCHK_R4(e, a, b, c, d, 61);
    STDCHK_R4(d, e, a, b, c, 62);
    STDCHK_R4(c, d, e, a, b, 63);
    STDCHK_R4(b, c, d, e, a, 64);
    STDCHK_R4(a, b, c, d, e, 65);
    STDCHK_R4(e, a, b, c, d, 66);
    STDCHK_R4(d, e, a, b, c, 67);
    STDCHK_R4(c, d, e, a, b, 68);
    STDCHK_R4(b, c, d, e, a, 69);
    STDCHK_R4(a, b, c, d, e, 70);
    STDCHK_R4(e, a, b, c, d, 71);
    STDCHK_R4(d, e, a, b, c, 72);
    STDCHK_R4(c, d, e, a, b, 73);
    STDCHK_R4(b, c, d, e, a, 74);
    STDCHK_R4(a, b, c, d, e, 75);
    STDCHK_R4(e, a, b, c, d, 76);
    STDCHK_R4(d, e, a, b, c, 77);
    STDCHK_R4(c, d, e, a, b, 78);
    STDCHK_R4(b, c, d, e, a, 79);
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    p += 64;

#undef STDCHK_R4
#undef STDCHK_R3
#undef STDCHK_R2
#undef STDCHK_R1
#undef STDCHK_R0
#undef STDCHK_F3
#undef STDCHK_F2
#undef STDCHK_F1
#undef STDCHK_RND
#undef STDCHK_MIX
#undef STDCHK_SRC
#undef STDCHK_W
  }
}

// ---- x86 SHA-extensions compressor ------------------------------------------
#ifdef STDCHK_SHA_NI_CANDIDATE
__attribute__((target("sha,ssse3,sse4.1"))) void ProcessBlocksShaNi(
    std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0001020304050607ll, 0x08090a0b0c0d0e0fll);
  __m128i abcd =
      _mm_shuffle_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state)),
                        0x1B);
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  __m128i e1;

  while (nblocks--) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e0;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);

    // Rounds 0-3
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    // Rounds 4-7
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    // Rounds 8-11
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 12-15
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    e0 = _mm_sha1nexte_epu32(e0, e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    data += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}
#endif  // STDCHK_SHA_NI_CANDIDATE

using BlockFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);

bool CpuHasShaNi() {
#ifdef STDCHK_SHA_NI_CANDIDATE
  return __builtin_cpu_supports("sha");
#else
  return false;
#endif
}

BlockFn DetectBlockFn() {
#ifdef STDCHK_SHA_NI_CANDIDATE
  if (CpuHasShaNi()) return &ProcessBlocksShaNi;
#endif
  return &ProcessBlocksPortable;
}

// Bench/test override; nullptr means "use the detected best". Atomic so
// the write path's parallel hashing workers can read it while a bench or
// test thread switches implementations between phases.
std::atomic<BlockFn> g_forced_block_fn{nullptr};

inline BlockFn ActiveBlockFn() {
  static const BlockFn detected = DetectBlockFn();
  BlockFn forced = g_forced_block_fn.load(std::memory_order_relaxed);
  return forced ? forced : detected;
}

}  // namespace

Sha1Impl Sha1ActiveImpl() {
#ifdef STDCHK_SHA_NI_CANDIDATE
  if (ActiveBlockFn() == &ProcessBlocksShaNi) return Sha1Impl::kShaNi;
#endif
  if (ActiveBlockFn() == &ProcessBlocksReference) return Sha1Impl::kReference;
  return Sha1Impl::kPortable;
}

void Sha1ForceImpl(Sha1Impl impl) {
  switch (impl) {
    case Sha1Impl::kAuto:
      g_forced_block_fn = nullptr;
      return;
    case Sha1Impl::kPortable:
      g_forced_block_fn = &ProcessBlocksPortable;
      return;
    case Sha1Impl::kShaNi:
#ifdef STDCHK_SHA_NI_CANDIDATE
      if (CpuHasShaNi()) {
        g_forced_block_fn = &ProcessBlocksShaNi;
        return;
      }
#endif
      g_forced_block_fn = &ProcessBlocksPortable;
      return;
    case Sha1Impl::kReference:
      g_forced_block_fn = &ProcessBlocksReference;
      return;
  }
}

std::string Sha1Digest::ToHex() const {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::uint64_t Sha1Digest::Prefix64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

Sha1Hasher::Sha1Hasher()
    : state_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1Hasher::Update(ByteSpan data) {
  total_bytes_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  const BlockFn process = ActiveBlockFn();

  if (buffered_ > 0) {
    std::size_t take = std::min(n, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      process(state_.data(), buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  if (std::size_t blocks = n / 64; blocks > 0) {
    // Whole blocks are compressed straight out of the caller's span — no
    // staging through the 64-byte buffer.
    process(state_.data(), p, blocks);
    p += blocks * 64;
    n -= blocks * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffered_ = n;
  }
}

Sha1Digest Sha1Hasher::Finish() {
  std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  Update(ByteSpan(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) Update(ByteSpan(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(len_be, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha1Digest Sha1(ByteSpan data) {
  Sha1Hasher hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::uint64_t Fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64(ByteSpan(reinterpret_cast<const std::uint8_t*>(data.data()),
                          data.size()));
}

}  // namespace stdchk
