#include "common/hash.h"

#include <cstring>

namespace stdchk {
namespace {

inline std::uint32_t RotL(std::uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}

}  // namespace

std::string Sha1Digest::ToHex() const {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::uint64_t Sha1Digest::Prefix64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

Sha1Hasher::Sha1Hasher()
    : state_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1Hasher::ProcessBlock(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t temp = RotL(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1Hasher::Update(ByteSpan data) {
  total_bytes_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffered_ > 0) {
    std::size_t take = std::min(n, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_.data(), p, n);
    buffered_ = n;
  }
}

Sha1Digest Sha1Hasher::Finish() {
  std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  Update(ByteSpan(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) Update(ByteSpan(&zero, 1));
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(len_be, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[static_cast<std::size_t>(i * 4)] =
        static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[static_cast<std::size_t>(i * 4 + 1)] =
        static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[static_cast<std::size_t>(i * 4 + 2)] =
        static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[static_cast<std::size_t>(i * 4 + 3)] =
        static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha1Digest Sha1(ByteSpan data) {
  Sha1Hasher hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::uint64_t Fnv1a64(ByteSpan data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64(ByteSpan(reinterpret_cast<const std::uint8_t*>(data.data()),
                          data.size()));
}

}  // namespace stdchk
