// Modeled testbed: a set of client nodes and benefactor nodes joined by a
// shared switching fabric. Owns the simulator and all resource pipes; the
// write pipelines (write_pipeline.h) schedule chunk transfers across them.
#pragma once

#include <memory>
#include <vector>

#include "perf/platform_model.h"
#include "sim/bounded_buffer.h"
#include "sim/pipe.h"
#include "sim/simulator.h"

namespace stdchk::perf {

struct ClientNode {
  std::unique_ptr<sim::Pipe> disk;  // local disk (shared by write & read)
  std::unique_ptr<sim::Pipe> nic;
};

struct BenefactorNode {
  std::unique_ptr<sim::Pipe> nic;
  std::unique_ptr<sim::Pipe> disk;
};

class TestbedModel {
 public:
  TestbedModel(const PlatformModel& platform, int clients, int benefactors);

  sim::Simulator& simulator() { return sim_; }
  const PlatformModel& platform() const { return platform_; }

  ClientNode& client(std::size_t i) { return *clients_[i]; }
  BenefactorNode& benefactor(std::size_t i) { return *benefactors_[i]; }
  sim::Pipe& fabric() { return *fabric_; }

  std::size_t client_count() const { return clients_.size(); }
  std::size_t benefactor_count() const { return benefactors_.size(); }

 private:
  PlatformModel platform_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  std::vector<std::unique_ptr<BenefactorNode>> benefactors_;
  std::unique_ptr<sim::Pipe> fabric_;
};

}  // namespace stdchk::perf
