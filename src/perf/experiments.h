// High-level experiment runners: one function per paper table/figure (plus
// ablations). The bench binaries in /bench are thin wrappers that sweep
// parameters and print the paper-shaped rows.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "perf/platform_model.h"
#include "perf/write_pipeline.h"

namespace stdchk::perf {

struct WriteResult {
  double oab_mbps = 0;
  double asb_mbps = 0;
  double close_seconds = 0;
  double stored_seconds = 0;
  std::uint64_t bytes_transferred = 0;
};

// Runs one file write on a fresh 1-client testbed with `benefactors`
// donors; config.stripe is filled with 0..stripe_width-1 if empty.
WriteResult RunSingleWrite(const PlatformModel& platform, int benefactors,
                           PipelineConfig config);

// ---- Table 1 baselines ----------------------------------------------------
// Seconds to write `file_bytes` via each path.
double LocalIoSeconds(const PlatformModel& platform, std::uint64_t file_bytes);
double FuseToLocalSeconds(const PlatformModel& platform,
                          std::uint64_t file_bytes);
double FuseNullSeconds(const PlatformModel& platform,
                       std::uint64_t file_bytes);
double NfsSeconds(const PlatformModel& platform, std::uint64_t file_bytes);

// ---- Figure 8: multi-client scalability ------------------------------------
struct ScalabilityConfig {
  int clients = 7;
  int benefactors = 20;
  int files_per_client = 100;
  std::uint64_t file_bytes = 100_MiB;
  double client_start_interval_s = 10.0;
  int stripe_width = 4;
  std::size_t chunk_size = 1_MiB;
  std::uint64_t buffer_bytes = 64_MiB;
  double timeline_bucket_s = 5.0;
};

struct ScalabilityResult {
  std::vector<ThroughputTimeline::Point> timeline;
  double peak_mbps = 0;
  double sustained_mbps = 0;
  double total_seconds = 0;
  std::uint64_t total_bytes = 0;
};

ScalabilityResult RunScalability(const PlatformModel& platform,
                                 ScalabilityConfig config);

// ---- Table 5: BLAST end-to-end ------------------------------------------------
struct BlastConfig {
  int checkpoints = 150;
  std::uint64_t checkpoint_bytes = 0;  // derived from the trace if 0
  // Application compute time between checkpoints (the paper's BLAST run
  // checkpoints every 30 s).
  double compute_seconds = 30.0;
  // Rate at which BLCR serializes process state into write() calls — the
  // write path can go no faster than the checkpointer feeds it.
  double serialize_mbps = 150.0;
  std::size_t chunk_size = 1_MiB;  // the paper's transfer chunk size
  int stripe_width = 4;
  std::uint64_t buffer_bytes = 64_MiB;
  // Trace shape: BLCR-like with a 30-second interval's worth of mutation.
  std::size_t image_pages = 8192;  // 32 MiB synthetic images (scaled down)
  double dirty_fraction = 0.02;
  double mean_insertions = 0.1;
  double mean_odd_insertions = 0.05;
  std::uint64_t seed = 42;
};

struct BlastResult {
  // "Local disk" column vs "stdchk" column of Table 5.
  double local_total_s = 0, stdchk_total_s = 0;
  double local_ckpt_s = 0, stdchk_ckpt_s = 0;
  double local_data_gb = 0, stdchk_data_gb = 0;
  double avg_dedup_ratio = 0;

  double total_improvement() const {
    return 1.0 - stdchk_total_s / local_total_s;
  }
  double ckpt_improvement() const {
    return 1.0 - stdchk_ckpt_s / local_ckpt_s;
  }
  double data_reduction() const {
    return 1.0 - stdchk_data_gb / local_data_gb;
  }
};

BlastResult RunBlastComparison(const PlatformModel& platform,
                               BlastConfig config);

}  // namespace stdchk::perf
