#include "perf/testbed_model.h"

namespace stdchk::perf {

TestbedModel::TestbedModel(const PlatformModel& platform, int clients,
                           int benefactors)
    : platform_(platform) {
  for (int i = 0; i < clients; ++i) {
    auto node = std::make_unique<ClientNode>();
    node->disk = std::make_unique<sim::Pipe>(
        &sim_, "client" + std::to_string(i) + ".disk",
        platform.local_disk_write_mbps);
    node->nic = std::make_unique<sim::Pipe>(
        &sim_, "client" + std::to_string(i) + ".nic", platform.client_nic_mbps,
        platform.per_chunk_net_overhead);
    clients_.push_back(std::move(node));
  }
  for (int i = 0; i < benefactors; ++i) {
    auto node = std::make_unique<BenefactorNode>();
    node->nic = std::make_unique<sim::Pipe>(
        &sim_, "bene" + std::to_string(i) + ".nic",
        platform.benefactor_nic_mbps);
    node->disk = std::make_unique<sim::Pipe>(
        &sim_, "bene" + std::to_string(i) + ".disk",
        platform.benefactor_disk_mbps, platform.benefactor_disk_overhead);
    benefactors_.push_back(std::move(node));
  }
  fabric_ = std::make_unique<sim::Pipe>(&sim_, "fabric", platform.fabric_mbps);
}

}  // namespace stdchk::perf
