// Calibration constants for the performance models.
//
// Every number here is either taken directly from the paper's platform
// characterization (§V.A: 86.2 MB/s local disk, 24.8 MB/s NFS, 32 µs FUSE
// context switch, 1 Gbps NICs) or is a conventional figure for the 2008
// testbed hardware (SCSI/SATA disk rates, memcpy bandwidth, per-RPC setup
// costs). DESIGN.md §2 documents this substitution: the throughput results
// in the paper are resource-bottleneck effects, so a simulator calibrated
// with the same component figures reproduces their shape.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/bytes.h"
#include "common/sim_time.h"
#include "sim/link_model.h"

namespace stdchk::perf {

struct PlatformModel {
  // ---- Measured end-to-end rates from §V.A --------------------------------
  // Sustained local-disk write, caches enabled, syscall costs included
  // (1 GB in 11.80 s).
  double local_disk_write_mbps = 86.2;
  double local_disk_read_mbps = 86.2;
  // Dedicated NFS server on an identical node.
  double nfs_mbps = 24.8;

  // ---- Network -----------------------------------------------------------
  double client_nic_mbps = 119.2;      // 1 Gbps payload rate
  double benefactor_nic_mbps = 119.2;  // 1 Gbps
  // Shared switching fabric. The paper's Fig. 8 observes an aggregate
  // plateau near 280 MB/s "limited by the networking configuration of our
  // testbed".
  double fabric_mbps = 300.0;

  // ---- Benefactor storage ---------------------------------------------------
  // Receive-side sustained write of the donors' 36.5 GB SCSI disks.
  double benefactor_disk_mbps = 70.0;

  // ---- Client CPU/memory -------------------------------------------------------
  double memcpy_mbps = 2000.0;

  // ---- Per-operation overheads ---------------------------------------------
  // FUSE user-kernel context switch, measured by the paper as ~32 µs.
  SimTime fuse_per_call = Microseconds(32);
  // Base VFS/syscall cost per write() call.
  SimTime syscall_per_call = Microseconds(30);
  // Application write() granularity.
  std::size_t app_write_block = 128_KiB;

  // Chunk admission into the sliding-window interface (allocation, queueing,
  // manager bookkeeping) — caps the in-memory ingest rate of SW/IW.
  SimTime chunk_admission_overhead = Microseconds(2000);
  // Per-chunk RPC setup on the network path (connection reuse, headers,
  // chunk-map bookkeeping). Calibrated so the SW steady state lands at the
  // paper's ~110 MB/s on GigE.
  SimTime per_chunk_net_overhead = Microseconds(700);
  // Per-chunk setup at the receiving benefactor's disk.
  SimTime benefactor_disk_overhead = Microseconds(1000);
  // IW temp-file rollover (create/close of the next temp file).
  SimTime increment_rollover_overhead = Microseconds(5000);
  // Manager transactions per write session (the paper counts 4 per write).
  SimTime commit_overhead = Microseconds(2000);
};

// The 28-node LAN testbed of §V: dual-Xeon desktops, GigE, SCSI disks.
inline PlatformModel PaperLanTestbed() { return PlatformModel{}; }

// One benefactor's access link as seen by the functional transport
// (core/LocalTransport::SetLinkModel): per-chunk RPC setup latency plus the
// node's bottleneck rate (NIC or receiving disk, whichever is slower).
// This is how the paper-figure benches run the functional pipelines at
// modeled LAN speed.
inline sim::LinkModel BenefactorLink(const PlatformModel& p) {
  return sim::LinkModel{
      p.per_chunk_net_overhead,
      std::min(p.benefactor_nic_mbps, p.benefactor_disk_mbps)};
}

// The 10 Gbps testbed of §V.D: one 10 GbE client, four 1 GbE benefactors
// with SATA disks.
inline PlatformModel Paper10GTestbed() {
  PlatformModel p;
  p.client_nic_mbps = 1192.0;  // 10 Gbps
  p.fabric_mbps = 1200.0;
  p.benefactor_disk_mbps = 65.0;  // SATA
  return p;
}

}  // namespace stdchk::perf
