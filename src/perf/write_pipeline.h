// Event-driven models of the three write-optimized protocols (paper §IV.B)
// plus the measurement of the paper's two metrics (§V.B):
//
//   OAB (observed application bandwidth)  = file size / (open .. close)
//   ASB (achieved storage bandwidth)      = file size / (open .. all remote
//                                           I/O completed)
//
// Pipeline structure per protocol:
//
//   CLW  app -> page cache/disk (sustained disk rate) ... close() ...
//        disk read -> client NIC -> fabric -> benefactor NIC -> disk
//
//   IW   app -> memory temp file (memcpy rate, bounded allowance); each
//        completed temp file becomes eligible and is pushed concurrently
//        with production of the next one; close() after production (the
//        remaining push is what separates OAB from ASB)
//
//   SW   app -> bounded memory window (memcpy rate); every chunk is pushed
//        the moment it is produced; no local I/O at all
//
// Chunks flow store-and-forward through FIFO bandwidth pipes, so the steady
// state is the min-bandwidth stage and stripe-width saturation emerges
// naturally (two 1 Gbps benefactors saturate one 1 Gbps client NIC).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/striping.h"
#include "perf/testbed_model.h"
#include "sim/bounded_buffer.h"

namespace stdchk::perf {

enum class ProtocolModel { kCLW, kIW, kSW };

struct PipelineConfig {
  ProtocolModel protocol = ProtocolModel::kSW;
  std::uint64_t file_bytes = 1_GiB;
  std::size_t chunk_size = 1_MiB;
  // SW window / IW page-cache allowance. 0 = unbounded.
  std::uint64_t buffer_bytes = 64_MiB;
  std::uint64_t increment_bytes = 64_MiB;  // IW temp-file size
  std::vector<int> stripe;                 // benefactor indices

  // Incremental checkpointing model: fraction of chunks already stored
  // (not transferred), and the hashing throughput charged per produced
  // byte when FsCH is enabled (0 = FsCH off).
  double dedup_ratio = 0.0;
  double hash_mbps = 0.0;

  // Replication (ablation): replicas per chunk; pessimistic close() waits
  // for all of them, optimistic returns at production end.
  int replicas = 1;
  bool pessimistic = false;

  // Observability hooks (may be empty).
  std::function<void(SimTime, std::uint64_t)> on_chunk_stored;
  std::function<void(SimTime)> on_closed;
};

class WritePipeline {
 public:
  WritePipeline(TestbedModel* testbed, int client_index,
                PipelineConfig config);

  // Schedules the first event; results are valid after the simulator runs
  // past completion.
  void Start();

  SimTime start_time() const { return start_time_; }
  SimTime close_time() const { return close_time_; }
  SimTime stored_time() const { return stored_time_; }          // first replica
  SimTime replicated_time() const { return replicated_time_; }  // all replicas
  bool finished() const {
    return close_time_ != kSimNever && replicated_time_ != kSimNever;
  }

  double oab_mbps() const;
  double asb_mbps() const;
  // Bytes that actually crossed the network (novel chunks x replicas).
  std::uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  std::size_t total_chunks() const;
  std::uint64_t ChunkBytes(std::size_t i) const;
  bool IsDup(std::size_t i) const;

  SimTime BufferedProduceTime(std::uint64_t bytes) const;  // SW / IW
  SimTime LocalProduceTime(std::uint64_t bytes) const;     // CLW

  void ProduceNext();
  void OnProduced(std::size_t i, std::uint64_t bytes);
  void FinishProduction();
  void MaybeClose();

  void StartClwPush();
  // Network leg for one chunk replica set; `from_disk` reads through the
  // client disk pipe first (CLW push).
  void SendChunk(std::size_t i, std::uint64_t bytes, bool from_disk);
  // Optimistic-mode background replication (benefactor-to-benefactor).
  void StartBackgroundReplicas(std::size_t i, std::uint64_t bytes, int source);
  void OnReplicaStored(std::size_t i, std::uint64_t bytes, int replica_index);

  TestbedModel* testbed_;
  ClientNode* client_;
  PipelineConfig config_;
  std::unique_ptr<sim::BoundedBuffer> buffer_;

  std::size_t next_produce_ = 0;
  // Same striping discipline as the functional client's placement layer.
  RoundRobinCursor stripe_cursor_;
  std::deque<std::pair<std::size_t, std::uint64_t>> iw_pending_;
  std::uint64_t produced_bytes_ = 0;

  std::uint64_t stored_first_bytes_ = 0;
  std::uint64_t replicated_bytes_ = 0;
  std::uint64_t bytes_transferred_ = 0;
  bool production_done_ = false;
  bool closed_ = false;

  SimTime start_time_ = 0;
  SimTime production_end_ = kSimNever;
  SimTime close_time_ = kSimNever;
  SimTime stored_time_ = kSimNever;
  SimTime replicated_time_ = kSimNever;
};

}  // namespace stdchk::perf
