#include "perf/experiments.h"

#include <algorithm>
#include <memory>

#include "chkpt/chunker.h"
#include "chkpt/similarity.h"
#include "workload/trace_generators.h"

namespace stdchk::perf {

WriteResult RunSingleWrite(const PlatformModel& platform, int benefactors,
                           PipelineConfig config) {
  TestbedModel testbed(platform, /*clients=*/1, benefactors);
  if (config.stripe.empty()) {
    for (int i = 0; i < benefactors; ++i) config.stripe.push_back(i);
  }
  WritePipeline pipeline(&testbed, 0, config);
  pipeline.Start();
  testbed.simulator().Run();

  WriteResult result;
  result.oab_mbps = pipeline.oab_mbps();
  result.asb_mbps = pipeline.asb_mbps();
  result.close_seconds = ToSeconds(pipeline.close_time());
  result.stored_seconds =
      ToSeconds(std::max(pipeline.stored_time(), pipeline.close_time()));
  result.bytes_transferred = pipeline.bytes_transferred();
  return result;
}

// ---- Table 1 baselines ---------------------------------------------------------

double LocalIoSeconds(const PlatformModel& platform,
                      std::uint64_t file_bytes) {
  // The measured sustained rate already folds in syscall and copy cost.
  return ToSeconds(TransferTime(static_cast<double>(file_bytes),
                                platform.local_disk_write_mbps));
}

double FuseToLocalSeconds(const PlatformModel& platform,
                          std::uint64_t file_bytes) {
  std::uint64_t calls =
      (file_bytes + platform.app_write_block - 1) / platform.app_write_block;
  return LocalIoSeconds(platform, file_bytes) +
         ToSeconds(static_cast<SimTime>(calls) * platform.fuse_per_call);
}

double FuseNullSeconds(const PlatformModel& platform,
                       std::uint64_t file_bytes) {
  // /stdchk/null: the callback discards the data — all that remains is the
  // per-call FUSE + VFS cost and the user-kernel copy.
  std::uint64_t calls =
      (file_bytes + platform.app_write_block - 1) / platform.app_write_block;
  return ToSeconds(static_cast<SimTime>(calls) *
                       (platform.fuse_per_call + platform.syscall_per_call) +
                   TransferTime(static_cast<double>(file_bytes),
                                platform.memcpy_mbps));
}

double NfsSeconds(const PlatformModel& platform, std::uint64_t file_bytes) {
  return ToSeconds(
      TransferTime(static_cast<double>(file_bytes), platform.nfs_mbps));
}

// ---- Figure 8 --------------------------------------------------------------------

ScalabilityResult RunScalability(const PlatformModel& platform,
                                 ScalabilityConfig config) {
  TestbedModel testbed(platform, config.clients, config.benefactors);
  ThroughputTimeline timeline(config.timeline_bucket_s);

  struct ClientState {
    int index = 0;
    int files_remaining = 0;
    int next_stripe_base = 0;
    std::vector<std::unique_ptr<WritePipeline>> pipelines;
  };
  std::vector<ClientState> states(static_cast<std::size_t>(config.clients));
  std::uint64_t total_bytes = 0;
  SimTime last_close = 0;

  // Each client writes its files back to back; a new file starts when the
  // previous close() returns (the application's checkpoint loop).
  std::function<void(ClientState*)> start_next = [&](ClientState* stp) {
    ClientState& st = *stp;
    if (st.files_remaining == 0) return;
    --st.files_remaining;

    PipelineConfig pc;
    pc.protocol = ProtocolModel::kSW;
    pc.file_bytes = config.file_bytes;
    pc.chunk_size = config.chunk_size;
    pc.buffer_bytes = config.buffer_bytes;
    // Rotate stripes through the benefactor pool so load spreads like the
    // manager's most-free-space policy does at scale.
    for (int s = 0; s < config.stripe_width; ++s) {
      pc.stripe.push_back((st.next_stripe_base + s) % config.benefactors);
    }
    st.next_stripe_base =
        (st.next_stripe_base + config.stripe_width) % config.benefactors;

    pc.on_chunk_stored = [&timeline, &total_bytes](SimTime t,
                                                   std::uint64_t bytes) {
      timeline.Record(ToSeconds(t), static_cast<double>(bytes));
      total_bytes += bytes;
    };
    pc.on_closed = [&last_close, &start_next, stp](SimTime t) {
      last_close = std::max(last_close, t);
      start_next(stp);
    };

    auto pipeline = std::make_unique<WritePipeline>(&testbed, st.index, pc);
    pipeline->Start();
    st.pipelines.push_back(std::move(pipeline));
  };

  for (int c = 0; c < config.clients; ++c) {
    ClientState& st = states[static_cast<std::size_t>(c)];
    st.index = c;
    st.files_remaining = config.files_per_client;
    st.next_stripe_base = (c * config.stripe_width) % config.benefactors;
    ClientState* stp = &st;
    testbed.simulator().At(Seconds(config.client_start_interval_s * c),
                           [&start_next, stp] { start_next(stp); });
  }

  testbed.simulator().Run();

  ScalabilityResult result;
  result.timeline = timeline.Series();
  result.peak_mbps = timeline.PeakMBps();
  result.sustained_mbps = timeline.SustainedMBps();
  result.total_seconds = ToSeconds(last_close);
  result.total_bytes = total_bytes;
  return result;
}

// ---- Table 5 ----------------------------------------------------------------------

BlastResult RunBlastComparison(const PlatformModel& platform,
                               BlastConfig config) {
  // 1. Generate the BLCR-like trace and measure the *real* FsCH dedup ratio
  //    of every image against its predecessor.
  BlcrTraceOptions trace_options;
  trace_options.initial_pages = config.image_pages;
  trace_options.dirty_fraction = config.dirty_fraction;
  trace_options.mean_insertions = config.mean_insertions;
  trace_options.mean_odd_insertions = config.mean_odd_insertions;
  trace_options.deletion_prob = 0.05;
  trace_options.seed = config.seed;
  auto trace = MakeBlcrLikeTrace(trace_options);

  FixedSizeChunker chunker(config.chunk_size);
  SimilarityTracker tracker(&chunker);

  std::vector<double> dedup;
  std::vector<std::uint64_t> sizes;
  dedup.reserve(static_cast<std::size_t>(config.checkpoints));
  for (int i = 0; i < config.checkpoints; ++i) {
    Bytes image = trace->Next();
    ImageSimilarity sim = tracker.AddImage(image);
    dedup.push_back(i == 0 ? 0.0 : sim.ratio());
    sizes.push_back(image.size());
  }

  BlastResult result;

  // 2. Local-disk column: every image pays serialization + local write.
  for (int i = 0; i < config.checkpoints; ++i) {
    double s = static_cast<double>(sizes[static_cast<std::size_t>(i)]);
    double serialize = s / 1048576.0 / config.serialize_mbps;
    double write = ToSeconds(TransferTime(s, platform.local_disk_write_mbps));
    result.local_ckpt_s += serialize + write;
    result.local_data_gb += s / (1 << 30);
  }

  // 3. stdchk column: SW + FsCH through the DES. Serialization paces the
  //    producer (modeled as the hashing/ingest rate floor).
  double fsch_hash_mbps = 800.0;  // SHA-1 on 2008-era Xeon
  double producer_mbps =
      1.0 / (1.0 / config.serialize_mbps + 1.0 / fsch_hash_mbps);
  for (int i = 0; i < config.checkpoints; ++i) {
    double d = dedup[static_cast<std::size_t>(i)];
    PipelineConfig pc;
    pc.protocol = ProtocolModel::kSW;
    pc.file_bytes = sizes[static_cast<std::size_t>(i)];
    pc.chunk_size = config.chunk_size;
    pc.buffer_bytes = config.buffer_bytes;
    pc.dedup_ratio = d;
    pc.hash_mbps = producer_mbps;
    WriteResult wr = RunSingleWrite(platform, config.stripe_width, pc);
    result.stdchk_ckpt_s += wr.close_seconds;
    result.stdchk_data_gb +=
        static_cast<double>(wr.bytes_transferred) / (1 << 30);
    result.avg_dedup_ratio += d;
  }
  result.avg_dedup_ratio /= static_cast<double>(config.checkpoints);

  double compute_total =
      config.compute_seconds * static_cast<double>(config.checkpoints);
  result.local_total_s = compute_total + result.local_ckpt_s;
  result.stdchk_total_s = compute_total + result.stdchk_ckpt_s;
  return result;
}

}  // namespace stdchk::perf
