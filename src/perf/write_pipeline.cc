#include "perf/write_pipeline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stdchk::perf {

WritePipeline::WritePipeline(TestbedModel* testbed, int client_index,
                             PipelineConfig config)
    : testbed_(testbed),
      client_(&testbed->client(static_cast<std::size_t>(client_index))),
      config_(std::move(config)) {
  assert(!config_.stripe.empty());
  assert(config_.replicas >= 1);
  if (config_.protocol != ProtocolModel::kCLW) {
    buffer_ = std::make_unique<sim::BoundedBuffer>(config_.buffer_bytes);
  }
}

std::size_t WritePipeline::total_chunks() const {
  return static_cast<std::size_t>(
      (config_.file_bytes + config_.chunk_size - 1) / config_.chunk_size);
}

std::uint64_t WritePipeline::ChunkBytes(std::size_t i) const {
  std::uint64_t start = static_cast<std::uint64_t>(i) * config_.chunk_size;
  return std::min<std::uint64_t>(config_.chunk_size,
                                 config_.file_bytes - start);
}

bool WritePipeline::IsDup(std::size_t i) const {
  if (config_.dedup_ratio <= 0) return false;
  // Deterministic spreading of duplicate chunks through the file:
  // chunk i is a duplicate iff the cumulative dup count increases at i.
  double d = config_.dedup_ratio;
  return std::floor(static_cast<double>(i + 1) * d) >
         std::floor(static_cast<double>(i) * d);
}

SimTime WritePipeline::BufferedProduceTime(std::uint64_t bytes) const {
  const PlatformModel& p = testbed_->platform();
  std::uint64_t calls = (bytes + p.app_write_block - 1) / p.app_write_block;
  SimTime t = static_cast<SimTime>(calls) *
                  (p.fuse_per_call + p.syscall_per_call) +
              TransferTime(static_cast<double>(bytes), p.memcpy_mbps) +
              p.chunk_admission_overhead;
  if (config_.hash_mbps > 0) {
    t += TransferTime(static_cast<double>(bytes), config_.hash_mbps);
  }
  return t;
}

SimTime WritePipeline::LocalProduceTime(std::uint64_t bytes) const {
  // The measured sustained disk rate already includes syscall + memcpy
  // costs; the FUSE hop is the paper's measured ~2% on top (Table 1).
  const PlatformModel& p = testbed_->platform();
  std::uint64_t calls = (bytes + p.app_write_block - 1) / p.app_write_block;
  return TransferTime(static_cast<double>(bytes), p.local_disk_write_mbps) +
         static_cast<SimTime>(calls) * p.fuse_per_call;
}

void WritePipeline::Start() {
  start_time_ = testbed_->simulator().Now();
  ProduceNext();
}

void WritePipeline::ProduceNext() {
  if (next_produce_ == total_chunks()) {
    FinishProduction();
    return;
  }
  std::size_t i = next_produce_;
  std::uint64_t bytes = ChunkBytes(i);

  if (config_.protocol == ProtocolModel::kCLW) {
    // Local spill: paced by the sustained local-disk write rate.
    testbed_->simulator().After(LocalProduceTime(bytes),
                                [this, i, bytes] { OnProduced(i, bytes); });
    return;
  }

  // IW under cache pressure: if the next write would block while a partial
  // temp file sits unsent, the kernel's writeback (modeled: early push)
  // frees the cache — otherwise producer and sender would deadlock when
  // the increment size exceeds the cache allowance.
  if (config_.protocol == ProtocolModel::kIW && buffer_->capacity() != 0 &&
      buffer_->free_bytes() < bytes && !iw_pending_.empty()) {
    while (!iw_pending_.empty()) {
      auto [ci, cb] = iw_pending_.front();
      iw_pending_.pop_front();
      SendChunk(ci, cb, /*from_disk=*/false);
    }
  }

  // SW / IW: the application blocks until the window/cache has room.
  buffer_->Acquire(bytes, [this, i, bytes] {
    SimTime t = BufferedProduceTime(bytes);
    if (config_.protocol == ProtocolModel::kIW) {
      std::uint64_t end = static_cast<std::uint64_t>(i) * config_.chunk_size +
                          bytes;
      if (end % config_.increment_bytes == 0) {
        t += testbed_->platform().increment_rollover_overhead;
      }
    }
    testbed_->simulator().After(t, [this, i, bytes] { OnProduced(i, bytes); });
  });
}

void WritePipeline::OnProduced(std::size_t i, std::uint64_t bytes) {
  ++next_produce_;
  produced_bytes_ += bytes;

  if (IsDup(i)) {
    // Already stored: no transfer needed; it is durable the moment the
    // chunk map will reference it.
    if (buffer_) buffer_->Release(bytes);
    stored_first_bytes_ += bytes;
    replicated_bytes_ += bytes * static_cast<std::uint64_t>(config_.replicas);
    if (config_.on_chunk_stored) {
      config_.on_chunk_stored(testbed_->simulator().Now(), bytes);
    }
    OnReplicaStored(i, 0, config_.replicas - 1);  // completion bookkeeping
  } else {
    switch (config_.protocol) {
      case ProtocolModel::kSW:
        SendChunk(i, bytes, /*from_disk=*/false);
        break;
      case ProtocolModel::kIW: {
        iw_pending_.emplace_back(i, bytes);
        std::uint64_t end =
            static_cast<std::uint64_t>(i) * config_.chunk_size + bytes;
        bool increment_complete = end % config_.increment_bytes == 0;
        bool file_complete = next_produce_ == total_chunks();
        if (increment_complete || file_complete) {
          while (!iw_pending_.empty()) {
            auto [ci, cb] = iw_pending_.front();
            iw_pending_.pop_front();
            SendChunk(ci, cb, /*from_disk=*/false);
          }
        }
        break;
      }
      case ProtocolModel::kCLW:
        break;  // pushed after close
    }
  }

  ProduceNext();
}

void WritePipeline::FinishProduction() {
  if (production_done_) return;
  production_done_ = true;
  production_end_ = testbed_->simulator().Now();
  if (config_.protocol == ProtocolModel::kCLW) {
    // IW leftover (file smaller than one increment, or tail) was flushed in
    // OnProduced; CLW pushes everything now, after the app's close().
    StartClwPush();
  }
  MaybeClose();
}

void WritePipeline::MaybeClose() {
  if (closed_ || !production_done_) return;
  bool replication_met =
      replicated_bytes_ >=
      config_.file_bytes * static_cast<std::uint64_t>(config_.replicas);
  if (config_.pessimistic && !replication_met) return;
  closed_ = true;
  close_time_ = testbed_->simulator().Now() +
                testbed_->platform().commit_overhead;
  if (config_.on_closed) {
    SimTime t = close_time_;
    testbed_->simulator().At(t, [this, t] { config_.on_closed(t); });
  }
}

void WritePipeline::StartClwPush() {
  for (std::size_t i = 0; i < total_chunks(); ++i) {
    if (IsDup(i)) continue;  // accounted at production
    SendChunk(i, ChunkBytes(i), /*from_disk=*/true);
  }
}

void WritePipeline::SendChunk(std::size_t i, std::uint64_t bytes,
                              bool from_disk) {
  auto network_leg = [this, i, bytes] {
    // Pessimistic writes push every replica through the client (close()
    // cannot return before the target is met); optimistic writes push one
    // copy and leave the rest to background benefactor-to-benefactor
    // replication, which never touches the client NIC (§IV.A).
    const int client_replicas = config_.pessimistic ? config_.replicas : 1;
    for (int r = 0; r < client_replicas; ++r) {
      int target = stripe_cursor_.Peek(config_.stripe,
                                       static_cast<std::size_t>(r));
      client_->nic->Transfer(
          static_cast<double>(bytes), [this, i, bytes, r, target] {
            bytes_transferred_ += bytes;
            BenefactorNode& bene =
                testbed_->benefactor(static_cast<std::size_t>(target));
            testbed_->fabric().Transfer(
                static_cast<double>(bytes), [this, i, bytes, r, target,
                                             &bene] {
                  bene.nic->Transfer(
                      static_cast<double>(bytes), [this, i, bytes, r, target,
                                                   &bene] {
                        bene.disk->Transfer(
                            static_cast<double>(bytes),
                            [this, i, bytes, r, target] {
                              if (r == 0) {
                                stored_first_bytes_ += bytes;
                                if (config_.on_chunk_stored) {
                                  config_.on_chunk_stored(
                                      testbed_->simulator().Now(), bytes);
                                }
                                // End-to-end flow control: the window slot
                                // frees on the storage ack ("written safely
                                // once"), so a slow stripe throttles the
                                // producer just as TCP backpressure would.
                                if (buffer_) buffer_->Release(bytes);
                                if (!config_.pessimistic) {
                                  StartBackgroundReplicas(i, bytes, target);
                                }
                              }
                              replicated_bytes_ += bytes;
                              OnReplicaStored(i, bytes, r);
                            });
                      });
                });
          });
    }
    stripe_cursor_.Advance(config_.stripe.size());
  };

  if (from_disk) {
    client_->disk->Transfer(static_cast<double>(bytes), network_leg);
  } else {
    network_leg();
  }
}

// Shadow-map copies: the manager directs the benefactor holding the first
// replica to copy the chunk to fresh donors. Source-NIC -> fabric ->
// target-NIC -> target-disk; the client is not involved.
void WritePipeline::StartBackgroundReplicas(std::size_t i,
                                            std::uint64_t bytes,
                                            int source) {
  BenefactorNode& src = testbed_->benefactor(static_cast<std::size_t>(source));
  for (int r = 1; r < config_.replicas; ++r) {
    int target = -1;
    // Next stripe members after the source, skipping the source itself.
    for (std::size_t probe = 0; probe < config_.stripe.size(); ++probe) {
      int candidate = stripe_cursor_.Peek(
          config_.stripe, static_cast<std::size_t>(r) + probe);
      if (candidate != source) {
        target = candidate;
        break;
      }
    }
    if (target < 0) target = source;  // single-node stripe: degenerate copy
    BenefactorNode& dst = testbed_->benefactor(static_cast<std::size_t>(target));
    src.nic->Transfer(static_cast<double>(bytes), [this, i, bytes, r, &dst] {
      bytes_transferred_ += bytes;
      testbed_->fabric().Transfer(
          static_cast<double>(bytes), [this, i, bytes, r, &dst] {
            dst.nic->Transfer(
                static_cast<double>(bytes), [this, i, bytes, r, &dst] {
                  dst.disk->Transfer(static_cast<double>(bytes),
                                     [this, i, bytes, r] {
                                       replicated_bytes_ += bytes;
                                       OnReplicaStored(i, bytes, r);
                                     });
                });
          });
    });
  }
}

void WritePipeline::OnReplicaStored(std::size_t /*i*/, std::uint64_t /*bytes*/,
                                    int /*replica_index*/) {
  if (stored_time_ == kSimNever && stored_first_bytes_ >= config_.file_bytes) {
    stored_time_ = testbed_->simulator().Now();
  }
  if (replicated_time_ == kSimNever &&
      replicated_bytes_ >=
          config_.file_bytes * static_cast<std::uint64_t>(config_.replicas)) {
    replicated_time_ = testbed_->simulator().Now();
  }
  MaybeClose();
}

double WritePipeline::oab_mbps() const {
  return ThroughputMBps(static_cast<double>(config_.file_bytes),
                        close_time_ - start_time_);
}

double WritePipeline::asb_mbps() const {
  SimTime done = std::max(stored_time_, production_end_);
  return ThroughputMBps(static_cast<double>(config_.file_bytes),
                        done - start_time_);
}

}  // namespace stdchk::perf
