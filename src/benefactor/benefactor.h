// A benefactor (storage donor) node — paper §IV.A.
//
// Deliberately minimal, as the paper prescribes: benefactors (1) publish
// status/free space to the manager via soft-state registration, (2) serve
// put/get chunk requests, and (3) run garbage collection against the
// manager's live set. They additionally stash uncommitted chunk maps to
// support the manager-recovery protocol.
//
// Threading: the data path (PutChunk/GetChunk/HasChunk) is safe for
// concurrent use — the chunk store locks internally and the online flag is
// atomic. Control operations (JoinPool, GC exchange, stash management) are
// driven from a single background pump (core/StdchkCluster::Tick or
// core/BackgroundDriver).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/status.h"
#include "manager/metadata_manager.h"
#include "manager/types.h"

namespace stdchk {

class Benefactor {
 public:
  // `capacity_bytes` is the donated space ceiling this desktop contributes.
  Benefactor(std::string host, std::unique_ptr<ChunkStore> store,
             std::uint64_t capacity_bytes);

  // Registers with the manager and obtains a node id.
  Status JoinPool(MetadataManager& manager);

  NodeId id() const { return id_; }
  const std::string& host() const { return host_; }
  bool online() const { return online_; }

  // Owner reclaimed the machine / process died: the node stops serving but
  // its disk contents survive a Restart().
  void Crash() { online_ = false; }
  void Restart() { online_ = true; }
  // Disk scavenged space was wiped (or the disk failed): contents are gone.
  void Wipe();

  // ---- Data path (invoked by clients / replication) -----------------------
  // Verifies that `data` hashes to `id` before storing — content
  // addressability doubles as an integrity check (§IV.C). The slice is
  // handed to the store as-is: a memory-backed donor aliases the sender's
  // buffer, never copies it.
  Status PutChunk(const ChunkId& id, BufferSlice data);
  // Borrowed-bytes convenience (tests, tools): copies once, then as above.
  Status PutChunk(const ChunkId& id, ByteSpan data) {
    return PutChunk(id, BufferSlice::Copy(data));
  }

  // Batched data path: one RPC admits many chunks. Integrity and capacity
  // are verified for the whole batch before any chunk lands, so a batch
  // rejected at admission stores nothing and the client's failover can
  // re-route it wholesale. (A store-level I/O failure mid-batch may leave
  // earlier chunks behind — they are content addressed, so they either
  // become usable replicas or GC-reclaimable orphans.) Unstamped chunks
  // re-hash in parallel on the shared HashPool (see set_verify_workers);
  // the store receives the batch as one PutBatch call.
  Status PutChunkBatch(std::span<const ChunkPut> puts);

  // Fan-out for batch-admission re-hashing of unstamped chunks: 0 (default)
  // uses hardware concurrency, N caps it, 1 is the serial path bit for bit.
  // Admission results are byte-identical for every worker count.
  void set_verify_workers(int workers) { verify_workers_ = workers; }

  // Verifies stored bytes against the content address before returning, so
  // a tampering or bit-flipping donor is detected (§IV.C). The returned
  // slice shares the store's buffer and outlives Delete/GC of the chunk.
  Result<BufferSlice> GetChunk(const ChunkId& id) const;

  // Batched read path, all-or-nothing (mirror of PutChunkBatch): one RPC
  // returns every requested chunk, each integrity-verified, or fails
  // wholesale — the client's read engine then fans the chunks back out to
  // other replicas individually.
  Result<std::vector<BufferSlice>> GetChunkBatch(
      std::span<const ChunkId> ids) const;

  bool HasChunk(const ChunkId& id) const;
  // I/O-shape counters from the backing store (segment-log syscalls, mmap
  // reads, recovery results); the zero snapshot for stores that don't
  // report. Bench/test introspection, not a protocol surface.
  ChunkStoreStats StoreStats() const { return store_->Stats(); }
  std::uint64_t BytesUsed() const { return store_->BytesUsed(); }
  // Memory actually pinned by the store's payloads (distinct generation
  // backings, counted once) — can far exceed BytesUsed() under high dedup.
  std::uint64_t ResidentBytes() const { return store_->ResidentBytes(); }
  std::uint64_t capacity() const { return capacity_bytes_; }
  std::uint64_t FreeBytes() const;
  std::size_t ChunkCount() const { return store_->ChunkCount(); }

  // ---- Manager-recovery support -------------------------------------------
  // A client that could not commit (manager down) stashes the final chunk
  // map here; OfferStashedVersions() pushes it once the manager returns.
  Status StashChunkMap(const VersionRecord& record, int stripe_width);
  std::size_t stashed_count() const { return stashed_.size(); }

  // ---- Background pumps ------------------------------------------------------
  Status SendHeartbeat(MetadataManager& manager);

  // One GC exchange: report held chunks, delete what the manager returns.
  // Returns the number of chunks reclaimed.
  Result<std::size_t> RunGc(MetadataManager& manager);

  // Pushes stashed chunk maps to a recovered manager; drops entries the
  // manager accepted or that have since been committed.
  Status OfferStashedVersions(MetadataManager& manager);

  // One throttled live-compaction pass over the backing store: rewrites
  // under-utilized disk segments / memory generation backings and hands
  // dead bytes back (donated space, so dead bytes are not free — §IV.A).
  // Pacing is the caller's job: the background pump calls this once per
  // tick and the policy's max_bytes_per_step bounds each pass.
  Result<CompactionStepReport> CompactStep() {
    STDCHK_RETURN_IF_ERROR(CheckOnline());
    return store_->CompactStep(compaction_policy_);
  }
  Result<CompactionStepReport> CompactStep(const CompactionPolicy& policy) {
    STDCHK_RETURN_IF_ERROR(CheckOnline());
    return store_->CompactStep(policy);
  }

  // Pacing knobs for the background pump's per-tick pass (threshold,
  // per-step rewrite budget). Takes effect on the next CompactStep().
  void set_compaction_policy(const CompactionPolicy& policy) {
    compaction_policy_ = policy;
  }
  const CompactionPolicy& compaction_policy() const {
    return compaction_policy_;
  }

 private:
  Status CheckOnline() const {
    return online_ ? OkStatus()
                   : UnavailableError("benefactor " + host_ + " is offline");
  }

  std::string host_;
  std::unique_ptr<ChunkStore> store_;
  std::uint64_t capacity_bytes_;
  NodeId id_ = kInvalidNode;
  std::atomic<bool> online_{true};
  int verify_workers_ = 0;  // 0 = hardware concurrency (HashPool rule)
  CompactionPolicy compaction_policy_;  // background-pump pacing knobs

  struct Stashed {
    VersionRecord record;
    int stripe_width = 0;
  };
  std::map<std::string, Stashed> stashed_;  // keyed by version name
};

}  // namespace stdchk
