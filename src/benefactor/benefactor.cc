#include "benefactor/benefactor.h"

#include <cassert>
#include <set>

#include "chunk/chunk_store.h"
#include "common/hash_pool.h"

namespace stdchk {

Benefactor::Benefactor(std::string host, std::unique_ptr<ChunkStore> store,
                       std::uint64_t capacity_bytes)
    : host_(std::move(host)),
      store_(std::move(store)),
      capacity_bytes_(capacity_bytes) {}

Status Benefactor::JoinPool(MetadataManager& manager) {
  BenefactorInfo info;
  info.host = host_;
  info.total_bytes = capacity_bytes_;
  info.free_bytes = FreeBytes();
  STDCHK_ASSIGN_OR_RETURN(id_, manager.RegisterBenefactor(info));
  return OkStatus();
}

void Benefactor::Wipe() {
  online_ = false;
  (void)store_->Wipe();
  stashed_.clear();
}

std::uint64_t Benefactor::FreeBytes() const {
  std::uint64_t used = store_->BytesUsed();
  return used >= capacity_bytes_ ? 0 : capacity_bytes_ - used;
}

Status Benefactor::PutChunk(const ChunkId& id, BufferSlice data) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  // Stamped slices verify by digest compare; unstamped pay the re-hash.
  // Debug builds re-check the stamp against the bytes: the release path
  // trusts the process-local stamp, so an upstream id/slice mispairing
  // would otherwise sail through both admission and read verification.
  assert(!data.stamped_digest() ||
         Sha1(data.span()) == *data.stamped_digest());
  if (ChunkId::For(data) != id) {
    return DataLossError("chunk content does not match its address " +
                         id.ToHex());
  }
  if (!store_->Contains(id) && store_->BytesUsed() + data.size() > capacity_bytes_) {
    return ResourceExhaustedError("benefactor " + host_ + " is full");
  }
  return store_->Put(id, std::move(data));
}

Status Benefactor::PutChunkBatch(std::span<const ChunkPut> puts) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  // Admission control over the whole batch: verify every content address
  // and the aggregate space need before storing anything. Duplicate ids
  // within the batch (repeated content, e.g. zeroed pages) store once, so
  // they count once.
  //
  // Unstamped chunks (anything that crossed a re-materializing boundary —
  // a disk store, a real wire) need a full re-hash each; fan those across
  // the shared HashPool the same way drain naming does. Each task hashes a
  // disjoint immutable slice into its own slot, so admission results are
  // byte-identical for any worker count; stamped chunks answer from the
  // memo and never touch the pool.
  std::vector<std::size_t> unstamped;
  for (std::size_t i = 0; i < puts.size(); ++i) {
    if (puts[i].data.stamped_digest() == nullptr) unstamped.push_back(i);
  }
  std::vector<ChunkId> computed(unstamped.size());
  HashPool::Shared().ParallelFor(
      unstamped.size(), HashPool::ResolveThreads(verify_workers_),
      [&puts, &unstamped, &computed](std::size_t i) {
        computed[i] = ChunkId::For(puts[unstamped[i]].data.span());
      });
  std::size_t next_unstamped = 0;
  std::uint64_t new_bytes = 0;
  std::set<ChunkId> counted;
  for (std::size_t i = 0; i < puts.size(); ++i) {
    const ChunkPut& put = puts[i];
    ChunkId actual;
    if (put.data.stamped_digest() != nullptr) {
      assert(Sha1(put.data.span()) == *put.data.stamped_digest());
      actual = ChunkId{*put.data.stamped_digest()};
    } else {
      actual = computed[next_unstamped++];
    }
    if (actual != put.id) {
      return DataLossError("chunk content does not match its address " +
                           put.id.ToHex());
    }
    if (!store_->Contains(put.id) && counted.insert(put.id).second) {
      new_bytes += put.data.size();
    }
  }
  if (store_->BytesUsed() + new_bytes > capacity_bytes_) {
    return ResourceExhaustedError("benefactor " + host_ +
                                  " cannot admit batch of " +
                                  std::to_string(puts.size()) + " chunks");
  }
  // The whole generation lands in one store call (the disk store turns it
  // into a single vectored write + fsync).
  return store_->PutBatch(puts);
}

Result<BufferSlice> Benefactor::GetChunk(const ChunkId& id) const {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  STDCHK_ASSIGN_OR_RETURN(BufferSlice data, store_->Get(id));
  // Memory-store slices still carry the writer's stamp (immutable backing,
  // so the digest is still a constant of the bytes); disk reads come back
  // unstamped and get the full re-hash — exactly where a malicious donor
  // could have flipped bits.
  if (ChunkId::For(data) != id) {
    return DataLossError("stored chunk " + id.ToHex() +
                         " failed integrity verification");
  }
  return data;
}

Result<std::vector<BufferSlice>> Benefactor::GetChunkBatch(
    std::span<const ChunkId> ids) const {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  std::vector<BufferSlice> out;
  out.reserve(ids.size());
  for (const ChunkId& id : ids) {
    STDCHK_ASSIGN_OR_RETURN(BufferSlice data, GetChunk(id));
    out.push_back(std::move(data));
  }
  return out;
}

bool Benefactor::HasChunk(const ChunkId& id) const {
  return online_ && store_->Contains(id);
}

Status Benefactor::StashChunkMap(const VersionRecord& record,
                                 int stripe_width) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  stashed_[record.name.ToString()] = Stashed{record, stripe_width};
  return OkStatus();
}

Status Benefactor::SendHeartbeat(MetadataManager& manager) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  if (id_ == kInvalidNode) {
    return FailedPreconditionError("benefactor has not joined a pool");
  }
  return manager.Heartbeat(id_, FreeBytes());
}

Result<std::size_t> Benefactor::RunGc(MetadataManager& manager) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  STDCHK_ASSIGN_OR_RETURN(std::vector<ChunkId> doomed,
                          manager.GcExchange(id_, store_->List()));
  std::size_t reclaimed = 0;
  for (const ChunkId& id : doomed) {
    if (store_->Delete(id).ok()) ++reclaimed;
  }
  return reclaimed;
}

Status Benefactor::OfferStashedVersions(MetadataManager& manager) {
  STDCHK_RETURN_IF_ERROR(CheckOnline());
  for (auto it = stashed_.begin(); it != stashed_.end();) {
    Status status = manager.OfferRecoveredVersion(id_, it->second.record,
                                                  it->second.stripe_width);
    // Drop the stash only once the version is actually committed (our offer
    // may be just one of the required two-thirds endorsements, and the
    // manager could crash again before quorum).
    if (status.ok() && manager.GetVersion(it->second.record.name).ok()) {
      it = stashed_.erase(it);
    } else {
      ++it;
    }
  }
  return OkStatus();
}

}  // namespace stdchk
