// Cluster-wide observability snapshot: what an operator's dashboard (or a
// test assertion) wants to know about a running stdchk pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "manager/file_catalog.h"  // CatalogShardStats

namespace stdchk {

class StdchkCluster;

struct NodeStats {
  std::string host;
  bool online = false;
  std::uint64_t bytes_used = 0;
  // Memory pinned by slice-aliasing storage (each retained drain-generation
  // backing counted once at full size). The bytes_used/resident_bytes gap
  // is the over-retention cost of zero-copy inserts under high dedup.
  std::uint64_t resident_bytes = 0;
  std::uint64_t capacity = 0;
  std::size_t chunk_count = 0;
};

struct ClusterStats {
  // Pool.
  std::size_t benefactors_total = 0;
  std::size_t benefactors_online = 0;
  std::uint64_t capacity_bytes = 0;
  std::uint64_t stored_bytes = 0;  // physical bytes on donors (w/ replicas)
  std::uint64_t resident_bytes = 0;  // memory pinned across donors

  // Catalog.
  std::size_t versions = 0;
  std::size_t applications = 0;
  std::uint64_t logical_bytes = 0;  // sum of committed file sizes
  std::uint64_t unique_bytes = 0;   // after compare-by-hash dedup

  // Background machinery.
  std::size_t pending_replications = 0;
  // Live compaction across the pool (sums of per-node ChunkStoreStats):
  // dead-byte reclamation progress. resident_bytes minus stored_bytes is
  // the gap compaction exists to close.
  std::uint64_t segments_compacted = 0;
  std::uint64_t generations_released = 0;
  std::uint64_t compacted_bytes_rewritten = 0;

  // Metadata plane: sharded catalog + decentralized placement. The shard
  // vector has one entry per catalog shard; the scalar catalog_* fields
  // are sums across shards. In steady state server_side_placements and
  // placement_epoch_mismatches stay flat while writes proceed — the
  // decentralized-placement invariant.
  std::size_t catalog_shards = 0;
  std::uint64_t catalog_ops = 0;
  std::uint64_t catalog_lock_acquisitions = 0;
  std::uint64_t catalog_lock_contended = 0;
  std::uint64_t placement_epoch = 0;
  std::uint64_t placement_table_fetches = 0;
  std::uint64_t placement_epoch_mismatches = 0;
  std::uint64_t server_side_placements = 0;
  std::vector<CatalogShardStats> catalog_shard_stats;

  // Transport.
  std::uint64_t rpcs = 0;
  std::uint64_t network_bytes = 0;

  std::vector<NodeStats> nodes;

  // Effective space efficiency of incremental checkpointing: logical bytes
  // the applications wrote per unique byte stored.
  double dedup_factor() const {
    return unique_bytes ? static_cast<double>(logical_bytes) /
                              static_cast<double>(unique_bytes)
                        : 1.0;
  }
  double utilization() const {
    return capacity_bytes ? static_cast<double>(stored_bytes) /
                                static_cast<double>(capacity_bytes)
                          : 0.0;
  }
};

// Collects a consistent snapshot from a cluster (declared here, defined in
// cluster_stats.cc to keep cluster.h lean).
ClusterStats CollectStats(StdchkCluster& cluster);

}  // namespace stdchk
