// StdchkCluster — the top-level public API of the functional system.
//
// Wires a metadata manager, a pool of benefactors, an in-process transport
// and client proxies into one object, and pumps all background work
// (heartbeats, soft-state expiry, replication, GC exchanges, retention,
// reservation GC) through a single deterministic Tick(). Examples that want
// wall-clock behaviour wrap Tick() in core/BackgroundDriver.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "benefactor/benefactor.h"
#include "client/client_proxy.h"
#include "core/local_transport.h"
#include "manager/metadata_manager.h"
#include "manager/virtual_clock.h"

namespace stdchk {

struct ClusterOptions {
  int benefactor_count = 8;
  std::uint64_t capacity_per_node = 4_GiB;
  ManagerOptions manager;
  ClientOptions client;
  // When set, benefactors persist chunks under <dir>/node<i>/ instead of
  // holding them in memory.
  std::string disk_root;
  // When set, each benefactor's store is passed through this decorator
  // before use (benches and tests wrap stores to inject copies, faults or
  // accounting).
  std::function<std::unique_ptr<ChunkStore>(std::unique_ptr<ChunkStore>)>
      store_decorator;
  // When true, Tick() runs one throttled CompactStep() per online
  // benefactor (step 6), reclaiming dead segment/generation bytes under
  // live traffic. Off by default so existing tests see byte-identical
  // segment layouts; `compaction` carries the threshold and per-step
  // rewrite budget.
  bool compaction_enabled = false;
  CompactionPolicy compaction;
};

class StdchkCluster {
 public:
  explicit StdchkCluster(ClusterOptions options = {});

  // ---- Component access ----------------------------------------------------
  VirtualClock& clock() { return clock_; }
  MetadataManager& manager() { return *manager_; }
  LocalTransport& transport() { return transport_; }
  ClientProxy& client() { return *default_client_; }
  std::size_t benefactor_count() const { return benefactors_.size(); }
  Benefactor& benefactor(std::size_t idx) { return *benefactors_[idx]; }
  // The benefactor owning `node`, or nullptr.
  Benefactor* FindBenefactor(NodeId node);

  // Additional client proxies (multi-writer scenarios).
  std::unique_ptr<ClientProxy> MakeClient(const ClientOptions& options);

  // Adds a benefactor at runtime (desktop joins the grid).
  Result<NodeId> AddBenefactor(std::uint64_t capacity_bytes);

  // ---- Failure control -------------------------------------------------------
  // Desktop reclaimed/crashed: stops serving, data survives restart.
  Status CrashBenefactor(std::size_t idx);
  Status RestartBenefactor(std::size_t idx);

  // ---- Background pump -------------------------------------------------------
  struct TickReport {
    std::vector<NodeId> expired;
    std::size_t replication_commands = 0;
    std::size_t replication_failures = 0;
    // Erasure-coded shard repair (k-survivor maintenance): rebuilds
    // executed this tick, and how many failed.
    std::size_t shard_repair_commands = 0;
    std::size_t shard_repair_failures = 0;
    std::vector<CheckpointName> purged;
    std::size_t gc_reclaimed_chunks = 0;
    std::size_t recovered_versions_offered = 0;
    // Live compaction (step 6, when ClusterOptions::compaction_enabled):
    // what this tick's per-benefactor CompactStep() passes accomplished.
    std::uint64_t segments_compacted = 0;
    std::uint64_t generations_released = 0;
    std::uint64_t compacted_bytes_rewritten = 0;
  };
  // Advances the virtual clock by `advance_seconds`, then runs one round of
  // every background protocol in dependency order.
  TickReport Tick(double advance_seconds = 1.0);

  // Runs Tick() until replication has converged and GC has drained, or
  // `max_ticks` rounds elapse. Returns ticks used.
  std::size_t Settle(std::size_t max_ticks = 64);

 private:
  // Executes one shard-repair command: fetches the k source shards,
  // reconstructs the missing one, verifies it against its content address,
  // and stores it on the target benefactor.
  Status ExecuteShardRepair(const ShardRepairCommand& cmd);

  ClusterOptions options_;
  VirtualClock clock_;
  std::unique_ptr<MetadataManager> manager_;
  LocalTransport transport_;
  std::vector<std::unique_ptr<Benefactor>> benefactors_;
  std::unique_ptr<ClientProxy> default_client_;
};

}  // namespace stdchk
