// Wall-clock driver for StdchkCluster background work. The cluster itself
// is deterministic and step-driven (tests call Tick() directly); examples
// and long-running deployments attach this driver to pump ticks from a
// thread.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "common/annotated_mutex.h"
#include "core/cluster.h"

namespace stdchk {

class BackgroundDriver {
 public:
  // Pumps `cluster.Tick(period_seconds)` every `period_seconds` of wall
  // time until destroyed or Stop()ped.
  BackgroundDriver(StdchkCluster* cluster, double period_seconds);
  ~BackgroundDriver();

  BackgroundDriver(const BackgroundDriver&) = delete;
  BackgroundDriver& operator=(const BackgroundDriver&) = delete;

  void Stop() EXCLUDES(mu_);

  std::uint64_t ticks() const { return ticks_.load(); }

  // Cumulative compaction work the driver's ticks have accomplished
  // (zero unless ClusterOptions::compaction_enabled). Monitoring surface
  // for long-running deployments: dead-byte reclamation is background
  // work, so its progress is only visible here and in ClusterStats.
  std::uint64_t segments_compacted() const {
    return segments_compacted_.load();
  }
  std::uint64_t generations_released() const {
    return generations_released_.load();
  }
  std::uint64_t compacted_bytes_rewritten() const {
    return compacted_bytes_rewritten_.load();
  }

 private:
  void Loop() EXCLUDES(mu_);

  StdchkCluster* cluster_;
  double period_seconds_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> segments_compacted_{0};
  std::atomic<std::uint64_t> generations_released_{0};
  std::atomic<std::uint64_t> compacted_bytes_rewritten_{0};
  // Held only around the stop/wakeup handshake, never across Tick() — so
  // its rank sits at the bottom of the hierarchy: every lock the cluster
  // tick takes (manager, catalog, transport, stores...) ranks above it.
  Mutex mu_{LockRank::kBackgroundDriver, 0, "background_driver"};
  CondVar cv_;
  std::thread thread_;
};

}  // namespace stdchk
