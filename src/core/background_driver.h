// Wall-clock driver for StdchkCluster background work. The cluster itself
// is deterministic and step-driven (tests call Tick() directly); examples
// and long-running deployments attach this driver to pump ticks from a
// thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/cluster.h"

namespace stdchk {

class BackgroundDriver {
 public:
  // Pumps `cluster.Tick(period_seconds)` every `period_seconds` of wall
  // time until destroyed or Stop()ped.
  BackgroundDriver(StdchkCluster* cluster, double period_seconds);
  ~BackgroundDriver();

  BackgroundDriver(const BackgroundDriver&) = delete;
  BackgroundDriver& operator=(const BackgroundDriver&) = delete;

  void Stop();

  std::uint64_t ticks() const { return ticks_.load(); }

 private:
  void Loop();

  StdchkCluster* cluster_;
  double period_seconds_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace stdchk
