#include "core/local_transport.h"

namespace stdchk {

void LocalTransport::AddEndpoint(Benefactor* benefactor) {
  endpoints_[benefactor->id()] = benefactor;
}

void LocalTransport::SetUnreachable(NodeId node, bool unreachable) {
  if (unreachable) {
    unreachable_.insert(node);
  } else {
    unreachable_.erase(node);
  }
}

void LocalTransport::SetLossRate(NodeId node, double p) {
  loss_rate_[node] = p;
}

Result<Benefactor*> LocalTransport::Route(NodeId node) {
  ++rpc_count_;
  auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    return UnavailableError("no route to node " + std::to_string(node));
  }
  if (unreachable_.contains(node)) {
    return UnavailableError("node " + std::to_string(node) + " unreachable");
  }
  auto loss = loss_rate_.find(node);
  if (loss != loss_rate_.end() && rng_.NextBool(loss->second)) {
    return UnavailableError("rpc to node " + std::to_string(node) +
                            " dropped");
  }
  return it->second;
}

Status LocalTransport::PutChunk(NodeId node, const ChunkId& id,
                                ByteSpan data) {
  STDCHK_ASSIGN_OR_RETURN(Benefactor * b, Route(node));
  bytes_moved_ += data.size();
  return b->PutChunk(id, data);
}

Status LocalTransport::PutChunkBatch(NodeId node,
                                     std::span<const ChunkPut> puts) {
  STDCHK_ASSIGN_OR_RETURN(Benefactor * b, Route(node));
  // Like PutChunk, the bytes hit the wire whether or not the node admits
  // them.
  for (const ChunkPut& put : puts) bytes_moved_ += put.data.size();
  return b->PutChunkBatch(puts);
}

Result<Bytes> LocalTransport::GetChunk(NodeId node, const ChunkId& id) {
  STDCHK_ASSIGN_OR_RETURN(Benefactor * b, Route(node));
  Result<Bytes> out = b->GetChunk(id);
  if (out.ok()) bytes_moved_ += out.value().size();
  return out;
}

Status LocalTransport::StashChunkMap(NodeId node, const VersionRecord& record,
                                     int stripe_width) {
  STDCHK_ASSIGN_OR_RETURN(Benefactor * b, Route(node));
  return b->StashChunkMap(record, stripe_width);
}

Status LocalTransport::CopyChunk(const ChunkId& id, NodeId source,
                                 NodeId target) {
  STDCHK_ASSIGN_OR_RETURN(Bytes data, GetChunk(source, id));
  return PutChunk(target, id, data);
}

}  // namespace stdchk
