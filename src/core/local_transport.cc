#include "core/local_transport.h"

#include <algorithm>
#include <utility>

namespace stdchk {

void LocalTransport::AddEndpoint(Benefactor* benefactor) {
  MutexLock lock(mu_);
  endpoints_[benefactor->id()] = benefactor;
}

void LocalTransport::SetUnreachable(NodeId node, bool unreachable) {
  MutexLock lock(mu_);
  if (unreachable) {
    unreachable_.insert(node);
  } else {
    unreachable_.erase(node);
  }
}

void LocalTransport::SetLossRate(NodeId node, double p) {
  MutexLock lock(mu_);
  loss_rate_[node] = p;
}

void LocalTransport::SetDefaultLinkModel(sim::LinkModel model) {
  MutexLock lock(mu_);
  default_link_ = model;
}

void LocalTransport::SetLinkModel(NodeId node, sim::LinkModel model) {
  MutexLock lock(mu_);
  links_[node] = model;
}

SimTime LocalTransport::now() const {
  MutexLock lock(mu_);
  return now_;
}

std::uint64_t LocalTransport::rpc_count() const {
  MutexLock lock(mu_);
  return rpc_count_;
}

std::uint64_t LocalTransport::bytes_moved() const {
  MutexLock lock(mu_);
  return bytes_moved_;
}

std::size_t LocalTransport::inflight_peak() const {
  MutexLock lock(mu_);
  return inflight_peak_;
}

void LocalTransport::ResetInflightPeak() {
  MutexLock lock(mu_);
  inflight_peak_ = pending_.size();
}

std::size_t LocalTransport::InFlight() const {
  MutexLock lock(mu_);
  return pending_.size();
}

Result<Benefactor*> LocalTransport::RouteLocked(NodeId node) {
  ++rpc_count_;
  auto it = endpoints_.find(node);
  if (it == endpoints_.end()) {
    return UnavailableError("no route to node " + std::to_string(node));
  }
  if (unreachable_.contains(node)) {
    return UnavailableError("node " + std::to_string(node) + " unreachable");
  }
  auto loss = loss_rate_.find(node);
  if (loss != loss_rate_.end() && rng_.NextBool(loss->second)) {
    return UnavailableError("rpc to node " + std::to_string(node) +
                            " dropped");
  }
  return it->second;
}

const sim::LinkModel& LocalTransport::LinkLocked(NodeId node) const {
  auto it = links_.find(node);
  return it != links_.end() ? it->second : default_link_;
}

std::uint64_t LocalTransport::ExecuteLocked(const ChunkOp& op,
                                            OpCompletion& out) {
  switch (op.type) {
    case ChunkOpType::kPutChunk: {
      Result<Benefactor*> routed = RouteLocked(op.node);
      if (!routed.ok()) {
        out.status = routed.status();
        return 0;
      }
      // The bytes hit the wire whether or not the node admits them.
      bytes_moved_ += op.data.size();
      out.status = routed.value()->PutChunk(op.id, op.data);
      return op.data.size();
    }
    case ChunkOpType::kPutChunkBatch: {
      Result<Benefactor*> routed = RouteLocked(op.node);
      if (!routed.ok()) {
        out.status = routed.status();
        return 0;
      }
      std::uint64_t total = 0;
      for (const ChunkPut& put : op.puts) total += put.data.size();
      bytes_moved_ += total;
      out.status = routed.value()->PutChunkBatch(op.puts);
      return total;
    }
    case ChunkOpType::kGetChunk: {
      Result<Benefactor*> routed = RouteLocked(op.node);
      if (!routed.ok()) {
        out.status = routed.status();
        return 0;
      }
      Result<BufferSlice> got = routed.value()->GetChunk(op.id);
      if (!got.ok()) {
        out.status = got.status();
        return 0;
      }
      // The completion aliases the benefactor's stored buffer — the modeled
      // wire charges the bytes, the process never copies them.
      out.data = std::move(got).value();
      bytes_moved_ += out.data.size();
      return out.data.size();
    }
    case ChunkOpType::kGetChunkBatch: {
      Result<Benefactor*> routed = RouteLocked(op.node);
      if (!routed.ok()) {
        out.status = routed.status();
        return 0;
      }
      Result<std::vector<BufferSlice>> got =
          routed.value()->GetChunkBatch(op.ids);
      if (!got.ok()) {
        out.status = got.status();
        return 0;
      }
      out.batch = std::move(got).value();
      std::uint64_t total = 0;
      for (const BufferSlice& b : out.batch) total += b.size();
      bytes_moved_ += total;
      return total;
    }
    case ChunkOpType::kStashChunkMap: {
      Result<Benefactor*> routed = RouteLocked(op.node);
      if (!routed.ok()) {
        out.status = routed.status();
        return 0;
      }
      out.status = routed.value()->StashChunkMap(op.record, op.stripe_width);
      return 0;
    }
    case ChunkOpType::kCopyChunk: {
      Result<Benefactor*> src = RouteLocked(op.node);
      if (!src.ok()) {
        out.status = src.status();
        return 0;
      }
      Result<BufferSlice> got = src.value()->GetChunk(op.id);
      if (!got.ok()) {
        out.status = got.status();
        return 0;
      }
      std::uint64_t size = got.value().size();
      bytes_moved_ += size;
      Result<Benefactor*> dst = RouteLocked(op.target);
      if (!dst.ok()) {
        out.status = dst.status();
        return size;
      }
      bytes_moved_ += size;
      // In-process replication shares the source node's buffer outright.
      out.status = dst.value()->PutChunk(op.id, std::move(got).value());
      return size;
    }
  }
  out.status = InternalError("unknown chunk op type");
  return 0;
}

OpHandle LocalTransport::Submit(ChunkOp op) {
  MutexLock lock(mu_);
  OpHandle handle = next_handle_++;
  Pending p;
  p.completion.handle = handle;
  p.completion.type = op.type;
  p.completion.node = op.node;
  // Eager execution keeps the run deterministic; delivery time follows the
  // modeled links below.
  std::uint64_t bytes = ExecuteLocked(op, p.completion);
  if (op.type == ChunkOpType::kCopyChunk) {
    // A copy occupies the source link, then the destination link.
    SimTime leg1 = std::max(now_, link_busy_until_[op.node]) +
                   LinkLocked(op.node).OpDuration(bytes);
    link_busy_until_[op.node] = leg1;
    SimTime leg2 = std::max(leg1, link_busy_until_[op.target]) +
                   LinkLocked(op.target).OpDuration(bytes);
    link_busy_until_[op.target] = leg2;
    p.ready_at = leg2;
  } else {
    SimTime done = std::max(now_, link_busy_until_[op.node]) +
                   LinkLocked(op.node).OpDuration(bytes);
    link_busy_until_[op.node] = done;
    p.ready_at = done;
  }
  pending_.emplace(handle, std::move(p));
  inflight_peak_ = std::max(inflight_peak_, pending_.size());
  return handle;
}

LocalTransport::Pending LocalTransport::TakeLocked(
    std::map<OpHandle, Pending>::iterator it) {
  Pending p = std::move(it->second);
  pending_.erase(it);
  return p;
}

Result<OpCompletion> LocalTransport::Wait(OpHandle handle) {
  MutexLock lock(mu_);
  auto it = pending_.find(handle);
  if (it == pending_.end()) {
    return NotFoundError("wait on unknown or already-delivered op handle " +
                         std::to_string(handle));
  }
  Pending p = TakeLocked(it);
  now_ = std::max(now_, p.ready_at);
  return std::move(p.completion);
}

std::map<OpHandle, LocalTransport::Pending>::iterator
LocalTransport::FindEarliestLocked(std::span<const OpHandle> handles,
                                   bool only_ready) {
  auto best = pending_.end();
  for (OpHandle h : handles) {
    auto it = pending_.find(h);
    if (it == pending_.end()) continue;
    if (only_ready && it->second.ready_at > now_) continue;
    // Earliest modeled finish wins; submission order breaks ties.
    if (best == pending_.end() ||
        it->second.ready_at < best->second.ready_at ||
        (it->second.ready_at == best->second.ready_at &&
         it->first < best->first)) {
      best = it;
    }
  }
  return best;
}

Result<OpCompletion> LocalTransport::WaitAny(
    std::span<const OpHandle> handles) {
  MutexLock lock(mu_);
  if (handles.empty()) {
    return InvalidArgumentError("WaitAny on an empty handle set");
  }
  for (OpHandle h : handles) {
    if (!pending_.contains(h)) {
      return NotFoundError(
          "WaitAny includes an unknown or already-delivered op handle " +
          std::to_string(h));
    }
  }
  Pending p = TakeLocked(FindEarliestLocked(handles, /*only_ready=*/false));
  now_ = std::max(now_, p.ready_at);
  return std::move(p.completion);
}

std::optional<OpCompletion> LocalTransport::Poll(
    std::span<const OpHandle> handles) {
  MutexLock lock(mu_);
  auto best = FindEarliestLocked(handles, /*only_ready=*/true);
  if (best == pending_.end()) return std::nullopt;
  return TakeLocked(best).completion;
}

bool LocalTransport::Cancel(OpHandle handle) {
  MutexLock lock(mu_);
  auto it = pending_.find(handle);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

}  // namespace stdchk
