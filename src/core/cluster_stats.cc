#include "core/cluster_stats.h"

#include "core/cluster.h"

namespace stdchk {

ClusterStats CollectStats(StdchkCluster& cluster) {
  ClusterStats stats;
  stats.benefactors_total = cluster.benefactor_count();
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    Benefactor& b = cluster.benefactor(i);
    NodeStats node;
    node.host = b.host();
    node.online = b.online();
    node.bytes_used = b.BytesUsed();
    node.resident_bytes = b.ResidentBytes();
    node.capacity = b.capacity();
    node.chunk_count = b.ChunkCount();
    stats.nodes.push_back(node);

    if (node.online) ++stats.benefactors_online;
    stats.capacity_bytes += node.capacity;
    stats.stored_bytes += node.bytes_used;
    stats.resident_bytes += node.resident_bytes;

    ChunkStoreStats store = b.StoreStats();
    stats.segments_compacted += store.segments_compacted;
    stats.generations_released += store.generations_released;
    stats.compacted_bytes_rewritten += store.compacted_bytes_rewritten;
  }

  const FileCatalog& catalog = cluster.manager().catalog();
  stats.versions = catalog.TotalVersions();
  stats.applications = catalog.ListApps().size();
  stats.logical_bytes = catalog.TotalLogicalBytes();
  stats.unique_bytes = catalog.TotalUniqueBytes();
  stats.pending_replications = cluster.manager().pending_replications();
  stats.rpcs = cluster.transport().rpc_count();
  stats.network_bytes = cluster.transport().bytes_moved();

  ManagerCounters counters = cluster.manager().Counters();
  stats.placement_epoch = counters.placement_epoch;
  stats.placement_table_fetches = counters.placement_table_fetches;
  stats.placement_epoch_mismatches = counters.placement_epoch_mismatches;
  stats.server_side_placements = counters.server_side_placements;
  stats.catalog_shard_stats = std::move(counters.catalog_shards);
  stats.catalog_shards = stats.catalog_shard_stats.size();
  for (const CatalogShardStats& shard : stats.catalog_shard_stats) {
    stats.catalog_ops += shard.ops;
    stats.catalog_lock_acquisitions += shard.lock_acquisitions;
    stats.catalog_lock_contended += shard.lock_contended;
  }
  return stats;
}

}  // namespace stdchk
