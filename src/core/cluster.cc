#include "core/cluster.h"

#include <cassert>
#include <optional>

#include "chunk/chunk_store.h"
#include "common/log.h"
#include "erasure/reed_solomon.h"

namespace stdchk {

StdchkCluster::StdchkCluster(ClusterOptions options)
    : options_(std::move(options)) {
  manager_ = std::make_unique<MetadataManager>(&clock_, options_.manager);
  for (int i = 0; i < options_.benefactor_count; ++i) {
    auto added = AddBenefactor(options_.capacity_per_node);
    assert(added.ok());
    (void)added;
  }
  default_client_ = std::make_unique<ClientProxy>(manager_.get(), &transport_,
                                                  options_.client);
}

Result<NodeId> StdchkCluster::AddBenefactor(std::uint64_t capacity_bytes) {
  std::string host = "desktop-" + std::to_string(benefactors_.size());
  std::unique_ptr<ChunkStore> store;
  if (options_.disk_root.empty()) {
    store = MakeMemoryChunkStore();
  } else {
    STDCHK_ASSIGN_OR_RETURN(
        store, MakeDiskChunkStore(options_.disk_root + "/" + host));
  }
  if (options_.store_decorator) store = options_.store_decorator(std::move(store));
  auto benefactor = std::make_unique<Benefactor>(host, std::move(store),
                                                 capacity_bytes);
  STDCHK_RETURN_IF_ERROR(benefactor->JoinPool(*manager_));
  transport_.AddEndpoint(benefactor.get());
  NodeId id = benefactor->id();
  benefactors_.push_back(std::move(benefactor));
  return id;
}

Benefactor* StdchkCluster::FindBenefactor(NodeId node) {
  for (auto& b : benefactors_) {
    if (b->id() == node) return b.get();
  }
  return nullptr;
}

std::unique_ptr<ClientProxy> StdchkCluster::MakeClient(
    const ClientOptions& options) {
  return std::make_unique<ClientProxy>(manager_.get(), &transport_, options);
}

Status StdchkCluster::CrashBenefactor(std::size_t idx) {
  if (idx >= benefactors_.size()) return InvalidArgumentError("bad index");
  benefactors_[idx]->Crash();
  return OkStatus();
}

Status StdchkCluster::RestartBenefactor(std::size_t idx) {
  if (idx >= benefactors_.size()) return InvalidArgumentError("bad index");
  Benefactor& b = *benefactors_[idx];
  b.Restart();
  // Soft-state re-announcement: a restarted node may have been expired, in
  // which case its replicas were dropped — the next GC exchange and
  // heartbeat re-integrate it (its chunks become orphans unless still live).
  return b.SendHeartbeat(*manager_);
}

Status StdchkCluster::ExecuteShardRepair(const ShardRepairCommand& cmd) {
  STDCHK_ASSIGN_OR_RETURN(ReedSolomon rs,
                          ReedSolomon::Create(cmd.ec_k, cmd.ec_m));
  const std::size_t shard_size = ErasureShardSize(cmd.chunk_size, cmd.ec_k);
  std::vector<BufferSlice> fetched(cmd.source_ids.size());
  std::vector<std::optional<ByteSpan>> views(
      static_cast<std::size_t>(cmd.ec_k) + cmd.ec_m);
  for (std::size_t i = 0; i < cmd.source_ids.size(); ++i) {
    Benefactor* source = FindBenefactor(cmd.source_nodes[i]);
    if (source == nullptr) {
      return UnavailableError("shard-repair source departed");
    }
    // GetChunk verifies the shard against its content address — a corrupt
    // source fails here instead of poisoning the rebuild.
    STDCHK_ASSIGN_OR_RETURN(fetched[i],
                            source->GetChunk(cmd.source_ids[i]));
    views[static_cast<std::size_t>(cmd.source_indices[i])] =
        fetched[i].span();
  }

  Bytes rebuilt(shard_size, 0);
  STDCHK_RETURN_IF_ERROR(rs.RecoverShards(
      views, shard_size, {cmd.missing_index},
      {MutableByteSpan(rebuilt.data(), rebuilt.size())}));
  // Data shards are stored unpadded; drop the virtual zero tail before the
  // content check (parity shards are always full width).
  rebuilt.resize(
      ErasureShardLength(cmd.chunk_size, cmd.ec_k, cmd.missing_index));
  if (ChunkId::For(ByteSpan(rebuilt.data(), rebuilt.size())) !=
      cmd.missing_id) {
    return DataLossError("rebuilt shard failed content verification");
  }

  Benefactor* target = FindBenefactor(cmd.target);
  if (target == nullptr) {
    return UnavailableError("shard-repair target departed");
  }
  return target->PutChunk(cmd.missing_id,
                          BufferSlice(BufferRef::Take(std::move(rebuilt))));
}

StdchkCluster::TickReport StdchkCluster::Tick(double advance_seconds) {
  TickReport report;
  clock_.AdvanceSeconds(advance_seconds);

  // 1. Soft state: online benefactors heartbeat; manager expires the rest.
  for (auto& b : benefactors_) {
    if (b->online()) (void)b->SendHeartbeat(*manager_);
  }
  report.expired = manager_->TickExpiry();

  // 2. Manager recovery: benefactors push stashed chunk maps (no-ops when
  // nothing is stashed or the manager is down).
  for (auto& b : benefactors_) {
    if (b->online() && b->stashed_count() > 0) {
      ++report.recovered_versions_offered;
      (void)b->OfferStashedVersions(*manager_);
    }
  }

  // 3. Retention policies, then reservation GC (both manager-local).
  report.purged = manager_->TickRetention();
  manager_->TickReservationGc();

  // 4. Background replication: manager issues shadow-map copy commands;
  //    the transport executes benefactor-to-benefactor copies.
  std::vector<ReplicationCommand> commands = manager_->TickReplication();
  report.replication_commands = commands.size();
  for (const ReplicationCommand& cmd : commands) {
    Status copied = transport_.CopyChunk(cmd.chunk, cmd.source, cmd.target);
    if (!copied.ok()) ++report.replication_failures;
    (void)manager_->AckReplication(cmd, copied.ok());
  }

  // 4b. Shard repair: rebuild erasure-coded shards whose holder departed,
  //     while the group still has >= k live shards to decode from.
  std::vector<ShardRepairCommand> repairs = manager_->TickShardRepair();
  report.shard_repair_commands = repairs.size();
  for (const ShardRepairCommand& cmd : repairs) {
    Status repaired = ExecuteShardRepair(cmd);
    if (!repaired.ok()) ++report.shard_repair_failures;
    (void)manager_->AckShardRepair(cmd, repaired.ok());
  }

  // 5. GC exchange: each online benefactor reconciles against the live set.
  for (auto& b : benefactors_) {
    if (!b->online()) continue;
    Result<std::size_t> reclaimed = b->RunGc(*manager_);
    if (reclaimed.ok()) report.gc_reclaimed_chunks += reclaimed.value();
  }

  // 6. Live compaction: one throttled pass per online benefactor. Runs
  //    after GC so the dead bytes GC just created are eligible this tick.
  if (options_.compaction_enabled) {
    for (auto& b : benefactors_) {
      if (!b->online()) continue;
      Result<CompactionStepReport> step = b->CompactStep(options_.compaction);
      if (!step.ok()) continue;
      report.segments_compacted += step.value().segments_compacted;
      report.generations_released += step.value().generations_released;
      report.compacted_bytes_rewritten += step.value().bytes_rewritten;
    }
  }
  return report;
}

std::size_t StdchkCluster::Settle(std::size_t max_ticks) {
  for (std::size_t i = 1; i <= max_ticks; ++i) {
    TickReport report = Tick();
    if (report.replication_commands == 0 &&
        manager_->pending_replications() == 0 &&
        report.shard_repair_commands == 0 &&
        manager_->pending_shard_repairs() == 0 &&
        report.gc_reclaimed_chunks == 0 && report.purged.empty()) {
      return i;
    }
  }
  return max_ticks;
}

}  // namespace stdchk
