// In-process implementation of the asynchronous chunk transport
// (client/transport.h) between clients and benefactors, with fault
// injection and modeled link timing.
//
// This is the functional stand-in for the desktop grid's LAN. Execution is
// eager — the benefactor side effect happens at Submit(), which keeps runs
// deterministic — but completion *delivery* follows the modeled clock: each
// node's access link (sim/LinkModel) serializes its own ops and charges
// latency + bytes/bandwidth, while ops on distinct nodes overlap. With the
// default zero-cost links the clock never moves and the transport behaves
// like the old synchronous one; with per-node models configured from
// perf/PlatformModel, pipelined callers finish in a fraction of the
// serial caller's modeled time — the paper-figure benches measure exactly
// that.
//
// Thread-safety: all operations are safe for concurrent use (one mutex
// guards the engine). Callers only ever wait on their own handles, so
// concurrent sessions sharing one transport cannot steal each other's
// completions.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "benefactor/benefactor.h"
#include "common/annotated_mutex.h"
#include "client/transport.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/link_model.h"

namespace stdchk {

class LocalTransport final : public Transport {
 public:
  LocalTransport() : rng_(0xC0FFEE) {}

  // Registers a benefactor endpoint (must have joined a pool already so it
  // has a node id). Does not take ownership.
  void AddEndpoint(Benefactor* benefactor);

  // ---- Fault injection -----------------------------------------------------
  // Cuts the "network" to a node without touching the node itself (models
  // a switch/link failure as opposed to a desktop reclaim).
  void SetUnreachable(NodeId node, bool unreachable);
  // Every data RPC to `node` fails with this probability.
  void SetLossRate(NodeId node, double p);

  // ---- Link timing model ---------------------------------------------------
  // Applies to nodes without an explicit per-node model. The zero default
  // keeps the modeled clock at 0 (timing-free functional tests).
  void SetDefaultLinkModel(sim::LinkModel model);
  void SetLinkModel(NodeId node, sim::LinkModel model);
  // Modeled time: advanced by Wait/WaitAny as completions are harvested.
  SimTime now() const;

  // ---- Traffic accounting --------------------------------------------------
  std::uint64_t rpc_count() const;
  std::uint64_t bytes_moved() const;
  // Highest number of simultaneously in-flight ops observed — the witness
  // that a caller actually overlapped its RPCs.
  std::size_t inflight_peak() const;
  void ResetInflightPeak();

  // ---- Transport -----------------------------------------------------------
  OpHandle Submit(ChunkOp op) override;
  Result<OpCompletion> Wait(OpHandle handle) override;
  Result<OpCompletion> WaitAny(std::span<const OpHandle> handles) override;
  std::optional<OpCompletion> Poll(std::span<const OpHandle> handles) override;
  bool Cancel(OpHandle handle) override;
  std::size_t InFlight() const override;

 private:
  struct Pending {
    OpCompletion completion;
    SimTime ready_at = 0;  // modeled delivery time
  };

  Result<Benefactor*> RouteLocked(NodeId node) REQUIRES(mu_);
  const sim::LinkModel& LinkLocked(NodeId node) const REQUIRES(mu_);
  // Earliest-finishing pending op among `handles` (submission order breaks
  // ties); unknown handles are skipped. `only_ready` restricts the search
  // to ops already finished at the modeled clock. end() if none qualify.
  std::map<OpHandle, Pending>::iterator FindEarliestLocked(
      std::span<const OpHandle> handles, bool only_ready) REQUIRES(mu_);
  // Executes `op` against the routed benefactor and fills `out.status` /
  // payload; returns the payload bytes that occupied the wire. The
  // benefactor side effect runs under mu_ (rank kTransport), nesting into
  // the chunk-store and hash-pool locks, which rank above it.
  std::uint64_t ExecuteLocked(const ChunkOp& op, OpCompletion& out)
      REQUIRES(mu_);
  Pending TakeLocked(std::map<OpHandle, Pending>::iterator it) REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kTransport, 0, "local_transport"};
  std::map<NodeId, Benefactor*> endpoints_ GUARDED_BY(mu_);
  std::set<NodeId> unreachable_ GUARDED_BY(mu_);
  std::map<NodeId, double> loss_rate_ GUARDED_BY(mu_);
  std::map<NodeId, sim::LinkModel> links_ GUARDED_BY(mu_);
  sim::LinkModel default_link_ GUARDED_BY(mu_){};
  std::map<NodeId, SimTime> link_busy_until_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);

  SimTime now_ GUARDED_BY(mu_) = 0;
  OpHandle next_handle_ GUARDED_BY(mu_) = 1;
  std::map<OpHandle, Pending> pending_ GUARDED_BY(mu_);
  std::uint64_t rpc_count_ GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_moved_ GUARDED_BY(mu_) = 0;
  std::size_t inflight_peak_ GUARDED_BY(mu_) = 0;
};

}  // namespace stdchk
