// In-process transport between clients and benefactors, with fault
// injection. This is the functional stand-in for the desktop grid's LAN:
// calls are synchronous, but nodes can be made unreachable or lossy to
// exercise every failure path the paper describes.
#pragma once

#include <map>
#include <set>

#include "benefactor/benefactor.h"
#include "client/benefactor_access.h"
#include "common/rng.h"

namespace stdchk {

class LocalTransport final : public BenefactorAccess {
 public:
  LocalTransport() : rng_(0xC0FFEE) {}

  // Registers a benefactor endpoint (must have joined a pool already so it
  // has a node id). Does not take ownership.
  void AddEndpoint(Benefactor* benefactor);

  // ---- Fault injection -----------------------------------------------------
  // Cuts the "network" to a node without touching the node itself (models
  // a switch/link failure as opposed to a desktop reclaim).
  void SetUnreachable(NodeId node, bool unreachable);
  // Every data RPC to `node` fails with this probability.
  void SetLossRate(NodeId node, double p);

  std::uint64_t rpc_count() const { return rpc_count_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

  // ---- BenefactorAccess ------------------------------------------------------
  Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) override;
  // True single-RPC batch: one route (one fault-injection roll, one
  // rpc_count tick) carries every chunk, which is what makes the client's
  // per-benefactor upload queues pay off.
  Status PutChunkBatch(NodeId node, std::span<const ChunkPut> puts) override;
  Result<Bytes> GetChunk(NodeId node, const ChunkId& id) override;
  Status StashChunkMap(NodeId node, const VersionRecord& record,
                       int stripe_width) override;

  // Direct benefactor-to-benefactor copy, used to execute replication
  // commands (the shadow-map copy of §IV.A).
  Status CopyChunk(const ChunkId& id, NodeId source, NodeId target);

 private:
  Result<Benefactor*> Route(NodeId node);

  std::map<NodeId, Benefactor*> endpoints_;
  std::set<NodeId> unreachable_;
  std::map<NodeId, double> loss_rate_;
  Rng rng_;
  std::uint64_t rpc_count_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace stdchk
