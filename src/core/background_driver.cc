#include "core/background_driver.h"

namespace stdchk {

BackgroundDriver::BackgroundDriver(StdchkCluster* cluster,
                                   double period_seconds)
    : cluster_(cluster), period_seconds_(period_seconds) {
  thread_ = std::thread([this] { Loop(); });
}

BackgroundDriver::~BackgroundDriver() { Stop(); }

void BackgroundDriver::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.exchange(true)) return;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BackgroundDriver::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load()) {
    auto period = std::chrono::duration<double>(period_seconds_);
    if (cv_.wait_for(lock, period, [this] { return stop_.load(); })) break;
    lock.unlock();
    cluster_->Tick(period_seconds_);
    ticks_.fetch_add(1);
    lock.lock();
  }
}

}  // namespace stdchk
