#include "core/background_driver.h"

namespace stdchk {

BackgroundDriver::BackgroundDriver(StdchkCluster* cluster,
                                   double period_seconds)
    : cluster_(cluster), period_seconds_(period_seconds) {
  thread_ = std::thread([this] { Loop(); });
}

BackgroundDriver::~BackgroundDriver() { Stop(); }

void BackgroundDriver::Stop() {
  {
    MutexLock lock(mu_);
    if (stop_.exchange(true)) return;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void BackgroundDriver::Loop() {
  while (!stop_.load()) {
    {
      // Sleep out the period under the driver mutex, waking early on Stop().
      MutexLock lock(mu_);
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::
                                                     duration>(
                          std::chrono::duration<double>(period_seconds_));
      bool timed_out = false;
      while (!stop_.load() && !timed_out) {
        timed_out = cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout;
      }
    }
    if (stop_.load()) break;
    // Tick with no locks held: the cluster tick acquires manager, catalog,
    // transport and store locks, all of which rank above this mutex.
    StdchkCluster::TickReport report = cluster_->Tick(period_seconds_);
    segments_compacted_.fetch_add(report.segments_compacted);
    generations_released_.fetch_add(report.generations_released);
    compacted_bytes_rewritten_.fetch_add(report.compacted_bytes_rewritten);
    ticks_.fetch_add(1);
  }
}

}  // namespace stdchk
