#include "sim/pipe.h"

#include <algorithm>

namespace stdchk::sim {

SimTime Pipe::Transfer(double bytes, std::function<void()> done) {
  SimTime start = std::max(sim_->Now(), busy_until_);
  SimTime duration = per_op_overhead_ + TransferTime(bytes, mb_per_s_);
  busy_until_ = start + duration;
  bytes_moved_ += bytes;
  if (done) sim_->At(busy_until_, std::move(done));
  return busy_until_;
}

}  // namespace stdchk::sim
