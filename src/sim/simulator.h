// Deterministic discrete-event simulator.
//
// This is the substrate that stands in for the paper's 28-node testbed
// (DESIGN.md §2): protocol pipelines are expressed as chains of events over
// modeled resources (disks, NICs, a switch backplane). Time is integer
// nanoseconds; ties are broken by insertion sequence, so every run is
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace stdchk::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must be >= Now()).
  void At(SimTime t, std::function<void()> fn);

  // Schedules `fn` `delay` after Now().
  void After(SimTime delay, std::function<void()> fn) {
    At(now_ + delay, std::move(fn));
  }

  // Runs until the event queue is empty.
  void Run();

  // Runs events with time <= `t`, then sets Now() to `t`.
  void RunUntil(SimTime t);

  std::uint64_t events_processed() const { return events_processed_; }
  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO among same-time events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace stdchk::sim
