// Per-node access-link timing model, promoted out of the DES so the
// functional transport (core/LocalTransport) can run against modeled LAN
// speeds: each node's link serializes its transfers and charges a fixed
// per-op setup latency plus bytes/bandwidth. The perf models and the
// transport share this vocabulary, so paper-figure benches and functional
// pipelines see the same arithmetic.
#pragma once

#include <cstdint>

#include "common/sim_time.h"

namespace stdchk::sim {

struct LinkModel {
  // Fixed per-op cost (RPC setup, request propagation).
  SimTime latency = 0;
  // Payload rate of the link; 0 models an infinitely fast link (the
  // functional default, which keeps unit tests timing-free).
  double bandwidth_mbps = 0.0;

  constexpr SimTime TransferDuration(std::uint64_t bytes) const {
    return bandwidth_mbps > 0.0
               ? TransferTime(static_cast<double>(bytes), bandwidth_mbps)
               : 0;
  }

  // Total busy time one op of `bytes` payload occupies the link.
  constexpr SimTime OpDuration(std::uint64_t bytes) const {
    return latency + TransferDuration(bytes);
  }
};

}  // namespace stdchk::sim
