#include "sim/bounded_buffer.h"

namespace stdchk::sim {

void BoundedBuffer::Acquire(std::uint64_t bytes, std::function<void()> fn) {
  if (!unbounded()) {
    assert(bytes <= capacity_ && "request larger than buffer capacity");
  }
  if (waiters_.empty() && (unbounded() || used_ + bytes <= capacity_)) {
    used_ += bytes;
    fn();
    return;
  }
  waiters_.push_back(Waiter{bytes, std::move(fn)});
}

void BoundedBuffer::Release(std::uint64_t bytes) {
  assert(bytes <= used_);
  used_ -= bytes;
  while (!waiters_.empty() &&
         (unbounded() || used_ + waiters_.front().bytes <= capacity_)) {
    Waiter w = std::move(waiters_.front());
    waiters_.pop_front();
    used_ += w.bytes;
    w.fn();
  }
}

}  // namespace stdchk::sim
