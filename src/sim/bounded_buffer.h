// Byte-counted bounded buffer with asynchronous space acquisition.
//
// Models the sliding-window write interface's memory buffer (paper §IV.B):
// the application fills the buffer at memcpy speed and blocks when it is
// full; the network sender drains it and releases space as chunks leave the
// client NIC. Also models a disk write cache.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>

namespace stdchk::sim {

class BoundedBuffer {
 public:
  explicit BoundedBuffer(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return capacity_ - used_; }

  // Requests `bytes` of space; runs `fn` immediately if available, otherwise
  // queues it (FIFO) until enough Release() calls arrive. `bytes` may exceed
  // capacity only if the buffer is unbounded (capacity 0 == unbounded).
  void Acquire(std::uint64_t bytes, std::function<void()> fn);

  // Returns `bytes` of space and unblocks waiters in order.
  void Release(std::uint64_t bytes);

  std::size_t waiters() const { return waiters_.size(); }

 private:
  bool unbounded() const { return capacity_ == 0; }

  struct Waiter {
    std::uint64_t bytes;
    std::function<void()> fn;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::deque<Waiter> waiters_;
};

}  // namespace stdchk::sim
