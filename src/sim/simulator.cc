#include "sim/simulator.h"

#include <cassert>

namespace stdchk::sim {

void Simulator::At(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::Run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast on the
    // function object only (the key fields are left untouched before pop).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace stdchk::sim
