// Modeled bandwidth resources.
//
// A Pipe is a FIFO store-and-forward resource: each transfer occupies the
// resource for (overhead + bytes/bandwidth). Chaining pipes (client disk ->
// client NIC -> switch -> benefactor NIC -> benefactor disk) and feeding
// them chunk-sized segments yields pipelined behaviour whose steady state is
// the min-bandwidth stage — exactly the bottleneck structure the paper's
// write-throughput experiments probe.
#pragma once

#include <functional>
#include <string>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace stdchk::sim {

class Pipe {
 public:
  Pipe(Simulator* sim, std::string name, double mb_per_s,
       SimTime per_op_overhead = 0)
      : sim_(sim),
        name_(std::move(name)),
        mb_per_s_(mb_per_s),
        per_op_overhead_(per_op_overhead) {}

  const std::string& name() const { return name_; }
  double mb_per_s() const { return mb_per_s_; }
  void set_bandwidth(double mb_per_s) { mb_per_s_ = mb_per_s; }

  // Enqueues a transfer of `bytes`; calls `done` at its completion time.
  // Returns the scheduled completion time.
  SimTime Transfer(double bytes, std::function<void()> done);

  // Convenience: transfer with no completion action (models background
  // traffic occupying the resource).
  SimTime Occupy(double bytes) { return Transfer(bytes, nullptr); }

  SimTime busy_until() const { return busy_until_; }
  double bytes_moved() const { return bytes_moved_; }

 private:
  Simulator* sim_;
  std::string name_;
  double mb_per_s_;
  SimTime per_op_overhead_;
  SimTime busy_until_ = 0;
  double bytes_moved_ = 0;
};

}  // namespace stdchk::sim
