#include "fs/file_system.h"

#include <algorithm>

namespace stdchk {

FileSystem::FileSystem(ClientProxy* proxy, std::string mount_point)
    : proxy_(proxy), mount_point_(std::move(mount_point)) {}

Result<FileSystem::ParsedPath> FileSystem::ParsePath(
    const std::string& path) const {
  if (path.compare(0, mount_point_.size(), mount_point_) != 0) {
    return InvalidArgumentError("path " + path + " outside mount point " +
                                mount_point_);
  }
  std::string rest = path.substr(mount_point_.size());
  while (!rest.empty() && rest.front() == '/') rest.erase(rest.begin());
  while (!rest.empty() && rest.back() == '/') rest.pop_back();

  ParsedPath out;
  if (rest.empty()) {
    out.kind = ParsedPath::kRoot;
    return out;
  }
  std::size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    // Single component: an app folder, or a bare A.Ni.Tj file at the root
    // (we then derive the folder from the name, per the convention).
    auto name = CheckpointName::Parse(rest);
    if (name.has_value()) {
      out.kind = ParsedPath::kFile;
      out.name = *name;
      out.app = name->app;
    } else {
      out.kind = ParsedPath::kAppDir;
      out.app = rest;
    }
    return out;
  }
  out.app = rest.substr(0, slash);
  std::string file = rest.substr(slash + 1);
  if (file.find('/') != std::string::npos) {
    return InvalidArgumentError("nested directories are not supported: " +
                                path);
  }
  auto name = CheckpointName::Parse(file);
  if (!name.has_value()) {
    return InvalidArgumentError(
        "file name must follow the <app>.<node>.T<j> convention: " + file);
  }
  if (name->app != out.app) {
    return InvalidArgumentError("file " + file + " does not belong to folder " +
                                out.app);
  }
  out.kind = ParsedPath::kFile;
  out.name = *name;
  return out;
}

Result<Fd> FileSystem::Open(const std::string& path, OpenMode mode) {
  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(path));
  if (parsed.kind != ParsedPath::kFile) {
    return InvalidArgumentError("cannot open a directory: " + path);
  }

  OpenFile file;
  file.path = path;
  if (mode == OpenMode::kWrite) {
    STDCHK_ASSIGN_OR_RETURN(file.writer, proxy_->CreateFile(parsed.name));
  } else {
    STDCHK_ASSIGN_OR_RETURN(file.reader, proxy_->OpenFile(parsed.name));
  }
  Fd fd = next_fd_++;
  open_files_[fd] = std::move(file);
  return fd;
}

Result<std::size_t> FileSystem::Write(Fd fd, ByteSpan data) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return InvalidArgumentError("bad fd");
  if (!it->second.writer) {
    return FailedPreconditionError("fd not open for writing");
  }
  STDCHK_RETURN_IF_ERROR(it->second.writer->Write(data));
  it->second.position += data.size();
  return data.size();
}

Result<std::size_t> FileSystem::Read(Fd fd, MutableByteSpan out) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return InvalidArgumentError("bad fd");
  STDCHK_ASSIGN_OR_RETURN(std::size_t n, PRead(fd, it->second.position, out));
  it->second.position += n;
  return n;
}

Result<std::size_t> FileSystem::PRead(Fd fd, std::uint64_t offset,
                                      MutableByteSpan out) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return InvalidArgumentError("bad fd");
  if (!it->second.reader) {
    return FailedPreconditionError("fd not open for reading");
  }
  return it->second.reader->ReadAt(offset, out);
}

Result<std::uint64_t> FileSystem::Seek(Fd fd, std::uint64_t offset) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return InvalidArgumentError("bad fd");
  if (it->second.writer) {
    return FailedPreconditionError(
        "checkpoint images are written sequentially; seek on a write fd is "
        "not supported");
  }
  it->second.position = offset;
  return offset;
}

Status FileSystem::Close(Fd fd) {
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return InvalidArgumentError("bad fd");
  Status result = OkStatus();
  if (it->second.writer) {
    Result<CloseOutcome> outcome = it->second.writer->Close();
    if (!outcome.ok()) result = outcome.status();
    // The file's attributes changed from "open/invisible" to committed.
    attr_cache_.erase(it->second.path);
  }
  open_files_.erase(it);
  return result;
}

Result<FileAttr> FileSystem::GetAttr(const std::string& path) {
  auto cached = attr_cache_.find(path);
  if (cached != attr_cache_.end()) {
    ++attr_cache_hits_;
    return cached->second;
  }
  ++attr_cache_misses_;

  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(path));
  FileAttr attr;
  switch (parsed.kind) {
    case ParsedPath::kRoot:
      attr.is_directory = true;
      break;
    case ParsedPath::kAppDir: {
      STDCHK_ASSIGN_OR_RETURN(auto versions,
                              proxy_->manager()->ListVersions(parsed.app));
      if (versions.empty()) {
        return NotFoundError("no such application folder: " + parsed.app);
      }
      attr.is_directory = true;
      break;
    }
    case ParsedPath::kFile: {
      STDCHK_ASSIGN_OR_RETURN(VersionRecord record,
                              proxy_->manager()->GetVersion(parsed.name));
      attr.size = record.size;
      attr.commit_time = record.commit_time;
      break;
    }
  }
  attr_cache_[path] = attr;
  return attr;
}

Result<std::vector<std::string>> FileSystem::ReadDir(const std::string& path) {
  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(path));
  std::vector<std::string> out;
  if (parsed.kind == ParsedPath::kRoot) {
    STDCHK_ASSIGN_OR_RETURN(out, proxy_->manager()->ListApps());
    return out;
  }
  if (parsed.kind == ParsedPath::kAppDir) {
    STDCHK_ASSIGN_OR_RETURN(auto versions,
                            proxy_->manager()->ListVersions(parsed.app));
    out.reserve(versions.size());
    for (const CheckpointName& name : versions) out.push_back(name.ToString());
    return out;
  }
  return InvalidArgumentError("not a directory: " + path);
}

Status FileSystem::Unlink(const std::string& path) {
  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(path));
  if (parsed.kind != ParsedPath::kFile) {
    return InvalidArgumentError("unlink expects a file: " + path);
  }
  STDCHK_RETURN_IF_ERROR(proxy_->Delete(parsed.name));
  attr_cache_.erase(path);
  return OkStatus();
}

Status FileSystem::RemoveAll(const std::string& app_dir_path) {
  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(app_dir_path));
  if (parsed.kind != ParsedPath::kAppDir) {
    return InvalidArgumentError("expected an application folder: " +
                                app_dir_path);
  }
  STDCHK_RETURN_IF_ERROR(proxy_->manager()->DeleteApp(parsed.app).status());
  InvalidateCaches();
  return OkStatus();
}

Status FileSystem::SetPolicy(const std::string& app_dir_path,
                             const FolderPolicy& policy) {
  STDCHK_ASSIGN_OR_RETURN(ParsedPath parsed, ParsePath(app_dir_path));
  if (parsed.kind != ParsedPath::kAppDir) {
    return InvalidArgumentError("policies attach to application folders: " +
                                app_dir_path);
  }
  return proxy_->manager()->SetFolderPolicy(parsed.app, policy);
}

void FileSystem::InvalidateCaches() { attr_cache_.clear(); }

}  // namespace stdchk
