// Traditional file-system interface over stdchk (paper §IV.E).
//
// The paper mounts the storage system under /stdchk via FUSE; every system
// call against the mount point is forwarded to user-space callbacks. This
// module is that callback layer: a mount-point namespace, a file-descriptor
// table, sequential read/write positions, and a metadata cache "so that
// most readdir and getattr system calls can be answered without contacting
// the manager". The kernel hop itself is hardware-specific; its cost (32 µs
// per call) is modeled in src/perf for the performance experiments.
//
// Namespace layout (paper §IV.D naming convention):
//   /stdchk/<app>/<app>.<node>.T<j>   one checkpoint image
//   /stdchk/<app>/                    application folder (policy attaches here)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/client_proxy.h"
#include "common/status.h"

namespace stdchk {

using Fd = int;

enum class OpenMode { kRead, kWrite };

struct FileAttr {
  std::uint64_t size = 0;
  ClockTime commit_time = 0;
  bool is_directory = false;
};

class FileSystem {
 public:
  explicit FileSystem(ClientProxy* proxy, std::string mount_point = "/stdchk");

  const std::string& mount_point() const { return mount_point_; }

  // ---- File I/O ------------------------------------------------------------
  // Opening for write creates a new (immutable) checkpoint image; its name
  // component must follow the A.Ni.Tj convention. Opening for read requires
  // a committed image.
  Result<Fd> Open(const std::string& path, OpenMode mode);

  Result<std::size_t> Write(Fd fd, ByteSpan data);

  // Sequential read at the fd's position.
  Result<std::size_t> Read(Fd fd, MutableByteSpan out);
  // Positional read (does not move the fd position).
  Result<std::size_t> PRead(Fd fd, std::uint64_t offset, MutableByteSpan out);

  Result<std::uint64_t> Seek(Fd fd, std::uint64_t offset);

  // close() is the session-semantics commit point for written files.
  Status Close(Fd fd);

  // ---- Namespace -----------------------------------------------------------
  Result<FileAttr> GetAttr(const std::string& path);
  Result<std::vector<std::string>> ReadDir(const std::string& path);
  Status Unlink(const std::string& path);
  // Removes an application folder and all images in it.
  Status RemoveAll(const std::string& app_dir_path);

  // Attaches a retention policy to an application folder (§IV.D metadata).
  Status SetPolicy(const std::string& app_dir_path, const FolderPolicy& policy);

  // ---- Cache telemetry --------------------------------------------------------
  std::uint64_t attr_cache_hits() const { return attr_cache_hits_; }
  std::uint64_t attr_cache_misses() const { return attr_cache_misses_; }
  void InvalidateCaches();

 private:
  struct ParsedPath {
    enum Kind { kRoot, kAppDir, kFile } kind = kRoot;
    std::string app;
    CheckpointName name;  // valid when kind == kFile
  };
  Result<ParsedPath> ParsePath(const std::string& path) const;

  struct OpenFile {
    std::unique_ptr<WriteSession> writer;
    std::unique_ptr<ReadSession> reader;
    std::uint64_t position = 0;
    std::string path;
  };

  ClientProxy* proxy_;
  std::string mount_point_;
  Fd next_fd_ = 3;  // after stdin/stdout/stderr, in the spirit of the name
  std::map<Fd, OpenFile> open_files_;

  std::map<std::string, FileAttr> attr_cache_;
  std::uint64_t attr_cache_hits_ = 0;
  std::uint64_t attr_cache_misses_ = 0;
};

}  // namespace stdchk
