// Pipelined read engine: chunk-map lookup at the manager, then overlapped
// chunk fetches from benefactors through the async transport (paper §IV.E:
// "improves read performance through read-ahead and high volume caching").
// Reads matter for timely job restarts (§III.B).
//
// The engine keeps a bounded window of chunk fetches in flight — the demand
// chunk plus ClientOptions::read_ahead_chunks of read-ahead — overlapping
// transfers across distinct benefactors. Chunks of the window that land on
// the same replica are coalesced into one GetChunkBatch RPC. Replica
// selection round-robins over each chunk's replica set, skips nodes already
// observed dead this session before paying a failed RPC (retrying them only
// as a last resort), and fails over per chunk. The read-ahead cache is
// bounded by ClientOptions::read_cache_budget_bytes; evictions show up in
// ReadStats.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "client/client_options.h"
#include "client/transport.h"
#include "common/status.h"
#include "manager/metadata_manager.h"

namespace stdchk {

// Per-session read accounting.
struct ReadStats {
  std::uint64_t chunks_fetched = 0;  // chunk payloads received
  std::uint64_t cache_hits = 0;      // demand chunk already cached at ReadAt
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes_peak = 0;
  std::uint64_t single_gets = 0;  // GetChunk ops issued
  std::uint64_t batch_gets = 0;   // GetChunkBatch ops issued
  std::uint64_t failovers = 0;    // chunk fetches retried after a failure
  std::uint64_t dead_replica_skips = 0;  // replicas skipped as observed-dead
  std::size_t inflight_peak = 0;  // engine's overlap high watermark (chunks)
};

class ReadSession {
 public:
  ReadSession(Transport* transport, VersionRecord record,
              ClientOptions options);
  ~ReadSession();

  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  std::uint64_t size() const { return record_.size; }

  // Reads up to `out.size()` bytes at `offset`; returns bytes read (0 at
  // EOF). Sequential callers get the full pipelined window.
  Result<std::size_t> ReadAt(std::uint64_t offset, MutableByteSpan out);

  // Convenience: the whole file.
  Result<Bytes> ReadAll();

  const ReadStats& stats() const { return stats_; }
  std::uint64_t chunks_fetched() const { return stats_.chunks_fetched; }
  std::uint64_t cache_hits() const { return stats_.cache_hits; }

 private:
  struct Cached {
    std::size_t index;
    BufferSlice data;  // shares the serving node's buffer — never a copy
  };
  // One in-flight transport op and the window chunks riding on it.
  struct Fetch {
    std::vector<std::size_t> indices;
    NodeId node = kInvalidNode;
  };

  std::size_t WindowEnd(std::size_t demand) const;
  std::size_t MaxInflight() const;
  // Selects a replica for chunk `index`: round-robin over its replica set,
  // skipping replicas that already failed for this chunk and nodes observed
  // dead this session (dead nodes are retried only when no live candidate
  // remains — a drop may have been transient, so exhausted blacklists are
  // cleared and re-swept under a bounded per-chunk failover budget).
  Result<NodeId> PickReplica(std::size_t index);
  // Fills the in-flight window for demand position `demand`, coalescing
  // same-replica chunks into batch GETs. Errors only if the demand chunk
  // itself has no fetchable replica; read-ahead failures stay soft.
  Status PumpWindow(std::size_t demand);
  // Delivers one completion: caches payloads, or records the failure and
  // releases its chunks for failover resubmission.
  Status HarvestOne(std::size_t demand);
  // Blocks until chunk `index` is cached (pumping + harvesting the window).
  Result<const BufferSlice*> ChunkData(std::size_t index);

  void Insert(std::size_t index, BufferSlice data);
  void EvictToBudget(std::size_t demand);

  Transport* transport_;
  VersionRecord record_;
  ClientOptions options_;
  ReadStats stats_;

  std::list<Cached> cache_;  // insertion order = eviction order
  std::map<std::size_t, std::list<Cached>::iterator> cache_index_;
  std::uint64_t cache_bytes_ = 0;

  std::map<OpHandle, Fetch> inflight_;
  std::set<std::size_t> inflight_chunks_;

  std::set<NodeId> dead_nodes_;  // nodes observed unreachable this session
  std::map<std::size_t, std::set<NodeId>> failed_replicas_;  // per chunk
  std::map<std::size_t, std::size_t> fetch_attempts_;  // failed, per ReadAt
  std::set<std::size_t> singles_only_;  // retry alone after a batch rejection
  std::size_t rr_replica_ = 0;
};

}  // namespace stdchk
