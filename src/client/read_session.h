// Read path: chunk-map lookup at the manager, then direct chunk fetches
// from benefactors with replica failover and simple read-ahead (paper
// §IV.E: "improves read performance through read-ahead and high volume
// caching"). Reads matter for timely job restarts (§III.B).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "client/benefactor_access.h"
#include "client/client_options.h"
#include "common/status.h"
#include "manager/metadata_manager.h"

namespace stdchk {

class ReadSession {
 public:
  ReadSession(BenefactorAccess* access, VersionRecord record,
              ClientOptions options);

  std::uint64_t size() const { return record_.size; }

  // Reads up to `out.size()` bytes at `offset`; returns bytes read (0 at
  // EOF). Sequential callers benefit from read-ahead caching.
  Result<std::size_t> ReadAt(std::uint64_t offset, MutableByteSpan out);

  // Convenience: the whole file.
  Result<Bytes> ReadAll();

  std::uint64_t chunks_fetched() const { return chunks_fetched_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  // Fetches chunk `index` (with replica failover) into the cache.
  Status Prefetch(std::size_t index);
  Result<const Bytes*> ChunkData(std::size_t index);

  BenefactorAccess* access_;
  VersionRecord record_;
  ClientOptions options_;

  struct CachedChunk {
    std::size_t index;
    Bytes data;
  };
  std::deque<CachedChunk> cache_;
  std::size_t rr_replica_ = 0;
  std::uint64_t chunks_fetched_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace stdchk
