// Pipelined read engine: chunk-map lookup at the manager, then overlapped
// chunk fetches from benefactors through the async transport (paper §IV.E:
// "improves read performance through read-ahead and high volume caching").
// Reads matter for timely job restarts (§III.B).
//
// The engine keeps a bounded window of chunk fetches in flight — the demand
// chunk plus ClientOptions::read_ahead_chunks of read-ahead — overlapping
// transfers across distinct benefactors. Chunks of the window that land on
// the same replica are coalesced into one GetChunkBatch RPC. Replica
// selection round-robins over each chunk's replica set, skips nodes already
// observed dead this session before paying a failed RPC (retrying them only
// as a last resort), and fails over per chunk. The read-ahead cache is
// bounded by ClientOptions::read_cache_budget_bytes; evictions show up in
// ReadStats.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "client/client_options.h"
#include "client/transport.h"
#include "common/annotated_mutex.h"
#include "common/status.h"
#include "manager/metadata_manager.h"

namespace stdchk {

// Per-session read accounting.
struct ReadStats {
  std::uint64_t chunks_fetched = 0;  // chunk payloads received
  std::uint64_t cache_hits = 0;      // demand chunk already cached at ReadAt
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes_peak = 0;
  std::uint64_t single_gets = 0;  // GetChunk ops issued
  std::uint64_t batch_gets = 0;   // GetChunkBatch ops issued
  std::uint64_t failovers = 0;    // chunk fetches retried after a failure
  std::uint64_t dead_replica_skips = 0;  // replicas skipped as observed-dead
  std::size_t inflight_peak = 0;  // engine's overlap high watermark (chunks)

  // Erasure-coded chunks (ChunkLocation::erasure_coded()):
  std::uint64_t shard_fetches = 0;         // shard payloads received
  std::uint64_t parity_shard_fetches = 0;  // parity pulled to cover a loss
  std::uint64_t reconstructions = 0;       // chunks rebuilt from parity
  std::uint64_t full_replica_fallbacks = 0;  // EC chunks served by a whole
                                             // replica after shard recovery
                                             // failed (mixed-mode dedup only)
};

class ReadSession {
 public:
  ReadSession(Transport* transport, VersionRecord record,
              ClientOptions options);
  ~ReadSession();

  ReadSession(const ReadSession&) = delete;
  ReadSession& operator=(const ReadSession&) = delete;

  std::uint64_t size() const { return record_.size; }

  // Reads up to `out.size()` bytes at `offset`; returns bytes read (0 at
  // EOF). Sequential callers get the full pipelined window. Serialized on
  // the session mutex: concurrent callers share one window and cache.
  Result<std::size_t> ReadAt(std::uint64_t offset, MutableByteSpan out)
      EXCLUDES(mu_);

  // Convenience: the whole file.
  Result<Bytes> ReadAll();

  // Snapshot of the accounting, copied under the session mutex so a reader
  // concurrent with ReadAt sees a consistent struct.
  ReadStats stats() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  std::uint64_t chunks_fetched() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_.chunks_fetched;
  }
  std::uint64_t cache_hits() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_.cache_hits;
  }

 private:
  struct Cached {
    std::size_t index;
    BufferSlice data;  // shares the serving node's buffer — never a copy
  };
  // One in-flight transport op and the window chunks riding on it.
  struct Fetch {
    std::vector<std::size_t> indices;
    NodeId node = kInvalidNode;
  };

  std::size_t WindowEnd(std::size_t demand) const;
  std::size_t MaxInflight() const;
  // Selects a replica for chunk `index`: round-robin over its replica set,
  // skipping replicas that already failed for this chunk and nodes observed
  // dead this session (dead nodes are retried only when no live candidate
  // remains — a drop may have been transient, so exhausted blacklists are
  // cleared and re-swept under a bounded per-chunk failover budget).
  Result<NodeId> PickReplica(std::size_t index) REQUIRES(mu_);
  // Fills the in-flight window for demand position `demand`, coalescing
  // same-replica chunks into batch GETs. Errors only if the demand chunk
  // itself has no fetchable replica; read-ahead failures stay soft.
  Status PumpWindow(std::size_t demand) REQUIRES(mu_);
  // Delivers one completion: caches payloads, or records the failure and
  // releases its chunks for failover resubmission. Blocks in the transport
  // while holding mu_ — legal because kClientReadSession ranks below
  // kTransport, and intended: the window state must not shift under the
  // wait.
  Status HarvestOne(std::size_t demand) REQUIRES(mu_);
  // Blocks until chunk `index` is cached (pumping + harvesting the window).
  // The returned pointer aliases the cache; it stays valid only while mu_
  // is held (ReadAt copies out before unlocking).
  Result<const BufferSlice*> ChunkData(std::size_t index) REQUIRES(mu_);
  // Fetches and reassembles an erasure-coded chunk: concurrent GETs for its
  // k data shards (each on its own benefactor — the striped-read
  // parallelism comes free), pulling parity shards only when a data shard's
  // holder fails, and reconstructing from any k survivors. The reassembled
  // chunk must verify against the whole-chunk content address. Bypasses the
  // replica window machinery; EC chunks are not read ahead.
  Result<BufferSlice> FetchErasure(std::size_t index) REQUIRES(mu_);

  void Insert(std::size_t index, BufferSlice data) REQUIRES(mu_);
  void EvictToBudget(std::size_t demand) REQUIRES(mu_);

  Transport* transport_;
  VersionRecord record_;
  ClientOptions options_;

  // Session lock: one ReadAt (window pump + harvest + cache) runs at a
  // time, and the stats accessors snapshot under it. Ranks below the
  // transport because HarvestOne waits on completions while holding it.
  mutable Mutex mu_{LockRank::kClientReadSession, 0, "read_session"};

  ReadStats stats_ GUARDED_BY(mu_);

  std::list<Cached> cache_ GUARDED_BY(mu_);  // insertion order = eviction order
  std::map<std::size_t, std::list<Cached>::iterator> cache_index_
      GUARDED_BY(mu_);
  std::uint64_t cache_bytes_ GUARDED_BY(mu_) = 0;

  std::map<OpHandle, Fetch> inflight_ GUARDED_BY(mu_);
  std::set<std::size_t> inflight_chunks_ GUARDED_BY(mu_);

  // Nodes observed unreachable this session.
  std::set<NodeId> dead_nodes_ GUARDED_BY(mu_);
  std::map<std::size_t, std::set<NodeId>> failed_replicas_
      GUARDED_BY(mu_);  // per chunk
  std::map<std::size_t, std::size_t> fetch_attempts_
      GUARDED_BY(mu_);  // failed, per ReadAt
  // Retry alone after a batch rejection.
  std::set<std::size_t> singles_only_ GUARDED_BY(mu_);
  std::size_t rr_replica_ GUARDED_BY(mu_) = 0;
  // EC chunks demoted to the whole-replica path after shard recovery
  // failed (possible only for mixed-mode chunks that also carry replicas).
  std::set<std::size_t> replica_fallback_ GUARDED_BY(mu_);
};

}  // namespace stdchk
