// Layer 4 of the staged write engine: everything that talks to the
// metadata manager on behalf of one write session.
//
// Owns the eager stripe reservation and its incremental growth (§IV.A),
// assembles the chunk map in file order, answers compare-by-hash dedup
// queries, and at close() performs the atomic commit that gives stdchk its
// session semantics — falling back to stashing the map on the write stripe
// when the manager is down (the benefactor-assisted recovery protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "client/transport.h"
#include "client/client_options.h"
#include "client/placement.h"
#include "client/write_stats.h"
#include "common/status.h"
#include "manager/metadata_manager.h"
#include "manager/types.h"

namespace stdchk {

// What Close() achieved.
enum class CloseOutcome {
  kCommitted,           // chunk map committed at the manager
  kStashedForRecovery,  // manager down; map stashed on benefactors
};

class CommitCoordinator {
 public:
  // `table_cache` enables decentralized placement: the first reservation
  // computes its stripe from the cached table (ComputeStripe) and reserves
  // at the table's epoch, refetching only on a stale-epoch rejection.
  // nullptr keeps the legacy server-side SelectStripe path.
  CommitCoordinator(MetadataManager* manager, Transport* transport,
                    CheckpointName name, const ClientOptions& options,
                    WriteStats* stats,
                    PlacementTableCache* table_cache = nullptr);

  // ---- Reservation lifecycle (batch-aware) ---------------------------------
  // Ensures a stripe reservation exists and covers `upcoming` more bytes.
  // The uploader calls this once per flush batch, not per chunk, so
  // extension RPCs amortize over the batch.
  Status EnsureReservation(std::uint64_t upcoming);
  void ConsumeReserved(std::uint64_t bytes);
  bool have_reservation() const { return have_reservation_; }
  const std::vector<NodeId>& stripe() const { return reservation_.stripe; }

  // Stripe failover: swap `dead` for a fresh donor via the manager, which
  // also migrates the reserved-byte accounting. Returns the replacement.
  Result<NodeId> ReplaceStripeMember(NodeId dead);

  // ---- Chunk-map assembly (slots stay in file order) -----------------------
  // Claims the next chunk-map slot for `id`, advancing the file offset.
  std::size_t AddSlot(const ChunkId& id, std::uint32_t size);
  void SetReplicas(std::size_t slot, std::vector<NodeId> replicas);
  // Marks the slot erasure-coded: k+m shard locations (data first, parity
  // after) instead of whole replicas.
  void SetShards(std::size_t slot, int k, int m,
                 std::vector<ShardLocation> shards);

  // Batched compare-by-hash dedup (§IV.C): one manager round trip per
  // drain, not per chunk. Returns, for each id, the live replica list of
  // an already-stored copy (empty = novel, must upload). Dedup is strictly
  // best-effort — any manager error yields all-novel rather than failing,
  // so the caller's drained chunks are never stranded between the planner
  // and the uploader.
  std::vector<std::vector<NodeId>> LocateReusable(
      const std::vector<ChunkId>& ids);

  // References an already-stored chunk in the map instead of uploading it.
  void ReuseExisting(const ChunkId& id, std::uint32_t size,
                     std::vector<NodeId> replicas);

  std::uint64_t file_size() const { return file_offset_; }
  const ChunkMap& map() const { return map_; }
  // Parallel to map().chunks: true for slots satisfied by dedup reuse.
  const std::vector<bool>& slot_reused() const { return slot_reused_; }

  // ---- Session end ---------------------------------------------------------
  // Atomic commit of the assembled map; stash-for-recovery on manager
  // outage; releases the reservation on terminal failure.
  Result<CloseOutcome> Commit();
  // Abort path: drop the reservation so GC reclaims orphaned chunks.
  void ReleaseReservation();

 private:
  Status StashOnStripe(const VersionRecord& record);
  // First reservation via the cached placement table (mismatch-refetch
  // loop); only used when table_cache_ is set.
  Status ReserveDecentralized(std::uint64_t bytes);

  MetadataManager* manager_;
  Transport* transport_;
  CheckpointName name_;
  const ClientOptions& options_;
  WriteStats* stats_;
  PlacementTableCache* table_cache_;

  WriteReservation reservation_;
  bool have_reservation_ = false;
  std::uint64_t reserved_remaining_ = 0;
  // Table epoch the stripe was placed against; 0 until a decentralized
  // reservation exists (commit then skips epoch validation — legacy path
  // or an all-dedup/empty write that placed nothing).
  std::uint64_t placed_epoch_ = 0;

  ChunkMap map_;
  std::vector<bool> slot_reused_;
  std::uint64_t file_offset_ = 0;
};

}  // namespace stdchk
