// Transport abstraction the client uses to reach benefactors by node id.
//
// In this repository the "network" between client and donors is an
// in-process call through this interface; core/LocalTransport implements it
// over Benefactor objects and injects failures for tests. Data transfers
// never pass through the metadata manager (paper §IV.A: "the actual
// transfer of data chunks occurs directly between the storage nodes and the
// client").
#pragma once

#include <span>

#include "chunk/chunk.h"
#include "common/status.h"
#include "manager/types.h"

namespace stdchk {

class BenefactorAccess {
 public:
  virtual ~BenefactorAccess() = default;

  virtual Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) = 0;

  // Stores a batch of chunks on one node. Transports that support it make
  // this a single RPC with all-or-nothing admission on the receiving node;
  // the default loops over PutChunk and stops at the first failure (chunks
  // stored before the failure stay put — harmless, they are content
  // addressed and GC reclaims them if never committed).
  virtual Status PutChunkBatch(NodeId node, std::span<const ChunkPut> puts) {
    for (const ChunkPut& put : puts) {
      STDCHK_RETURN_IF_ERROR(PutChunk(node, put.id, put.data));
    }
    return OkStatus();
  }

  virtual Result<Bytes> GetChunk(NodeId node, const ChunkId& id) = 0;

  // Client-side leg of the manager-recovery protocol: stash the final chunk
  // map on a write-stripe benefactor when the manager is unreachable.
  virtual Status StashChunkMap(NodeId node, const VersionRecord& record,
                               int stripe_width) = 0;
};

}  // namespace stdchk
