// Legacy synchronous transport facade, kept as a migration shim.
//
// The system's real client↔benefactor boundary is the asynchronous
// submission/completion API in client/transport.h (Transport::Submit plus
// Wait/WaitAny/Poll); core/LocalTransport implements it over Benefactor
// objects with fault injection and modeled link timing. Data transfers
// never pass through the metadata manager (paper §IV.A: "the actual
// transfer of data chunks occurs directly between the storage nodes and the
// client").
//
// Migration path for code still typed against BenefactorAccess*:
//   1. Wrap any Transport in SyncBenefactorAccess (below) — call sites keep
//      compiling, each call becomes one Submit + Wait.
//   2. When a call site needs overlap (multiple RPCs in flight), move it to
//      Transport directly, as ReadSession and ChunkUploader did.
// New code should depend on Transport; this interface only remains so fakes
// and out-of-tree callers can migrate incrementally.
#pragma once

#include <span>
#include <vector>

#include "chunk/chunk.h"
#include "client/transport.h"
#include "common/status.h"
#include "manager/types.h"

namespace stdchk {

class BenefactorAccess {
 public:
  virtual ~BenefactorAccess() = default;

  virtual Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) = 0;

  // Stores a batch of chunks on one node. Transports that support it make
  // this a single RPC with all-or-nothing admission on the receiving node;
  // the default loops over PutChunk and stops at the first failure (chunks
  // stored before the failure stay put — harmless, they are content
  // addressed and GC reclaims them if never committed).
  virtual Status PutChunkBatch(NodeId node, std::span<const ChunkPut> puts) {
    for (const ChunkPut& put : puts) {
      STDCHK_RETURN_IF_ERROR(PutChunk(node, put.id, put.data.span()));
    }
    return OkStatus();
  }

  virtual Result<Bytes> GetChunk(NodeId node, const ChunkId& id) = 0;

  // Fetches a batch of chunks from one node, all-or-nothing (mirror of
  // PutChunkBatch): transports that support it spend a single RPC; the
  // default loops over GetChunk and fails wholesale on the first error.
  virtual Result<std::vector<Bytes>> GetChunkBatch(
      NodeId node, std::span<const ChunkId> ids) {
    std::vector<Bytes> out;
    out.reserve(ids.size());
    for (const ChunkId& id : ids) {
      STDCHK_ASSIGN_OR_RETURN(Bytes data, GetChunk(node, id));
      out.push_back(std::move(data));
    }
    return out;
  }

  // Client-side leg of the manager-recovery protocol: stash the final chunk
  // map on a write-stripe benefactor when the manager is unreachable.
  virtual Status StashChunkMap(NodeId node, const VersionRecord& record,
                               int stripe_width) = 0;

  // Benefactor-to-benefactor chunk copy (replication commands, §IV.A
  // shadow-map copies). The default bounces the bytes through the caller.
  virtual Status CopyChunk(const ChunkId& id, NodeId source, NodeId target) {
    STDCHK_ASSIGN_OR_RETURN(Bytes data, GetChunk(source, id));
    return PutChunk(target, id, data);
  }
};

// Adapter presenting an asynchronous Transport through the legacy
// synchronous interface: every call is one Submit + Wait, so ops from one
// SyncBenefactorAccess never overlap (by construction — that is the
// contract legacy call sites were written against).
class SyncBenefactorAccess final : public BenefactorAccess {
 public:
  explicit SyncBenefactorAccess(Transport* transport)
      : transport_(transport) {}

  Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) override {
    return transport_->PutChunk(node, id, data);
  }
  Status PutChunkBatch(NodeId node, std::span<const ChunkPut> puts) override {
    return transport_->PutChunkBatch(node, puts);
  }
  Result<Bytes> GetChunk(NodeId node, const ChunkId& id) override {
    // Legacy interface traffics in owning vectors; the conversion is a
    // (counted) payload copy — one reason to migrate to Transport.
    STDCHK_ASSIGN_OR_RETURN(BufferSlice slice, transport_->GetChunk(node, id));
    return slice.ToBytes();
  }
  Result<std::vector<Bytes>> GetChunkBatch(
      NodeId node, std::span<const ChunkId> ids) override {
    STDCHK_ASSIGN_OR_RETURN(std::vector<BufferSlice> slices,
                            transport_->GetChunkBatch(node, ids));
    std::vector<Bytes> out;
    out.reserve(slices.size());
    for (const BufferSlice& slice : slices) out.push_back(slice.ToBytes());
    return out;
  }
  Status StashChunkMap(NodeId node, const VersionRecord& record,
                       int stripe_width) override {
    return transport_->StashChunkMap(node, record, stripe_width);
  }
  Status CopyChunk(const ChunkId& id, NodeId source, NodeId target) override {
    return transport_->CopyChunk(id, source, target);
  }

 private:
  Transport* transport_;
};

}  // namespace stdchk
