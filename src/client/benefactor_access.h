// Transport abstraction the client uses to reach benefactors by node id.
//
// In this repository the "network" between client and donors is an
// in-process call through this interface; core/LocalTransport implements it
// over Benefactor objects and injects failures for tests. Data transfers
// never pass through the metadata manager (paper §IV.A: "the actual
// transfer of data chunks occurs directly between the storage nodes and the
// client").
#pragma once

#include "chunk/chunk.h"
#include "common/status.h"
#include "manager/types.h"

namespace stdchk {

class BenefactorAccess {
 public:
  virtual ~BenefactorAccess() = default;

  virtual Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) = 0;
  virtual Result<Bytes> GetChunk(NodeId node, const ChunkId& id) = 0;

  // Client-side leg of the manager-recovery protocol: stash the final chunk
  // map on a write-stripe benefactor when the manager is unreachable.
  virtual Status StashChunkMap(NodeId node, const VersionRecord& record,
                               int stripe_width) = 0;
};

}  // namespace stdchk
