#include "client/placement.h"

namespace stdchk {

std::vector<NodeId> RoundRobinPlacement::PlanChunk(
    const std::vector<NodeId>& stripe) {
  std::vector<NodeId> walk;
  if (stripe.empty()) return walk;
  std::size_t attempts = stripe.size() * 2 + 4;
  walk.reserve(attempts);
  for (std::size_t i = 0; i < attempts; ++i) {
    walk.push_back(cursor_.Peek(stripe, i));
  }
  return walk;
}

void RoundRobinPlacement::OnChunkPlaced(const std::vector<NodeId>& stripe) {
  cursor_.Advance(stripe.size());
}

}  // namespace stdchk
