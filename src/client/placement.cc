#include "client/placement.h"

#include <algorithm>

#include "common/rolling_hash.h"  // Mix64

namespace stdchk {

std::vector<NodeId> RoundRobinPlacement::PlanChunk(
    const std::vector<NodeId>& stripe) {
  std::vector<NodeId> walk;
  if (stripe.empty()) return walk;
  std::size_t attempts = stripe.size() * 2 + 4;
  walk.reserve(attempts);
  for (std::size_t i = 0; i < attempts; ++i) {
    walk.push_back(cursor_.Peek(stripe, i));
  }
  return walk;
}

void RoundRobinPlacement::OnChunkPlaced(const std::vector<NodeId>& stripe) {
  cursor_.Advance(stripe.size());
}

Result<PlacementTable> PlacementTableCache::Get(bool* fetched) {
  if (fetched != nullptr) *fetched = false;
  {
    // Steady-state fast path: shared hold, no writer exclusion between
    // concurrent write sessions reading the same cached table.
    ReaderLock lock(mu_);
    if (valid_) return table_;
  }
  WriterLock lock(mu_);
  // Re-check: another session may have completed the fetch while we waited
  // for the writer lock.
  if (!valid_) {
    STDCHK_ASSIGN_OR_RETURN(table_, manager_->GetPlacementTable());
    valid_ = true;
    fetches_.fetch_add(1, std::memory_order_relaxed);
    if (fetched != nullptr) *fetched = true;
  }
  return table_;
}

void PlacementTableCache::Invalidate() {
  WriterLock lock(mu_);
  valid_ = false;
}

Result<std::vector<NodeId>> ComputeStripe(const PlacementTable& table,
                                          int width, std::uint64_t seed) {
  if (width <= 0) return InvalidArgumentError("stripe width must be > 0");
  if (static_cast<int>(table.members.size()) < width) {
    return UnavailableError(
        "placement table has fewer members than stripe width " +
        std::to_string(width));
  }

  struct Candidate {
    NodeId id;
    bool has_free;
    std::uint64_t score;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(table.members.size());
  for (const PlacementMember& m : table.members) {
    candidates.push_back(Candidate{
        m.id, m.free_bytes > 0,
        Mix64(static_cast<std::uint64_t>(m.id) * 0x9E3779B97F4A7C15ull ^
              seed)});
  }
  // Rendezvous order: members with free space first, then by hashed score
  // so each seed walks the pool in its own order. Node id breaks the
  // (vanishingly unlikely) score tie so the result is a total order.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.has_free != b.has_free) return a.has_free;
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });

  std::vector<NodeId> stripe;
  stripe.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    stripe.push_back(candidates[static_cast<std::size_t>(i)].id);
  }
  return stripe;
}

std::uint64_t PlacementSeed(const CheckpointName& name) {
  const std::string full = name.ToString();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : full) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

}  // namespace stdchk
