// Per-session write accounting, shared by every layer of the staged write
// engine. Readers use it to tell the three §IV.B protocols apart: they
// commit identical chunk maps but move the same bytes at different times.
#pragma once

#include <cstdint>

namespace stdchk {

struct WriteStats {
  std::uint64_t bytes_written = 0;     // application bytes accepted
  std::uint64_t bytes_transferred = 0; // bytes actually sent to benefactors
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_deduplicated = 0;
  std::uint64_t bytes_deduplicated = 0;  // referenced, not re-transferred
  std::uint64_t replica_puts = 0;      // total chunk-replica transfers

  // Protocol-shape signals (what distinguishes CLW / IW / SW):
  std::uint64_t flushes = 0;            // network drain points
  std::uint64_t batched_puts = 0;       // batch RPCs issued by the uploader
  std::uint64_t bytes_spilled_local = 0;  // client-side spill (CLW/IW temp)
  std::uint64_t max_buffered_bytes = 0;   // high-water client buffering
  std::uint64_t inflight_put_peak = 0;  // concurrent batch PUTs in flight

  // Decentralized placement (epoch-versioned table):
  std::uint64_t placement_table_fetches = 0;  // manager table RPCs (cold
                                              // cache or stale epoch only)
  std::uint64_t placement_epoch_mismatches = 0;  // stale-epoch rejections
  std::uint64_t local_placements = 0;  // stripes computed client-side

  // Erasure-coded write path (ClientOptions::erasure):
  std::uint64_t parity_shards_written = 0;  // parity shard puts that landed
  std::uint64_t data_shards_written = 0;    // data shard puts that landed
  std::uint64_t parity_bytes_written = 0;   // redundancy bytes shipped
  std::uint64_t erasure_encode_ns = 0;      // wall time in GF(256) encode
  std::uint64_t erasure_encoded_chunks = 0;

  // Chunk-naming (SHA-1) accounting from the planner's drains:
  std::uint64_t hash_ns = 0;            // wall time spent naming chunks
  std::uint64_t hash_chunks = 0;        // chunks named
  std::uint64_t hash_bytes = 0;         // bytes hashed for naming
  std::uint64_t hash_workers_peak = 0;  // widest fan-out any drain used
  std::uint64_t hash_parallel_drains = 0;  // drains named on >1 thread
};

}  // namespace stdchk
