// The asynchronous chunk-transport API between the client and benefactor
// nodes (paper §IV.A: data moves directly between storage nodes and the
// client, never through the manager; §IV.E: the client overlaps chunk
// transfers across benefactors).
//
// This is a submission/completion interface in the async-I/O-engine idiom:
// callers Submit() chunk ops and later harvest per-op completions (Status +
// payload) with Wait()/WaitAny()/Poll(). Ops to distinct nodes overlap;
// each node's access link serializes its own ops — which is exactly what
// makes the pipelined read engine and the uploader's concurrent batch PUTs
// pay off. Implementations model time on the sim clock (sim/LinkModel), so
// the same functional code path reproduces paper-figure timing.
//
// Synchronous callers have two options:
//   - the non-virtual convenience wrappers below (Submit + Wait per call);
//   - the SyncBenefactorAccess adapter (client/benefactor_access.h), which
//     presents this engine through the legacy BenefactorAccess interface.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chunk/chunk.h"
#include "common/status.h"
#include "manager/types.h"

namespace stdchk {

enum class ChunkOpType {
  kPutChunk,
  kPutChunkBatch,
  kGetChunk,
  kGetChunkBatch,
  kStashChunkMap,
  kCopyChunk,
};

// One submission. Build via the factory helpers. Payloads (`data`, the
// slices inside `puts`) are ref-counted views shared with the caller's
// staging buffers — submitting an op never copies payload bytes, and the
// receiving node may alias the same buffers.
struct ChunkOp {
  ChunkOpType type = ChunkOpType::kGetChunk;
  NodeId node = kInvalidNode;    // target node (source node for kCopyChunk)
  NodeId target = kInvalidNode;  // kCopyChunk destination
  ChunkId id{};                  // kPutChunk / kGetChunk / kCopyChunk
  BufferSlice data;              // kPutChunk payload
  std::vector<ChunkPut> puts;    // kPutChunkBatch payload
  std::vector<ChunkId> ids;      // kGetChunkBatch request
  VersionRecord record;          // kStashChunkMap (owned copy)
  int stripe_width = 0;          // kStashChunkMap

  static ChunkOp Put(NodeId node, const ChunkId& id, BufferSlice data);
  static ChunkOp PutBatch(NodeId node, std::vector<ChunkPut> puts);
  static ChunkOp Get(NodeId node, const ChunkId& id);
  static ChunkOp GetBatch(NodeId node, std::vector<ChunkId> ids);
  static ChunkOp Stash(NodeId node, VersionRecord record, int stripe_width);
  static ChunkOp Copy(const ChunkId& id, NodeId source, NodeId target);
};

// Ticket for an in-flight op. Valid until its completion is delivered by
// Wait/WaitAny/Poll or the op is cancelled.
using OpHandle = std::uint64_t;
inline constexpr OpHandle kInvalidOpHandle = 0;

// Terminal state of one op. GET payloads are ref-counted slices sharing
// the serving node's buffers — delivery never copies chunk bytes.
struct OpCompletion {
  OpHandle handle = kInvalidOpHandle;
  ChunkOpType type = ChunkOpType::kGetChunk;
  NodeId node = kInvalidNode;
  Status status;                   // per-op outcome
  BufferSlice data;                // kGetChunk payload
  std::vector<BufferSlice> batch;  // kGetChunkBatch payload (parallel to
                                   // op.ids)
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Submits `op` for execution; never blocks. Validation failures (unknown
  // node, unreachable link) surface in the op's completion, not here.
  virtual OpHandle Submit(ChunkOp op) = 0;

  // Blocks (advancing modeled time) until `handle` completes, and delivers
  // its completion. A handle can be waited on exactly once.
  virtual Result<OpCompletion> Wait(OpHandle handle) = 0;

  // Blocks until the earliest-finishing op among `handles` completes.
  // Handles already delivered or cancelled are an error — the caller's
  // in-flight set must be accurate.
  virtual Result<OpCompletion> WaitAny(std::span<const OpHandle> handles) = 0;

  // Delivers a completion among `handles` that is already finished at the
  // current modeled time, without advancing the clock. Empty if none.
  virtual std::optional<OpCompletion> Poll(
      std::span<const OpHandle> handles) = 0;

  // Drops an undelivered op's completion. Returns false if the handle is
  // unknown or already delivered. Like a real network, cancellation only
  // discards the reply — the remote side effect may already have happened.
  virtual bool Cancel(OpHandle handle) = 0;

  // Ops submitted but not yet delivered/cancelled.
  virtual std::size_t InFlight() const = 0;

  // ---- Synchronous conveniences (Submit + Wait per call) -------------------
  // The ByteSpan PutChunk copies borrowed bytes into an owned slice first;
  // slice-passing callers pay nothing.
  Status PutChunk(NodeId node, const ChunkId& id, BufferSlice data);
  Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data);
  Status PutChunkBatch(NodeId node, std::span<const ChunkPut> puts);
  Result<BufferSlice> GetChunk(NodeId node, const ChunkId& id);
  Result<std::vector<BufferSlice>> GetChunkBatch(NodeId node,
                                                 std::span<const ChunkId> ids);
  Status StashChunkMap(NodeId node, const VersionRecord& record,
                       int stripe_width);
  Status CopyChunk(const ChunkId& id, NodeId source, NodeId target);
};

}  // namespace stdchk
