#include "client/transport.h"

#include <utility>

namespace stdchk {

ChunkOp ChunkOp::Put(NodeId node, const ChunkId& id, BufferSlice data) {
  ChunkOp op;
  op.type = ChunkOpType::kPutChunk;
  op.node = node;
  op.id = id;
  op.data = std::move(data);
  return op;
}

ChunkOp ChunkOp::PutBatch(NodeId node, std::vector<ChunkPut> puts) {
  ChunkOp op;
  op.type = ChunkOpType::kPutChunkBatch;
  op.node = node;
  op.puts = std::move(puts);
  return op;
}

ChunkOp ChunkOp::Get(NodeId node, const ChunkId& id) {
  ChunkOp op;
  op.type = ChunkOpType::kGetChunk;
  op.node = node;
  op.id = id;
  return op;
}

ChunkOp ChunkOp::GetBatch(NodeId node, std::vector<ChunkId> ids) {
  ChunkOp op;
  op.type = ChunkOpType::kGetChunkBatch;
  op.node = node;
  op.ids = std::move(ids);
  return op;
}

ChunkOp ChunkOp::Stash(NodeId node, VersionRecord record, int stripe_width) {
  ChunkOp op;
  op.type = ChunkOpType::kStashChunkMap;
  op.node = node;
  op.record = std::move(record);
  op.stripe_width = stripe_width;
  return op;
}

ChunkOp ChunkOp::Copy(const ChunkId& id, NodeId source, NodeId target) {
  ChunkOp op;
  op.type = ChunkOpType::kCopyChunk;
  op.node = source;
  op.target = target;
  op.id = id;
  return op;
}

Status Transport::PutChunk(NodeId node, const ChunkId& id, BufferSlice data) {
  OpHandle h = Submit(ChunkOp::Put(node, id, std::move(data)));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  return c.status;
}

Status Transport::PutChunk(NodeId node, const ChunkId& id, ByteSpan data) {
  return PutChunk(node, id, BufferSlice::Copy(data));
}

Status Transport::PutChunkBatch(NodeId node, std::span<const ChunkPut> puts) {
  OpHandle h = Submit(
      ChunkOp::PutBatch(node, std::vector<ChunkPut>(puts.begin(), puts.end())));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  return c.status;
}

Result<BufferSlice> Transport::GetChunk(NodeId node, const ChunkId& id) {
  OpHandle h = Submit(ChunkOp::Get(node, id));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  if (!c.status.ok()) return c.status;
  return std::move(c.data);
}

Result<std::vector<BufferSlice>> Transport::GetChunkBatch(
    NodeId node, std::span<const ChunkId> ids) {
  OpHandle h = Submit(
      ChunkOp::GetBatch(node, std::vector<ChunkId>(ids.begin(), ids.end())));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  if (!c.status.ok()) return c.status;
  return std::move(c.batch);
}

Status Transport::StashChunkMap(NodeId node, const VersionRecord& record,
                                int stripe_width) {
  OpHandle h = Submit(ChunkOp::Stash(node, record, stripe_width));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  return c.status;
}

Status Transport::CopyChunk(const ChunkId& id, NodeId source, NodeId target) {
  OpHandle h = Submit(ChunkOp::Copy(id, source, target));
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, Wait(h));
  return c.status;
}

}  // namespace stdchk
