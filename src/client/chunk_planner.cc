#include "client/chunk_planner.h"

#include <cassert>
#include <utility>

namespace stdchk {

ChunkPlanner::ChunkPlanner(std::shared_ptr<const Chunker> chunker)
    : chunker_(std::move(chunker)) {
  assert(chunker_ != nullptr);
}

void ChunkPlanner::Append(ByteSpan data) { stdchk::Append(buffer_, data); }

std::vector<StagedChunk> ChunkPlanner::Drain(bool final) {
  std::vector<StagedChunk> out;
  if (buffer_.empty()) return out;
  if (!final && buffer_.size() < barren_floor_) return out;

  // Scans always restart at the last sealed boundary, which is itself
  // content-determined — so for content-based chunkers the boundary
  // sequence depends only on the bytes, never on drain timing.
  std::vector<ChunkSpan> spans =
      final ? chunker_->Split(buffer_) : chunker_->SplitSealed(buffer_);
  if (spans.empty()) {
    barren_floor_ = buffer_.size() * 2;
    return out;
  }
  barren_floor_ = 0;

  // Freeze the current buffer generation: sealed chunks become views into
  // it (zero-copy; `backing` holds it alive), and only the unsealed tail
  // moves back into the working buffer.
  auto backing = std::make_shared<const Bytes>(std::move(buffer_));
  std::size_t consumed = spans.back().offset + spans.back().size;
  buffer_.assign(backing->begin() + static_cast<std::ptrdiff_t>(consumed),
                 backing->end());

  out.reserve(spans.size());
  for (const ChunkSpan& span : spans) {
    ByteSpan view(backing->data() + span.offset, span.size);
    out.push_back(StagedChunk{ChunkId::For(view), view, backing});
  }
  return out;
}

}  // namespace stdchk
