#include "client/chunk_planner.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "common/hash_pool.h"

namespace stdchk {

ChunkPlanner::ChunkPlanner(std::shared_ptr<const Chunker> chunker,
                           int hash_workers, WriteStats* stats,
                           bool stamp_digests)
    : chunker_(std::move(chunker)),
      hash_workers_(HashPool::ResolveThreads(hash_workers)),
      stats_(stats),
      stamp_digests_(stamp_digests) {
  assert(chunker_ != nullptr);
  scanner_ = chunker_->MakeScanner();
}

void ChunkPlanner::Append(ByteSpan data) {
  // Scan before buffering: the scanner sees every byte exactly once.
  scanner_->Feed(data, sealed_ends_);
  copy_stats::RecordMaterialize(data.size());
  stdchk::Append(buffer_, data);
}

std::vector<StagedChunk> ChunkPlanner::Drain(bool final) {
  if (final) scanner_->Finish(sealed_ends_);
  std::vector<StagedChunk> out;
  if (sealed_ends_.empty()) return out;

  // Freeze the current buffer generation: sealed chunks become ref-counted
  // slices into it (zero-copy; the slices hold it alive), and only the
  // unsealed tail moves back into the working buffer.
  std::size_t consumed =
      static_cast<std::size_t>(sealed_ends_.back() - buffer_start_);
  Bytes tail(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed),
             buffer_.end());
  BufferRef backing = BufferRef::Take(std::move(buffer_));
  buffer_ = std::move(tail);

  out.reserve(sealed_ends_.size());
  std::uint64_t start = buffer_start_;
  auto t0 = std::chrono::steady_clock::now();
  if (hash_workers_ <= 1 || sealed_ends_.size() < 2) {
    // Serial path (N=1), unchanged from the single-threaded engine.
    for (std::uint64_t end : sealed_ends_) {
      BufferSlice slice(backing,
                        static_cast<std::size_t>(start - buffer_start_),
                        static_cast<std::size_t>(end - start));
      ChunkId id = ChunkId::For(slice.span());
      // Downstream verifies compare the stamp instead of re-hashing.
      if (stamp_digests_) slice.StampDigest(id.digest);
      out.push_back(StagedChunk{id, std::move(slice)});
      start = end;
    }
    if (stats_) stats_->hash_workers_peak =
        std::max<std::uint64_t>(stats_->hash_workers_peak, 1);
  } else {
    // Slices are immutable views of one frozen generation, so naming them
    // is embarrassingly parallel; each worker writes its slot, so the plan
    // order (and therefore the committed chunk map) is byte-identical to
    // the serial path.
    for (std::uint64_t end : sealed_ends_) {
      BufferSlice slice(backing,
                        static_cast<std::size_t>(start - buffer_start_),
                        static_cast<std::size_t>(end - start));
      out.push_back(StagedChunk{ChunkId{}, std::move(slice)});
      start = end;
    }
    const bool stamp = stamp_digests_;
    // Measured engagement, not the requested fan-out: a busy pool can
    // leave the whole batch to this thread.
    int used = HashPool::Shared().ParallelFor(
        out.size(), hash_workers_, [&out, stamp](std::size_t i) {
          out[i].id = ChunkId::For(out[i].data.span());
          if (stamp) out[i].data.StampDigest(out[i].id.digest);
        });
    if (stats_) {
      stats_->hash_workers_peak =
          std::max<std::uint64_t>(stats_->hash_workers_peak,
                                  static_cast<std::uint64_t>(used));
      if (used > 1) ++stats_->hash_parallel_drains;
    }
  }
  if (stats_) {
    auto t1 = std::chrono::steady_clock::now();
    stats_->hash_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    stats_->hash_chunks += sealed_ends_.size();
    stats_->hash_bytes += sealed_ends_.back() - buffer_start_;
  }
  buffer_start_ = sealed_ends_.back();
  sealed_ends_.clear();
  return out;
}

}  // namespace stdchk
