#include "client/chunk_planner.h"

#include <cassert>
#include <utility>

namespace stdchk {

ChunkPlanner::ChunkPlanner(std::shared_ptr<const Chunker> chunker)
    : chunker_(std::move(chunker)) {
  assert(chunker_ != nullptr);
  scanner_ = chunker_->MakeScanner();
}

void ChunkPlanner::Append(ByteSpan data) {
  // Scan before buffering: the scanner sees every byte exactly once.
  scanner_->Feed(data, sealed_ends_);
  copy_stats::RecordMaterialize(data.size());
  stdchk::Append(buffer_, data);
}

std::vector<StagedChunk> ChunkPlanner::Drain(bool final) {
  if (final) scanner_->Finish(sealed_ends_);
  std::vector<StagedChunk> out;
  if (sealed_ends_.empty()) return out;

  // Freeze the current buffer generation: sealed chunks become ref-counted
  // slices into it (zero-copy; the slices hold it alive), and only the
  // unsealed tail moves back into the working buffer.
  std::size_t consumed =
      static_cast<std::size_t>(sealed_ends_.back() - buffer_start_);
  Bytes tail(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed),
             buffer_.end());
  BufferRef backing = BufferRef::Take(std::move(buffer_));
  buffer_ = std::move(tail);

  out.reserve(sealed_ends_.size());
  std::uint64_t start = buffer_start_;
  for (std::uint64_t end : sealed_ends_) {
    BufferSlice slice(backing, static_cast<std::size_t>(start - buffer_start_),
                      static_cast<std::size_t>(end - start));
    out.push_back(StagedChunk{ChunkId::For(slice.span()), std::move(slice)});
    start = end;
  }
  buffer_start_ = sealed_ends_.back();
  sealed_ends_.clear();
  return out;
}

}  // namespace stdchk
