#include "client/chunk_uploader.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/log.h"

namespace stdchk {

ChunkUploader::ChunkUploader(Transport* transport,
                             PlacementPolicy* placement,
                             CommitCoordinator* coordinator,
                             const ClientOptions& options, WriteStats* stats)
    : transport_(transport),
      placement_(placement),
      coordinator_(coordinator),
      options_(options),
      stats_(stats) {}

int ChunkUploader::replicas_needed() const {
  return options_.semantics == WriteSemantics::kPessimistic
             ? std::max(1, options_.replication_target)
             : 1;
}

void ChunkUploader::Stage(StagedChunk chunk) {
  Pending p;
  p.map_slot = coordinator_->AddSlot(
      chunk.id, static_cast<std::uint32_t>(chunk.data.size()));
  pending_bytes_ += chunk.data.size();
  p.chunk = std::move(chunk);
  pending_.push_back(std::move(p));
}

Status ChunkUploader::Flush() {
  if (pending_.empty()) return OkStatus();

  // Batch-aware reservation: one ensure covers the whole drain instead of
  // one manager round trip per chunk.
  STDCHK_RETURN_IF_ERROR(coordinator_->EnsureReservation(pending_bytes_));

  const int needed = replicas_needed();
  const std::size_t stripe_size = coordinator_->stripe().size();
  const std::size_t attempt_limit = stripe_size * 2 + 4;

  // Plan every chunk's candidate walk up front; the cursor advances per
  // chunk so successive chunks spread round-robin over the stripe.
  struct Tracked {
    Pending* p;
    std::size_t attempts = 0;
  };
  std::vector<Tracked> tracked;
  tracked.reserve(pending_.size());
  for (Pending& p : pending_) {
    p.candidates = placement_->PlanChunk(coordinator_->stripe());
    placement_->OnChunkPlaced(coordinator_->stripe());
    tracked.push_back(Tracked{&p});
  }

  // Drain rounds: each round assigns every still-needy chunk its next
  // placement candidate, then puts one (or more, above max_batch_chunks)
  // batched PUT per target node in flight — all nodes concurrently — and
  // harvests the completions.
  while (true) {
    std::map<NodeId, std::vector<Pending*>> queues;
    for (Tracked& t : tracked) {
      Pending& p = *t.p;
      if (static_cast<int>(p.replicas.size()) >= needed) continue;
      // Next candidate not already holding the chunk; every pop counts
      // against the failover budget.
      NodeId target = kInvalidNode;
      while (!p.candidates.empty() && t.attempts < attempt_limit) {
        NodeId c = p.candidates.front();
        p.candidates.erase(p.candidates.begin());
        ++t.attempts;
        if (std::find(p.replicas.begin(), p.replicas.end(), c) ==
            p.replicas.end()) {
          target = c;
          break;
        }
      }
      if (target != kInvalidNode) queues[target].push_back(&p);
    }
    if (queues.empty()) break;

    // Submit the whole round before waiting on any of it.
    struct InflightBatch {
      NodeId node;
      std::vector<Pending*> items;
    };
    std::map<OpHandle, InflightBatch> inflight;
    for (auto& [node, items] : queues) {
      std::size_t batch_limit =
          options_.max_batch_chunks == 0 ? items.size()
                                         : options_.max_batch_chunks;
      for (std::size_t begin = 0; begin < items.size(); begin += batch_limit) {
        std::size_t end = std::min(items.size(), begin + batch_limit);
        std::vector<ChunkPut> batch;
        batch.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          batch.push_back(ChunkPut{items[i]->chunk.id, items[i]->chunk.data});
        }
        OpHandle h = transport_->Submit(ChunkOp::PutBatch(node, std::move(batch)));
        inflight.emplace(
            h, InflightBatch{node, {items.begin() + static_cast<std::ptrdiff_t>(begin),
                                    items.begin() + static_cast<std::ptrdiff_t>(end)}});
      }
    }
    stats_->inflight_put_peak =
        std::max<std::uint64_t>(stats_->inflight_put_peak, inflight.size());

    std::set<NodeId> replaced_this_round;
    while (!inflight.empty()) {
      std::vector<OpHandle> handles;
      handles.reserve(inflight.size());
      for (const auto& [h, b] : inflight) handles.push_back(h);
      STDCHK_ASSIGN_OR_RETURN(OpCompletion c, transport_->WaitAny(handles));
      auto it = inflight.find(c.handle);
      InflightBatch batch = std::move(it->second);
      inflight.erase(it);

      if (c.status.ok()) {
        ++stats_->batched_puts;
        for (Pending* p : batch.items) {
          p->replicas.push_back(batch.node);
          stats_->bytes_transferred += p->chunk.data.size();
          ++stats_->replica_puts;
        }
        continue;
      }
      // The node rejected the batch (offline, unreachable, full): swap it
      // out of the stripe and patch *every* pending chunk's walk in place —
      // walks were snapshotted from the pre-failure stripe, so the fresh
      // donor must take over the dead node's walk positions (and chunks
      // outside this batch must see it too). Without a replacement, drop
      // the dead node so walks stop burning failover budget on it. Later
      // completions from the same node this round fail consistently and
      // skip the (already done) replacement.
      STDCHK_LOG(kDebug, "client")
          << "batch put of " << batch.items.size() << " chunks to node "
          << batch.node << " failed: " << c.status.ToString();
      if (!replaced_this_round.insert(batch.node).second) continue;
      auto fresh = coordinator_->ReplaceStripeMember(batch.node);
      for (Tracked& t : tracked) {
        Pending& p = *t.p;
        if (fresh.ok()) {
          std::replace(p.candidates.begin(), p.candidates.end(), batch.node,
                       fresh.value());
        } else {
          p.candidates.erase(std::remove(p.candidates.begin(),
                                         p.candidates.end(), batch.node),
                             p.candidates.end());
        }
      }
    }
  }

  // Validate the whole drain before settling anything: a failed flush
  // must leave pending_ (including replicas already stored this round)
  // intact, so a retry tops up what is missing instead of re-uploading
  // and double-consuming the reservation.
  for (const Pending& p : pending_) {
    if (p.replicas.empty()) {
      return UnavailableError("could not store chunk on any benefactor");
    }
    if (static_cast<int>(p.replicas.size()) < needed &&
        options_.semantics == WriteSemantics::kPessimistic) {
      return UnavailableError(
          "pessimistic write could not reach replication target " +
          std::to_string(needed));
    }
  }
  for (Pending& p : pending_) {
    coordinator_->ConsumeReserved(p.chunk.data.size());
    coordinator_->SetReplicas(p.map_slot, std::move(p.replicas));
  }
  pending_.clear();
  pending_bytes_ = 0;
  return OkStatus();
}

}  // namespace stdchk
