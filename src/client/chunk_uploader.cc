#include "client/chunk_uploader.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/hash_pool.h"
#include "common/log.h"

namespace stdchk {

ChunkUploader::ChunkUploader(Transport* transport,
                             PlacementPolicy* placement,
                             CommitCoordinator* coordinator,
                             const ClientOptions& options, WriteStats* stats)
    : transport_(transport),
      placement_(placement),
      coordinator_(coordinator),
      options_(options),
      stats_(stats) {}

int ChunkUploader::replicas_needed() const {
  return options_.semantics == WriteSemantics::kPessimistic
             ? std::max(1, options_.replication_target)
             : 1;
}

void ChunkUploader::Stage(StagedChunk chunk) {
  Pending p;
  p.map_slot = coordinator_->AddSlot(
      chunk.id, static_cast<std::uint32_t>(chunk.data.size()));
  pending_bytes_ += chunk.data.size();
  p.chunk = std::move(chunk);
  pending_.push_back(std::move(p));
}

Status ChunkUploader::Flush() {
  if (pending_.empty()) return OkStatus();
  if (options_.erasure.enabled()) return FlushErasure();

  // Batch-aware reservation: one ensure covers the whole drain instead of
  // one manager round trip per chunk.
  STDCHK_RETURN_IF_ERROR(coordinator_->EnsureReservation(pending_bytes_));

  const int needed = replicas_needed();
  const std::size_t stripe_size = coordinator_->stripe().size();
  const std::size_t attempt_limit = stripe_size * 2 + 4;

  // Plan every chunk's candidate walk up front; the cursor advances per
  // chunk so successive chunks spread round-robin over the stripe.
  struct Tracked {
    Pending* p;
    std::size_t attempts = 0;
  };
  std::vector<Tracked> tracked;
  tracked.reserve(pending_.size());
  for (Pending& p : pending_) {
    p.candidates = placement_->PlanChunk(coordinator_->stripe());
    placement_->OnChunkPlaced(coordinator_->stripe());
    tracked.push_back(Tracked{&p});
  }

  // Drain rounds: each round assigns every still-needy chunk its next
  // placement candidate, then puts one (or more, above max_batch_chunks)
  // batched PUT per target node in flight — all nodes concurrently — and
  // harvests the completions.
  while (true) {
    std::map<NodeId, std::vector<Pending*>> queues;
    for (Tracked& t : tracked) {
      Pending& p = *t.p;
      if (static_cast<int>(p.replicas.size()) >= needed) continue;
      // Next candidate not already holding the chunk; every pop counts
      // against the failover budget.
      NodeId target = kInvalidNode;
      while (!p.candidates.empty() && t.attempts < attempt_limit) {
        NodeId c = p.candidates.front();
        p.candidates.erase(p.candidates.begin());
        ++t.attempts;
        if (std::find(p.replicas.begin(), p.replicas.end(), c) ==
            p.replicas.end()) {
          target = c;
          break;
        }
      }
      if (target != kInvalidNode) queues[target].push_back(&p);
    }
    if (queues.empty()) break;

    // Submit the whole round before waiting on any of it.
    struct InflightBatch {
      NodeId node;
      std::vector<Pending*> items;
    };
    std::map<OpHandle, InflightBatch> inflight;
    for (auto& [node, items] : queues) {
      std::size_t batch_limit =
          options_.max_batch_chunks == 0 ? items.size()
                                         : options_.max_batch_chunks;
      for (std::size_t begin = 0; begin < items.size(); begin += batch_limit) {
        std::size_t end = std::min(items.size(), begin + batch_limit);
        std::vector<ChunkPut> batch;
        batch.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          batch.push_back(ChunkPut{items[i]->chunk.id, items[i]->chunk.data});
        }
        OpHandle h = transport_->Submit(ChunkOp::PutBatch(node, std::move(batch)));
        inflight.emplace(
            h, InflightBatch{node, {items.begin() + static_cast<std::ptrdiff_t>(begin),
                                    items.begin() + static_cast<std::ptrdiff_t>(end)}});
      }
    }
    stats_->inflight_put_peak =
        std::max<std::uint64_t>(stats_->inflight_put_peak, inflight.size());

    std::set<NodeId> replaced_this_round;
    while (!inflight.empty()) {
      std::vector<OpHandle> handles;
      handles.reserve(inflight.size());
      for (const auto& [h, b] : inflight) handles.push_back(h);
      STDCHK_ASSIGN_OR_RETURN(OpCompletion c, transport_->WaitAny(handles));
      auto it = inflight.find(c.handle);
      InflightBatch batch = std::move(it->second);
      inflight.erase(it);

      if (c.status.ok()) {
        ++stats_->batched_puts;
        for (Pending* p : batch.items) {
          p->replicas.push_back(batch.node);
          stats_->bytes_transferred += p->chunk.data.size();
          ++stats_->replica_puts;
        }
        continue;
      }
      // The node rejected the batch (offline, unreachable, full): swap it
      // out of the stripe and patch *every* pending chunk's walk in place —
      // walks were snapshotted from the pre-failure stripe, so the fresh
      // donor must take over the dead node's walk positions (and chunks
      // outside this batch must see it too). Without a replacement, drop
      // the dead node so walks stop burning failover budget on it. Later
      // completions from the same node this round fail consistently and
      // skip the (already done) replacement.
      STDCHK_LOG(kDebug, "client")
          << "batch put of " << batch.items.size() << " chunks to node "
          << batch.node << " failed: " << c.status.ToString();
      if (!replaced_this_round.insert(batch.node).second) continue;
      auto fresh = coordinator_->ReplaceStripeMember(batch.node);
      for (Tracked& t : tracked) {
        Pending& p = *t.p;
        if (fresh.ok()) {
          std::replace(p.candidates.begin(), p.candidates.end(), batch.node,
                       fresh.value());
        } else {
          p.candidates.erase(std::remove(p.candidates.begin(),
                                         p.candidates.end(), batch.node),
                             p.candidates.end());
        }
      }
    }
  }

  // Validate the whole drain before settling anything: a failed flush
  // must leave pending_ (including replicas already stored this round)
  // intact, so a retry tops up what is missing instead of re-uploading
  // and double-consuming the reservation.
  for (const Pending& p : pending_) {
    if (p.replicas.empty()) {
      return UnavailableError("could not store chunk on any benefactor");
    }
    if (static_cast<int>(p.replicas.size()) < needed &&
        options_.semantics == WriteSemantics::kPessimistic) {
      return UnavailableError(
          "pessimistic write could not reach replication target " +
          std::to_string(needed));
    }
  }
  for (Pending& p : pending_) {
    coordinator_->ConsumeReserved(p.chunk.data.size());
    coordinator_->SetReplicas(p.map_slot, std::move(p.replicas));
  }
  pending_.clear();
  pending_bytes_ = 0;
  return OkStatus();
}

Status ChunkUploader::FlushErasure() {
  const int k = options_.erasure.k;
  const int m = options_.erasure.m;
  if (!rs_.has_value()) {
    STDCHK_ASSIGN_OR_RETURN(ReedSolomon rs, ReedSolomon::Create(k, m));
    rs_.emplace(std::move(rs));
  }

  // The reservation must cover the parity overhead, not just the payload:
  // reserved bytes are what the manager holds against the stripe while the
  // write is open.
  std::uint64_t shard_bytes = 0;
  for (const Pending& p : pending_) {
    const std::uint32_t size = static_cast<std::uint32_t>(p.chunk.data.size());
    shard_bytes += size + static_cast<std::uint64_t>(m) *
                              ErasureShardSize(size, k);
  }
  STDCHK_RETURN_IF_ERROR(coordinator_->EnsureReservation(shard_bytes));
  if (static_cast<int>(coordinator_->stripe().size()) < k + m) {
    return UnavailableError(
        "erasure-coded write needs a stripe of at least k+m = " +
        std::to_string(k + m) + " benefactors, stripe has " +
        std::to_string(coordinator_->stripe().size()));
  }

  // One placement unit per shard. Shards of one group must land on
  // distinct benefactors — a single death may cost at most one of the m
  // losses the code tolerates.
  struct ShardUpload {
    Pending* parent = nullptr;
    int index = 0;  // shard order within the group: data first, then parity
    ChunkId id;
    BufferSlice data;
    std::vector<NodeId> candidates;
    std::size_t attempts = 0;
    NodeId placed = kInvalidNode;
  };
  std::vector<ShardUpload> shards;
  shards.reserve(pending_.size() * static_cast<std::size_t>(k + m));
  std::map<Pending*, std::set<NodeId>> group_nodes;

  HashPool& pool = HashPool::Shared();
  const int workers = HashPool::ResolveThreads(options_.hash_workers);
  const std::size_t attempt_limit = coordinator_->stripe().size() * 2 + 4;

  for (Pending& p : pending_) {
    const std::uint32_t size = static_cast<std::uint32_t>(p.chunk.data.size());
    const std::size_t shard_size = ErasureShardSize(size, k);
    std::vector<BufferSlice> slices(static_cast<std::size_t>(k + m));
    std::vector<ByteSpan> views(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      // Data shards are zero-copy views of the staged chunk, stored
      // unpadded: the tail shard is short and the codec zero-pads it
      // virtually.
      std::size_t len = ErasureShardLength(size, k, j);
      std::size_t off = std::min(static_cast<std::size_t>(j) * shard_size,
                                 p.chunk.data.size());
      slices[static_cast<std::size_t>(j)] = p.chunk.data.Subslice(off, len);
      views[static_cast<std::size_t>(j)] =
          slices[static_cast<std::size_t>(j)].span();
    }
    auto t0 = std::chrono::steady_clock::now();
    STDCHK_ASSIGN_OR_RETURN(
        std::vector<Bytes> parity,
        rs_->EncodeParity(views, shard_size, &pool, workers));
    stats_->erasure_encode_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    for (int i = 0; i < m; ++i) {
      slices[static_cast<std::size_t>(k + i)] =
          BufferSlice(BufferRef::Take(std::move(parity[static_cast<std::size_t>(i)])));
    }
    // Content-address every shard (benefactor admission verifies against
    // it); naming fans across the shared pool under the same deterministic
    // slot-per-index rule as the planner's drain naming.
    std::vector<ChunkId> ids(slices.size());
    pool.ParallelFor(slices.size(), workers, [&](std::size_t i) {
      ids[i] = ChunkId::For(slices[i].span());
    });
    ++stats_->erasure_encoded_chunks;

    std::vector<NodeId> walk = placement_->PlanChunk(coordinator_->stripe());
    placement_->OnChunkPlaced(coordinator_->stripe());
    for (int s = 0; s < k + m; ++s) {
      ShardUpload u;
      u.parent = &p;
      u.index = s;
      u.id = ids[static_cast<std::size_t>(s)];
      u.data = slices[static_cast<std::size_t>(s)];
      if (options_.stamp_chunk_digests) u.data.StampDigest(u.id.digest);
      // Rotate the group's walk by the shard index so the group fans out
      // across the stripe instead of queueing on its head.
      std::size_t rot = static_cast<std::size_t>(s) % walk.size();
      u.candidates.assign(walk.begin() + static_cast<std::ptrdiff_t>(rot),
                          walk.end());
      u.candidates.insert(u.candidates.end(), walk.begin(),
                          walk.begin() + static_cast<std::ptrdiff_t>(rot));
      shards.push_back(std::move(u));
    }
  }

  // Drain rounds, mirroring the replication flush: assign each unplaced
  // shard its next candidate not already used by a sibling, then keep one
  // batched PUT per target node in flight and harvest.
  while (true) {
    std::map<NodeId, std::vector<ShardUpload*>> queues;
    for (ShardUpload& u : shards) {
      if (u.placed != kInvalidNode) continue;
      std::set<NodeId>& used = group_nodes[u.parent];
      NodeId target = kInvalidNode;
      while (!u.candidates.empty() && u.attempts < attempt_limit) {
        NodeId c = u.candidates.front();
        u.candidates.erase(u.candidates.begin());
        ++u.attempts;
        if (!used.contains(c)) {
          target = c;
          break;
        }
      }
      if (target != kInvalidNode) {
        used.insert(target);
        queues[target].push_back(&u);
      }
    }
    if (queues.empty()) break;

    struct InflightBatch {
      NodeId node;
      std::vector<ShardUpload*> items;
    };
    std::map<OpHandle, InflightBatch> inflight;
    for (auto& [node, items] : queues) {
      std::size_t batch_limit = options_.max_batch_chunks == 0
                                    ? items.size()
                                    : options_.max_batch_chunks;
      for (std::size_t begin = 0; begin < items.size(); begin += batch_limit) {
        std::size_t end = std::min(items.size(), begin + batch_limit);
        std::vector<ChunkPut> batch;
        batch.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          ChunkPut put;
          put.id = items[i]->id;
          put.data = items[i]->data;
          put.group = items[i]->parent->chunk.id;
          put.shard_index = items[i]->index;
          batch.push_back(std::move(put));
        }
        OpHandle h =
            transport_->Submit(ChunkOp::PutBatch(node, std::move(batch)));
        inflight.emplace(
            h, InflightBatch{node,
                             {items.begin() + static_cast<std::ptrdiff_t>(begin),
                              items.begin() + static_cast<std::ptrdiff_t>(end)}});
      }
    }
    stats_->inflight_put_peak =
        std::max<std::uint64_t>(stats_->inflight_put_peak, inflight.size());

    std::set<NodeId> replaced_this_round;
    while (!inflight.empty()) {
      std::vector<OpHandle> handles;
      handles.reserve(inflight.size());
      for (const auto& [h, b] : inflight) handles.push_back(h);
      STDCHK_ASSIGN_OR_RETURN(OpCompletion c, transport_->WaitAny(handles));
      auto it = inflight.find(c.handle);
      InflightBatch batch = std::move(it->second);
      inflight.erase(it);

      if (c.status.ok()) {
        ++stats_->batched_puts;
        for (ShardUpload* u : batch.items) {
          u->placed = batch.node;
          stats_->bytes_transferred += u->data.size();
          ++stats_->replica_puts;
          if (u->index >= k) {
            ++stats_->parity_shards_written;
            stats_->parity_bytes_written += u->data.size();
          } else {
            ++stats_->data_shards_written;
          }
        }
        continue;
      }
      STDCHK_LOG(kDebug, "client")
          << "batch put of " << batch.items.size() << " shards to node "
          << batch.node << " failed: " << c.status.ToString();
      // Free the dead node in each affected group so its shard can walk
      // on, then swap the stripe member and patch every walk, exactly as
      // the replication drain does.
      for (ShardUpload* u : batch.items) {
        group_nodes[u->parent].erase(batch.node);
      }
      if (!replaced_this_round.insert(batch.node).second) continue;
      auto fresh = coordinator_->ReplaceStripeMember(batch.node);
      for (ShardUpload& u : shards) {
        if (fresh.ok()) {
          std::replace(u.candidates.begin(), u.candidates.end(), batch.node,
                       fresh.value());
        } else {
          u.candidates.erase(std::remove(u.candidates.begin(),
                                         u.candidates.end(), batch.node),
                             u.candidates.end());
        }
      }
    }
  }

  // All k+m shards of every group must have landed: unlike replication
  // there is no optimistic shortfall — the parity IS the durability, and a
  // group born below full strength has already spent its loss budget.
  for (const ShardUpload& u : shards) {
    if (u.placed == kInvalidNode) {
      return UnavailableError(
          "could not stripe all " + std::to_string(k + m) +
          " erasure shards across distinct benefactors");
    }
  }
  std::size_t idx = 0;
  for (Pending& p : pending_) {
    std::vector<ShardLocation> locs(static_cast<std::size_t>(k + m));
    std::uint64_t consumed = 0;
    for (int s = 0; s < k + m; ++s, ++idx) {
      locs[static_cast<std::size_t>(s)] =
          ShardLocation{shards[idx].id, shards[idx].placed};
      consumed += shards[idx].data.size();
    }
    coordinator_->ConsumeReserved(consumed);
    coordinator_->SetShards(p.map_slot, k, m, std::move(locs));
  }
  pending_.clear();
  pending_bytes_ = 0;
  return OkStatus();
}

}  // namespace stdchk
