// The stdchk client proxy: the per-desktop component that turns
// application file operations into manager/benefactor protocol actions
// (paper §IV.A). The FUSE-facade (src/fs) sits on top of this API.
#pragma once

#include <memory>
#include <string>

#include "chkpt/upload_plan.h"
#include "client/transport.h"
#include "client/client_options.h"
#include "client/read_session.h"
#include "client/write_session.h"
#include "common/status.h"
#include "manager/metadata_manager.h"

namespace stdchk {

class ClientProxy {
 public:
  ClientProxy(MetadataManager* manager, Transport* transport,
              ClientOptions options = {})
      : manager_(manager),
        transport_(transport),
        options_(options),
        table_cache_(manager) {}

  const ClientOptions& options() const { return options_; }
  void set_options(const ClientOptions& options) { options_ = options; }

  // Opens a new checkpoint image for writing. Fails if the version already
  // exists (images are immutable, single-producer).
  Result<std::unique_ptr<WriteSession>> CreateFile(const CheckpointName& name);
  // Same, with per-session options (protocol, chunker, semantics) instead
  // of the proxy's defaults.
  Result<std::unique_ptr<WriteSession>> CreateFileWith(
      const CheckpointName& name, const ClientOptions& options);

  // Writes an entire image in one call (what the FUSE layer does for the
  // common write-then-close pattern).
  Result<CloseOutcome> WriteFile(const CheckpointName& name, ByteSpan data);

  // Whole-image write with dedup under an arbitrary chunking heuristic —
  // extends the prototype's FsCH integration to content-defined (CbCH)
  // chunking, which needs the full image to place boundaries. Only chunks
  // the system does not already store are transferred; the committed map
  // mixes fresh uploads with references to existing chunks. Returns the
  // upload plan actually executed (novel/reused byte counts).
  Result<UploadPlan> WriteFileDeduped(const CheckpointName& name,
                                      ByteSpan data, const Chunker& chunker);

  // Opens a committed image for reading.
  Result<std::unique_ptr<ReadSession>> OpenFile(const CheckpointName& name);
  // Opens the most recent timestep for (app, node) — the restart path.
  Result<std::unique_ptr<ReadSession>> OpenLatest(const std::string& app,
                                                  const std::string& node);

  Result<Bytes> ReadFile(const CheckpointName& name);

  Status Delete(const CheckpointName& name) {
    return manager_->DeleteVersion(name);
  }

  MetadataManager* manager() { return manager_; }

  // The proxy-wide placement-table cache (one table shared by all of this
  // desktop's write sessions when decentralized placement is on).
  PlacementTableCache& table_cache() { return table_cache_; }

 private:
  MetadataManager* manager_;
  Transport* transport_;
  ClientOptions options_;
  PlacementTableCache table_cache_;
};

}  // namespace stdchk
