// Layer 2 of the staged write engine: replica placement.
//
// Extracted from WriteSession's inline round-robin so the selection
// discipline is pluggable (locality- or load-aware policies slot in behind
// the same interface) and shared — the perf write-pipeline models stripe
// with the same RoundRobinCursor (common/striping.h).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "common/striping.h"

namespace stdchk {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Plans an ordered candidate walk for the next chunk's replicas: the
  // uploader tries candidates in order until enough distinct nodes accept,
  // and the walk length bounds its failover attempts. The walk may repeat
  // stripe members (a retry after transient loss is legitimate).
  virtual std::vector<NodeId> PlanChunk(const std::vector<NodeId>& stripe) = 0;

  // One chunk fully placed: advance whatever cursor the policy keeps so
  // successive chunks spread over the stripe.
  virtual void OnChunkPlaced(const std::vector<NodeId>& stripe) = 0;

  virtual std::string name() const = 0;
};

// The paper's striping discipline (§IV.A): walk the stripe round-robin,
// wrapping twice (plus slack) so every member gets a retry before a chunk
// is declared unplaceable.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> PlanChunk(const std::vector<NodeId>& stripe) override;
  void OnChunkPlaced(const std::vector<NodeId>& stripe) override;
  std::string name() const override { return "round-robin"; }

 private:
  RoundRobinCursor cursor_;
};

}  // namespace stdchk
