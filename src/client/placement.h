// Layer 2 of the staged write engine: replica placement.
//
// Extracted from WriteSession's inline round-robin so the selection
// discipline is pluggable (locality- or load-aware policies slot in behind
// the same interface) and shared — the perf write-pipeline models stripe
// with the same RoundRobinCursor (common/striping.h).
//
// This header also hosts the client half of the decentralized-placement
// protocol: a cached, epoch-versioned placement table and the pure stripe
// computation over it. The flow is publish → cache → compute locally →
// reserve at the placed epoch → refetch only on a stale-epoch rejection.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "chunk/chunk.h"
#include "common/annotated_mutex.h"
#include "common/status.h"
#include "common/striping.h"
#include "manager/metadata_manager.h"
#include "manager/types.h"

namespace stdchk {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Plans an ordered candidate walk for the next chunk's replicas: the
  // uploader tries candidates in order until enough distinct nodes accept,
  // and the walk length bounds its failover attempts. The walk may repeat
  // stripe members (a retry after transient loss is legitimate).
  virtual std::vector<NodeId> PlanChunk(const std::vector<NodeId>& stripe) = 0;

  // One chunk fully placed: advance whatever cursor the policy keeps so
  // successive chunks spread over the stripe.
  virtual void OnChunkPlaced(const std::vector<NodeId>& stripe) = 0;

  virtual std::string name() const = 0;
};

// The paper's striping discipline (§IV.A): walk the stripe round-robin,
// wrapping twice (plus slack) so every member gets a retry before a chunk
// is declared unplaceable.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::vector<NodeId> PlanChunk(const std::vector<NodeId>& stripe) override;
  void OnChunkPlaced(const std::vector<NodeId>& stripe) override;
  std::string name() const override { return "round-robin"; }

 private:
  RoundRobinCursor cursor_;
};

// ---- Epoch-versioned decentralized placement -------------------------------

// Client-side cache of the manager's placement table, shared by every write
// session of one ClientProxy. Thread-safe. In steady state (no membership
// churn) the table is fetched once and every subsequent write computes its
// stripe locally — zero manager placement RPCs per write.
class PlacementTableCache {
 public:
  explicit PlacementTableCache(MetadataManager* manager)
      : manager_(manager) {}

  // Returns the cached table, fetching from the manager only when the
  // cache is cold or was invalidated. `fetched` (optional) reports whether
  // this call performed the RPC. Steady state takes only the reader lock:
  // every write session of the proxy hits this per write, and a shared
  // hold keeps the hot path contention-free.
  Result<PlacementTable> Get(bool* fetched = nullptr) EXCLUDES(mu_);

  // Drops the cached table (after a stale-epoch rejection); the next Get()
  // refetches.
  void Invalidate() EXCLUDES(mu_);

  // Total manager fetches performed through this cache.
  std::uint64_t fetch_count() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  MetadataManager* manager_;
  // Rank sits below the manager's: Get() holds the writer lock across the
  // table-fetch RPC so concurrent cold readers coalesce into one fetch.
  SharedMutex mu_{LockRank::kClientPlacement, 0, "placement_cache"};
  bool valid_ GUARDED_BY(mu_) = false;
  PlacementTable table_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> fetches_{0};
};

// Deterministic client-side stripe selection: rendezvous hashing of the
// table's members against `seed`, preferring members with free space. A
// pure function of (table, width, seed) — every client with the same table
// computes the same stripe for the same file, with different files spread
// across the pool by their seeds. Fails Unavailable when the table has
// fewer than `width` members.
Result<std::vector<NodeId>> ComputeStripe(const PlacementTable& table,
                                          int width, std::uint64_t seed);

// Stable per-file seed for ComputeStripe.
std::uint64_t PlacementSeed(const CheckpointName& name);

}  // namespace stdchk
