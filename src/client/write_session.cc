#include "client/write_session.h"

#include <algorithm>

#include "common/log.h"

namespace stdchk {

WriteSession::WriteSession(MetadataManager* manager, BenefactorAccess* access,
                           CheckpointName name, ClientOptions options)
    : manager_(manager),
      access_(access),
      name_(std::move(name)),
      options_(options) {
  // Resolve the effective replication target once, from the folder policy,
  // unless the client overrides it per write.
  if (options_.replication_target <= 0) {
    auto policy = manager_->GetFolderPolicy(name_.app);
    options_.replication_target =
        policy.ok() ? policy.value().replication_target : 1;
  }
}

WriteSession::~WriteSession() {
  if (!closed_ && !aborted_) Abort();
}

Status WriteSession::EnsureReservation(std::uint64_t upcoming) {
  if (!have_reservation_) {
    STDCHK_ASSIGN_OR_RETURN(
        reservation_,
        manager_->ReserveStripe(options_.stripe_width,
                                std::max<std::uint64_t>(
                                    upcoming, options_.reservation_extent)));
    have_reservation_ = true;
    reserved_remaining_ = reservation_.reserved_bytes;
    return OkStatus();
  }
  if (upcoming > reserved_remaining_) {
    // Incremental space allocation: extend the eager reservation (§IV.A).
    std::uint64_t extent =
        std::max<std::uint64_t>(upcoming, options_.reservation_extent);
    STDCHK_RETURN_IF_ERROR(manager_->ExtendReservation(reservation_.id, extent));
    reserved_remaining_ += extent;
  }
  return OkStatus();
}

Status WriteSession::Write(ByteSpan data) {
  if (closed_ || aborted_) {
    return FailedPreconditionError("write on closed session");
  }
  Append(buffer_, data);
  stats_.bytes_written += data.size();

  switch (options_.protocol) {
    case WriteProtocol::kCompleteLocal:
      // Everything spills locally; pushed at close().
      return OkStatus();
    case WriteProtocol::kIncremental:
      if (buffer_.size() >= options_.increment_size) {
        return FlushBufferedChunks(/*final=*/false);
      }
      return OkStatus();
    case WriteProtocol::kSlidingWindow:
      if (buffer_.size() >= options_.chunk_size) {
        return FlushBufferedChunks(/*final=*/false);
      }
      return OkStatus();
  }
  return InternalError("unknown write protocol");
}

Status WriteSession::FlushBufferedChunks(bool final) {
  std::size_t pos = 0;
  while (buffer_.size() - pos >= options_.chunk_size ||
         (final && pos < buffer_.size())) {
    std::size_t len = std::min(options_.chunk_size, buffer_.size() - pos);
    STDCHK_RETURN_IF_ERROR(
        UploadChunk(ByteSpan(buffer_.data() + pos, len)));
    pos += len;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
  return OkStatus();
}

Status WriteSession::UploadChunk(ByteSpan chunk_bytes) {
  ChunkId id = ChunkId::For(chunk_bytes);
  ++stats_.chunks_total;

  // Incremental checkpointing: skip chunks the system already stores.
  if (options_.incremental_fsch) {
    auto known = manager_->FilterKnownChunks({id});
    if (known.ok() && known.value()[0]) {
      STDCHK_ASSIGN_OR_RETURN(auto located, manager_->LocateChunks({id}));
      if (!located[0].empty()) {
        ChunkLocation loc;
        loc.id = id;
        loc.file_offset = file_offset_;
        loc.size = static_cast<std::uint32_t>(chunk_bytes.size());
        loc.replicas = located[0];
        map_.chunks.push_back(std::move(loc));
        file_offset_ += chunk_bytes.size();
        ++stats_.chunks_deduplicated;
        return OkStatus();
      }
    }
  }

  STDCHK_RETURN_IF_ERROR(EnsureReservation(chunk_bytes.size()));

  const int replicas_needed =
      options_.semantics == WriteSemantics::kPessimistic
          ? std::max(1, options_.replication_target)
          : 1;

  ChunkLocation loc;
  loc.id = id;
  loc.file_offset = file_offset_;
  loc.size = static_cast<std::uint32_t>(chunk_bytes.size());

  // Round-robin start, then walk the stripe; replace dead stripe members
  // with fresh benefactors from the manager as needed.
  std::size_t attempts = 0;
  std::size_t cursor = rr_next_;
  while (static_cast<int>(loc.replicas.size()) < replicas_needed &&
         attempts < reservation_.stripe.size() * 2 + 4) {
    NodeId node = reservation_.stripe[cursor % reservation_.stripe.size()];
    cursor++;
    attempts++;
    if (std::find(loc.replicas.begin(), loc.replicas.end(), node) !=
        loc.replicas.end()) {
      continue;  // already holds this chunk
    }
    Status put = access_->PutChunk(node, id, chunk_bytes);
    if (put.ok()) {
      loc.replicas.push_back(node);
      stats_.bytes_transferred += chunk_bytes.size();
      ++stats_.replica_puts;
      continue;
    }
    // Stripe member failed: ask the manager for a replacement donor and
    // patch the stripe so subsequent chunks avoid the dead node.
    STDCHK_LOG(kDebug, "client") << "put to node " << node
                                 << " failed: " << put.ToString();
    auto replacement = manager_->ReserveStripe(1, options_.reservation_extent);
    if (replacement.ok()) {
      NodeId fresh = replacement.value().stripe[0];
      bool already_member =
          std::find(reservation_.stripe.begin(), reservation_.stripe.end(),
                    fresh) != reservation_.stripe.end();
      std::replace(reservation_.stripe.begin(), reservation_.stripe.end(),
                   node, fresh);
      (void)manager_->ReleaseReservation(replacement.value().id);
      if (already_member) {
        // No distinct replacement exists; keep walking the stripe.
        continue;
      }
    }
  }

  if (static_cast<int>(loc.replicas.size()) < replicas_needed) {
    if (loc.replicas.empty()) {
      return UnavailableError("could not store chunk on any benefactor");
    }
    if (options_.semantics == WriteSemantics::kPessimistic) {
      return UnavailableError(
          "pessimistic write could not reach replication target " +
          std::to_string(replicas_needed));
    }
  }

  rr_next_ = (rr_next_ + 1) % reservation_.stripe.size();
  reserved_remaining_ = reserved_remaining_ > chunk_bytes.size()
                            ? reserved_remaining_ - chunk_bytes.size()
                            : 0;
  file_offset_ += chunk_bytes.size();
  map_.chunks.push_back(std::move(loc));
  return OkStatus();
}

Result<CloseOutcome> WriteSession::Close() {
  if (closed_) return FailedPreconditionError("session already closed");
  if (aborted_) return FailedPreconditionError("session aborted");
  STDCHK_RETURN_IF_ERROR(FlushBufferedChunks(/*final=*/true));
  closed_ = true;

  VersionRecord record;
  record.name = name_;
  record.chunk_map = map_;
  record.size = file_offset_;
  record.replication_target = options_.replication_target;

  Status commit = manager_->CommitVersion(
      have_reservation_ ? reservation_.id : 0, record);
  if (commit.ok()) return CloseOutcome::kCommitted;

  if (commit.code() == StatusCode::kUnavailable) {
    // Manager down: stash the final chunk map on the write stripe so the
    // benefactors can recover the version when the manager returns (§IV.A).
    STDCHK_RETURN_IF_ERROR(StashOnStripe(record));
    return CloseOutcome::kStashedForRecovery;
  }
  // Terminal commit failure (e.g. the version was committed by another
  // producer): the session is over — release the reservation so GC can
  // reclaim the orphaned chunks promptly.
  if (have_reservation_) {
    (void)manager_->ReleaseReservation(reservation_.id);
    have_reservation_ = false;
  }
  return commit;
}

Status WriteSession::StashOnStripe(const VersionRecord& record) {
  if (!have_reservation_) {
    return FailedPreconditionError("no stripe to stash on (empty write)");
  }
  std::size_t stashed = 0;
  for (NodeId node : reservation_.stripe) {
    if (access_->StashChunkMap(node, record,
                               static_cast<int>(reservation_.stripe.size()))
            .ok()) {
      ++stashed;
    }
  }
  if (stashed == 0) {
    return UnavailableError("could not stash chunk map on any benefactor");
  }
  return OkStatus();
}

void WriteSession::Abort() {
  aborted_ = true;
  if (have_reservation_) {
    (void)manager_->ReleaseReservation(reservation_.id);
    have_reservation_ = false;
  }
}

}  // namespace stdchk
