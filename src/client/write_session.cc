#include "client/write_session.h"

#include <algorithm>
#include <utility>

namespace stdchk {

namespace {

ClientOptions ResolveOptions(MetadataManager* manager,
                             const CheckpointName& name,
                             ClientOptions options) {
  // Resolve the effective replication target once, from the folder policy,
  // unless the client overrides it per write.
  if (options.replication_target <= 0) {
    auto policy = manager->GetFolderPolicy(name.app);
    options.replication_target =
        policy.ok() ? policy.value().replication_target : 1;
  }
  // FsCH at the transfer chunk size is the default boundary heuristic; an
  // injected chunker (e.g. CbCH) replaces it wholesale.
  if (!options.chunker) {
    options.chunker = std::make_shared<FixedSizeChunker>(options.chunk_size);
  }
  // Erasure-coded writes stripe k+m shards across distinct stripe members,
  // so the stripe must be at least that wide.
  if (options.erasure.enabled()) {
    options.stripe_width =
        std::max(options.stripe_width, options.erasure.k + options.erasure.m);
  }
  return options;
}

}  // namespace

WriteSession::WriteSession(MetadataManager* manager, Transport* transport,
                           CheckpointName name, ClientOptions options,
                           PlacementTableCache* table_cache)
    : options_(ResolveOptions(manager, name, std::move(options))),
      planner_(options_.chunker, options_.hash_workers, &stats_,
               options_.stamp_chunk_digests),
      placement_(std::make_unique<RoundRobinPlacement>()),
      coordinator_(manager, transport, std::move(name), options_, &stats_,
                   table_cache),
      uploader_(transport, placement_.get(), &coordinator_, options_, &stats_) {}

WriteSession::~WriteSession() {
  if (!closed_ && !aborted_) Abort();
}

Status WriteSession::StageSealedChunks(bool final) {
  std::vector<StagedChunk> chunks = planner_.Drain(final);
  if (chunks.empty()) return OkStatus();
  stats_.chunks_total += chunks.size();

  // One compare-by-hash round trip covers the whole drain. Best-effort:
  // nothing between Drain() and Stage() may fail, or sealed chunks would
  // be lost from the stream.
  std::vector<std::vector<NodeId>> reuse;
  if (options_.incremental_fsch) {
    std::vector<ChunkId> ids;
    ids.reserve(chunks.size());
    for (const StagedChunk& chunk : chunks) ids.push_back(chunk.id);
    reuse = coordinator_.LocateReusable(ids);
  }

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    StagedChunk& chunk = chunks[i];
    if (!reuse.empty() && !reuse[i].empty()) {
      coordinator_.ReuseExisting(
          chunk.id, static_cast<std::uint32_t>(chunk.data.size()),
          std::move(reuse[i]));
      continue;
    }
    uploader_.Stage(std::move(chunk));
  }
  return OkStatus();
}

Status WriteSession::FlushPending() {
  if (uploader_.pending_chunks() == 0) return OkStatus();
  ++stats_.flushes;
  return uploader_.Flush();
}

Status WriteSession::Write(ByteSpan data) {
  if (closed_ || aborted_) {
    return FailedPreconditionError("write on closed session");
  }
  planner_.Append(data);
  stats_.bytes_written += data.size();
  stats_.max_buffered_bytes =
      std::max<std::uint64_t>(stats_.max_buffered_bytes,
                              planner_.buffered_bytes());

  switch (options_.protocol) {
    case WriteProtocol::kCompleteLocal:
      // Everything spills to local storage; pushed at Close().
      stats_.bytes_spilled_local += data.size();
      return OkStatus();
    case WriteProtocol::kIncremental:
      // Increments land in local temp files; each completed temp file is
      // pushed (in one batched drain) while the app writes the next.
      stats_.bytes_spilled_local += data.size();
      if (planner_.buffered_bytes() >= options_.increment_size) {
        STDCHK_RETURN_IF_ERROR(StageSealedChunks(/*final=*/false));
        return FlushPending();
      }
      return OkStatus();
    case WriteProtocol::kSlidingWindow:
      // No local I/O at all: every sealed chunk leaves the moment the
      // window holds one.
      if (planner_.buffered_bytes() >= options_.chunk_size) {
        STDCHK_RETURN_IF_ERROR(StageSealedChunks(/*final=*/false));
        return FlushPending();
      }
      return OkStatus();
  }
  return InternalError("unknown write protocol");
}

Result<CloseOutcome> WriteSession::Close() {
  if (closed_) return FailedPreconditionError("session already closed");
  if (aborted_) return FailedPreconditionError("session aborted");
  STDCHK_RETURN_IF_ERROR(StageSealedChunks(/*final=*/true));
  STDCHK_RETURN_IF_ERROR(FlushPending());
  closed_ = true;
  return coordinator_.Commit();
}

void WriteSession::Abort() {
  aborted_ = true;
  coordinator_.ReleaseReservation();
}

}  // namespace stdchk
