#include "client/client_proxy.h"

namespace stdchk {

Result<std::unique_ptr<WriteSession>> ClientProxy::CreateFile(
    const CheckpointName& name) {
  if (manager_->IsUp() && manager_->GetVersion(name).ok()) {
    return AlreadyExistsError("checkpoint image " + name.ToString() +
                              " already exists");
  }
  return std::make_unique<WriteSession>(manager_, access_, name, options_);
}

Result<CloseOutcome> ClientProxy::WriteFile(const CheckpointName& name,
                                            ByteSpan data) {
  STDCHK_ASSIGN_OR_RETURN(auto session, CreateFile(name));
  STDCHK_RETURN_IF_ERROR(session->Write(data));
  return session->Close();
}

Result<UploadPlan> ClientProxy::WriteFileDeduped(const CheckpointName& name,
                                                 ByteSpan data,
                                                 const Chunker& chunker) {
  if (manager_->IsUp() && manager_->GetVersion(name).ok()) {
    return AlreadyExistsError("checkpoint image " + name.ToString() +
                              " already exists");
  }

  // Chunk + hash the whole image, then ask the manager which chunks the
  // system already stores (one round trip).
  STDCHK_ASSIGN_OR_RETURN(
      UploadPlan plan,
      PlanUpload(data, chunker, [this](const std::vector<ChunkId>& ids) {
        return manager_->FilterKnownChunks(ids);
      }));

  // Locate existing replicas for the reused chunks.
  std::vector<ChunkId> reused_ids;
  for (const PlannedChunk& pc : plan.chunks) {
    if (!pc.novel) reused_ids.push_back(pc.id);
  }
  std::vector<std::vector<NodeId>> located;
  if (!reused_ids.empty()) {
    STDCHK_ASSIGN_OR_RETURN(located, manager_->LocateChunks(reused_ids));
  }

  // Reserve a stripe sized for the novel bytes only.
  WriteReservation reservation;
  bool have_reservation = false;
  if (plan.novel_bytes > 0) {
    STDCHK_ASSIGN_OR_RETURN(
        reservation,
        manager_->ReserveStripe(options_.stripe_width, plan.novel_bytes));
    have_reservation = true;
  }

  VersionRecord record;
  record.name = name;
  record.size = plan.total_bytes;
  record.replication_target = options_.replication_target;

  std::size_t rr = 0;
  std::size_t reused_index = 0;
  std::uint64_t offset = 0;
  for (const PlannedChunk& pc : plan.chunks) {
    ChunkLocation loc;
    loc.id = pc.id;
    loc.file_offset = offset;
    loc.size = pc.span.size;
    offset += pc.span.size;

    if (!pc.novel) {
      loc.replicas = located[reused_index++];
      if (loc.replicas.empty()) {
        // The oracle said known but no replica exists (e.g. raced with a
        // purge): fall through and upload it after all.
      } else {
        record.chunk_map.chunks.push_back(std::move(loc));
        continue;
      }
    }

    // Upload with failover across the stripe (novel path).
    ByteSpan bytes = data.subspan(pc.span.offset, pc.span.size);
    Status last = UnavailableError("no benefactors in stripe");
    for (std::size_t attempt = 0;
         attempt < reservation.stripe.size() && loc.replicas.empty();
         ++attempt) {
      NodeId node = reservation.stripe[(rr + attempt) % reservation.stripe.size()];
      last = access_->PutChunk(node, pc.id, bytes);
      if (last.ok()) loc.replicas.push_back(node);
    }
    if (loc.replicas.empty()) {
      if (have_reservation) (void)manager_->ReleaseReservation(reservation.id);
      return last;
    }
    rr = (rr + 1) % std::max<std::size_t>(1, reservation.stripe.size());
    record.chunk_map.chunks.push_back(std::move(loc));
  }

  STDCHK_RETURN_IF_ERROR(manager_->CommitVersion(
      have_reservation ? reservation.id : 0, record));
  return plan;
}

Result<std::unique_ptr<ReadSession>> ClientProxy::OpenFile(
    const CheckpointName& name) {
  STDCHK_ASSIGN_OR_RETURN(VersionRecord record, manager_->GetVersion(name));
  return std::make_unique<ReadSession>(access_, std::move(record), options_);
}

Result<std::unique_ptr<ReadSession>> ClientProxy::OpenLatest(
    const std::string& app, const std::string& node) {
  STDCHK_ASSIGN_OR_RETURN(VersionRecord record,
                          manager_->GetLatest(app, node));
  return std::make_unique<ReadSession>(access_, std::move(record), options_);
}

Result<Bytes> ClientProxy::ReadFile(const CheckpointName& name) {
  STDCHK_ASSIGN_OR_RETURN(auto session, OpenFile(name));
  return session->ReadAll();
}

}  // namespace stdchk
