#include "client/client_proxy.h"

namespace stdchk {

Result<std::unique_ptr<WriteSession>> ClientProxy::CreateFile(
    const CheckpointName& name) {
  return CreateFileWith(name, options_);
}

Result<std::unique_ptr<WriteSession>> ClientProxy::CreateFileWith(
    const CheckpointName& name, const ClientOptions& options) {
  if (manager_->IsUp() && manager_->GetVersion(name).ok()) {
    return AlreadyExistsError("checkpoint image " + name.ToString() +
                              " already exists");
  }
  return std::make_unique<WriteSession>(
      manager_, transport_, name, options,
      options.decentralized_placement ? &table_cache_ : nullptr);
}

Result<CloseOutcome> ClientProxy::WriteFile(const CheckpointName& name,
                                            ByteSpan data) {
  STDCHK_ASSIGN_OR_RETURN(auto session, CreateFile(name));
  STDCHK_RETURN_IF_ERROR(session->Write(data));
  return session->Close();
}

Result<UploadPlan> ClientProxy::WriteFileDeduped(const CheckpointName& name,
                                                 ByteSpan data,
                                                 const Chunker& chunker) {
  // Whole-image dedup rides the staged write engine: CLW (the full image
  // must be visible before content-defined boundaries are placed), the
  // caller's chunker injected into the ChunkPlanner, and compare-by-hash
  // filtering enabled. The engine then reuses stored chunks and uploads
  // the rest through the batched per-benefactor queues.
  ClientOptions options = options_;
  options.protocol = WriteProtocol::kCompleteLocal;
  options.incremental_fsch = true;
  // Non-owning alias: the caller's chunker outlives the session.
  options.chunker =
      std::shared_ptr<const Chunker>(&chunker, [](const Chunker*) {});

  STDCHK_ASSIGN_OR_RETURN(auto session, CreateFileWith(name, options));
  STDCHK_RETURN_IF_ERROR(session->Write(data));
  STDCHK_RETURN_IF_ERROR(session->Close().status());

  const WriteStats& stats = session->stats();
  const ChunkMap& map = session->chunk_map();
  const std::vector<bool>& reused = session->chunk_reused();
  UploadPlan plan;
  plan.total_bytes = stats.bytes_written;
  plan.novel_bytes = stats.bytes_written - stats.bytes_deduplicated;
  plan.chunks.reserve(map.chunks.size());
  for (std::size_t i = 0; i < map.chunks.size(); ++i) {
    PlannedChunk pc;
    pc.span = ChunkSpan{map.chunks[i].file_offset, map.chunks[i].size};
    pc.id = map.chunks[i].id;
    pc.novel = !reused[i];
    plan.chunks.push_back(pc);
  }
  return plan;
}

Result<std::unique_ptr<ReadSession>> ClientProxy::OpenFile(
    const CheckpointName& name) {
  STDCHK_ASSIGN_OR_RETURN(VersionRecord record, manager_->GetVersion(name));
  return std::make_unique<ReadSession>(transport_, std::move(record), options_);
}

Result<std::unique_ptr<ReadSession>> ClientProxy::OpenLatest(
    const std::string& app, const std::string& node) {
  STDCHK_ASSIGN_OR_RETURN(VersionRecord record,
                          manager_->GetLatest(app, node));
  return std::make_unique<ReadSession>(transport_, std::move(record), options_);
}

Result<Bytes> ClientProxy::ReadFile(const CheckpointName& name) {
  STDCHK_ASSIGN_OR_RETURN(auto session, OpenFile(name));
  return session->ReadAll();
}

}  // namespace stdchk
