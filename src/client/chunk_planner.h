// Layer 1 of the staged write engine: buffering and chunk-boundary
// decisions.
//
// The planner accepts the application's byte stream and carves it into
// content-addressed chunks under any Chunker — FsCH for the paper's
// fixed-size transfer chunks, CbCH for shift-resilient incremental
// checkpointing (§IV.C). Boundaries are found by the chunker's streaming
// ChunkScanner as bytes arrive: each byte is scanned exactly once, no
// matter how often the protocols drain (the old re-offer-the-suffix
// discipline re-scanned CbCH tails O(n·drains) times). A chunk is only
// released once no amount of future data can move its edges, so the chunk
// map is a pure function of file content, independent of Write() call
// granularity or drain timing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chkpt/chunker.h"
#include "chunk/chunk.h"
#include "client/write_stats.h"
#include "common/buffer.h"
#include "common/bytes.h"

namespace stdchk {

// A chunk the planner has sealed: content address plus a ref-counted slice
// of the drained buffer generation, ready for dedup filtering and upload
// staging. The slice keeps the generation alive for as long as any of its
// chunks is still pending — no per-chunk copies, so a CLW close-drain of a
// large image stays at ~1x the image in memory.
struct StagedChunk {
  ChunkId id;
  BufferSlice data;
};

class ChunkPlanner {
 public:
  // `hash_workers` bounds the threads used to SHA-1-name each drain
  // generation (0 = hardware concurrency, 1 = serial — see
  // ClientOptions::hash_workers). Naming wall time and fan-out are recorded
  // into `stats` when provided. `stamp_digests` mirrors
  // ClientOptions::stamp_chunk_digests.
  explicit ChunkPlanner(std::shared_ptr<const Chunker> chunker,
                        int hash_workers = 1, WriteStats* stats = nullptr,
                        bool stamp_digests = true);

  // Buffers more application data (checkpoint images arrive sequentially)
  // and runs the streaming boundary scan over it — the single
  // materialization point of the write path.
  void Append(ByteSpan data);

  // Bytes accepted but not yet drained — the client-side spill/window the
  // three protocols manage differently.
  std::size_t buffered_bytes() const { return buffer_.size(); }

  // Removes and returns chunks whose boundaries are sealed. `final` seals
  // the tail as well (close-time drain); afterwards the planner is empty.
  std::vector<StagedChunk> Drain(bool final);

  const Chunker& chunker() const { return *chunker_; }

 private:
  std::shared_ptr<const Chunker> chunker_;
  int hash_workers_;         // resolved: >= 1
  WriteStats* stats_;        // optional naming accounting sink
  bool stamp_digests_;
  std::unique_ptr<ChunkScanner> scanner_;
  Bytes buffer_;                 // bytes from the last drained boundary on
  std::uint64_t buffer_start_ = 0;  // absolute stream offset of buffer_[0]
  // Sealed boundaries (absolute stream offsets) not yet drained.
  std::vector<std::uint64_t> sealed_ends_;
};

}  // namespace stdchk
