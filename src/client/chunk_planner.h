// Layer 1 of the staged write engine: buffering and chunk-boundary
// decisions.
//
// The planner accepts the application's byte stream and carves it into
// content-addressed chunks under any Chunker — FsCH for the paper's
// fixed-size transfer chunks, CbCH for shift-resilient incremental
// checkpointing (§IV.C). Boundaries are *sealed* incrementally: a chunk is
// only released once no amount of future data can move its edges, so the
// chunk map is a pure function of file content, independent of Write()
// call granularity or of when each protocol drains the buffer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chkpt/chunker.h"
#include "chunk/chunk.h"
#include "common/bytes.h"

namespace stdchk {

// A chunk the planner has sealed: content address plus a view into the
// drained buffer generation, ready for dedup filtering and upload staging.
// `backing` keeps the generation alive for as long as any of its chunks is
// still pending — no per-chunk copies, so a CLW close-drain of a large
// image stays at ~1x the image in memory.
struct StagedChunk {
  ChunkId id;
  ByteSpan bytes;
  std::shared_ptr<const Bytes> backing;
};

class ChunkPlanner {
 public:
  explicit ChunkPlanner(std::shared_ptr<const Chunker> chunker);

  // Buffers more application data (checkpoint images arrive sequentially).
  void Append(ByteSpan data);

  // Bytes accepted but not yet drained — the client-side spill/window the
  // three protocols manage differently.
  std::size_t buffered_bytes() const { return buffer_.size(); }

  // Removes and returns chunks whose boundaries are sealed. `final` seals
  // the tail as well (close-time drain); afterwards the planner is empty.
  std::vector<StagedChunk> Drain(bool final);

  const Chunker& chunker() const { return *chunker_; }

 private:
  std::shared_ptr<const Chunker> chunker_;
  Bytes buffer_;
  // Rescan throttle: after a non-final drain seals nothing, skip re-running
  // the chunker until the buffer roughly doubles. Re-scans always start at
  // the last sealed boundary, so a boundary-free stretch of length L would
  // otherwise cost O(L^2) hashing across drains; geometric backoff keeps
  // the total O(L) while only delaying (never moving) seal points.
  std::size_t barren_floor_ = 0;
};

}  // namespace stdchk
