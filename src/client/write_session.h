// One open-for-write file: the client proxy's side of session semantics.
//
// The application streams bytes in with Write(); Close() pushes whatever
// remains, then commits the chunk map to the manager in one atomic call —
// until that commit no reader can observe the file (paper §IV.A, session
// semantics). If the manager is down at commit time, the session stashes
// the final chunk map on the stripe's benefactors so the manager-recovery
// protocol can commit it later.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "client/benefactor_access.h"
#include "client/client_options.h"
#include "common/status.h"
#include "manager/metadata_manager.h"
#include "manager/types.h"

namespace stdchk {

// What Close() achieved.
enum class CloseOutcome {
  kCommitted,        // chunk map committed at the manager
  kStashedForRecovery,  // manager down; map stashed on benefactors
};

struct WriteStats {
  std::uint64_t bytes_written = 0;     // application bytes accepted
  std::uint64_t bytes_transferred = 0; // bytes actually sent to benefactors
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_deduplicated = 0;
  std::uint64_t replica_puts = 0;      // total chunk-replica transfers
};

class WriteSession {
 public:
  WriteSession(MetadataManager* manager, BenefactorAccess* access,
               CheckpointName name, ClientOptions options);
  ~WriteSession();

  WriteSession(const WriteSession&) = delete;
  WriteSession& operator=(const WriteSession&) = delete;

  // Appends application data (checkpoint images are written sequentially).
  Status Write(ByteSpan data);

  // Flush + atomic commit. Idempotent: second call is an error.
  Result<CloseOutcome> Close();

  // Abandons the write: releases the reservation; pushed chunks become
  // orphans and are reclaimed by GC.
  void Abort();

  const WriteStats& stats() const { return stats_; }
  bool closed() const { return closed_; }

 private:
  // Ensures a stripe reservation exists and covers `upcoming` more bytes.
  Status EnsureReservation(std::uint64_t upcoming);

  // Sends [buffer_ start, complete chunks] to benefactors; `final` flushes
  // the tail partial chunk too.
  Status FlushBufferedChunks(bool final);

  // Uploads one chunk to `replicas_needed` distinct stripe nodes, with
  // failover across the stripe. Appends the committed location.
  Status UploadChunk(ByteSpan chunk_bytes);

  Status StashOnStripe(const VersionRecord& record);

  MetadataManager* manager_;
  BenefactorAccess* access_;
  CheckpointName name_;
  ClientOptions options_;

  WriteReservation reservation_;
  bool have_reservation_ = false;
  std::uint64_t reserved_remaining_ = 0;

  Bytes buffer_;              // data not yet pushed (spill / window)
  std::uint64_t file_offset_ = 0;
  std::size_t rr_next_ = 0;   // round-robin cursor within the stripe
  ChunkMap map_;
  WriteStats stats_;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace stdchk
