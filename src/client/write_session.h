// One open-for-write file: the client proxy's side of session semantics.
//
// WriteSession is a thin facade over the staged write engine:
//
//   ChunkPlanner       buffering + chunk-boundary decisions (any Chunker)
//   PlacementPolicy    which stripe members receive each chunk's replicas
//   ChunkUploader      per-benefactor queues, batched multi-chunk PUTs
//   CommitCoordinator  reservation growth, dedup queries, atomic commit,
//                      stash-for-recovery when the manager is down
//
// The application streams bytes in with Write(); the configured protocol
// (§IV.B) decides when sealed chunks leave the client: SW pushes as
// produced, IW flushes per completed increment, CLW spills locally and
// drains everything at Close(). All three commit identical chunk maps —
// Close() pushes whatever remains, then commits atomically; until that
// commit no reader can observe the file (paper §IV.A, session semantics).
#pragma once

#include <cstdint>
#include <memory>

#include "client/transport.h"
#include "client/chunk_planner.h"
#include "client/chunk_uploader.h"
#include "client/client_options.h"
#include "client/commit_coordinator.h"
#include "client/placement.h"
#include "client/write_stats.h"
#include "common/status.h"
#include "manager/metadata_manager.h"
#include "manager/types.h"

namespace stdchk {

class WriteSession {
 public:
  // `table_cache` (usually the owning ClientProxy's) enables decentralized
  // placement for this session; nullptr keeps server-side placement.
  WriteSession(MetadataManager* manager, Transport* transport,
               CheckpointName name, ClientOptions options,
               PlacementTableCache* table_cache = nullptr);
  ~WriteSession();

  WriteSession(const WriteSession&) = delete;
  WriteSession& operator=(const WriteSession&) = delete;

  // Appends application data (checkpoint images are written sequentially).
  Status Write(ByteSpan data);

  // Flush + atomic commit. Idempotent: second call is an error.
  Result<CloseOutcome> Close();

  // Abandons the write: releases the reservation; pushed chunks become
  // orphans and are reclaimed by GC.
  void Abort();

  const WriteStats& stats() const { return stats_; }
  bool closed() const { return closed_; }

  // Introspection on the assembled chunk map (committed only after a
  // successful Close): the map itself, which slots were satisfied by
  // compare-by-hash reuse, and the file size so far.
  const ChunkMap& chunk_map() const { return coordinator_.map(); }
  const std::vector<bool>& chunk_reused() const {
    return coordinator_.slot_reused();
  }
  std::uint64_t file_size() const { return coordinator_.file_size(); }

 private:
  // Seals what the planner can release, filters chunks the system already
  // stores (compare-by-hash dedup), and stages the rest for upload.
  Status StageSealedChunks(bool final);
  // Drains the uploader if anything is pending; one network drain point.
  Status FlushPending();

  ClientOptions options_;
  WriteStats stats_;

  ChunkPlanner planner_;
  std::unique_ptr<PlacementPolicy> placement_;
  CommitCoordinator coordinator_;
  ChunkUploader uploader_;

  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace stdchk
