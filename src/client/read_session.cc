#include "client/read_session.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "erasure/reed_solomon.h"

namespace stdchk {

ReadSession::ReadSession(Transport* transport, VersionRecord record,
                         ClientOptions options)
    : transport_(transport),
      record_(std::move(record)),
      options_(options) {}

ReadSession::~ReadSession() {
  // Drop replies for anything still in flight so the transport does not
  // accumulate undeliverable completions. Locked for the rank validator's
  // benefit (session rank sits below the transport's); Clang's analysis
  // skips destructors.
  MutexLock lock(mu_);
  for (const auto& [handle, fetch] : inflight_) {
    (void)transport_->Cancel(handle);
  }
}

std::size_t ReadSession::WindowEnd(std::size_t demand) const {
  std::size_t ahead =
      static_cast<std::size_t>(std::max(0, options_.read_ahead_chunks));
  return std::min(record_.chunk_map.chunks.size() - 1, demand + ahead);
}

std::size_t ReadSession::MaxInflight() const {
  return static_cast<std::size_t>(std::max(0, options_.read_ahead_chunks)) + 1;
}

Result<NodeId> ReadSession::PickReplica(std::size_t index) {
  const ChunkLocation& loc = record_.chunk_map.chunks[index];
  if (loc.replicas.empty()) {
    return DataLossError("chunk " + loc.id.ToHex() + " has no replicas");
  }
  auto failed_it = failed_replicas_.find(index);
  auto failed = [&](NodeId n) {
    return failed_it != failed_replicas_.end() && failed_it->second.contains(n);
  };
  // Rotate the starting replica across picks so load spreads over the
  // stripe (round-robin read striping, as in FreeLoader).
  std::size_t start = rr_replica_++ % loc.replicas.size();
  NodeId dead_fallback = kInvalidNode;
  for (std::size_t k = 0; k < loc.replicas.size(); ++k) {
    NodeId n = loc.replicas[(start + k) % loc.replicas.size()];
    if (failed(n)) continue;
    if (dead_nodes_.contains(n)) {
      // Observed dead this session: do not pay a doomed RPC while a live
      // candidate exists.
      ++stats_.dead_replica_skips;
      if (dead_fallback == kInvalidNode) dead_fallback = n;
      continue;
    }
    return n;
  }
  // No live candidate left. A node marked dead may have been a transient
  // drop — retry one before giving up on the chunk.
  if (dead_fallback != kInvalidNode) return dead_fallback;
  // Every replica has failed for this chunk. Failures can be transient
  // (a dropped RPC), so clear the per-chunk blacklist and sweep the
  // replicas again — bounded by a failover budget mirroring the
  // uploader's, after which the chunk is genuinely unreadable.
  if (fetch_attempts_[index] < 2 * loc.replicas.size()) {
    if (failed_it != failed_replicas_.end()) failed_it->second.clear();
    return loc.replicas[start];
  }
  return UnavailableError("no replica of chunk " + loc.id.ToHex() +
                          " reachable");
}

Status ReadSession::PumpWindow(std::size_t demand) {
  const auto& chunks = record_.chunk_map.chunks;
  if (chunks.empty()) return OkStatus();
  std::size_t window_end = WindowEnd(demand);
  std::size_t max_inflight = MaxInflight();

  std::map<NodeId, std::vector<std::size_t>> queues;
  for (std::size_t i = demand; i <= window_end; ++i) {
    if (inflight_chunks_.size() >= max_inflight) break;
    if (cache_index_.contains(i) || inflight_chunks_.contains(i)) continue;
    // Erasure-coded chunks bypass the replica window: ChunkData fetches
    // their shards on demand (already overlapped across k benefactors).
    // Exception: chunks ChunkData demoted to the replica path after a
    // failed shard recovery (mixed-mode fallback).
    if (chunks[i].erasure_coded() && !replica_fallback_.contains(i)) continue;
    Result<NodeId> pick = PickReplica(i);
    if (!pick.ok()) {
      // Read-ahead misses stay soft; only the demand chunk is fatal.
      if (i == demand) return pick.status();
      continue;
    }
    queues[pick.value()].push_back(i);
    inflight_chunks_.insert(i);
  }

  for (auto& [node, indices] : queues) {
    // Chunks flagged for solo retry (after a batch rejection) go out as
    // individual GETs so failures are attributed precisely; the rest of a
    // node's window share one batch GET.
    std::vector<std::size_t> batchable;
    for (std::size_t i : indices) {
      if (singles_only_.contains(i)) {
        OpHandle h =
            transport_->Submit(ChunkOp::Get(node, chunks[i].id));
        inflight_.emplace(h, Fetch{{i}, node});
        ++stats_.single_gets;
      } else {
        batchable.push_back(i);
      }
    }
    if (batchable.size() == 1) {
      OpHandle h =
          transport_->Submit(ChunkOp::Get(node, chunks[batchable[0]].id));
      inflight_.emplace(h, Fetch{std::move(batchable), node});
      ++stats_.single_gets;
    } else if (batchable.size() > 1) {
      std::vector<ChunkId> ids;
      ids.reserve(batchable.size());
      for (std::size_t i : batchable) ids.push_back(chunks[i].id);
      OpHandle h = transport_->Submit(ChunkOp::GetBatch(node, std::move(ids)));
      inflight_.emplace(h, Fetch{std::move(batchable), node});
      ++stats_.batch_gets;
    }
  }
  stats_.inflight_peak = std::max(stats_.inflight_peak,
                                  inflight_chunks_.size());
  return OkStatus();
}

Status ReadSession::HarvestOne(std::size_t demand) {
  std::vector<OpHandle> handles;
  handles.reserve(inflight_.size());
  for (const auto& [h, fetch] : inflight_) handles.push_back(h);
  STDCHK_ASSIGN_OR_RETURN(OpCompletion c, transport_->WaitAny(handles));
  auto it = inflight_.find(c.handle);
  Fetch fetch = std::move(it->second);
  inflight_.erase(it);
  for (std::size_t i : fetch.indices) inflight_chunks_.erase(i);

  if (c.status.ok()) {
    // The node answered: rehabilitate it if a drop had marked it dead, and
    // let its chunks batch again — both marks describe transient states.
    dead_nodes_.erase(fetch.node);
    if (fetch.indices.size() == 1) {
      singles_only_.erase(fetch.indices[0]);
      Insert(fetch.indices[0], std::move(c.data));
    } else {
      for (std::size_t j = 0; j < fetch.indices.size(); ++j) {
        Insert(fetch.indices[j], std::move(c.batch[j]));
      }
    }
    stats_.chunks_fetched += fetch.indices.size();
    EvictToBudget(demand);
    return OkStatus();
  }

  stats_.failovers += fetch.indices.size();
  for (std::size_t i : fetch.indices) ++fetch_attempts_[i];
  if (c.status.code() == StatusCode::kUnavailable) {
    // Node-level failure: remember the node so later picks skip it, and
    // walk every affected chunk on to its next replica.
    dead_nodes_.insert(fetch.node);
    for (std::size_t i : fetch.indices) failed_replicas_[i].insert(fetch.node);
  } else if (fetch.indices.size() > 1) {
    // A batch rejected wholesale for a chunk-level reason (one chunk
    // missing or corrupt) says nothing about the other chunks on this
    // node: retry each alone so the bad chunk is pinpointed.
    for (std::size_t i : fetch.indices) singles_only_.insert(i);
  } else {
    failed_replicas_[fetch.indices[0]].insert(fetch.node);
  }
  return OkStatus();
}

Result<const BufferSlice*> ReadSession::ChunkData(std::size_t index) {
  const ChunkLocation& loc = record_.chunk_map.chunks[index];
  if (loc.erasure_coded()) {
    if (auto it = cache_index_.find(index); it != cache_index_.end()) {
      return &it->second->data;
    }
    Result<BufferSlice> data = FetchErasure(index);
    if (!data.ok()) {
      // Mixed-mode escape hatch: a chunk can carry whole replicas besides
      // its shard group (dedup reuse of a replication-era copy). Only then
      // is a full-replica fallback even possible — and the EC acceptance
      // bar is that it never fires for pure erasure files.
      if (loc.replicas.empty()) return data.status();
      ++stats_.full_replica_fallbacks;
      replica_fallback_.insert(index);
    } else {
      Insert(index, std::move(data.value()));
      EvictToBudget(index);
      return &cache_index_.find(index)->second->data;
    }
  }
  while (true) {
    if (auto it = cache_index_.find(index); it != cache_index_.end()) {
      return &it->second->data;
    }
    STDCHK_RETURN_IF_ERROR(PumpWindow(index));
    if (auto it = cache_index_.find(index); it != cache_index_.end()) {
      return &it->second->data;
    }
    if (inflight_.empty()) {
      return InternalError("read engine stalled with no fetch in flight");
    }
    STDCHK_RETURN_IF_ERROR(HarvestOne(index));
  }
}

Result<BufferSlice> ReadSession::FetchErasure(std::size_t index) {
  const ChunkLocation& loc = record_.chunk_map.chunks[index];
  const int k = loc.ec_k;
  const int m = loc.ec_m;
  const int total = k + m;
  if (static_cast<int>(loc.shards.size()) != total) {
    return DataLossError("chunk " + loc.id.ToHex() +
                         " has a malformed shard group");
  }
  const std::size_t shard_size = ErasureShardSize(loc.size, k);

  std::vector<std::optional<BufferSlice>> got(
      static_cast<std::size_t>(total));
  int have = 0;
  // Zero-length tail data shards (chunk smaller than (k-1) shard widths)
  // are virtually present: nothing stored, nothing to fetch.
  for (int s = 0; s < k; ++s) {
    if (ErasureShardLength(loc.size, k, s) == 0) {
      got[static_cast<std::size_t>(s)] = BufferSlice();
      ++have;
    }
  }

  // One GET per shard — group members sit on distinct benefactors by
  // construction, so the k data fetches overlap across k nodes. Parity
  // shards are requested only to cover failures, one per loss.
  std::map<OpHandle, int> pending;
  auto submit = [&](int s) -> bool {
    const ShardLocation& sl = loc.shards[static_cast<std::size_t>(s)];
    if (sl.node == kInvalidNode) return false;  // departed, awaiting repair
    OpHandle h = transport_->Submit(ChunkOp::Get(sl.node, sl.id));
    pending.emplace(h, s);
    ++stats_.single_gets;
    return true;
  };
  int next_extra = k;
  for (int s = 0; s < k; ++s) {
    if (got[static_cast<std::size_t>(s)].has_value()) continue;
    if (!submit(s)) {
      while (next_extra < total && !submit(next_extra)) ++next_extra;
      if (next_extra < total) ++next_extra;
    }
  }

  while (have < k && !pending.empty()) {
    std::vector<OpHandle> handles;
    handles.reserve(pending.size());
    for (const auto& [h, s] : pending) handles.push_back(h);
    STDCHK_ASSIGN_OR_RETURN(OpCompletion c, transport_->WaitAny(handles));
    int s = pending.at(c.handle);
    pending.erase(c.handle);
    const NodeId node = loc.shards[static_cast<std::size_t>(s)].node;
    if (c.status.ok()) {
      dead_nodes_.erase(node);
      got[static_cast<std::size_t>(s)] = std::move(c.data);
      ++have;
      ++stats_.shard_fetches;
      if (s >= k) ++stats_.parity_shard_fetches;
      continue;
    }
    ++stats_.failovers;
    if (c.status.code() == StatusCode::kUnavailable) dead_nodes_.insert(node);
    // Walk on to the next untried shard to cover this loss.
    while (next_extra < total && !submit(next_extra)) ++next_extra;
    if (next_extra < total) ++next_extra;
  }
  if (have < k) {
    return DataLossError("only " + std::to_string(have) + " of the required " +
                         std::to_string(k) + " shards of chunk " +
                         loc.id.ToHex() + " are reachable");
  }

  // Reassemble: direct data shards copy into place, missing ones decode
  // straight into their region of the chunk buffer (prefix recovery — no
  // scratch shard buffers).
  Bytes assembled(loc.size, 0);
  std::vector<int> want;
  std::vector<MutableByteSpan> outs;
  for (int s = 0; s < k; ++s) {
    std::size_t len = ErasureShardLength(loc.size, k, s);
    if (len == 0) continue;
    MutableByteSpan region(
        assembled.data() + static_cast<std::size_t>(s) * shard_size, len);
    const auto& shard = got[static_cast<std::size_t>(s)];
    if (shard.has_value()) {
      if (shard->size() != len) {
        return DataLossError("shard " + std::to_string(s) + " of chunk " +
                             loc.id.ToHex() + " has the wrong stored size");
      }
      std::memcpy(region.data(), shard->data(), len);
    } else {
      want.push_back(s);
      outs.push_back(region);
    }
  }
  // Reassembly is the one real copy of the EC read path (k scattered shard
  // buffers into one contiguous chunk); account it honestly.
  copy_stats::RecordCopy(loc.size);
  if (!want.empty()) {
    STDCHK_ASSIGN_OR_RETURN(ReedSolomon rs, ReedSolomon::Create(k, m));
    std::vector<std::optional<ByteSpan>> views(static_cast<std::size_t>(total));
    for (int s = 0; s < total; ++s) {
      const auto& shard = got[static_cast<std::size_t>(s)];
      if (shard.has_value()) views[static_cast<std::size_t>(s)] = shard->span();
    }
    STDCHK_RETURN_IF_ERROR(rs.RecoverShards(views, shard_size, want, outs));
    ++stats_.reconstructions;
  }

  // Content-based addressability doubles as the integrity check: the
  // reassembled (possibly reconstructed) chunk must hash to its address.
  BufferSlice out(BufferRef::Take(std::move(assembled)));
  ChunkId actual = ChunkId::For(out.span());
  if (actual != loc.id) {
    return DataLossError("chunk " + loc.id.ToHex() +
                         " failed integrity verification after reassembly");
  }
  out.StampDigest(actual.digest);
  return out;
}

void ReadSession::Insert(std::size_t index, BufferSlice data) {
  if (cache_index_.contains(index)) return;
  cache_bytes_ += data.size();
  stats_.cache_bytes_peak = std::max<std::uint64_t>(stats_.cache_bytes_peak,
                                                    cache_bytes_);
  cache_.push_back(Cached{index, std::move(data)});
  cache_index_[index] = std::prev(cache_.end());
}

void ReadSession::EvictToBudget(std::size_t demand) {
  if (options_.read_cache_budget_bytes == 0) return;
  std::size_t window_end = WindowEnd(demand);
  auto it = cache_.begin();
  while (cache_bytes_ > options_.read_cache_budget_bytes &&
         it != cache_.end()) {
    // Never evict what the active window still needs — a budget below the
    // window size degrades to window-sized caching, not livelock.
    if (it->index >= demand && it->index <= window_end) {
      ++it;
      continue;
    }
    cache_bytes_ -= it->data.size();
    cache_index_.erase(it->index);
    it = cache_.erase(it);
    ++stats_.cache_evictions;
  }
}

Result<std::size_t> ReadSession::ReadAt(std::uint64_t offset,
                                        MutableByteSpan out) {
  if (offset >= record_.size || out.empty()) return std::size_t{0};

  // Serialize the whole call: the window, cache and failover state are one
  // coherent machine, and ChunkData's returned pointer aliases the cache.
  MutexLock lock(mu_);

  // The failover budget bounds retries within one call; a fresh call gets
  // a fresh budget (links heal, nodes restart), like the pre-pipelined
  // reader whose every attempt re-swept the replica set.
  fetch_attempts_.clear();

  std::size_t written = 0;
  const auto& chunks = record_.chunk_map.chunks;
  // Chunks are ordered by file_offset; binary-search the starting chunk.
  std::size_t lo = 0, hi = chunks.size();
  while (lo + 1 < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (chunks[mid].file_offset <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  std::uint64_t pos = offset;
  for (std::size_t i = lo; i < chunks.size() && written < out.size(); ++i) {
    const ChunkLocation& c = chunks[i];
    if (pos < c.file_offset) break;  // hole (should not happen)
    if (pos >= c.file_offset + c.size) continue;

    bool was_cached = cache_index_.contains(i);
    STDCHK_ASSIGN_OR_RETURN(const BufferSlice* data, ChunkData(i));
    if (was_cached) ++stats_.cache_hits;

    std::uint64_t chunk_off = pos - c.file_offset;
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(c.size - chunk_off, out.size() - written));
    std::memcpy(out.data() + written, data->data() + chunk_off, n);
    written += n;
    pos += n;
  }
  return written;
}

Result<Bytes> ReadSession::ReadAll() {
  Bytes out(record_.size);
  std::uint64_t offset = 0;
  while (offset < record_.size) {
    STDCHK_ASSIGN_OR_RETURN(
        std::size_t n,
        ReadAt(offset, MutableByteSpan(out.data() + offset,
                                       out.size() - offset)));
    if (n == 0) return DataLossError("short read at offset " +
                                     std::to_string(offset));
    offset += n;
  }
  return out;
}

}  // namespace stdchk
