#include "client/read_session.h"

#include <algorithm>
#include <cstring>

namespace stdchk {

ReadSession::ReadSession(BenefactorAccess* access, VersionRecord record,
                         ClientOptions options)
    : access_(access), record_(std::move(record)), options_(options) {}

Status ReadSession::Prefetch(std::size_t index) {
  for (const CachedChunk& c : cache_) {
    if (c.index == index) return OkStatus();
  }
  const ChunkLocation& loc = record_.chunk_map.chunks[index];
  if (loc.replicas.empty()) {
    return DataLossError("chunk " + loc.id.ToHex() + " has no replicas");
  }
  // Rotate the starting replica across fetches so load spreads over the
  // stripe (round-robin read striping, as in FreeLoader).
  Status last = UnavailableError("no replica reachable");
  for (std::size_t i = 0; i < loc.replicas.size(); ++i) {
    NodeId node = loc.replicas[(rr_replica_ + i) % loc.replicas.size()];
    Result<Bytes> data = access_->GetChunk(node, loc.id);
    if (data.ok()) {
      cache_.push_back(CachedChunk{index, std::move(data).value()});
      ++chunks_fetched_;
      // Bound the cache: current chunk + read-ahead window.
      std::size_t limit =
          static_cast<std::size_t>(std::max(1, options_.read_ahead_chunks)) + 1;
      while (cache_.size() > limit) cache_.pop_front();
      rr_replica_ = (rr_replica_ + 1) % loc.replicas.size();
      return OkStatus();
    }
    last = data.status();
  }
  return last;
}

Result<const Bytes*> ReadSession::ChunkData(std::size_t index) {
  STDCHK_RETURN_IF_ERROR(Prefetch(index));
  // Issue read-ahead for the following chunks (synchronous analogue of the
  // FUSE layer's read-ahead: they land in the cache for the next calls).
  for (int ahead = 1; ahead <= options_.read_ahead_chunks; ++ahead) {
    std::size_t next = index + static_cast<std::size_t>(ahead);
    if (next >= record_.chunk_map.chunks.size()) break;
    (void)Prefetch(next);
  }
  for (const CachedChunk& c : cache_) {
    if (c.index == index) return &c.data;
  }
  return InternalError("prefetched chunk evicted before use");
}

Result<std::size_t> ReadSession::ReadAt(std::uint64_t offset,
                                        MutableByteSpan out) {
  if (offset >= record_.size || out.empty()) return std::size_t{0};

  std::size_t written = 0;
  const auto& chunks = record_.chunk_map.chunks;
  // Chunks are ordered by file_offset; binary-search the starting chunk.
  std::size_t lo = 0, hi = chunks.size();
  while (lo + 1 < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (chunks[mid].file_offset <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  std::uint64_t pos = offset;
  for (std::size_t i = lo; i < chunks.size() && written < out.size(); ++i) {
    const ChunkLocation& c = chunks[i];
    if (pos < c.file_offset) break;  // hole (should not happen)
    if (pos >= c.file_offset + c.size) continue;

    bool was_cached = false;
    for (const CachedChunk& cc : cache_) {
      if (cc.index == i) {
        was_cached = true;
        break;
      }
    }
    STDCHK_ASSIGN_OR_RETURN(const Bytes* data, ChunkData(i));
    if (was_cached) ++cache_hits_;

    std::uint64_t chunk_off = pos - c.file_offset;
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(c.size - chunk_off, out.size() - written));
    std::memcpy(out.data() + written, data->data() + chunk_off, n);
    written += n;
    pos += n;
  }
  return written;
}

Result<Bytes> ReadSession::ReadAll() {
  Bytes out(record_.size);
  std::uint64_t offset = 0;
  while (offset < record_.size) {
    STDCHK_ASSIGN_OR_RETURN(
        std::size_t n,
        ReadAt(offset, MutableByteSpan(out.data() + offset,
                                       out.size() - offset)));
    if (n == 0) return DataLossError("short read at offset " +
                                     std::to_string(offset));
    offset += n;
  }
  return out;
}

}  // namespace stdchk
