// Client-side configuration: write protocol, semantics, striping.
#pragma once

#include <cstddef>
#include <memory>

#include "chkpt/chunker.h"
#include "chunk/chunk.h"

namespace stdchk {

// The three write-optimized paths of §IV.B. Functionally they produce the
// same committed file; they differ in when data leaves the client:
//   CLW buffers the whole file locally and pushes at close();
//   IW  pushes each temp-file-sized increment as it completes;
//   SW  pushes each chunk as soon as it is produced (no local spill).
enum class WriteProtocol { kCompleteLocal, kIncremental, kSlidingWindow };

// §IV.A "tunable write semantics": pessimistic writes return only after the
// replication target is met; optimistic writes return after the first
// replica persists and let background replication catch up.
enum class WriteSemantics { kOptimistic, kPessimistic };

// Erasure-coded redundancy (paper §IV.A's rejected alternative, promoted to
// a live choice now the GF(256) kernels run at data-path speed): each
// committed chunk is encoded into k data + m parity shards striped across
// k+m distinct benefactors. Storage overhead is (k+m)/k (e.g. 1.5x for
// RS(4,2)) instead of replication's 2-3x, and any m benefactor deaths stay
// survivable — reads reconstruct from any k live shards. k == 0 disables
// erasure coding (replication mode).
struct ErasureCoded {
  int k = 0;
  int m = 0;

  bool enabled() const { return k > 0 && m > 0; }
};

struct ClientOptions {
  int stripe_width = 4;
  std::size_t chunk_size = kDefaultChunkSize;
  WriteProtocol protocol = WriteProtocol::kSlidingWindow;
  WriteSemantics semantics = WriteSemantics::kOptimistic;

  // IW temp-file size (bytes of application data per increment).
  std::size_t increment_size = 64_MiB;

  // Chunk-boundary heuristic driving the write path's ChunkPlanner. Null
  // selects FsCH at `chunk_size`; inject a ContentBasedChunker for CbCH
  // (shift-resilient) boundaries on the streaming write path (§IV.C).
  std::shared_ptr<const Chunker> chunker;

  // Incremental checkpointing: compare-by-hash against the manager's chunk
  // index so chunks the system already stores are referenced, not
  // re-transferred. Applies to whichever `chunker` is active (the paper's
  // prototype integrates FsCH with chunker == transfer chunk size).
  bool incremental_fsch = false;

  // Upper bound on chunks coalesced into one batched multi-chunk PUT by
  // the uploader's per-benefactor queues. 0 = unbounded.
  std::size_t max_batch_chunks = 64;

  // Stamp each staged chunk's slice with the digest computed at naming
  // time, so in-process verification hops (benefactor put admission,
  // memory-store read integrity) compare digests instead of re-hashing —
  // each byte is hashed once end to end. Slices that cross a
  // re-materializing boundary (disk store, a real wire) lose the stamp and
  // are re-hashed there regardless. Disable only to emulate the
  // re-hash-per-hop data path (bench baselines).
  bool stamp_chunk_digests = true;

  // Threads used to SHA-1-name the chunks of each drain generation
  // (including the session's own thread). Drain slices are immutable and
  // independent, so naming parallelizes safely; results are reassembled in
  // plan order, making the committed chunk map byte-identical for every
  // setting. 0 = hardware concurrency; 1 = today's serial path, bit for
  // bit (the shared HashPool is never touched).
  int hash_workers = 0;

  // Decentralized placement (epoch-versioned table): the proxy caches the
  // manager's placement table and each write computes its stripe locally,
  // reserving at the cached epoch; the manager is consulted only when the
  // epoch goes stale. Off by default: the legacy path asks the manager to
  // pick every stripe (server-side SelectStripe), preserving its exact
  // free-space-aware placement byte for byte.
  bool decentralized_placement = false;

  // Replicas required at close() for pessimistic writes; also recorded as
  // the version's replication target (0 = inherit the folder policy).
  int replication_target = 0;

  // Erasure-coded mode: when enabled, the uploader encodes every committed
  // chunk into erasure.k + erasure.m shards on distinct benefactors instead
  // of whole replicas (replication_target is ignored — durability comes
  // from parity). Requires a stripe of at least k+m benefactors; the write
  // session widens stripe_width to k+m automatically.
  ErasureCoded erasure;

  // Per-write eager space reservation granularity (§IV.A incremental
  // allocation).
  std::size_t reservation_extent = 256_MiB;

  // Read path: chunks prefetched ahead of the reader's position. The read
  // engine keeps up to read_ahead_chunks + 1 chunk fetches in flight
  // (demand chunk + read-ahead window), overlapped across benefactors.
  int read_ahead_chunks = 2;

  // Byte budget for the read-ahead cache. Chunks already consumed (or no
  // longer in the active window) are evicted oldest-first once the cache
  // exceeds this; chunks the current window still needs are never evicted,
  // so a budget smaller than the window degrades to window-sized caching
  // rather than thrashing. 0 = unbounded.
  std::size_t read_cache_budget_bytes = 64_MiB;
};

}  // namespace stdchk
