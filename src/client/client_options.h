// Client-side configuration: write protocol, semantics, striping.
#pragma once

#include <cstddef>

#include "chunk/chunk.h"

namespace stdchk {

// The three write-optimized paths of §IV.B. Functionally they produce the
// same committed file; they differ in when data leaves the client:
//   CLW buffers the whole file locally and pushes at close();
//   IW  pushes each temp-file-sized increment as it completes;
//   SW  pushes each chunk as soon as it is produced (no local spill).
enum class WriteProtocol { kCompleteLocal, kIncremental, kSlidingWindow };

// §IV.A "tunable write semantics": pessimistic writes return only after the
// replication target is met; optimistic writes return after the first
// replica persists and let background replication catch up.
enum class WriteSemantics { kOptimistic, kPessimistic };

struct ClientOptions {
  int stripe_width = 4;
  std::size_t chunk_size = kDefaultChunkSize;
  WriteProtocol protocol = WriteProtocol::kSlidingWindow;
  WriteSemantics semantics = WriteSemantics::kOptimistic;

  // IW temp-file size (bytes of application data per increment).
  std::size_t increment_size = 64_MiB;

  // Incremental checkpointing: skip uploading chunks the system already
  // stores (FsCH with chunker == transfer chunk size, as the prototype in
  // the paper integrates).
  bool incremental_fsch = false;

  // Replicas required at close() for pessimistic writes; also recorded as
  // the version's replication target (0 = inherit the folder policy).
  int replication_target = 0;

  // Per-write eager space reservation granularity (§IV.A incremental
  // allocation).
  std::size_t reservation_extent = 256_MiB;

  // Read path: chunks prefetched ahead of the reader's position.
  int read_ahead_chunks = 2;
};

}  // namespace stdchk
