#include "client/commit_coordinator.h"

#include <algorithm>
#include <utility>

namespace stdchk {

CommitCoordinator::CommitCoordinator(MetadataManager* manager,
                                     Transport* transport,
                                     CheckpointName name,
                                     const ClientOptions& options,
                                     WriteStats* stats,
                                     PlacementTableCache* table_cache)
    : manager_(manager),
      transport_(transport),
      name_(std::move(name)),
      options_(options),
      stats_(stats),
      table_cache_(table_cache) {}

Status CommitCoordinator::ReserveDecentralized(std::uint64_t bytes) {
  // publish → cache → compute → reserve-at-epoch. A stale-epoch rejection
  // invalidates the cache and retries with a fresh table; membership can
  // keep churning under us, so bound the retries.
  Status last = InternalError("placement retry loop did not run");
  for (int attempt = 0; attempt < 3; ++attempt) {
    bool fetched = false;
    auto table = table_cache_->Get(&fetched);
    if (!table.ok()) return table.status();
    if (fetched) ++stats_->placement_table_fetches;

    auto stripe =
        ComputeStripe(table.value(), options_.stripe_width,
                      PlacementSeed(name_));
    if (!stripe.ok()) {
      // Not enough members in the cached table; a node may have joined
      // since — refetch once rather than failing a placeable write.
      table_cache_->Invalidate();
      last = stripe.status();
      continue;
    }

    auto reserved =
        manager_->ReserveStripeAt(table.value().epoch, stripe.value(), bytes);
    if (reserved.ok()) {
      reservation_ = std::move(reserved.value());
      have_reservation_ = true;
      reserved_remaining_ = reservation_.reserved_bytes;
      placed_epoch_ = table.value().epoch;
      ++stats_->local_placements;
      return OkStatus();
    }
    if (reserved.status().code() == StatusCode::kFailedPrecondition) {
      ++stats_->placement_epoch_mismatches;
      table_cache_->Invalidate();
      last = reserved.status();
      continue;
    }
    return reserved.status();
  }
  return last;
}

Status CommitCoordinator::EnsureReservation(std::uint64_t upcoming) {
  if (!have_reservation_) {
    std::uint64_t bytes =
        std::max<std::uint64_t>(upcoming, options_.reservation_extent);
    if (table_cache_ != nullptr) return ReserveDecentralized(bytes);
    STDCHK_ASSIGN_OR_RETURN(reservation_,
                            manager_->ReserveStripe(options_.stripe_width,
                                                    bytes));
    have_reservation_ = true;
    reserved_remaining_ = reservation_.reserved_bytes;
    return OkStatus();
  }
  if (upcoming > reserved_remaining_) {
    // Incremental space allocation: extend the eager reservation (§IV.A).
    std::uint64_t extent =
        std::max<std::uint64_t>(upcoming, options_.reservation_extent);
    STDCHK_RETURN_IF_ERROR(
        manager_->ExtendReservation(reservation_.id, extent));
    reserved_remaining_ += extent;
  }
  return OkStatus();
}

void CommitCoordinator::ConsumeReserved(std::uint64_t bytes) {
  reserved_remaining_ =
      reserved_remaining_ > bytes ? reserved_remaining_ - bytes : 0;
}

Result<NodeId> CommitCoordinator::ReplaceStripeMember(NodeId dead) {
  if (!have_reservation_) {
    return FailedPreconditionError("no reservation to repair");
  }
  STDCHK_ASSIGN_OR_RETURN(
      NodeId fresh, manager_->ReplaceReservationNode(reservation_.id, dead));
  std::replace(reservation_.stripe.begin(), reservation_.stripe.end(), dead,
               fresh);
  return fresh;
}

std::size_t CommitCoordinator::AddSlot(const ChunkId& id, std::uint32_t size) {
  ChunkLocation loc;
  loc.id = id;
  loc.file_offset = file_offset_;
  loc.size = size;
  file_offset_ += size;
  map_.chunks.push_back(std::move(loc));
  slot_reused_.push_back(false);
  return map_.chunks.size() - 1;
}

void CommitCoordinator::SetReplicas(std::size_t slot,
                                    std::vector<NodeId> replicas) {
  map_.chunks[slot].replicas = std::move(replicas);
}

void CommitCoordinator::SetShards(std::size_t slot, int k, int m,
                                  std::vector<ShardLocation> shards) {
  ChunkLocation& loc = map_.chunks[slot];
  loc.ec_k = static_cast<std::uint16_t>(k);
  loc.ec_m = static_cast<std::uint16_t>(m);
  loc.shards = std::move(shards);
}

std::vector<std::vector<NodeId>> CommitCoordinator::LocateReusable(
    const std::vector<ChunkId>& ids) {
  std::vector<std::vector<NodeId>> out(ids.size());
  auto known = manager_->FilterKnownChunks(ids);
  if (!known.ok()) return out;  // best effort: upload everything
  std::vector<ChunkId> hits;
  std::vector<std::size_t> hit_slots;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (known.value()[i]) {
      hits.push_back(ids[i]);
      hit_slots.push_back(i);
    }
  }
  if (hits.empty()) return out;
  auto located = manager_->LocateChunks(hits);
  if (!located.ok()) return out;  // best effort again
  for (std::size_t j = 0; j < hits.size(); ++j) {
    // A known chunk with no live replica (raced with a purge) stays novel.
    out[hit_slots[j]] = std::move(located.value()[j]);
  }
  return out;
}

void CommitCoordinator::ReuseExisting(const ChunkId& id, std::uint32_t size,
                                      std::vector<NodeId> replicas) {
  std::size_t slot = AddSlot(id, size);
  SetReplicas(slot, std::move(replicas));
  slot_reused_[slot] = true;
  ++stats_->chunks_deduplicated;
  stats_->bytes_deduplicated += size;
}

Result<CloseOutcome> CommitCoordinator::Commit() {
  VersionRecord record;
  record.name = name_;
  record.chunk_map = map_;
  record.size = file_offset_;
  record.replication_target = options_.replication_target;

  // placed_epoch_ 0 (legacy path, or nothing was placed) skips the
  // manager's epoch validation; otherwise a membership change since
  // placement is caught here — the last line of defense against
  // committing onto a departed benefactor.
  Status commit = manager_->CommitVersionAt(
      have_reservation_ ? reservation_.id : 0, record, placed_epoch_);
  if (commit.ok()) {
    have_reservation_ = false;  // commit released it
    return CloseOutcome::kCommitted;
  }

  if (commit.code() == StatusCode::kUnavailable) {
    // Manager down: stash the final chunk map on the write stripe so the
    // benefactors can recover the version when the manager returns (§IV.A).
    STDCHK_RETURN_IF_ERROR(StashOnStripe(record));
    return CloseOutcome::kStashedForRecovery;
  }
  // Terminal commit failure (e.g. the version was committed by another
  // producer): the session is over — release the reservation so GC can
  // reclaim the orphaned chunks promptly.
  ReleaseReservation();
  return commit;
}

Status CommitCoordinator::StashOnStripe(const VersionRecord& record) {
  if (!have_reservation_) {
    return FailedPreconditionError("no stripe to stash on (empty write)");
  }
  std::size_t stashed = 0;
  for (NodeId node : reservation_.stripe) {
    if (transport_->StashChunkMap(node, record,
                               static_cast<int>(reservation_.stripe.size()))
            .ok()) {
      ++stashed;
    }
  }
  if (stashed == 0) {
    return UnavailableError("could not stash chunk map on any benefactor");
  }
  return OkStatus();
}

void CommitCoordinator::ReleaseReservation() {
  if (!have_reservation_) return;
  (void)manager_->ReleaseReservation(reservation_.id);
  have_reservation_ = false;
}

}  // namespace stdchk
