// Layer 3 of the staged write engine: moving sealed chunks to benefactors.
//
// Staged chunks accumulate in an ordered pending set; Flush() drains them
// through per-benefactor queues as batched multi-chunk PUTs, submitted
// through the async transport so every target node (and every batch slice)
// is in flight simultaneously — the drain's wall time is the slowest link,
// not the sum of links. The three §IV.B protocols differ only in when they
// call Flush(): SW after every sealed chunk, IW once per completed
// increment, CLW once at close. Failover re-routes a rejected batch
// wholesale: the dead stripe member is swapped for a fresh donor
// (CommitCoordinator::ReplaceStripeMember) and the affected chunks walk on
// to their next placement candidates.
// In erasure-coded mode (ClientOptions::erasure) a flush instead encodes
// each pending chunk into k data-shard views + m parity shards (GF(256)
// SIMD kernels, parity rows fanned across the shared HashPool), names every
// shard by its own content hash, and stripes the k+m shards across distinct
// stripe members — same per-node batching and dead-member failover, but the
// placement unit is the shard and "distinct" is enforced per group (one
// death must cost at most one shard). All k+m shards must land or the flush
// fails: parity is the durability, so there is no optimistic shortfall.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "client/chunk_planner.h"
#include "client/client_options.h"
#include "client/commit_coordinator.h"
#include "client/placement.h"
#include "client/transport.h"
#include "client/write_stats.h"
#include "common/status.h"
#include "erasure/reed_solomon.h"

namespace stdchk {

class ChunkUploader {
 public:
  ChunkUploader(Transport* transport, PlacementPolicy* placement,
                CommitCoordinator* coordinator, const ClientOptions& options,
                WriteStats* stats);

  // Queues one sealed chunk for upload. Its chunk-map slot is claimed
  // immediately (map order == staging order == file order); the replicas
  // are filled in when a flush lands it.
  void Stage(StagedChunk chunk);

  // Drains every pending chunk. Optimistic semantics need one replica per
  // chunk; pessimistic need the full replication target or the flush
  // fails (§IV.A tunable write semantics).
  Status Flush();

  std::uint64_t pending_bytes() const { return pending_bytes_; }
  std::size_t pending_chunks() const { return pending_.size(); }

 private:
  struct Pending {
    StagedChunk chunk;
    std::size_t map_slot = 0;
    std::vector<NodeId> candidates;  // remaining placement walk
    std::vector<NodeId> replicas;    // nodes that accepted the chunk
  };

  int replicas_needed() const;
  // The erasure-coded drain: encode, name, and stripe shards. All-or-
  // nothing per call — a failed flush settles nothing and a retry re-encodes
  // (shard puts are content-addressed, so re-sending an already-stored
  // shard is an idempotent no-op at the benefactor).
  Status FlushErasure();

  Transport* transport_;
  PlacementPolicy* placement_;
  CommitCoordinator* coordinator_;
  const ClientOptions& options_;
  WriteStats* stats_;

  std::deque<Pending> pending_;
  std::uint64_t pending_bytes_ = 0;
  // Codec for ClientOptions::erasure, built on the first erasure flush.
  std::optional<ReedSolomon> rs_;
};

}  // namespace stdchk
