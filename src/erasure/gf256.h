// GF(2^8) arithmetic for Reed-Solomon erasure coding.
//
// The paper (§IV.A) weighs erasure coding against replication and picks
// replication for its lower computational cost. This module provides the
// real arithmetic so that tradeoff can be measured rather than asserted
// (see bench_ablation_erasure).
//
// Field: GF(256) with the conventional primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2.
#pragma once

#include <array>
#include <cstdint>

namespace stdchk::gf256 {

// Addition/subtraction in GF(2^8) is XOR.
inline std::uint8_t Add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

namespace internal {
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod-255
  Tables();
};
const Tables& GetTables();
}  // namespace internal

inline std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

// b must be non-zero.
std::uint8_t Div(std::uint8_t a, std::uint8_t b);

// a must be non-zero.
std::uint8_t Inv(std::uint8_t a);

// generator^e
std::uint8_t Exp(unsigned e);

// Multiply-accumulate over a buffer: dst[i] ^= c * src[i]. The hot loop of
// RS encoding/decoding.
void MulAccum(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n);

}  // namespace stdchk::gf256
