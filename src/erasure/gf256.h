// GF(2^8) arithmetic for Reed-Solomon erasure coding.
//
// The paper (§IV.A) weighs erasure coding against replication and picks
// replication for its lower computational cost. This module provides the
// real arithmetic so that tradeoff can be measured rather than asserted
// (see bench_ablation_erasure).
//
// Field: GF(256) with the conventional primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 2.
//
// The hot loop, MulAccum, is a runtime-dispatched kernel family mirroring
// the SHA-1 compressor (Sha1ForceImpl): a scalar log/exp loop kept as the
// differential oracle, plus PSHUFB split-table kernels — each coefficient c
// gets two 16-entry tables (products of c with the low and high nibble of
// every byte), so one shuffle per table turns 16 (SSSE3) or 32 (AVX2) byte
// multiplies into two table lookups and a XOR. Arbitrary src/dst alignment
// and length are handled with unaligned vector loads plus a scalar tail.
#pragma once

#include <array>
#include <cstdint>

namespace stdchk::gf256 {

// Addition/subtraction in GF(2^8) is XOR.
inline std::uint8_t Add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

namespace internal {
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod-255
  Tables();
};
const Tables& GetTables();
}  // namespace internal

inline std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

// b must be non-zero.
std::uint8_t Div(std::uint8_t a, std::uint8_t b);

// a must be non-zero.
std::uint8_t Inv(std::uint8_t a);

// generator^e
std::uint8_t Exp(unsigned e);

// Which kernel backs MulAccum. kAuto picks the widest the CPU supports
// (AVX2, else SSSE3, else scalar). kScalar is the original
// table-lookup-per-byte loop, kept as the differential-testing oracle and
// as the bench baseline the SIMD speedup is measured against.
enum class Gf256Impl { kAuto, kScalar, kSsse3, kAvx2 };

// The implementation kAuto resolves to right now.
Gf256Impl Gf256ActiveImpl();

// Forces an implementation (benches compare, tests cross-check). Requesting
// a kernel the CPU cannot run falls back to the widest supported one
// (kAvx2 -> kSsse3 -> kScalar); kAuto restores runtime detection.
void Gf256ForceImpl(Gf256Impl impl);

// Multiply-accumulate over a buffer: dst[i] ^= c * src[i]. The hot loop of
// RS encoding/decoding. src and dst must not overlap unless equal.
void MulAccum(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n);

}  // namespace stdchk::gf256
