#include "erasure/reed_solomon.h"

#include <algorithm>

#include "erasure/gf256.h"

namespace stdchk {
namespace {

// Invert a square matrix over GF(256) by Gauss-Jordan elimination.
// Returns false if singular (cannot happen for Cauchy submatrices, but the
// check guards against misuse).
bool InvertMatrix(std::vector<std::vector<std::uint8_t>>& a) {
  const std::size_t n = a.size();
  std::vector<std::vector<std::uint8_t>> inv(
      n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return false;
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);

    // Normalize the pivot row.
    std::uint8_t inv_p = gf256::Inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = gf256::Mul(a[col][j], inv_p);
      inv[col][j] = gf256::Mul(inv[col][j], inv_p);
    }
    // Eliminate the column elsewhere.
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      std::uint8_t c = a[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] = gf256::Add(a[row][j], gf256::Mul(c, a[col][j]));
        inv[row][j] = gf256::Add(inv[row][j], gf256::Mul(c, inv[col][j]));
      }
    }
  }
  a = std::move(inv);
  return true;
}

}  // namespace

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  // Systematic matrix: identity on top, Cauchy rows below.
  // Cauchy: parity row i, data col j -> 1 / (x_i + y_j) with
  // x_i = i + k (i in [0,m)), y_j = j (j in [0,k)); all x_i != y_j so the
  // entries are defined and every k x k submatrix is invertible.
  matrix_.assign(static_cast<std::size_t>(k + m),
                 std::vector<std::uint8_t>(static_cast<std::size_t>(k), 0));
  for (int i = 0; i < k; ++i) {
    matrix_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      std::uint8_t x = static_cast<std::uint8_t>(i + k);
      std::uint8_t y = static_cast<std::uint8_t>(j);
      matrix_[static_cast<std::size_t>(k + i)][static_cast<std::size_t>(j)] =
          gf256::Inv(gf256::Add(x, y));
    }
  }
}

Result<ReedSolomon> ReedSolomon::Create(int data_shards, int parity_shards) {
  if (data_shards < 1 || parity_shards < 1) {
    return InvalidArgumentError("need at least 1 data and 1 parity shard");
  }
  if (data_shards + parity_shards > 255) {
    return InvalidArgumentError("k + m must be <= 255 over GF(256)");
  }
  return ReedSolomon(data_shards, parity_shards);
}

Result<std::vector<Bytes>> ReedSolomon::EncodeParity(
    const std::vector<Bytes>& data_shards) const {
  if (static_cast<int>(data_shards.size()) != k_) {
    return InvalidArgumentError("expected exactly k data shards");
  }
  const std::size_t shard_size = data_shards[0].size();
  for (const Bytes& shard : data_shards) {
    if (shard.size() != shard_size) {
      return InvalidArgumentError("data shards must have equal size");
    }
  }

  std::vector<Bytes> parity(static_cast<std::size_t>(m_),
                            Bytes(shard_size, 0));
  for (int i = 0; i < m_; ++i) {
    const std::vector<std::uint8_t>& row = Row(k_ + i);
    for (int j = 0; j < k_; ++j) {
      gf256::MulAccum(row[static_cast<std::size_t>(j)],
                      data_shards[static_cast<std::size_t>(j)].data(),
                      parity[static_cast<std::size_t>(i)].data(), shard_size);
    }
  }
  return parity;
}

std::vector<Bytes> ReedSolomon::EncodeBlock(ByteSpan data) const {
  const std::size_t shard_size =
      (data.size() + static_cast<std::size_t>(k_) - 1) /
      static_cast<std::size_t>(k_);
  std::vector<Bytes> shards;
  shards.reserve(static_cast<std::size_t>(k_ + m_));
  for (int i = 0; i < k_; ++i) {
    Bytes shard(shard_size, 0);
    std::size_t offset = static_cast<std::size_t>(i) * shard_size;
    if (offset < data.size()) {
      std::size_t n = std::min(shard_size, data.size() - offset);
      std::copy_n(data.data() + offset, n, shard.data());
    }
    shards.push_back(std::move(shard));
  }
  auto parity = EncodeParity(shards);
  for (Bytes& p : parity.value()) shards.push_back(std::move(p));
  return shards;
}

Status ReedSolomon::Reconstruct(
    std::vector<std::optional<Bytes>>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) {
    return InvalidArgumentError("expected k+m shard slots");
  }
  std::vector<int> present;
  std::size_t shard_size = 0;
  for (int i = 0; i < k_ + m_; ++i) {
    if (shards[static_cast<std::size_t>(i)].has_value()) {
      present.push_back(i);
      shard_size = shards[static_cast<std::size_t>(i)]->size();
    }
  }
  if (static_cast<int>(present.size()) < k_) {
    return DataLossError("only " + std::to_string(present.size()) +
                         " of the required " + std::to_string(k_) +
                         " shards survive");
  }
  bool any_missing = false;
  for (const auto& shard : shards) {
    if (!shard.has_value()) {
      any_missing = true;
    } else if (shard->size() != shard_size) {
      return InvalidArgumentError("surviving shards differ in size");
    }
  }
  if (!any_missing) return OkStatus();

  // Build the k x k matrix of the first k surviving rows and invert it:
  // decode_matrix * [surviving shards] = [data shards].
  std::vector<std::vector<std::uint8_t>> sub;
  std::vector<int> used(present.begin(), present.begin() + k_);
  for (int r : used) sub.push_back(Row(r));
  if (!InvertMatrix(sub)) {
    return InternalError("Cauchy submatrix unexpectedly singular");
  }

  // Recover the data shards first.
  std::vector<Bytes> data(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    if (shards[static_cast<std::size_t>(i)].has_value()) {
      data[static_cast<std::size_t>(i)] = *shards[static_cast<std::size_t>(i)];
      continue;
    }
    Bytes out(shard_size, 0);
    for (int j = 0; j < k_; ++j) {
      gf256::MulAccum(sub[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                      shards[static_cast<std::size_t>(used[static_cast<std::size_t>(j)])]->data(),
                      out.data(), shard_size);
    }
    data[static_cast<std::size_t>(i)] = std::move(out);
  }
  for (int i = 0; i < k_; ++i) {
    if (!shards[static_cast<std::size_t>(i)].has_value()) {
      shards[static_cast<std::size_t>(i)] = data[static_cast<std::size_t>(i)];
    }
  }

  // Re-encode any missing parity shards from the recovered data.
  for (int i = 0; i < m_; ++i) {
    std::size_t idx = static_cast<std::size_t>(k_ + i);
    if (shards[idx].has_value()) continue;
    Bytes out(shard_size, 0);
    const std::vector<std::uint8_t>& row = Row(k_ + i);
    for (int j = 0; j < k_; ++j) {
      gf256::MulAccum(row[static_cast<std::size_t>(j)],
                      data[static_cast<std::size_t>(j)].data(), out.data(),
                      shard_size);
    }
    shards[idx] = std::move(out);
  }
  return OkStatus();
}

Result<Bytes> ReedSolomon::DecodeBlock(std::vector<std::optional<Bytes>> shards,
                                       std::size_t data_size) const {
  STDCHK_RETURN_IF_ERROR(Reconstruct(shards));
  Bytes out;
  out.reserve(data_size);
  for (int i = 0; i < k_ && out.size() < data_size; ++i) {
    const Bytes& shard = *shards[static_cast<std::size_t>(i)];
    std::size_t n = std::min(shard.size(), data_size - out.size());
    out.insert(out.end(), shard.begin(),
               shard.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (out.size() != data_size) {
    return InvalidArgumentError("data_size exceeds encoded payload");
  }
  return out;
}

}  // namespace stdchk
