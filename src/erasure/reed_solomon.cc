#include "erasure/reed_solomon.h"

#include <algorithm>

#include "common/buffer.h"
#include "common/hash_pool.h"
#include "erasure/gf256.h"

namespace stdchk {
namespace {

// Invert a square matrix over GF(256) by Gauss-Jordan elimination.
// Returns false if singular (cannot happen for Cauchy submatrices, but the
// check guards against misuse).
bool InvertMatrix(std::vector<std::vector<std::uint8_t>>& a) {
  const std::size_t n = a.size();
  std::vector<std::vector<std::uint8_t>> inv(
      n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return false;
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);

    // Normalize the pivot row.
    std::uint8_t inv_p = gf256::Inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = gf256::Mul(a[col][j], inv_p);
      inv[col][j] = gf256::Mul(inv[col][j], inv_p);
    }
    // Eliminate the column elsewhere.
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      std::uint8_t c = a[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] = gf256::Add(a[row][j], gf256::Mul(c, a[col][j]));
        inv[row][j] = gf256::Add(inv[row][j], gf256::Mul(c, inv[col][j]));
      }
    }
  }
  a = std::move(inv);
  return true;
}

}  // namespace

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  // Systematic matrix: identity on top, Cauchy rows below.
  // Cauchy: parity row i, data col j -> 1 / (x_i + y_j) with
  // x_i = i + k (i in [0,m)), y_j = j (j in [0,k)); all x_i != y_j so the
  // entries are defined and every k x k submatrix is invertible.
  matrix_.assign(static_cast<std::size_t>(k + m),
                 std::vector<std::uint8_t>(static_cast<std::size_t>(k), 0));
  for (int i = 0; i < k; ++i) {
    matrix_[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1;
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) {
      std::uint8_t x = static_cast<std::uint8_t>(i + k);
      std::uint8_t y = static_cast<std::uint8_t>(j);
      matrix_[static_cast<std::size_t>(k + i)][static_cast<std::size_t>(j)] =
          gf256::Inv(gf256::Add(x, y));
    }
  }
}

Result<ReedSolomon> ReedSolomon::Create(int data_shards, int parity_shards) {
  if (data_shards < 1 || parity_shards < 1) {
    return InvalidArgumentError("need at least 1 data and 1 parity shard");
  }
  if (data_shards + parity_shards > 255) {
    return InvalidArgumentError("k + m must be <= 255 over GF(256)");
  }
  return ReedSolomon(data_shards, parity_shards);
}

Result<std::vector<Bytes>> ReedSolomon::EncodeParity(
    const std::vector<Bytes>& data_shards) const {
  if (static_cast<int>(data_shards.size()) != k_) {
    return InvalidArgumentError("expected exactly k data shards");
  }
  const std::size_t shard_size = data_shards[0].size();
  std::vector<ByteSpan> views;
  views.reserve(data_shards.size());
  for (const Bytes& shard : data_shards) {
    if (shard.size() != shard_size) {
      return InvalidArgumentError("data shards must have equal size");
    }
    views.emplace_back(shard.data(), shard.size());
  }
  return EncodeParity(views, shard_size);
}

Result<std::vector<Bytes>> ReedSolomon::EncodeParity(
    const std::vector<ByteSpan>& data_shards, std::size_t shard_size,
    HashPool* pool, int max_workers) const {
  if (static_cast<int>(data_shards.size()) != k_) {
    return InvalidArgumentError("expected exactly k data shards");
  }
  for (ByteSpan shard : data_shards) {
    if (shard.size() > shard_size) {
      return InvalidArgumentError("data shard view exceeds the shard size");
    }
  }

  std::vector<Bytes> parity(static_cast<std::size_t>(m_),
                            Bytes(shard_size, 0));
  auto encode_row = [&](std::size_t i) {
    const std::vector<std::uint8_t>& row = Row(k_ + static_cast<int>(i));
    for (int j = 0; j < k_; ++j) {
      ByteSpan shard = data_shards[static_cast<std::size_t>(j)];
      // Shorter views are virtually zero-padded: the tail contributes
      // nothing, so the accumulate simply stops at the view's end.
      if (shard.empty()) continue;
      gf256::MulAccum(row[static_cast<std::size_t>(j)], shard.data(),
                      parity[i].data(), shard.size());
    }
  };
  if (pool != nullptr && m_ > 1 && max_workers != 1) {
    pool->ParallelFor(static_cast<std::size_t>(m_), max_workers, encode_row);
  } else {
    for (int i = 0; i < m_; ++i) encode_row(static_cast<std::size_t>(i));
  }
  return parity;
}

std::vector<Bytes> ReedSolomon::EncodeBlock(ByteSpan data) const {
  const std::size_t shard_size =
      (data.size() + static_cast<std::size_t>(k_) - 1) /
      static_cast<std::size_t>(k_);
  // Parity encodes straight from views of `data`; the padded data-shard
  // copies below exist only because this convenience returns owned shards.
  std::vector<ByteSpan> views;
  views.reserve(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    std::size_t offset = static_cast<std::size_t>(i) * shard_size;
    std::size_t n =
        offset < data.size() ? std::min(shard_size, data.size() - offset) : 0;
    views.emplace_back(data.data() + offset, n);
  }
  auto parity = EncodeParity(views, shard_size);

  std::vector<Bytes> shards;
  shards.reserve(static_cast<std::size_t>(k_ + m_));
  for (int i = 0; i < k_; ++i) {
    Bytes shard(shard_size, 0);
    ByteSpan view = views[static_cast<std::size_t>(i)];
    std::copy_n(view.data(), view.size(), shard.data());
    copy_stats::RecordCopy(view.size());
    shards.push_back(std::move(shard));
  }
  for (Bytes& p : parity.value()) shards.push_back(std::move(p));
  return shards;
}

Status ReedSolomon::RecoverShards(
    const std::vector<std::optional<ByteSpan>>& shards, std::size_t shard_size,
    const std::vector<int>& want,
    const std::vector<MutableByteSpan>& out) const {
  const std::size_t total = static_cast<std::size_t>(k_ + m_);
  if (shards.size() != total) {
    return InvalidArgumentError("expected k+m shard slots");
  }
  if (want.size() != out.size()) {
    return InvalidArgumentError("want/out must be parallel");
  }
  bool parity_wanted = false;
  for (std::size_t w = 0; w < want.size(); ++w) {
    if (want[w] < 0 || want[w] >= k_ + m_) {
      return InvalidArgumentError("wanted shard index out of range");
    }
    if (out[w].size() > shard_size) {
      return InvalidArgumentError("output buffer exceeds the shard size");
    }
    if (want[w] >= k_) parity_wanted = true;
  }
  if (parity_wanted) {
    // Parity rows read whole data shards; a prefix-only data output would
    // feed them a silently truncated shard.
    for (std::size_t w = 0; w < want.size(); ++w) {
      if (out[w].size() != shard_size) {
        return InvalidArgumentError(
            "parity recovery requires full-size output buffers");
      }
    }
  }

  std::vector<int> present;
  for (std::size_t i = 0; i < total; ++i) {
    if (!shards[i].has_value()) continue;
    if (shards[i]->size() > shard_size) {
      return InvalidArgumentError("surviving shard view exceeds shard size");
    }
    present.push_back(static_cast<int>(i));
  }
  if (static_cast<int>(present.size()) < k_) {
    return DataLossError("only " + std::to_string(present.size()) +
                         " of the required " + std::to_string(k_) +
                         " shards survive");
  }

  // Decode matrix from the first k survivors:
  // data shard d = sum_j sub[d][j] * shards[used[j]].
  std::vector<int> used(present.begin(), present.begin() + k_);
  std::vector<std::vector<std::uint8_t>> sub;
  for (int r : used) sub.push_back(Row(r));
  if (!InvertMatrix(sub)) {
    return InternalError("Cauchy submatrix unexpectedly singular");
  }

  for (MutableByteSpan o : out) std::fill(o.begin(), o.end(), 0);

  // Decodes data shard `d` into `into` (a prefix suffices: byte i of the
  // output depends only on byte i of each survivor).
  auto decode_data = [&](int d, MutableByteSpan into) {
    for (int j = 0; j < k_; ++j) {
      ByteSpan s = *shards[static_cast<std::size_t>(used[static_cast<std::size_t>(j)])];
      std::size_t n = std::min(s.size(), into.size());
      if (n == 0) continue;
      gf256::MulAccum(sub[static_cast<std::size_t>(d)][static_cast<std::size_t>(j)],
                      s.data(), into.data(), n);
    }
  };

  // Full-width views of every data shard, needed only when parity is
  // wanted; missing ones decode into scratch.
  std::vector<ByteSpan> data_views(static_cast<std::size_t>(k_));
  std::vector<Bytes> scratch;
  if (parity_wanted) {
    scratch.reserve(static_cast<std::size_t>(k_));
    for (int j = 0; j < k_; ++j) {
      if (shards[static_cast<std::size_t>(j)].has_value()) {
        data_views[static_cast<std::size_t>(j)] =
            *shards[static_cast<std::size_t>(j)];
      } else {
        scratch.emplace_back(shard_size, 0);
        decode_data(j, MutableByteSpan(scratch.back()));
        data_views[static_cast<std::size_t>(j)] = ByteSpan(scratch.back());
      }
    }
  }

  for (std::size_t w = 0; w < want.size(); ++w) {
    int idx = want[w];
    if (idx < k_) {
      if (shards[static_cast<std::size_t>(idx)].has_value()) {
        ByteSpan s = *shards[static_cast<std::size_t>(idx)];
        std::copy_n(s.data(), std::min(s.size(), out[w].size()),
                    out[w].data());
      } else {
        decode_data(idx, out[w]);
      }
      continue;
    }
    const std::vector<std::uint8_t>& row = Row(idx);
    for (int j = 0; j < k_; ++j) {
      ByteSpan s = data_views[static_cast<std::size_t>(j)];
      if (s.empty()) continue;
      gf256::MulAccum(row[static_cast<std::size_t>(j)], s.data(),
                      out[w].data(), std::min(s.size(), out[w].size()));
    }
  }
  return OkStatus();
}

Status ReedSolomon::Reconstruct(
    std::vector<std::optional<Bytes>>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) {
    return InvalidArgumentError("expected k+m shard slots");
  }
  std::vector<int> present;
  std::size_t shard_size = 0;
  for (int i = 0; i < k_ + m_; ++i) {
    if (shards[static_cast<std::size_t>(i)].has_value()) {
      present.push_back(i);
      shard_size = shards[static_cast<std::size_t>(i)]->size();
    }
  }
  if (static_cast<int>(present.size()) < k_) {
    return DataLossError("only " + std::to_string(present.size()) +
                         " of the required " + std::to_string(k_) +
                         " shards survive");
  }
  std::vector<int> missing;
  for (int i = 0; i < k_ + m_; ++i) {
    if (!shards[static_cast<std::size_t>(i)].has_value()) {
      missing.push_back(i);
    } else if (shards[static_cast<std::size_t>(i)]->size() != shard_size) {
      return InvalidArgumentError("surviving shards differ in size");
    }
  }
  if (missing.empty()) return OkStatus();

  std::vector<std::optional<ByteSpan>> views;
  views.reserve(shards.size());
  for (const auto& shard : shards) {
    if (shard.has_value()) {
      views.emplace_back(ByteSpan(*shard));
    } else {
      views.emplace_back(std::nullopt);
    }
  }
  std::vector<Bytes> recovered;
  std::vector<MutableByteSpan> outs;
  recovered.reserve(missing.size());
  for (std::size_t i = 0; i < missing.size(); ++i) {
    recovered.emplace_back(shard_size, 0);
    outs.emplace_back(recovered.back());
  }
  STDCHK_RETURN_IF_ERROR(RecoverShards(views, shard_size, missing, outs));
  for (std::size_t i = 0; i < missing.size(); ++i) {
    shards[static_cast<std::size_t>(missing[i])] = std::move(recovered[i]);
  }
  return OkStatus();
}

Result<Bytes> ReedSolomon::DecodeBlock(std::vector<std::optional<Bytes>> shards,
                                       std::size_t data_size) const {
  STDCHK_RETURN_IF_ERROR(Reconstruct(shards));
  Bytes out;
  out.reserve(data_size);
  for (int i = 0; i < k_ && out.size() < data_size; ++i) {
    const Bytes& shard = *shards[static_cast<std::size_t>(i)];
    std::size_t n = std::min(shard.size(), data_size - out.size());
    out.insert(out.end(), shard.begin(),
               shard.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (out.size() != data_size) {
    return InvalidArgumentError("data_size exceeds encoded payload");
  }
  return out;
}

}  // namespace stdchk
