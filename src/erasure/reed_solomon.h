// Systematic Reed-Solomon erasure coding over GF(256), Cauchy-matrix
// construction: k data shards + m parity shards; any k of the k+m shards
// reconstruct the original data.
//
// Used by the replication-vs-erasure ablation (paper §IV.A): the paper
// rejects erasure coding for checkpoint data because of encode/decode CPU
// cost and repair traffic; this implementation lets the bench measure both
// against replication on real bytes.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace stdchk {

class ReedSolomon {
 public:
  // k data shards, m parity shards; k >= 1, m >= 1, k + m <= 255.
  static Result<ReedSolomon> Create(int data_shards, int parity_shards);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  // Splits `data` into k equal shards (zero-padded) and appends m parity
  // shards. Returns k+m shards, each of size ceil(data.size()/k).
  std::vector<Bytes> EncodeBlock(ByteSpan data) const;

  // Computes parity for pre-split, equal-length data shards.
  Result<std::vector<Bytes>> EncodeParity(
      const std::vector<Bytes>& data_shards) const;

  // Reconstructs all missing shards in place. `shards` has k+m entries;
  // std::nullopt marks a lost shard. Fails if fewer than k survive.
  Status Reconstruct(std::vector<std::optional<Bytes>>& shards) const;

  // Convenience: reassembles the original block of `data_size` bytes from
  // (possibly damaged) shards.
  Result<Bytes> DecodeBlock(std::vector<std::optional<Bytes>> shards,
                            std::size_t data_size) const;

 private:
  ReedSolomon(int k, int m);

  // Row `r` of the (k+m) x k encoding matrix. Rows 0..k-1 form the
  // identity (systematic); rows k..k+m-1 are Cauchy rows.
  const std::vector<std::uint8_t>& Row(int r) const {
    return matrix_[static_cast<std::size_t>(r)];
  }

  int k_;
  int m_;
  std::vector<std::vector<std::uint8_t>> matrix_;  // (k+m) rows x k cols
};

}  // namespace stdchk
