// Systematic Reed-Solomon erasure coding over GF(256), Cauchy-matrix
// construction: k data shards + m parity shards; any k of the k+m shards
// reconstruct the original data.
//
// Used by the erasure-coded write path (ClientOptions::erasure) and by the
// replication-vs-erasure ablation (paper §IV.A): the paper rejects erasure
// coding for checkpoint data because of encode/decode CPU cost and repair
// traffic; with the SIMD GF(256) kernels that tradeoff is measured, not
// asserted.
//
// The span-based entry points (EncodeParity over ByteSpans, RecoverShards)
// are the data-path API: callers encode straight out of BufferSlice views
// and decode straight into caller buffers, with no staging copies. Views
// shorter than the nominal shard size are treated as zero-padded to it —
// the stored tail shard of a block whose size is not a multiple of k —
// so the virtual padding never materializes either.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace stdchk {

class HashPool;

class ReedSolomon {
 public:
  // k data shards, m parity shards; k >= 1, m >= 1, k + m <= 255.
  static Result<ReedSolomon> Create(int data_shards, int parity_shards);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  // Splits `data` into k equal shards (zero-padded) and appends m parity
  // shards. Returns k+m shards, each of size ceil(data.size()/k). The k
  // padded data-shard copies are this call's contract (it returns them) and
  // are accounted in copy_stats; data-path callers use the span overload of
  // EncodeParity instead and keep their shards as views.
  std::vector<Bytes> EncodeBlock(ByteSpan data) const;

  // Computes parity for pre-split, equal-length data shards.
  Result<std::vector<Bytes>> EncodeParity(
      const std::vector<Bytes>& data_shards) const;

  // Span-based parity: encodes in place from k data-shard views, each at
  // most `shard_size` bytes (shorter views are virtually zero-padded — no
  // copy, the missing tail contributes nothing). Returns m parity shards of
  // exactly `shard_size` bytes. When `pool` is non-null the m parity rows
  // fan out across it (bounded by `max_workers`, caller participating);
  // each row writes only its own output, so the result is byte-identical
  // for every worker count — the same determinism rule as the naming
  // fan-out.
  Result<std::vector<Bytes>> EncodeParity(
      const std::vector<ByteSpan>& data_shards, std::size_t shard_size,
      HashPool* pool = nullptr, int max_workers = 1) const;

  // Recovers the shards listed in `want` (indices in [0, k+m)) from any k
  // surviving shard views. `shards` has k+m entries: std::nullopt marks a
  // lost shard; engaged views shorter than `shard_size` are treated as
  // zero-padded (an engaged empty view is a present, all-zero shard — not
  // a loss). Each wanted shard is written to the parallel `out` buffer,
  // which may be shorter than `shard_size` to recover just a prefix (the
  // stored length of a tail data shard) — except when any parity shard is
  // wanted, in which case full-size data outputs are required so parity
  // sees whole shards. Fails if fewer than k shards survive.
  Status RecoverShards(const std::vector<std::optional<ByteSpan>>& shards,
                       std::size_t shard_size, const std::vector<int>& want,
                       const std::vector<MutableByteSpan>& out) const;

  // Reconstructs all missing shards in place. `shards` has k+m entries;
  // std::nullopt marks a lost shard. Fails if fewer than k survive.
  Status Reconstruct(std::vector<std::optional<Bytes>>& shards) const;

  // Convenience: reassembles the original block of `data_size` bytes from
  // (possibly damaged) shards.
  Result<Bytes> DecodeBlock(std::vector<std::optional<Bytes>> shards,
                            std::size_t data_size) const;

 private:
  ReedSolomon(int k, int m);

  // Row `r` of the (k+m) x k encoding matrix. Rows 0..k-1 form the
  // identity (systematic); rows k..k+m-1 are Cauchy rows.
  const std::vector<std::uint8_t>& Row(int r) const {
    return matrix_[static_cast<std::size_t>(r)];
  }

  int k_;
  int m_;
  std::vector<std::vector<std::uint8_t>> matrix_;  // (k+m) rows x k cols
};

}  // namespace stdchk
