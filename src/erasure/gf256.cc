#include "erasure/gf256.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define STDCHK_GF256_SIMD_CANDIDATE 1
#endif

namespace stdchk::gf256 {
namespace internal {

Tables::Tables() {
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) {
    exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
  log[0] = 0;  // undefined; never consulted for zero
}

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace internal

std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t Inv(std::uint8_t a) {
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t Exp(unsigned e) {
  const auto& t = internal::GetTables();
  return t.exp[e % 255];
}

namespace {

// ---- scalar kernel (the differential oracle) --------------------------------
// The original table-lookup-per-byte loop, byte for byte. Every SIMD kernel
// must agree with this on arbitrary (c, src, dst, n).
void MulAccumScalar(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                    std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = internal::GetTables();
  const std::uint8_t logc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[static_cast<std::size_t>(logc) + t.log[s]];
    }
  }
}

// ---- PSHUFB split-table kernels ---------------------------------------------
// c * b factors over nibbles: b = bhi·16 ^ blo, so c·b = c·(bhi·16) ^ c·blo
// (multiplication distributes over XOR in GF(2^8)). Two 16-entry tables per
// coefficient — products with every low nibble and every high nibble — turn
// a vector of byte multiplies into two PSHUFB lookups and a XOR.
#ifdef STDCHK_GF256_SIMD_CANDIDATE

struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
  NibbleTables() {
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 16; ++x) {
        lo[c][x] = Mul(static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(x));
        hi[c][x] = Mul(static_cast<std::uint8_t>(c),
                       static_cast<std::uint8_t>(x << 4));
      }
    }
  }
};

const NibbleTables& GetNibbleTables() {
  static const NibbleTables tables;
  return tables;
}

// 16 B per iteration. Unaligned loads/stores handle arbitrary alignment;
// the sub-vector tail falls through to the scalar oracle.
__attribute__((target("ssse3"))) void MulAccumSsse3(std::uint8_t c,
                                                    const std::uint8_t* src,
                                                    std::uint8_t* dst,
                                                    std::size_t n) {
  const NibbleTables& nt = GetNibbleTables();
  const __m128i lo_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]));
  const __m128i hi_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    // srli works on 64-bit lanes; the bits a byte inherits from its left
    // neighbour land in its high nibble and are masked off.
    __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(s, mask));
    __m128i hi = _mm_shuffle_epi8(
        hi_tab, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(lo, hi)));
  }
  MulAccumScalar(c, src + i, dst + i, n - i);
}

// 32 B per iteration. VPSHUFB shuffles within each 128-bit lane, so the
// 16-entry tables are broadcast to both lanes. The 16..31 B remainder runs
// one SSSE3 step, then the scalar tail.
__attribute__((target("avx2"))) void MulAccumAvx2(std::uint8_t c,
                                                  const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t n) {
  const NibbleTables& nt = GetNibbleTables();
  const __m256i lo_tab = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c])));
  const __m256i hi_tab = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i lo = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s, mask));
    __m256i hi = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(lo, hi)));
  }
  _mm256_zeroupper();
  MulAccumSsse3(c, src + i, dst + i, n - i);
}

#endif  // STDCHK_GF256_SIMD_CANDIDATE

using MulAccumFn = void (*)(std::uint8_t, const std::uint8_t*, std::uint8_t*,
                            std::size_t);

bool CpuHasSsse3() {
#ifdef STDCHK_GF256_SIMD_CANDIDATE
  return __builtin_cpu_supports("ssse3");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#ifdef STDCHK_GF256_SIMD_CANDIDATE
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

MulAccumFn DetectMulAccumFn() {
#ifdef STDCHK_GF256_SIMD_CANDIDATE
  if (CpuHasAvx2()) return &MulAccumAvx2;
  if (CpuHasSsse3()) return &MulAccumSsse3;
#endif
  return &MulAccumScalar;
}

// Bench/test override; nullptr means "use the detected best". Atomic so
// the parity fan-out workers can read it while a bench or test thread
// switches implementations between phases.
std::atomic<MulAccumFn> g_forced_mul_accum_fn{nullptr};

inline MulAccumFn ActiveMulAccumFn() {
  static const MulAccumFn detected = DetectMulAccumFn();
  MulAccumFn forced = g_forced_mul_accum_fn.load(std::memory_order_relaxed);
  return forced ? forced : detected;
}

}  // namespace

Gf256Impl Gf256ActiveImpl() {
#ifdef STDCHK_GF256_SIMD_CANDIDATE
  if (ActiveMulAccumFn() == &MulAccumAvx2) return Gf256Impl::kAvx2;
  if (ActiveMulAccumFn() == &MulAccumSsse3) return Gf256Impl::kSsse3;
#endif
  return Gf256Impl::kScalar;
}

void Gf256ForceImpl(Gf256Impl impl) {
  switch (impl) {
    case Gf256Impl::kAuto:
      g_forced_mul_accum_fn = nullptr;
      return;
    case Gf256Impl::kScalar:
      g_forced_mul_accum_fn = &MulAccumScalar;
      return;
    case Gf256Impl::kSsse3:
#ifdef STDCHK_GF256_SIMD_CANDIDATE
      if (CpuHasSsse3()) {
        g_forced_mul_accum_fn = &MulAccumSsse3;
        return;
      }
#endif
      g_forced_mul_accum_fn = &MulAccumScalar;
      return;
    case Gf256Impl::kAvx2:
#ifdef STDCHK_GF256_SIMD_CANDIDATE
      if (CpuHasAvx2()) {
        g_forced_mul_accum_fn = &MulAccumAvx2;
        return;
      }
      if (CpuHasSsse3()) {
        g_forced_mul_accum_fn = &MulAccumSsse3;
        return;
      }
#endif
      g_forced_mul_accum_fn = &MulAccumScalar;
      return;
  }
}

void MulAccum(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n) {
  if (c == 0 || n == 0) return;
  ActiveMulAccumFn()(c, src, dst, n);
}

}  // namespace stdchk::gf256
