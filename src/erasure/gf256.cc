#include "erasure/gf256.h"

namespace stdchk::gf256 {
namespace internal {

Tables::Tables() {
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) {
    exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
  }
  log[0] = 0;  // undefined; never consulted for zero
}

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace internal

std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t Inv(std::uint8_t a) {
  const auto& t = internal::GetTables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t Exp(unsigned e) {
  const auto& t = internal::GetTables();
  return t.exp[e % 255];
}

void MulAccum(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
              std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = internal::GetTables();
  const std::uint8_t logc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[static_cast<std::size_t>(logc) + t.log[s]];
    }
  }
}

}  // namespace stdchk::gf256
