// Differential battery for the runtime-dispatched GF(256) kernel family:
// every dispatched implementation must agree byte-for-byte with the scalar
// log/exp oracle across all coefficients, alignments and lengths around the
// vector widths, and forcing an implementation the CPU lacks must fall back
// instead of dying. The encode/reconstruct paths are cross-checked per impl
// so a kernel bug cannot hide behind a matching MulAccum.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"

namespace stdchk {
namespace {

using gf256::Gf256ActiveImpl;
using gf256::Gf256ForceImpl;
using gf256::Gf256Impl;

// Restores runtime detection when a test exits, pass or fail.
struct ForceGuard {
  ~ForceGuard() { Gf256ForceImpl(Gf256Impl::kAuto); }
};

// The implementations this machine can actually run: forcing one that is
// unsupported falls back down the chain, so an impl is available iff
// forcing it makes it active.
std::vector<Gf256Impl> AvailableImpls() {
  ForceGuard guard;
  std::vector<Gf256Impl> out;
  for (Gf256Impl impl :
       {Gf256Impl::kScalar, Gf256Impl::kSsse3, Gf256Impl::kAvx2}) {
    Gf256ForceImpl(impl);
    if (Gf256ActiveImpl() == impl) out.push_back(impl);
  }
  return out;
}

const char* ImplName(Gf256Impl impl) {
  switch (impl) {
    case Gf256Impl::kAuto:
      return "auto";
    case Gf256Impl::kScalar:
      return "scalar";
    case Gf256Impl::kSsse3:
      return "ssse3";
    case Gf256Impl::kAvx2:
      return "avx2";
  }
  return "?";
}

// Independent oracle: one table multiply per byte, no MulAccum involved.
void MulAccumOracle(std::uint8_t c, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ gf256::Mul(c, src[i]));
  }
}

TEST(Gf256SimdTest, ScalarIsAlwaysAvailable) {
  std::vector<Gf256Impl> impls = AvailableImpls();
  ASSERT_FALSE(impls.empty());
  EXPECT_EQ(impls.front(), Gf256Impl::kScalar);
}

TEST(Gf256SimdTest, ForcedImplSweepNeverDiesAndRestores) {
  // Forcing any impl — including ones this CPU may not support — must leave
  // MulAccum working (graceful fallback, no illegal instruction).
  ForceGuard guard;
  Rng rng(7);
  std::vector<std::uint8_t> src(257), dst(257), expect(257);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.Next());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>(rng.Next());
    expect[i] = dst[i];
  }
  MulAccumOracle(0xA7, src.data(), expect.data(), src.size());
  for (Gf256Impl impl : {Gf256Impl::kAvx2, Gf256Impl::kSsse3,
                         Gf256Impl::kScalar, Gf256Impl::kAuto}) {
    std::vector<std::uint8_t> work = dst;
    Gf256ForceImpl(impl);
    gf256::MulAccum(0xA7, src.data(), work.data(), work.size());
    EXPECT_EQ(work, expect) << "forced " << ImplName(impl) << " resolved to "
                            << ImplName(Gf256ActiveImpl());
  }
  Gf256ForceImpl(Gf256Impl::kAuto);
  // Detection restored: kAuto resolves to a concrete member of the family.
  EXPECT_NE(Gf256ActiveImpl(), Gf256Impl::kAuto);
}

TEST(Gf256SimdTest, MulAccumMatchesOracleAcrossImplsAlignmentsLengths) {
  // Lengths 0..3x the widest vector, at every src/dst misalignment mod 16,
  // under every dispatched impl, for a spread of coefficients including the
  // c == 0 (no-op) and c == 1 (pure XOR) fast paths.
  ForceGuard guard;
  Rng rng(11);
  constexpr std::size_t kMaxLen = 3 * 32;
  constexpr std::size_t kPad = 64;
  std::vector<std::uint8_t> src_buf(kMaxLen + 2 * kPad);
  std::vector<std::uint8_t> dst_buf(kMaxLen + 2 * kPad);
  for (auto& b : src_buf) b = static_cast<std::uint8_t>(rng.Next());

  const std::vector<std::uint8_t> coeffs = {0,    1,    2,    3,   0x1D,
                                            0x53, 0x80, 0xA7, 0xFF};
  for (Gf256Impl impl : AvailableImpls()) {
    Gf256ForceImpl(impl);
    for (std::uint8_t c : coeffs) {
      for (std::size_t align = 0; align < 16; ++align) {
        for (std::size_t n = 0; n <= kMaxLen;
             n = n < 40 ? n + 1 : n + 7) {
          for (auto& b : dst_buf) b = static_cast<std::uint8_t>(rng.Next());
          std::vector<std::uint8_t> expect = dst_buf;
          const std::uint8_t* src = src_buf.data() + align;
          // Distinct dst misalignment (align + 5 mod 16) so relative
          // misalignment is exercised, not just absolute.
          std::size_t dst_off = (align + 5) % 16;
          MulAccumOracle(c, src, expect.data() + dst_off, n);
          gf256::MulAccum(c, src, dst_buf.data() + dst_off, n);
          ASSERT_EQ(dst_buf, expect)
              << ImplName(impl) << " c=" << int(c) << " align=" << align
              << " n=" << n;
        }
      }
    }
  }
}

TEST(Gf256SimdTest, MulAccumInPlaceSrcEqualsDst) {
  // The documented aliasing exception: src == dst computes
  // dst[i] ^= c * dst[i] = (c ^ 1) * dst[i].
  ForceGuard guard;
  Rng rng(13);
  for (Gf256Impl impl : AvailableImpls()) {
    Gf256ForceImpl(impl);
    std::vector<std::uint8_t> buf(100);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.Next());
    std::vector<std::uint8_t> expect(buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      expect[i] = gf256::Mul(static_cast<std::uint8_t>(0x53 ^ 1), buf[i]);
    }
    gf256::MulAccum(0x53, buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, expect) << ImplName(impl);
  }
}

TEST(Gf256SimdTest, EncodeParityIdenticalAcrossImpls) {
  // Parity bytes are pinned across the kernel family: whatever the CPU
  // dispatches, the stored shards (and their content addresses) match the
  // scalar oracle bit for bit.
  ForceGuard guard;
  Rng rng(17);
  auto rs = ReedSolomon::Create(6, 3);
  ASSERT_TRUE(rs.ok());
  // Shard sizes straddling the vector widths, including a short tail.
  for (std::size_t shard_size : {std::size_t{1}, std::size_t{16},
                                 std::size_t{31}, std::size_t{64},
                                 std::size_t{1000}}) {
    std::vector<Bytes> shards(6);
    std::vector<ByteSpan> views(6);
    for (std::size_t j = 0; j < shards.size(); ++j) {
      // Last shard short: exercises the virtual zero-padding.
      std::size_t len = j + 1 < shards.size()
                            ? shard_size
                            : (shard_size > 1 ? shard_size / 2 : 0);
      shards[j].resize(len);
      for (auto& b : shards[j]) b = static_cast<std::uint8_t>(rng.Next());
      views[j] = ByteSpan(shards[j].data(), shards[j].size());
    }

    std::optional<std::vector<Bytes>> oracle;
    for (Gf256Impl impl : AvailableImpls()) {
      Gf256ForceImpl(impl);
      auto parity = rs.value().EncodeParity(views, shard_size);
      ASSERT_TRUE(parity.ok());
      ASSERT_EQ(parity.value().size(), 3u);
      for (const Bytes& p : parity.value()) {
        EXPECT_EQ(p.size(), shard_size);
      }
      if (!oracle.has_value()) {
        oracle = std::move(parity).value();
      } else {
        EXPECT_EQ(parity.value(), *oracle)
            << ImplName(impl) << " shard_size=" << shard_size;
      }
    }
  }
}

TEST(Gf256SimdTest, ReconstructAgreesAcrossImplsAndRoundTrips) {
  ForceGuard guard;
  Rng rng(19);
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  Bytes data(4 * 333 - 100);  // short tail shard
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());

  for (Gf256Impl impl : AvailableImpls()) {
    Gf256ForceImpl(impl);
    std::vector<Bytes> shards = rs.value().EncodeBlock(
        ByteSpan(data.data(), data.size()));
    ASSERT_EQ(shards.size(), 6u);

    // Knock out any m = 2 shards and rebuild the block.
    for (std::size_t a = 0; a < shards.size(); ++a) {
      for (std::size_t b = a + 1; b < shards.size(); ++b) {
        std::vector<std::optional<Bytes>> damaged(shards.size());
        for (std::size_t s = 0; s < shards.size(); ++s) {
          if (s != a && s != b) damaged[s] = shards[s];
        }
        auto rebuilt = rs.value().DecodeBlock(damaged, data.size());
        ASSERT_TRUE(rebuilt.ok()) << ImplName(impl) << " lost " << a << ","
                                  << b;
        EXPECT_EQ(rebuilt.value(), data);
      }
    }
  }
}

TEST(Gf256SimdTest, RecoverShardsPrefixAndVirtualPadding) {
  // The data-path contract of RecoverShards: unpadded (short) stored views
  // decode correctly, prefix-length outputs recover just the stored bytes,
  // and an engaged empty view means "present, all zeros" — not a loss.
  ForceGuard guard;
  Rng rng(23);
  auto rs = ReedSolomon::Create(3, 2);
  ASSERT_TRUE(rs.ok());
  const std::size_t shard_size = 50;
  std::vector<Bytes> data(3);
  data[0].resize(shard_size);
  data[1].resize(20);  // short: virtually zero-padded
  data[2].resize(0);   // empty: present, all zeros
  for (auto& shard : data) {
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng.Next());
  }
  std::vector<ByteSpan> views;
  for (const Bytes& shard : data) {
    views.emplace_back(shard.data(), shard.size());
  }
  auto parity = rs.value().EncodeParity(views, shard_size);
  ASSERT_TRUE(parity.ok());

  // Lose shards 0 and 1; recover shard 1's stored 20 bytes only.
  std::vector<std::optional<ByteSpan>> have(5);
  have[2] = views[2];  // engaged empty view
  have[3] = ByteSpan(parity.value()[0].data(), parity.value()[0].size());
  have[4] = ByteSpan(parity.value()[1].data(), parity.value()[1].size());
  Bytes out1(20);
  ASSERT_TRUE(rs.value()
                  .RecoverShards(have, shard_size, {1},
                                 {MutableByteSpan(out1.data(), out1.size())})
                  .ok());
  EXPECT_EQ(out1, data[1]);

  // Recovering a parity shard demands full-width outputs.
  Bytes short_out(10);
  EXPECT_FALSE(rs.value()
                   .RecoverShards(have, shard_size, {0, 3},
                                  {MutableByteSpan(out1.data(), out1.size()),
                                   MutableByteSpan(short_out.data(),
                                                   short_out.size())})
                   .ok());
}

TEST(Gf256SimdTest, RandomizedMulAccumAgreementSweep) {
  // Randomized lengths/alignments/coefficients per impl — the fuzz half of
  // the battery on top of the exhaustive grid above.
  ForceGuard guard;
  Rng rng(29);
  std::vector<std::uint8_t> src_buf(4096 + 64), dst_buf(4096 + 64);
  for (auto& b : src_buf) b = static_cast<std::uint8_t>(rng.Next());
  for (Gf256Impl impl : AvailableImpls()) {
    Gf256ForceImpl(impl);
    for (int round = 0; round < 200; ++round) {
      auto c = static_cast<std::uint8_t>(rng.Next());
      std::size_t n = rng.Next() % 4096;
      std::size_t s_off = rng.Next() % 64;
      std::size_t d_off = rng.Next() % 64;
      for (auto& b : dst_buf) b = static_cast<std::uint8_t>(rng.Next());
      std::vector<std::uint8_t> expect = dst_buf;
      MulAccumOracle(c, src_buf.data() + s_off, expect.data() + d_off, n);
      gf256::MulAccum(c, src_buf.data() + s_off, dst_buf.data() + d_off, n);
      ASSERT_EQ(dst_buf, expect)
          << ImplName(impl) << " round=" << round << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace stdchk
