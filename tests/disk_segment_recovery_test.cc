// Crash/corruption battery for the log-structured segment disk store:
// simulate crashes by truncating the last segment at every record boundary
// and mid-record, and silent media corruption by flipping bits in headers
// and payloads; every reopen must recover exactly the intact prefix, drop
// torn/corrupt tails, and never serve bytes that fail SHA-1 verification.
//
// The Walk* helpers re-derive record boundaries from the on-disk format
// (mirroring disk_chunk_store.cc's layout), so a format drift breaks this
// battery loudly instead of silently weakening it.
#include "chunk/chunk_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "benefactor/benefactor.h"
#include "common/hash.h"
#include "common/rng.h"

namespace stdchk {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderSize = 32;
constexpr std::size_t kRecordAlign = 8;

struct RecordInfo {
  std::uint64_t start = 0;    // header offset within the segment
  std::uint64_t payload = 0;  // payload offset
  std::uint32_t length = 0;
  ChunkId id;
  std::uint64_t end = 0;  // aligned end = next record's start
};

Bytes ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

// Walks a segment file's records using the published layout (magic,
// length, crc, id, payload, pad-to-8). CRCs are not re-verified here —
// the store under test owns that judgement.
std::vector<RecordInfo> WalkSegment(const fs::path& path) {
  Bytes file = ReadFileBytes(path);
  std::vector<RecordInfo> records;
  std::uint64_t off = 0;
  while (off + kHeaderSize <= file.size()) {
    RecordInfo rec;
    rec.start = off;
    std::uint32_t length = 0;
    std::memcpy(&length, file.data() + off + 4, 4);  // little-endian host
    rec.length = length;
    rec.payload = off + kHeaderSize;
    std::memcpy(rec.id.digest.bytes.data(), file.data() + off + 12, 20);
    std::uint64_t body = kHeaderSize + length;
    rec.end = off + body + (kRecordAlign - body % kRecordAlign) % kRecordAlign;
    if (rec.payload + length > file.size()) break;
    records.push_back(rec);
    off = rec.end;
  }
  return records;
}

std::vector<fs::path> SegmentFiles(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().starts_with("seg-")) {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TruncateFile(const fs::path& path, std::uint64_t size) {
  std::error_code ec;
  fs::resize_file(path, size, ec);
  ASSERT_FALSE(ec) << ec.message();
}

void FlipBit(const fs::path& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

void CopyTree(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::copy(from, to, fs::copy_options::recursive);
}

class DiskSegmentRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("stdchk_segrec_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    pristine_ = root_ / "pristine";
    scratch_ = root_ / "scratch";
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  // Writes `generations` PutBatches of `per_gen` random chunks each and
  // closes the store. Returns the chunks in record order.
  std::vector<std::pair<ChunkId, Bytes>> WriteCorpus(
      const fs::path& dir, int generations, int per_gen,
      const DiskStoreOptions& options = {}) {
    std::vector<std::pair<ChunkId, Bytes>> corpus;
    auto store = MakeDiskChunkStore(dir.string(), options);
    EXPECT_TRUE(store.ok()) << store.status();
    for (int g = 0; g < generations; ++g) {
      std::vector<ChunkPut> batch;
      std::vector<Bytes> payloads;
      for (int c = 0; c < per_gen; ++c) {
        payloads.push_back(
            rng_.RandomBytes(1 + rng_.NextBelow(4096)));
      }
      for (Bytes& payload : payloads) {
        ChunkId id = ChunkId::For(payload);
        corpus.emplace_back(id, payload);
        batch.push_back(
            ChunkPut{id, BufferSlice(BufferRef::Take(std::move(payload)))});
      }
      EXPECT_TRUE(store.value()->PutBatch(batch).ok());
    }
    return corpus;
  }

  // Reopens `dir` and asserts the store holds exactly corpus[0..intact) —
  // every intact chunk readable and SHA-1-clean, everything else gone.
  void ExpectRecoversPrefix(
      const fs::path& dir,
      const std::vector<std::pair<ChunkId, Bytes>>& corpus,
      std::size_t intact, const DiskStoreOptions& options = {}) {
    auto reopened = MakeDiskChunkStore(dir.string(), options);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ChunkStore& store = *reopened.value();
    std::uint64_t expect_bytes = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const auto& [id, data] = corpus[i];
      if (i < intact) {
        ASSERT_TRUE(store.Contains(id)) << "chunk " << i << " lost";
        auto got = store.Get(id);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_EQ(got.value(), data) << "chunk " << i << " corrupt";
        expect_bytes += data.size();
      } else {
        EXPECT_FALSE(store.Contains(id)) << "chunk " << i << " resurrected";
        EXPECT_EQ(store.Get(id).status().code(), StatusCode::kNotFound);
      }
    }
    EXPECT_EQ(store.ChunkCount(), intact);
    EXPECT_EQ(store.BytesUsed(), expect_bytes);
    EXPECT_EQ(store.Stats().recovered_chunks, intact);
    VerifyEverythingServable(store);
  }

  // The battery's core guarantee: whatever survived recovery, reading it
  // back yields bytes whose SHA-1 is the content address.
  void VerifyEverythingServable(ChunkStore& store) {
    for (const ChunkId& id : store.List()) {
      auto got = store.Get(id);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(ChunkId::For(got.value().span()), id)
          << "served bytes fail SHA-1 verification";
    }
  }

  fs::path root_, pristine_, scratch_;
  Rng rng_{0x5EC7};
};

TEST_F(DiskSegmentRecoveryTest, CleanReopenRecoversEverything) {
  auto corpus = WriteCorpus(pristine_, /*generations=*/3, /*per_gen=*/5);
  ExpectRecoversPrefix(pristine_, corpus, corpus.size());
}

TEST_F(DiskSegmentRecoveryTest, TruncationAtEveryRecordBoundary) {
  auto corpus = WriteCorpus(pristine_, 3, 4);
  auto segments = SegmentFiles(pristine_);
  ASSERT_EQ(segments.size(), 1u);  // default target: one segment
  auto records = WalkSegment(segments[0]);
  ASSERT_EQ(records.size(), corpus.size());

  for (std::size_t k = 0; k <= records.size(); ++k) {
    SCOPED_TRACE("records kept: " + std::to_string(k));
    CopyTree(pristine_, scratch_);
    std::uint64_t cut = k == 0 ? 0 : records[k - 1].end;
    TruncateFile(SegmentFiles(scratch_)[0], cut);
    ExpectRecoversPrefix(scratch_, corpus, k);
  }
}

TEST_F(DiskSegmentRecoveryTest, TruncationMidRecord) {
  auto corpus = WriteCorpus(pristine_, 2, 4);
  auto records = WalkSegment(SegmentFiles(pristine_)[0]);
  ASSERT_EQ(records.size(), corpus.size());

  for (std::size_t k = 0; k < records.size(); ++k) {
    // Three torn shapes per record: a sliver of header, a full header with
    // missing payload, and a payload cut in half.
    const std::uint64_t cuts[] = {
        records[k].start + 1, records[k].start + kHeaderSize - 1,
        records[k].payload + records[k].length / 2};
    for (std::uint64_t cut : cuts) {
      SCOPED_TRACE("record " + std::to_string(k) + " cut at " +
                   std::to_string(cut));
      CopyTree(pristine_, scratch_);
      TruncateFile(SegmentFiles(scratch_)[0], cut);

      // The first reopen cuts the torn tail back to the record boundary...
      {
        auto reopened = MakeDiskChunkStore(scratch_.string());
        ASSERT_TRUE(reopened.ok());
        EXPECT_EQ(reopened.value()->Stats().torn_tails_truncated, 1u);
      }
      // ...so a second reopen sees a clean log and the intact prefix.
      ExpectRecoversPrefix(scratch_, corpus, k);
    }
  }
}

TEST_F(DiskSegmentRecoveryTest, BitFlipsDropTheTailFromTheCorruptRecord) {
  auto corpus = WriteCorpus(pristine_, 2, 4);
  auto records = WalkSegment(SegmentFiles(pristine_)[0]);
  ASSERT_EQ(records.size(), corpus.size());

  for (std::size_t k = 0; k < records.size(); ++k) {
    // Corruption targets: magic, length field, CRC field, chunk id, and
    // mid-payload. The record CRC covers all of them, so each flip must
    // drop record k and everything after it — in particular a flipped id
    // byte must NOT index good bytes under a wrong address.
    const std::uint64_t targets[] = {
        records[k].start,       records[k].start + 5, records[k].start + 8,
        records[k].start + 15,  // inside the chunk id
        records[k].payload + records[k].length / 2};
    for (std::uint64_t offset : targets) {
      SCOPED_TRACE("record " + std::to_string(k) + " flip at " +
                   std::to_string(offset));
      CopyTree(pristine_, scratch_);
      FlipBit(SegmentFiles(scratch_)[0], offset);
      ExpectRecoversPrefix(scratch_, corpus, k);
    }
  }
}

TEST_F(DiskSegmentRecoveryTest, CorruptionInOneSegmentSparesTheOthers) {
  DiskStoreOptions small;
  small.segment_target_bytes = 1;  // every generation rolls a new segment
  auto corpus = WriteCorpus(pristine_, 3, 4, small);
  auto segments = SegmentFiles(pristine_);
  ASSERT_EQ(segments.size(), 3u);

  // Flip a bit in the middle segment's first record payload: generation 0
  // and generation 2 must survive untouched; generation 1 loses everything
  // from its first record on.
  auto mid_records = WalkSegment(segments[1]);
  CopyTree(pristine_, scratch_);
  FlipBit(SegmentFiles(scratch_)[1], mid_records[0].payload);

  auto reopened = MakeDiskChunkStore(scratch_.string(), small);
  ASSERT_TRUE(reopened.ok());
  ChunkStore& store = *reopened.value();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    bool in_corrupt_gen = i >= 4 && i < 8;
    EXPECT_EQ(store.Contains(corpus[i].first), !in_corrupt_gen)
        << "chunk " << i;
  }
  EXPECT_EQ(store.Stats().torn_tails_truncated, 1u);
  VerifyEverythingServable(store);
}

TEST_F(DiskSegmentRecoveryTest, AppendsContinueCleanlyAfterTornTailRecovery) {
  auto corpus = WriteCorpus(pristine_, 2, 3);
  auto records = WalkSegment(SegmentFiles(pristine_)[0]);
  // Tear the last record mid-payload...
  TruncateFile(SegmentFiles(pristine_)[0],
               records.back().payload + records.back().length / 2);
  // ...recover, then write a fresh generation into the recovered store.
  {
    auto store = MakeDiskChunkStore(pristine_.string());
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->Stats().torn_tails_truncated, 1u);
    corpus.pop_back();
    Bytes extra = rng_.RandomBytes(2000);
    ChunkId id = ChunkId::For(extra);
    ASSERT_TRUE(store.value()->Put(id, extra).ok());
    corpus.emplace_back(id, std::move(extra));
  }
  // A second reopen must see the intact prefix plus the new chunk.
  ExpectRecoversPrefix(pristine_, corpus, corpus.size());
}

TEST_F(DiskSegmentRecoveryTest, OneDataSyscallPerDrainGeneration) {
  auto store = MakeDiskChunkStore(pristine_.string());
  ASSERT_TRUE(store.ok());

  std::vector<ChunkPut> batch;
  std::vector<Bytes> keep;
  for (int i = 0; i < 16; ++i) keep.push_back(rng_.RandomBytes(2048));
  for (const Bytes& data : keep) {
    batch.push_back(ChunkPut{ChunkId::For(data), BufferSlice::Copy(data)});
  }
  ASSERT_TRUE(store.value()->PutBatch(batch).ok());

  ChunkStoreStats stats = store.value()->Stats();
  EXPECT_EQ(stats.put_batches, 1u);
  EXPECT_EQ(stats.data_syscalls, 1u);  // the whole generation: one pwritev
  EXPECT_EQ(stats.fsyncs, 1u);
  EXPECT_EQ(stats.segments_created, 1u);

  // Re-putting the same generation is a no-op — no I/O at all.
  ASSERT_TRUE(store.value()->PutBatch(batch).ok());
  EXPECT_EQ(store.value()->Stats().data_syscalls, 1u);

  // A second distinct generation costs exactly one more.
  Bytes extra = rng_.RandomBytes(512);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(extra), extra).ok());
  EXPECT_EQ(store.value()->Stats().data_syscalls, 2u);
}

TEST_F(DiskSegmentRecoveryTest, DeadSegmentsAreReclaimedAndSlicesSurvive) {
  DiskStoreOptions small;
  small.segment_target_bytes = 1;  // roll per batch
  auto store = MakeDiskChunkStore(pristine_.string(), small);
  ASSERT_TRUE(store.ok());

  std::vector<ChunkId> gen_a;
  std::vector<Bytes> payloads;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(rng_.RandomBytes(1024));
    gen_a.push_back(ChunkId::For(payloads.back()));
    batch.push_back(ChunkPut{gen_a.back(), BufferSlice::Copy(payloads[i])});
  }
  ASSERT_TRUE(store.value()->PutBatch(batch).ok());
  Bytes other = rng_.RandomBytes(1024);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(other), other).ok());
  ASSERT_EQ(SegmentFiles(pristine_).size(), 2u);

  // Hold a zero-copy slice of generation A across its segment's death.
  auto held = store.value()->Get(gen_a[0]);
  ASSERT_TRUE(held.ok());

  for (const ChunkId& id : gen_a) {
    ASSERT_TRUE(store.value()->Delete(id).ok());
  }
  EXPECT_EQ(store.value()->Stats().segments_reclaimed, 1u);
  EXPECT_EQ(SegmentFiles(pristine_).size(), 1u);  // seg A unlinked

  // The mapping outlives the unlink: the held slice still reads clean.
  EXPECT_EQ(held.value(), payloads[0]);
  EXPECT_EQ(ChunkId::For(held.value().span()), gen_a[0]);

  // The survivor is untouched, and the store keeps serving writes.
  auto got = store.value()->Get(ChunkId::For(other));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), other);
}

// Regression: a segment whose records all die while it is still the
// *active* (append) segment used to be skipped by Delete-time reclaim and
// never revisited — the dead file leaked until Wipe. Rolling to a fresh
// segment must reclaim the fully-dead one it leaves behind.
TEST_F(DiskSegmentRecoveryTest, FullyDeadActiveSegmentIsReclaimedAtRoll) {
  DiskStoreOptions small;
  small.segment_target_bytes = 1;  // roll per batch
  auto store = MakeDiskChunkStore(pristine_.string(), small);
  ASSERT_TRUE(store.ok());

  Bytes a = rng_.RandomBytes(1024);
  ChunkId id_a = ChunkId::For(a);
  ASSERT_TRUE(store.value()->Put(id_a, a).ok());
  // Kill the only record while its segment is still the active one:
  // Delete cannot reclaim it (appends may still land there)...
  ASSERT_TRUE(store.value()->Delete(id_a).ok());
  EXPECT_EQ(store.value()->Stats().segments_reclaimed, 0u);
  ASSERT_EQ(SegmentFiles(pristine_).size(), 1u);

  // ...but the roll triggered by the next batch must, or the dead file
  // leaks forever.
  Bytes b = rng_.RandomBytes(1024);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(b), b).ok());
  EXPECT_EQ(store.value()->Stats().segments_reclaimed, 1u);
  EXPECT_EQ(SegmentFiles(pristine_).size(), 1u);  // only the new segment

  // The reclaimed state survives a reopen.
  store.value().reset();
  ExpectRecoversPrefix(pristine_, {{ChunkId::For(b), b}}, 1, small);
}

TEST_F(DiskSegmentRecoveryTest, CompactStepRewritesLiveRecordsAndUnlinks) {
  DiskStoreOptions small;
  small.segment_target_bytes = 1;  // roll per batch
  auto store = MakeDiskChunkStore(pristine_.string(), small);
  ASSERT_TRUE(store.ok());

  // Generation A: four chunks in one segment; generation B rolls it cold.
  std::vector<Bytes> gen_a;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 4; ++i) {
    gen_a.push_back(rng_.RandomBytes(1024));
    batch.push_back(
        ChunkPut{ChunkId::For(gen_a.back()), BufferSlice::Copy(gen_a.back())});
  }
  ASSERT_TRUE(store.value()->PutBatch(batch).ok());
  Bytes b = rng_.RandomBytes(512);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(b), b).ok());
  ASSERT_EQ(SegmentFiles(pristine_).size(), 2u);

  // Kill 3 of A's 4 records: utilization 1/4 < 1/2 makes A a victim. Hold
  // a reader slice of the survivor across the move.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.value()->Delete(ChunkId::For(gen_a[i])).ok());
  }
  ChunkId survivor = ChunkId::For(gen_a[3]);
  auto held = store.value()->Get(survivor);
  ASSERT_TRUE(held.ok());

  CompactionPolicy policy;  // threshold 0.5
  auto step = store.value()->CompactStep(policy);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(step.value().segments_compacted, 1u);
  EXPECT_EQ(step.value().bytes_rewritten, gen_a[3].size());
  EXPECT_GT(step.value().bytes_reclaimed, 0u);

  // The victim is gone from disk; the survivor reads clean from its new
  // home and the held slice of the old mapping is byte-stable.
  EXPECT_EQ(SegmentFiles(pristine_).size(), 2u);  // gen B + compacted out
  auto got = store.value()->Get(survivor);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), gen_a[3]);
  EXPECT_EQ(held.value(), gen_a[3]);
  EXPECT_FALSE(got.value().SharesBufferWith(held.value()));  // new mapping

  ChunkStoreStats stats = store.value()->Stats();
  EXPECT_EQ(stats.segments_compacted, 1u);
  EXPECT_EQ(stats.compacted_bytes_rewritten, gen_a[3].size());
  EXPECT_EQ(stats.compaction_steps, 1u);

  // A second step finds nothing below threshold: compaction converges.
  auto idle = store.value()->CompactStep(policy);
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle.value().segments_compacted, 0u);

  // The compacted layout recovers: survivor + gen B, nothing resurrected.
  store.value().reset();
  ExpectRecoversPrefix(pristine_,
                       {{survivor, gen_a[3]}, {ChunkId::For(b), b}}, 2, small);
}

// Crash injected after the compacted segment is durable but before the
// index repoints and the victims unlink: both copies are on disk. Recovery
// must keep the first copy (sequence order), count the duplicate as dead
// bytes, and lose nothing.
TEST_F(DiskSegmentRecoveryTest, CrashBeforeCompactionPublishLosesNothing) {
  DiskStoreOptions crashy;
  crashy.segment_target_bytes = 1;
  crashy.testing_compaction_abort_before_publish = true;

  std::vector<std::pair<ChunkId, Bytes>> live;
  {
    auto store = MakeDiskChunkStore(pristine_.string(), crashy);
    ASSERT_TRUE(store.ok());
    std::vector<ChunkPut> batch;
    std::vector<Bytes> gen_a;
    for (int i = 0; i < 4; ++i) {
      gen_a.push_back(rng_.RandomBytes(1024));
      batch.push_back(ChunkPut{ChunkId::For(gen_a.back()),
                               BufferSlice::Copy(gen_a.back())});
    }
    ASSERT_TRUE(store.value()->PutBatch(batch).ok());
    Bytes b = rng_.RandomBytes(512);
    ASSERT_TRUE(store.value()->Put(ChunkId::For(b), b).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.value()->Delete(ChunkId::For(gen_a[i])).ok());
    }
    live.emplace_back(ChunkId::For(gen_a[3]), gen_a[3]);
    live.emplace_back(ChunkId::For(b), b);

    auto step = store.value()->CompactStep(CompactionPolicy{});
    EXPECT_FALSE(step.ok());  // the injected crash
    // Both copies of the survivor now sit on disk, and the still-open
    // store keeps serving the originals untouched.
    EXPECT_EQ(SegmentFiles(pristine_).size(), 3u);
    for (const auto& [id, data] : live) {
      auto got = store.value()->Get(id);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), data);
    }
  }

  // Recovery: the store has no delete tombstones, so the three deleted
  // records of generation A legitimately resurrect — what must hold is
  // that every committed chunk is readable, the duplicated survivor is
  // indexed exactly once (first copy wins), and nothing fails SHA-1.
  auto reopened = MakeDiskChunkStore(pristine_.string());
  ASSERT_TRUE(reopened.ok());
  ChunkStore& store = *reopened.value();
  EXPECT_EQ(store.ChunkCount(), 5u);  // 4 of gen A + gen B; dup collapsed
  EXPECT_EQ(store.Stats().recovered_chunks, 5u);
  for (const auto& [id, data] : live) {
    auto got = store.Get(id);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), data);
  }
  VerifyEverythingServable(store);

  // The duplicate record is dead weight a later CompactStep can reclaim.
  auto cleanup = store.CompactStep(CompactionPolicy{});
  ASSERT_TRUE(cleanup.ok());
  VerifyEverythingServable(store);
}

// The compacted output segment itself can be torn by the crash (it was
// mid-write): recovery must cut it back without touching the originals.
TEST_F(DiskSegmentRecoveryTest, TornCompactedOutputSparesTheOriginals) {
  DiskStoreOptions crashy;
  crashy.segment_target_bytes = 1;
  crashy.testing_compaction_abort_before_publish = true;

  std::vector<std::pair<ChunkId, Bytes>> live;
  {
    auto store = MakeDiskChunkStore(pristine_.string(), crashy);
    ASSERT_TRUE(store.ok());
    std::vector<ChunkPut> batch;
    std::vector<Bytes> gen_a;
    for (int i = 0; i < 4; ++i) {
      gen_a.push_back(rng_.RandomBytes(1024));
      batch.push_back(ChunkPut{ChunkId::For(gen_a.back()),
                               BufferSlice::Copy(gen_a.back())});
    }
    ASSERT_TRUE(store.value()->PutBatch(batch).ok());
    Bytes b = rng_.RandomBytes(512);
    ASSERT_TRUE(store.value()->Put(ChunkId::For(b), b).ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(store.value()->Delete(ChunkId::For(gen_a[i])).ok());
    }
    live.emplace_back(ChunkId::For(gen_a[2]), gen_a[2]);
    live.emplace_back(ChunkId::For(gen_a[3]), gen_a[3]);
    live.emplace_back(ChunkId::For(b), b);
    // Utilization is exactly 0.5 after two deletes; raise the threshold so
    // the half-dead segment qualifies and the crash hits mid-move of TWO
    // records (a multi-record torn tail).
    CompactionPolicy eager;
    eager.utilization_threshold = 0.75;
    EXPECT_FALSE(store.value()->CompactStep(eager).ok());
  }

  // Tear the compacted output (the newest segment) mid-record.
  auto segments = SegmentFiles(pristine_);
  ASSERT_EQ(segments.size(), 3u);
  auto out_records = WalkSegment(segments.back());
  ASSERT_EQ(out_records.size(), 2u);  // the two survivors were being moved
  TruncateFile(segments.back(),
               out_records[0].payload + out_records[0].length / 2);

  auto reopened = MakeDiskChunkStore(pristine_.string());
  ASSERT_TRUE(reopened.ok());
  ChunkStore& store = *reopened.value();
  EXPECT_EQ(store.Stats().torn_tails_truncated, 1u);
  for (const auto& [id, data] : live) {
    auto got = store.Get(id);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), data);
  }
  VerifyEverythingServable(store);
}

// Satellite: no stale-stamp shortcut on moved bytes. Compacted records are
// re-read from disk through an unstamped mapping, so a benefactor read
// must re-hash — and a flipped byte in the compacted segment must surface
// as DataLoss, never as a clean read vouched for by a stamp the original
// buffer earned.
TEST_F(DiskSegmentRecoveryTest, TamperedCompactedBytesFailVerification) {
  DiskStoreOptions small;
  small.segment_target_bytes = 1;
  auto made = MakeDiskChunkStore(pristine_.string(), small);
  ASSERT_TRUE(made.ok());
  ChunkStore* store = made.value().get();
  Benefactor donor("tamper-host", std::move(made).value(), 1_GiB);

  std::vector<Bytes> gen_a;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 4; ++i) {
    gen_a.push_back(rng_.RandomBytes(1024));
    batch.push_back(
        ChunkPut{ChunkId::For(gen_a.back()), BufferSlice::Copy(gen_a.back())});
  }
  ASSERT_TRUE(donor.PutChunkBatch(batch).ok());
  Bytes b = rng_.RandomBytes(512);
  ASSERT_TRUE(donor.PutChunk(ChunkId::For(b), ByteSpan(b)).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store->Delete(ChunkId::For(gen_a[i])).ok());
  }
  ChunkId survivor = ChunkId::For(gen_a[3]);

  auto step = store->CompactStep(CompactionPolicy{});
  ASSERT_TRUE(step.ok());
  ASSERT_EQ(step.value().segments_compacted, 1u);

  // The moved record carries no digest stamp: verification re-hashes.
  auto raw = store->Get(survivor);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().stamped_digest(), nullptr);
  ASSERT_TRUE(donor.GetChunk(survivor).ok());  // intact bytes verify fine

  // Flip one payload byte in the compacted segment. The reopened store
  // maps the tampered file fresh — and the benefactor's read must catch it.
  auto segments = SegmentFiles(pristine_);
  auto records = WalkSegment(segments.back());
  ASSERT_EQ(records.size(), 1u);
  const std::uint64_t flip_at = records[0].payload + records[0].length / 2;

  auto reopened = MakeDiskChunkStore(pristine_.string(), small);
  ASSERT_TRUE(reopened.ok());
  // Recovery CRC-checks records, so tampering after recovery models the
  // bit rot the paper's benefactors must catch at read time (§IV.C).
  ChunkStore* tampered_store = reopened.value().get();
  Benefactor tampered("tamper-host", std::move(reopened).value(), 1_GiB);
  FlipBit(segments.back(), flip_at);
  ASSERT_TRUE(tampered_store->Contains(survivor));
  auto read = tampered.GetChunk(survivor);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
}

TEST_F(DiskSegmentRecoveryTest, WipeUnlinksEverythingButHeldSlicesLive) {
  auto store = MakeDiskChunkStore(pristine_.string());
  ASSERT_TRUE(store.ok());
  Bytes data = rng_.RandomBytes(3000);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store.value()->Put(id, data).ok());

  auto held = store.value()->Get(id);
  ASSERT_TRUE(held.ok());

  ASSERT_TRUE(store.value()->Wipe().ok());
  EXPECT_EQ(store.value()->ChunkCount(), 0u);
  EXPECT_EQ(store.value()->BytesUsed(), 0u);
  EXPECT_TRUE(SegmentFiles(pristine_).empty());
  EXPECT_EQ(held.value(), data);  // mmap'd pages survive the unlink

  // The wiped store starts a fresh segment on the next write.
  ASSERT_TRUE(store.value()->Put(id, data).ok());
  auto again = store.value()->Get(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), data);
}

TEST_F(DiskSegmentRecoveryTest, GetIsZeroCopyFromTheMapping) {
  auto store = MakeDiskChunkStore(pristine_.string());
  ASSERT_TRUE(store.ok());
  Bytes data = rng_.RandomBytes(4096);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store.value()->Put(id, data).ok());

  CopyStatsSnapshot before = copy_stats::Snapshot();
  auto a = store.value()->Get(id);
  auto b = store.value()->Get(id);
  CopyStatsSnapshot after = copy_stats::Snapshot();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(after.materializations, before.materializations);
  EXPECT_EQ(after.payload_copies, before.payload_copies);
  EXPECT_TRUE(a.value().SharesBufferWith(b.value()));  // one mapping
  EXPECT_EQ(store.value()->Stats().mmap_reads, 2u);
}

}  // namespace
}  // namespace stdchk
