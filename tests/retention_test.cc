// Automated, time-sensitive data management (paper §IV.D) exercised through
// the whole cluster: policies purge versions at the manager and GC reclaims
// the chunks on benefactors.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

class RetentionClusterTest : public ::testing::Test {
 protected:
  RetentionClusterTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::uint64_t TotalStoredBytes() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
      total += cluster_->benefactor(i).BytesUsed();
    }
    return total;
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{11};
};

TEST_F(RetentionClusterTest, AutomatedReplaceKeepsOnlyNewestImage) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  ASSERT_TRUE(cluster_->manager().SetFolderPolicy("app", policy).ok());

  Bytes last;
  for (std::uint64_t t = 1; t <= 5; ++t) {
    last = rng_.RandomBytes(4 * 1024);
    ASSERT_TRUE(cluster_->client()
                    .WriteFile(CheckpointName{"app", "n1", t}, last)
                    .ok());
    cluster_->Tick(1.0);
  }
  cluster_->Settle();

  auto versions = cluster_->manager().ListVersions("app");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_EQ(versions.value()[0].timestep, 5u);
  EXPECT_EQ(TotalStoredBytes(), last.size());

  auto read_back = cluster_->client().ReadFile(CheckpointName{"app", "n1", 5});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), last);
}

TEST_F(RetentionClusterTest, AutomatedPurgeDropsOldImages) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedPurge;
  policy.purge_age_us = 30'000'000;  // 30 s
  ASSERT_TRUE(cluster_->manager().SetFolderPolicy("app", policy).ok());

  ASSERT_TRUE(cluster_->client()
                  .WriteFile(CheckpointName{"app", "n1", 1},
                             rng_.RandomBytes(2048))
                  .ok());
  // 10 seconds later, a second image.
  for (int i = 0; i < 10; ++i) cluster_->Tick(1.0);
  ASSERT_TRUE(cluster_->client()
                  .WriteFile(CheckpointName{"app", "n1", 2},
                             rng_.RandomBytes(2048))
                  .ok());

  // 25 more seconds: T1 is 35 s old (purged), T2 is 25 s old (kept).
  for (int i = 0; i < 25; ++i) cluster_->Tick(1.0);
  auto versions = cluster_->manager().ListVersions("app");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_EQ(versions.value()[0].timestep, 2u);

  // Another 10 seconds: everything gone, storage reclaimed.
  for (int i = 0; i < 10; ++i) cluster_->Tick(1.0);
  cluster_->Settle();
  EXPECT_TRUE(cluster_->manager().ListVersions("app").value().empty());
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

TEST_F(RetentionClusterTest, NoInterventionKeepsEverything) {
  for (std::uint64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(cluster_->client()
                    .WriteFile(CheckpointName{"app", "n1", t},
                               rng_.RandomBytes(1024))
                    .ok());
  }
  for (int i = 0; i < 100; ++i) cluster_->Tick(1.0);
  EXPECT_EQ(cluster_->manager().ListVersions("app").value().size(), 4u);
}

TEST_F(RetentionClusterTest, PoliciesAreIndependentPerFolder) {
  FolderPolicy replace;
  replace.retention = RetentionPolicy::kAutomatedReplace;
  ASSERT_TRUE(cluster_->manager().SetFolderPolicy("volatile", replace).ok());

  for (std::uint64_t t = 1; t <= 3; ++t) {
    ASSERT_TRUE(cluster_->client()
                    .WriteFile(CheckpointName{"volatile", "n", t},
                               rng_.RandomBytes(512))
                    .ok());
    ASSERT_TRUE(cluster_->client()
                    .WriteFile(CheckpointName{"archive", "n", t},
                               rng_.RandomBytes(512))
                    .ok());
  }
  cluster_->Settle();
  EXPECT_EQ(cluster_->manager().ListVersions("volatile").value().size(), 1u);
  EXPECT_EQ(cluster_->manager().ListVersions("archive").value().size(), 3u);
}

TEST_F(RetentionClusterTest, ReplaceWithDedupOnlyReclaimsUnsharedChunks) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  ASSERT_TRUE(cluster_->manager().SetFolderPolicy("app", policy).ok());

  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  auto client = cluster_->MakeClient(options);

  // v2 shares its first half with v1.
  Bytes v1 = rng_.RandomBytes(8 * 1024);
  Bytes v2 = v1;
  for (std::size_t i = 4 * 1024; i < v2.size(); ++i) v2[i] ^= 0x77;

  ASSERT_TRUE(client->WriteFile(CheckpointName{"app", "n", 1}, v1).ok());
  ASSERT_TRUE(client->WriteFile(CheckpointName{"app", "n", 2}, v2).ok());
  cluster_->Settle();

  // Only T2 remains; its chunks (8K) survive, v1's unshared tail is gone.
  EXPECT_EQ(TotalStoredBytes(), 8u * 1024);
  auto read_back = client->ReadFile(CheckpointName{"app", "n", 2});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), v2);
}

}  // namespace
}  // namespace stdchk
