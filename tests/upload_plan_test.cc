#include "chkpt/upload_plan.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"

namespace stdchk {
namespace {

TEST(UploadPlanTest, NoOracleMeansEverythingNovel) {
  Rng rng(1);
  Bytes image = rng.RandomBytes(10 * 1024);
  FixedSizeChunker chunker(1024);
  auto plan = PlanUpload(image, chunker, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chunks.size(), 10u);
  EXPECT_EQ(plan->novel_bytes, image.size());
  EXPECT_EQ(plan->reused_bytes(), 0u);
  EXPECT_DOUBLE_EQ(plan->dedup_ratio(), 0.0);
}

TEST(UploadPlanTest, OracleMarksKnownChunks) {
  Rng rng(2);
  Bytes image = rng.RandomBytes(8 * 1024);
  FixedSizeChunker chunker(1024);

  // Pretend the system already stores the even-indexed chunks.
  auto spans = chunker.Split(image);
  auto ids = HashChunks(image, spans);
  std::unordered_set<std::uint64_t> known_set;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    known_set.insert(ids[i].digest.Prefix64());
  }
  KnownChunksFn oracle = [&](const std::vector<ChunkId>& query)
      -> Result<std::vector<bool>> {
    std::vector<bool> out(query.size());
    for (std::size_t i = 0; i < query.size(); ++i) {
      out[i] = known_set.contains(query[i].digest.Prefix64());
    }
    return out;
  };

  auto plan = PlanUpload(image, chunker, oracle);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_bytes, image.size());
  EXPECT_EQ(plan->novel_bytes, image.size() / 2);
  EXPECT_DOUBLE_EQ(plan->dedup_ratio(), 0.5);
  for (std::size_t i = 0; i < plan->chunks.size(); ++i) {
    EXPECT_EQ(plan->chunks[i].novel, i % 2 == 1) << i;
  }
}

TEST(UploadPlanTest, OracleErrorPropagates) {
  Rng rng(3);
  Bytes image = rng.RandomBytes(2048);
  FixedSizeChunker chunker(1024);
  KnownChunksFn oracle = [](const std::vector<ChunkId>&)
      -> Result<std::vector<bool>> {
    return UnavailableError("manager down");
  };
  EXPECT_EQ(PlanUpload(image, chunker, oracle).status().code(),
            StatusCode::kUnavailable);
}

TEST(UploadPlanTest, WrongCardinalityIsInternalError) {
  Rng rng(4);
  Bytes image = rng.RandomBytes(2048);
  FixedSizeChunker chunker(1024);
  KnownChunksFn oracle = [](const std::vector<ChunkId>&)
      -> Result<std::vector<bool>> {
    return std::vector<bool>{true};  // wrong size
  };
  EXPECT_EQ(PlanUpload(image, chunker, oracle).status().code(),
            StatusCode::kInternal);
}

TEST(UploadPlanTest, SpansAndIdsAreConsistent) {
  Rng rng(5);
  Bytes image = rng.RandomBytes(4096 + 17);
  FixedSizeChunker chunker(1024);
  auto plan = PlanUpload(image, chunker, nullptr);
  ASSERT_TRUE(plan.ok());
  for (const PlannedChunk& pc : plan->chunks) {
    EXPECT_EQ(pc.id, ChunkId::For(ByteSpan(image.data() + pc.span.offset,
                                           pc.span.size)));
  }
  EXPECT_EQ(plan->chunks.back().span.size, 17u);
}

TEST(UploadPlanTest, EmptyImage) {
  FixedSizeChunker chunker(1024);
  auto plan = PlanUpload(ByteSpan{}, chunker, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->chunks.empty());
  EXPECT_EQ(plan->total_bytes, 0u);
}

}  // namespace
}  // namespace stdchk
