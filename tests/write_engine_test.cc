// Unit coverage for the staged write engine's layers: ChunkPlanner sealing,
// RoundRobinPlacement walks, the batched multi-chunk PUT path, and the
// manager's reservation-stripe repair.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "benefactor/benefactor.h"
#include "chunk/chunk_store.h"
#include "client/chunk_planner.h"
#include "client/placement.h"
#include "common/rng.h"
#include "core/local_transport.h"
#include "manager/metadata_manager.h"
#include "manager/virtual_clock.h"

namespace stdchk {
namespace {

// ---- ChunkPlanner -----------------------------------------------------------

std::vector<ChunkId> PlanIds(const std::vector<StagedChunk>& chunks) {
  std::vector<ChunkId> ids;
  for (const StagedChunk& c : chunks) ids.push_back(c.id);
  return ids;
}

TEST(ChunkPlannerTest, FixedSizeSealsFullChunksImmediately) {
  ChunkPlanner planner(std::make_shared<FixedSizeChunker>(1024));
  Rng rng(1);
  Bytes data = rng.RandomBytes(2048 + 100);
  planner.Append(data);

  auto sealed = planner.Drain(/*final=*/false);
  EXPECT_EQ(sealed.size(), 2u);  // two full chunks; the 100-byte tail waits
  EXPECT_EQ(planner.buffered_bytes(), 100u);

  auto tail = planner.Drain(/*final=*/true);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].data.size(), 100u);
  EXPECT_EQ(planner.buffered_bytes(), 0u);
}

TEST(ChunkPlannerTest, ChunkIdsMatchContent) {
  ChunkPlanner planner(std::make_shared<FixedSizeChunker>(256));
  Rng rng(2);
  Bytes data = rng.RandomBytes(1000);
  planner.Append(data);
  auto chunks = planner.Drain(/*final=*/true);
  std::size_t offset = 0;
  for (const StagedChunk& c : chunks) {
    EXPECT_EQ(c.id, ChunkId::For(c.data.span()));
    EXPECT_TRUE(std::equal(c.data.span().begin(), c.data.span().end(),
                           data.begin() + static_cast<std::ptrdiff_t>(offset)));
    offset += c.data.size();
  }
  EXPECT_EQ(offset, data.size());
}

TEST(ChunkPlannerTest, BoundariesInvariantToWriteGranularity) {
  // The engine's protocol-equivalence guarantee rests on this: however the
  // bytes arrive and drain, the sealed boundary sequence is a pure
  // function of content.
  auto chunker = std::make_shared<ContentBasedChunker>(
      CbchParams{.window_m = 20, .boundary_bits_k = 10, .advance_p = 1});
  Rng rng(3);
  Bytes data = rng.RandomBytes(96 * 1024);

  // Reference: the whole image in one final drain.
  ChunkPlanner whole(chunker);
  whole.Append(data);
  auto reference = PlanIds(whole.Drain(/*final=*/true));
  ASSERT_GT(reference.size(), 10u);

  // Streamed: odd piece sizes, draining after every append.
  for (std::size_t piece : {1u, 7u, 999u, 4096u, 40000u}) {
    ChunkPlanner streamed(chunker);
    std::vector<ChunkId> ids;
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t n = std::min(piece, data.size() - pos);
      streamed.Append(ByteSpan(data.data() + pos, n));
      pos += n;
      for (auto& c : streamed.Drain(/*final=*/false)) ids.push_back(c.id);
    }
    for (auto& c : streamed.Drain(/*final=*/true)) ids.push_back(c.id);
    EXPECT_EQ(ids, reference) << "piece=" << piece;
  }
}

// ---- RoundRobinPlacement ----------------------------------------------------

TEST(RoundRobinPlacementTest, WalksStripeFromAdvancingCursor) {
  RoundRobinPlacement placement;
  std::vector<NodeId> stripe{10, 11, 12};

  auto walk1 = placement.PlanChunk(stripe);
  ASSERT_GE(walk1.size(), stripe.size());
  EXPECT_EQ(walk1[0], 10u);
  EXPECT_EQ(walk1[1], 11u);
  EXPECT_EQ(walk1[2], 12u);
  placement.OnChunkPlaced(stripe);

  auto walk2 = placement.PlanChunk(stripe);
  EXPECT_EQ(walk2[0], 11u);  // cursor advanced
  // The walk wraps so every member appears more than once (failover slack).
  EXPECT_EQ(walk2.size(), stripe.size() * 2 + 4);
}

// ---- Batched multi-chunk PUT ------------------------------------------------

class BatchPutTest : public ::testing::Test {
 protected:
  BatchPutTest() : manager_(&clock_) {}

  Benefactor* AddNode(std::uint64_t capacity) {
    auto b = std::make_unique<Benefactor>("d" + std::to_string(nodes_.size()),
                                          MakeMemoryChunkStore(), capacity);
    EXPECT_TRUE(b->JoinPool(manager_).ok());
    transport_.AddEndpoint(b.get());
    nodes_.push_back(std::move(b));
    return nodes_.back().get();
  }

  std::vector<ChunkPut> MakeBatch(const std::vector<Bytes>& payloads) {
    std::vector<ChunkPut> batch;
    for (const Bytes& p : payloads) {
      batch.push_back(ChunkPut{ChunkId::For(p), BufferSlice::Copy(p)});
    }
    return batch;
  }

  VirtualClock clock_;
  MetadataManager manager_;
  LocalTransport transport_;
  std::vector<std::unique_ptr<Benefactor>> nodes_;
  Rng rng_{9};
};

TEST_F(BatchPutTest, BatchIsOneRpcOnTheTransport) {
  Benefactor* node = AddNode(1_GiB);
  std::vector<Bytes> payloads{rng_.RandomBytes(100), rng_.RandomBytes(200),
                              rng_.RandomBytes(300)};
  auto batch = MakeBatch(payloads);

  std::uint64_t rpcs_before = transport_.rpc_count();
  ASSERT_TRUE(transport_.PutChunkBatch(node->id(), batch).ok());
  EXPECT_EQ(transport_.rpc_count(), rpcs_before + 1);
  EXPECT_EQ(node->ChunkCount(), 3u);
  EXPECT_EQ(transport_.bytes_moved(), 600u);
  for (const ChunkPut& put : batch) EXPECT_TRUE(node->HasChunk(put.id));
}

TEST_F(BatchPutTest, RejectedBatchStoresNothing) {
  // Capacity admits either chunk alone but not both: the whole batch must
  // bounce so the client can re-route it wholesale.
  Benefactor* node = AddNode(500);
  std::vector<Bytes> payloads{rng_.RandomBytes(300), rng_.RandomBytes(300)};
  auto batch = MakeBatch(payloads);

  EXPECT_EQ(transport_.PutChunkBatch(node->id(), batch).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(node->ChunkCount(), 0u);

  ASSERT_TRUE(transport_.PutChunk(node->id(), batch[0].id, payloads[0]).ok());
  EXPECT_EQ(node->ChunkCount(), 1u);
}

TEST_F(BatchPutTest, CorruptChunkPoisonsTheBatch) {
  Benefactor* node = AddNode(1_GiB);
  Bytes good = rng_.RandomBytes(100);
  Bytes evil = rng_.RandomBytes(100);
  std::vector<ChunkPut> batch{
      ChunkPut{ChunkId::For(good), BufferSlice::Copy(good)},
      // content does not match address
      ChunkPut{ChunkId::For(evil), BufferSlice::Copy(good)},
  };
  EXPECT_EQ(transport_.PutChunkBatch(node->id(), batch).code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(node->ChunkCount(), 0u);
}

TEST_F(BatchPutTest, BatchToOfflineNodeFails) {
  Benefactor* node = AddNode(1_GiB);
  node->Crash();
  std::vector<Bytes> payloads{rng_.RandomBytes(64)};
  auto batch = MakeBatch(payloads);
  EXPECT_EQ(transport_.PutChunkBatch(node->id(), batch).code(),
            StatusCode::kUnavailable);
}

// ---- Manager: reservation stripe repair ------------------------------------

TEST_F(BatchPutTest, ReplaceReservationNodeSwapsInFreshDonor) {
  for (int i = 0; i < 4; ++i) AddNode(1_GiB);

  auto reservation = manager_.ReserveStripe(2, 1000);
  ASSERT_TRUE(reservation.ok());
  NodeId dead = reservation.value().stripe[0];

  auto fresh = manager_.ReplaceReservationNode(reservation.value().id, dead);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh.value(), dead);
  // The replacement came from outside the original stripe.
  for (NodeId member : reservation.value().stripe) {
    EXPECT_NE(fresh.value(), member);
  }

  // The dead node's reserved accounting moved to the replacement.
  for (const BenefactorStatus& status : manager_.registry().Export()) {
    if (status.id == dead) {
      EXPECT_EQ(status.reserved_bytes, 0u);
    }
    if (status.id == fresh.value()) {
      EXPECT_GT(status.reserved_bytes, 0u);
    }
  }

  // Swapping a non-member fails cleanly.
  EXPECT_EQ(manager_.ReplaceReservationNode(reservation.value().id, dead)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      manager_.ReplaceReservationNode(999999, fresh.value()).status().code(),
      StatusCode::kNotFound);
}

}  // namespace
}  // namespace stdchk
