#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class GcTest : public ::testing::Test {
 protected:
  GcTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::uint64_t TotalStoredBytes() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
      total += cluster_->benefactor(i).BytesUsed();
    }
    return total;
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{17};
};

TEST_F(GcTest, DeletedFilesChunksAreReclaimed) {
  Bytes data = rng_.RandomBytes(8 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  EXPECT_EQ(TotalStoredBytes(), data.size());

  ASSERT_TRUE(cluster_->client().Delete(Name(1)).ok());
  // The deletion happens only at the manager: chunks are orphaned until the
  // next GC exchange (§IV.A).
  EXPECT_EQ(TotalStoredBytes(), data.size());
  cluster_->Settle();
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

TEST_F(GcTest, GcNeverCollectsLiveChunks) {
  Bytes keep = rng_.RandomBytes(4 * 1024);
  Bytes drop = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), keep).ok());
  ASSERT_TRUE(cluster_->client().WriteFile(Name(2), drop).ok());
  ASSERT_TRUE(cluster_->client().Delete(Name(2)).ok());
  cluster_->Settle();

  EXPECT_EQ(TotalStoredBytes(), keep.size());
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), keep);
}

TEST_F(GcTest, SharedChunksSurviveSiblingDeletion) {
  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  auto client = cluster_->MakeClient(options);

  Bytes image = rng_.RandomBytes(8 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), image).ok());
  ASSERT_TRUE(client->WriteFile(Name(2), image).ok());  // fully deduped

  ASSERT_TRUE(client->Delete(Name(1)).ok());
  cluster_->Settle();

  // T2 still references every chunk: nothing may be collected.
  EXPECT_EQ(TotalStoredBytes(), image.size());
  auto read_back = client->ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), image);

  ASSERT_TRUE(client->Delete(Name(2)).ok());
  cluster_->Settle();
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

TEST_F(GcTest, InFlightWriteChunksAreNotCollected) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(session.value()->Write(data).ok());

  // Background GC runs while the session is open (uncommitted chunks are
  // on benefactors but unknown to the catalog).
  for (int i = 0; i < 3; ++i) cluster_->Tick(1.0);
  ASSERT_TRUE(session.value()->Close().ok());

  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(GcTest, AbortedWriteChunksAreEventuallyReclaimed) {
  {
    auto session = cluster_->client().CreateFile(Name(1));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(6 * 1024)).ok());
    session.value()->Abort();
  }
  cluster_->Settle();
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

TEST_F(GcTest, AbandonedSessionReclaimedAfterReservationTtl) {
  // A client that dies without Abort(): the reservation GC expires the
  // reservation (60 s TTL), after which the chunks become collectable.
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(4 * 1024)).ok());
  // Simulate client death: abandon the session (never Close/Abort, never
  // destroyed). Parked reachable from a static so LeakSanitizer treats it
  // as alive rather than leaked.
  static auto* graveyard = new std::vector<std::unique_ptr<WriteSession>>();
  graveyard->push_back(std::move(session).value());

  EXPECT_GT(TotalStoredBytes(), 0u);
  for (int i = 0; i < 70; ++i) cluster_->Tick(1.0);
  cluster_->Settle();
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

// End-to-end GC against the log-structured disk store: deleting a file's
// chunks drains the donors' segment logs, and the nodes keep serving
// writes and reads afterwards (appends continue past reclaimed segments).
TEST(DiskGcTest, DeletedFilesChunksAreReclaimedFromSegmentLogs) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_disk_gc_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.disk_root = dir.string();
  StdchkCluster cluster(options);
  Rng rng(18);

  auto total_stored = [&cluster]() {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
      total += cluster.benefactor(i).BytesUsed();
    }
    return total;
  };

  Bytes doomed = rng.RandomBytes(8 * 1024);
  Bytes kept = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n1", 1}, doomed).ok());
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n1", 2}, kept).ok());
  EXPECT_EQ(total_stored(), doomed.size() + kept.size());

  ASSERT_TRUE(cluster.client().Delete(CheckpointName{"app", "n1", 1}).ok());
  cluster.Settle();
  EXPECT_EQ(total_stored(), kept.size());

  auto read_back = cluster.client().ReadFile(CheckpointName{"app", "n1", 2});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), kept);

  // New writes keep landing after GC reclaimed log space.
  Bytes more = rng.RandomBytes(4 * 1024);
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n1", 3}, more).ok());
  auto more_back = cluster.client().ReadFile(CheckpointName{"app", "n1", 3});
  ASSERT_TRUE(more_back.ok());
  EXPECT_EQ(more_back.value(), more);

  std::filesystem::remove_all(dir);
}

TEST_F(GcTest, RestartedNodeDropsStaleChunks) {
  Bytes data = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());

  // The node crashes; heartbeat expiry drops its replicas; the file is
  // deleted while it is away. On restart its chunks are orphans.
  cluster_->benefactor(0).Crash();
  cluster_->benefactor(1).Crash();
  for (int i = 0; i < 15; ++i) cluster_->Tick(1.0);
  ASSERT_TRUE(cluster_->client().Delete(Name(1)).ok());

  ASSERT_TRUE(cluster_->RestartBenefactor(0).ok());
  ASSERT_TRUE(cluster_->RestartBenefactor(1).ok());
  cluster_->Settle();
  EXPECT_EQ(TotalStoredBytes(), 0u);
}

}  // namespace
}  // namespace stdchk
