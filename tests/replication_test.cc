#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() {
    ClusterOptions options;
    options.benefactor_count = 6;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  int CountReplicas(const CheckpointName& name) {
    auto record = cluster_->manager().GetVersion(name);
    EXPECT_TRUE(record.ok());
    int min_replicas = INT32_MAX;
    for (const auto& loc : record.value().chunk_map.chunks) {
      min_replicas = std::min(min_replicas,
                              static_cast<int>(loc.replicas.size()));
    }
    return min_replicas;
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{3};
};

TEST_F(ReplicationTest, BackgroundReplicationReachesTarget) {
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kOptimistic;
  options.replication_target = 3;
  auto client = cluster_->MakeClient(options);

  ASSERT_TRUE(client->WriteFile(Name(1), rng_.RandomBytes(8 * 1024)).ok());
  EXPECT_EQ(CountReplicas(Name(1)), 1);  // optimistic: one replica at close

  cluster_->Settle();
  EXPECT_EQ(CountReplicas(Name(1)), 3);
}

TEST_F(ReplicationTest, ReplicationRepairsNodeLoss) {
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kPessimistic;
  options.replication_target = 2;
  auto client = cluster_->MakeClient(options);
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), data).ok());

  // Kill one node; after heartbeat expiry + repair, every chunk is back to
  // two replicas on live nodes.
  cluster_->benefactor(0).Crash();
  for (int i = 0; i < 20; ++i) cluster_->Tick(1.0);
  cluster_->Settle();

  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  NodeId dead = cluster_->benefactor(0).id();
  for (const auto& loc : record.value().chunk_map.chunks) {
    int live = 0;
    for (NodeId node : loc.replicas) {
      if (node != dead) ++live;
    }
    EXPECT_GE(live, 2) << "chunk " << loc.id.ToHex();
  }

  // And the data is still readable.
  auto read_back = client->ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(ReplicationTest, LosingEveryReplicaIsReportedAsDataLoss) {
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), rng_.RandomBytes(2048)).ok());
  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());

  // Replication target is 1: killing the single holder loses the chunk.
  std::set<NodeId> holders;
  for (const auto& loc : record.value().chunk_map.chunks) {
    for (NodeId node : loc.replicas) holders.insert(node);
  }
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (holders.contains(cluster_->benefactor(i).id())) {
      cluster_->benefactor(i).Crash();
    }
  }
  for (int i = 0; i < 20; ++i) cluster_->Tick(1.0);

  EXPECT_FALSE(cluster_->manager().TakeLostChunks().empty() ||
               cluster_->client().ReadFile(Name(1)).ok());
}

TEST_F(ReplicationTest, DedupedVersionsShareReplicas) {
  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  options.replication_target = 2;
  options.semantics = WriteSemantics::kOptimistic;
  auto client = cluster_->MakeClient(options);

  Bytes image = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), image).ok());
  ASSERT_TRUE(client->WriteFile(Name(2), image).ok());
  cluster_->Settle();

  // Both versions reference the same chunks; storage holds target x unique.
  EXPECT_EQ(CountReplicas(Name(1)), 2);
  EXPECT_EQ(CountReplicas(Name(2)), 2);
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    stored += cluster_->benefactor(i).BytesUsed();
  }
  EXPECT_EQ(stored, 2u * 4 * 1024);
}

TEST_F(ReplicationTest, SettleConvergesAndStops) {
  ClientOptions options = cluster_->client().options();
  options.replication_target = 2;
  auto client = cluster_->MakeClient(options);
  ASSERT_TRUE(client->WriteFile(Name(1), rng_.RandomBytes(4096)).ok());

  cluster_->Settle();
  // After convergence a further tick issues no replication commands.
  auto report = cluster_->Tick(1.0);
  EXPECT_EQ(report.replication_commands, 0u);
  EXPECT_EQ(cluster_->manager().pending_replications(), 0u);
}

TEST_F(ReplicationTest, ReplicationSurvivesTargetNodeFailure) {
  ClientOptions options = cluster_->client().options();
  options.replication_target = 3;
  auto client = cluster_->MakeClient(options);
  ASSERT_TRUE(client->WriteFile(Name(1), rng_.RandomBytes(2048)).ok());

  // Crash a non-holding node so some replication copies fail, then recover.
  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  std::set<NodeId> holders;
  for (const auto& loc : record.value().chunk_map.chunks) {
    for (NodeId node : loc.replicas) holders.insert(node);
  }
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (!holders.contains(cluster_->benefactor(i).id())) {
      cluster_->benefactor(i).Crash();
      break;
    }
  }
  cluster_->Settle(128);
  // Remaining pool is 5 nodes; target 3 is still reachable.
  EXPECT_EQ(CountReplicas(Name(1)), 3);
}

}  // namespace
}  // namespace stdchk
