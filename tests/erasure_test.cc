#include "erasure/reed_solomon.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "erasure/gf256.h"

namespace stdchk {
namespace {

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(gf256::Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf256::Add(7, 7), 0);
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::Mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::Mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf256::Mul(0, static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256Test, MulCommutativeAssociative) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<std::uint8_t>(rng.Next());
    auto b = static_cast<std::uint8_t>(rng.Next());
    auto c = static_cast<std::uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
    EXPECT_EQ(gf256::Mul(gf256::Mul(a, b), c), gf256::Mul(a, gf256::Mul(b, c)));
  }
}

TEST(Gf256Test, MulDistributesOverAdd) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<std::uint8_t>(rng.Next());
    auto b = static_cast<std::uint8_t>(rng.Next());
    auto c = static_cast<std::uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, gf256::Add(b, c)),
              gf256::Add(gf256::Mul(a, b), gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, InverseRoundTrips) {
  for (int a = 1; a < 256; ++a) {
    auto inv = gf256::Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
    EXPECT_EQ(gf256::Div(1, static_cast<std::uint8_t>(a)), inv);
  }
}

TEST(Gf256Test, DivInvertsMul) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<std::uint8_t>(rng.Next());
    auto b = static_cast<std::uint8_t>(rng.NextInRange(1, 255));
    EXPECT_EQ(gf256::Div(gf256::Mul(a, b), b), a);
  }
}

TEST(Gf256Test, KnownProduct) {
  // 0x53 * 0xCA = 0x01 in AES-polynomial GF(256)... (0x11B). We use 0x11D,
  // where the classic known pair is 2 * 0x8E = 1 (0x8E = inverse of 2).
  EXPECT_EQ(gf256::Mul(2, gf256::Inv(2)), 1);
  EXPECT_EQ(gf256::Exp(0), 1);
  EXPECT_EQ(gf256::Exp(1), 2);
  EXPECT_EQ(gf256::Exp(255), 1);  // order of the multiplicative group
}

TEST(Gf256Test, MulAccumMatchesScalarLoop) {
  Rng rng(4);
  Bytes src = rng.RandomBytes(1000);
  Bytes dst1 = rng.RandomBytes(1000);
  Bytes dst2 = dst1;
  std::uint8_t c = 0x5A;
  gf256::MulAccum(c, src.data(), dst1.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst2[i] = gf256::Add(dst2[i], gf256::Mul(c, src[i]));
  }
  EXPECT_EQ(dst1, dst2);
}

// ---- Reed-Solomon -----------------------------------------------------------

struct RsCase {
  int k;
  int m;
};

class ReedSolomonTest : public ::testing::TestWithParam<RsCase> {};

TEST_P(ReedSolomonTest, SurvivesEveryLossPatternUpToM) {
  const auto [k, m] = GetParam();
  auto rs = ReedSolomon::Create(k, m);
  ASSERT_TRUE(rs.ok());

  Rng rng(static_cast<std::uint64_t>(k * 100 + m));
  Bytes data = rng.RandomBytes(static_cast<std::size_t>(k) * 257 + 13);
  std::vector<Bytes> shards = rs->EncodeBlock(data);
  ASSERT_EQ(shards.size(), static_cast<std::size_t>(k + m));

  // Knock out m shards at rotating positions; always recoverable.
  for (int start = 0; start < k + m; ++start) {
    std::vector<std::optional<Bytes>> damaged(shards.begin(), shards.end());
    for (int loss = 0; loss < m; ++loss) {
      damaged[static_cast<std::size_t>((start + loss * 2) % (k + m))] =
          std::nullopt;
    }
    auto decoded = rs->DecodeBlock(damaged, data.size());
    ASSERT_TRUE(decoded.ok()) << "start=" << start;
    EXPECT_EQ(decoded.value(), data);
  }
}

TEST_P(ReedSolomonTest, ReconstructRestoresParityToo) {
  const auto [k, m] = GetParam();
  auto rs = ReedSolomon::Create(k, m);
  ASSERT_TRUE(rs.ok());
  Rng rng(static_cast<std::uint64_t>(k * 7 + m));
  Bytes data = rng.RandomBytes(static_cast<std::size_t>(k) * 64);
  std::vector<Bytes> shards = rs->EncodeBlock(data);

  std::vector<std::optional<Bytes>> damaged(shards.begin(), shards.end());
  // Lose the last parity shard, plus a data shard when m allows two losses.
  damaged[static_cast<std::size_t>(k + m - 1)] = std::nullopt;
  if (m >= 2) damaged[0] = std::nullopt;

  ASSERT_TRUE(rs->Reconstruct(damaged).ok());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ASSERT_TRUE(damaged[i].has_value());
    EXPECT_EQ(*damaged[i], shards[i]) << "shard " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReedSolomonTest,
    ::testing::Values(RsCase{1, 1}, RsCase{2, 1}, RsCase{4, 2}, RsCase{8, 2},
                      RsCase{8, 3}, RsCase{10, 4}, RsCase{16, 4}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "m" +
             std::to_string(info.param.m);
    });

TEST(ReedSolomonTest, FailsBeyondMLosses) {
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  Rng rng(9);
  Bytes data = rng.RandomBytes(4096);
  std::vector<Bytes> shards = rs->EncodeBlock(data);
  std::vector<std::optional<Bytes>> damaged(shards.begin(), shards.end());
  damaged[0] = damaged[1] = damaged[2] = std::nullopt;  // 3 > m = 2
  EXPECT_EQ(rs->Reconstruct(damaged).code(), StatusCode::kDataLoss);
}

TEST(ReedSolomonTest, NoLossIsNoOp) {
  auto rs = ReedSolomon::Create(3, 2);
  ASSERT_TRUE(rs.ok());
  Bytes data = ToBytes("erasure coded checkpoint data");
  std::vector<Bytes> shards = rs->EncodeBlock(data);
  std::vector<std::optional<Bytes>> intact(shards.begin(), shards.end());
  ASSERT_TRUE(rs->Reconstruct(intact).ok());
  auto decoded = rs->DecodeBlock(intact, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(ReedSolomonTest, ValidatesParameters) {
  EXPECT_FALSE(ReedSolomon::Create(0, 1).ok());
  EXPECT_FALSE(ReedSolomon::Create(1, 0).ok());
  EXPECT_FALSE(ReedSolomon::Create(200, 100).ok());
  EXPECT_TRUE(ReedSolomon::Create(251, 4).ok());
}

TEST(ReedSolomonTest, EncodeParityRejectsUnevenShards) {
  auto rs = ReedSolomon::Create(2, 1);
  ASSERT_TRUE(rs.ok());
  std::vector<Bytes> uneven{Bytes(10), Bytes(11)};
  EXPECT_FALSE(rs->EncodeParity(uneven).ok());
  std::vector<Bytes> wrong_count{Bytes(10)};
  EXPECT_FALSE(rs->EncodeParity(wrong_count).ok());
}

TEST(ReedSolomonTest, TinyAndEmptyPayloads) {
  auto rs = ReedSolomon::Create(4, 2);
  ASSERT_TRUE(rs.ok());
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}}) {
    Rng rng(n + 1);
    Bytes data = rng.RandomBytes(n);
    std::vector<Bytes> shards = rs->EncodeBlock(data);
    std::vector<std::optional<Bytes>> damaged(shards.begin(), shards.end());
    damaged[1] = std::nullopt;
    damaged[4] = std::nullopt;
    auto decoded = rs->DecodeBlock(damaged, n);
    ASSERT_TRUE(decoded.ok()) << n;
    EXPECT_EQ(decoded.value(), data);
  }
}

}  // namespace
}  // namespace stdchk
