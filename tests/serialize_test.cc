#include "common/serialize.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stdchk {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  BinaryWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.14159);
  w.Bool(true);
  w.Bool(false);
  Bytes data = w.Take();

  BinaryReader r(data);
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64().value(), -42);
  EXPECT_DOUBLE_EQ(r.F64().value(), 3.14159);
  EXPECT_TRUE(r.Bool().value());
  EXPECT_FALSE(r.Bool().value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringsAndBlobs) {
  BinaryWriter w;
  w.Str("");
  w.Str("checkpoint.node0.T1");
  Rng rng(1);
  Bytes blob = rng.RandomBytes(1000);
  w.Blob(blob);
  Bytes data = w.Take();

  BinaryReader r(data);
  EXPECT_EQ(r.Str().value(), "");
  EXPECT_EQ(r.Str().value(), "checkpoint.node0.T1");
  EXPECT_EQ(r.Blob().value(), blob);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncationIsDetectedEverywhere) {
  BinaryWriter w;
  w.U32(7);
  w.Str("hello");
  w.U64(9);
  Bytes data = w.Take();

  // Every strict prefix must fail somewhere, never crash or mis-read.
  for (std::size_t cut = 0; cut < data.size(); ++cut) {
    BinaryReader r(ByteSpan(data.data(), cut));
    auto a = r.U32();
    if (!a.ok()) continue;
    auto b = r.Str();
    if (!b.ok()) continue;
    auto c = r.U64();
    EXPECT_FALSE(c.ok()) << "cut=" << cut;
  }
}

TEST(SerializeTest, StringLengthBeyondBufferFails) {
  BinaryWriter w;
  w.U32(1'000'000);  // claims a megabyte of payload
  Bytes data = w.Take();
  BinaryReader r(data);
  EXPECT_EQ(r.Str().status().code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, RemainingTracksPosition) {
  BinaryWriter w;
  w.U32(1);
  w.U32(2);
  Bytes data = w.Take();
  BinaryReader r(data);
  EXPECT_EQ(r.remaining(), 8u);
  ASSERT_TRUE(r.U32().ok());
  EXPECT_EQ(r.remaining(), 4u);
  ASSERT_TRUE(r.U32().ok());
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace stdchk
