#include "core/local_transport.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "manager/virtual_clock.h"

namespace stdchk {
namespace {

class LocalTransportTest : public ::testing::Test {
 protected:
  LocalTransportTest() : manager_(&clock_) {
    for (int i = 0; i < 2; ++i) {
      auto b = std::make_unique<Benefactor>("d" + std::to_string(i),
                                            MakeMemoryChunkStore(), 1_GiB);
      EXPECT_TRUE(b->JoinPool(manager_).ok());
      transport_.AddEndpoint(b.get());
      benefactors_.push_back(std::move(b));
    }
  }

  VirtualClock clock_;
  MetadataManager manager_;
  LocalTransport transport_;
  std::vector<std::unique_ptr<Benefactor>> benefactors_;
};

TEST_F(LocalTransportTest, RoutesPutAndGet) {
  Bytes data = ToBytes("transported chunk");
  ChunkId id = ChunkId::For(data);
  NodeId node = benefactors_[0]->id();
  ASSERT_TRUE(transport_.PutChunk(node, id, data).ok());
  auto got = transport_.GetChunk(node, id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data);
  EXPECT_EQ(transport_.bytes_moved(), 2 * data.size());
  EXPECT_GE(transport_.rpc_count(), 2u);
}

TEST_F(LocalTransportTest, UnknownNodeIsUnroutable) {
  Bytes data = ToBytes("x");
  EXPECT_EQ(transport_.PutChunk(777, ChunkId::For(data), data).code(),
            StatusCode::kUnavailable);
}

TEST_F(LocalTransportTest, UnreachableCutsTheLink) {
  Bytes data = ToBytes("y");
  ChunkId id = ChunkId::For(data);
  NodeId node = benefactors_[0]->id();
  transport_.SetUnreachable(node, true);
  EXPECT_EQ(transport_.PutChunk(node, id, data).code(),
            StatusCode::kUnavailable);
  // The node itself is fine — it is the network that is down.
  EXPECT_TRUE(benefactors_[0]->online());

  transport_.SetUnreachable(node, false);
  EXPECT_TRUE(transport_.PutChunk(node, id, data).ok());
}

TEST_F(LocalTransportTest, LossRateDropsSomeRpcs) {
  Bytes data = ToBytes("z");
  ChunkId id = ChunkId::For(data);
  NodeId node = benefactors_[0]->id();
  transport_.SetLossRate(node, 0.5);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!transport_.PutChunk(node, id, data).ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
}

TEST_F(LocalTransportTest, CopyChunkMovesBetweenNodes) {
  Bytes data = ToBytes("replicate me");
  ChunkId id = ChunkId::For(data);
  NodeId a = benefactors_[0]->id();
  NodeId b = benefactors_[1]->id();
  ASSERT_TRUE(transport_.PutChunk(a, id, data).ok());
  ASSERT_TRUE(transport_.CopyChunk(id, a, b).ok());
  EXPECT_TRUE(benefactors_[1]->HasChunk(id));

  // Copy from a node that lacks the chunk fails.
  ChunkId missing = ChunkId::For(ToBytes("missing"));
  EXPECT_FALSE(transport_.CopyChunk(missing, a, b).ok());
}

TEST_F(LocalTransportTest, StashRoutedToNode) {
  VersionRecord record;
  record.name = CheckpointName{"a", "n", 1};
  NodeId node = benefactors_[0]->id();
  ASSERT_TRUE(transport_.StashChunkMap(node, record, 2).ok());
  EXPECT_EQ(benefactors_[0]->stashed_count(), 1u);
}

}  // namespace
}  // namespace stdchk
