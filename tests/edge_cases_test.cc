// Grab bag of edge cases across module boundaries.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"
#include "fs/file_system.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class EdgeCasesTest : public ::testing::Test {
 protected:
  EdgeCasesTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{71};
};

TEST_F(EdgeCasesTest, AllNamespaceRpcsFailWhileManagerDown) {
  cluster_->manager().Crash();
  EXPECT_EQ(cluster_->manager().ListApps().status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->manager().ListVersions("x").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->manager().DeleteApp("x").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->manager().DeleteVersion(Name(1)).code(),
            StatusCode::kUnavailable);
  FolderPolicy policy;
  EXPECT_EQ(cluster_->manager().SetFolderPolicy("x", policy).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->manager().GetFolderPolicy("x").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(cluster_->manager()
                .GcExchange(cluster_->benefactor(0).id(), {})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST_F(EdgeCasesTest, ListVersionsOfUnknownAppIsEmptyNotError) {
  auto versions = cluster_->manager().ListVersions("ghost");
  ASSERT_TRUE(versions.ok());
  EXPECT_TRUE(versions.value().empty());
}

TEST_F(EdgeCasesTest, ConcurrentProducersOfSameVersionOneWins) {
  // Checkpoint images have a single producer by convention; if two race,
  // session semantics guarantee exactly one atomic commit wins.
  auto s1 = cluster_->client().CreateFile(Name(1));
  auto s2 = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  Bytes d1 = rng_.RandomBytes(2048);
  Bytes d2 = rng_.RandomBytes(2048);
  ASSERT_TRUE(s1.value()->Write(d1).ok());
  ASSERT_TRUE(s2.value()->Write(d2).ok());

  ASSERT_TRUE(s1.value()->Close().ok());
  auto second = s2.value()->Close();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);

  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), d1);  // the winner's content, intact

  // The loser's orphaned chunks are eventually collected.
  cluster_->Settle();
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    stored += cluster_->benefactor(i).BytesUsed();
  }
  EXPECT_EQ(stored, d1.size());
}

TEST_F(EdgeCasesTest, FileOfExactlyOneChunk) {
  Bytes data = rng_.RandomBytes(1024);  // == chunk_size
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().chunk_map.chunks.size(), 1u);
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(EdgeCasesTest, SingleByteFile) {
  Bytes data{0x42};
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(EdgeCasesTest, StripeWiderThanPoolFailsUpFront) {
  ClientOptions options = cluster_->client().options();
  options.stripe_width = 99;
  auto client = cluster_->MakeClient(options);
  auto outcome = client->WriteFile(Name(1), rng_.RandomBytes(2048));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST_F(EdgeCasesTest, DeleteWhileReaderHoldsSession) {
  // Session semantics: an open read session keeps working from its chunk
  // map until GC actually collects the chunks.
  Bytes data = rng_.RandomBytes(4096);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(cluster_->client().Delete(Name(1)).ok());
  // Before GC runs, the benefactors still hold the chunks.
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);

  // After GC, a fresh open fails and the old session's fetches would too.
  cluster_->Settle();
  EXPECT_FALSE(cluster_->client().OpenFile(Name(1)).ok());
}

TEST_F(EdgeCasesTest, FsNegativeLookupsAreNotCachedAsPositive) {
  FileSystem fs(&cluster_->client());
  EXPECT_FALSE(fs.GetAttr("/stdchk/app/app.n1.T9").ok());
  ASSERT_TRUE(cluster_->client().WriteFile(Name(9), rng_.RandomBytes(100)).ok());
  auto attr = fs.GetAttr("/stdchk/app/app.n1.T9");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 100u);
}

TEST_F(EdgeCasesTest, TimestepOrderingIndependentOfCommitOrder) {
  // Commit out of order; GetLatest follows timestep, not commit time.
  ASSERT_TRUE(cluster_->client().WriteFile(Name(5), rng_.RandomBytes(100)).ok());
  ASSERT_TRUE(cluster_->client().WriteFile(Name(3), rng_.RandomBytes(100)).ok());
  auto latest = cluster_->manager().GetLatest("app", "n1");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().name.timestep, 5u);
}

TEST_F(EdgeCasesTest, HeartbeatAfterSnapshotRestoreStillWorks) {
  Bytes snapshot = cluster_->manager().SaveSnapshot();
  ASSERT_TRUE(cluster_->manager().LoadSnapshot(snapshot).ok());
  // Node ids survive the snapshot, so existing benefactors keep
  // heartbeating without re-registering.
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    EXPECT_TRUE(
        cluster_->benefactor(i).SendHeartbeat(cluster_->manager()).ok());
  }
}

TEST_F(EdgeCasesTest, ZeroAdvanceClockTickStillPumpsWork) {
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), rng_.RandomBytes(2048)).ok());
  ASSERT_TRUE(cluster_->client().Delete(Name(1)).ok());
  // Ticks with no time advance must still run GC exchanges.
  for (int i = 0; i < 4; ++i) cluster_->Tick(0.0);
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    stored += cluster_->benefactor(i).BytesUsed();
  }
  EXPECT_EQ(stored, 0u);
}

}  // namespace
}  // namespace stdchk
