#include "manager/metadata_manager.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace stdchk {
namespace {

ChunkId MakeChunkId(int i) {
  std::string s = "mm-chunk-" + std::to_string(i);
  return ChunkId{Sha1(AsBytes(s))};
}

class MetadataManagerTest : public ::testing::Test {
 protected:
  MetadataManagerTest() : manager_(&clock_) {
    for (int i = 0; i < 4; ++i) {
      BenefactorInfo info;
      info.host = "d" + std::to_string(i);
      info.total_bytes = 1_GiB;
      info.free_bytes = 1_GiB;
      nodes_.push_back(manager_.RegisterBenefactor(info).value());
    }
  }

  VersionRecord MakeVersion(const std::string& app, std::uint64_t timestep,
                            NodeId replica, int chunk_seed = 0) {
    VersionRecord record;
    record.name = CheckpointName{app, "n1", timestep};
    ChunkLocation loc;
    loc.id = MakeChunkId(chunk_seed + static_cast<int>(timestep) * 1000);
    loc.file_offset = 0;
    loc.size = 1024;
    loc.replicas = {replica};
    record.chunk_map.chunks.push_back(loc);
    record.size = 1024;
    return record;
  }

  VirtualClock clock_;
  MetadataManager manager_;
  std::vector<NodeId> nodes_;
};

TEST_F(MetadataManagerTest, ReserveStripeReturnsDistinctNodes) {
  auto res = manager_.ReserveStripe(4, 100_MiB);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().stripe.size(), 4u);
  EXPECT_NE(res.value().id, 0u);
}

TEST_F(MetadataManagerTest, ReserveStripeFailsBeyondPool) {
  EXPECT_FALSE(manager_.ReserveStripe(5, 1_MiB).ok());
}

TEST_F(MetadataManagerTest, ReservationAffectsStripeSelection) {
  auto res = manager_.ReserveStripe(1, 1_GiB);
  ASSERT_TRUE(res.ok());
  // The reserved node now has the least effective free space.
  auto next = manager_.ReserveStripe(1, 1_MiB);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next.value().stripe[0], res.value().stripe[0]);
}

TEST_F(MetadataManagerTest, ExtendAndReleaseReservation) {
  auto res = manager_.ReserveStripe(2, 10_MiB);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(manager_.ExtendReservation(res.value().id, 10_MiB).ok());
  EXPECT_TRUE(manager_.ReleaseReservation(res.value().id).ok());
  EXPECT_EQ(manager_.ReleaseReservation(res.value().id).code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataManagerTest, ReservationGcReclaimsExpired) {
  auto res = manager_.ReserveStripe(2, 10_MiB);
  ASSERT_TRUE(res.ok());
  clock_.AdvanceSeconds(120);  // past the 60 s TTL
  manager_.TickReservationGc();
  EXPECT_EQ(manager_.ExtendReservation(res.value().id, 1).code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataManagerTest, ReservationGcKeepsFreshOnes) {
  auto res = manager_.ReserveStripe(2, 10_MiB);
  ASSERT_TRUE(res.ok());
  clock_.AdvanceSeconds(30);
  manager_.TickReservationGc();
  EXPECT_TRUE(manager_.ExtendReservation(res.value().id, 1).ok());
}

TEST_F(MetadataManagerTest, CommitReleasesReservation) {
  auto res = manager_.ReserveStripe(1, 10_MiB);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(manager_
                  .CommitVersion(res.value().id,
                                 MakeVersion("app", 1, res.value().stripe[0]))
                  .ok());
  EXPECT_EQ(manager_.ExtendReservation(res.value().id, 1).code(),
            StatusCode::kNotFound);
}

TEST_F(MetadataManagerTest, CommitInheritsFolderReplicationTarget) {
  FolderPolicy policy;
  policy.replication_target = 3;
  ASSERT_TRUE(manager_.SetFolderPolicy("app", policy).ok());
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  v.replication_target = 0;  // inherit
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());
  EXPECT_EQ(manager_.GetVersion(v.name).value().replication_target, 3);
}

TEST_F(MetadataManagerTest, FilterAndLocateChunks) {
  VersionRecord v = MakeVersion("app", 1, nodes_[2]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());
  ChunkId known = v.chunk_map.chunks[0].id;
  ChunkId unknown = MakeChunkId(424242);

  auto filter = manager_.FilterKnownChunks({known, unknown});
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter.value()[0]);
  EXPECT_FALSE(filter.value()[1]);

  auto locate = manager_.LocateChunks({known, unknown});
  ASSERT_TRUE(locate.ok());
  EXPECT_EQ(locate.value()[0], std::vector<NodeId>{nodes_[2]});
  EXPECT_TRUE(locate.value()[1].empty());
}

TEST_F(MetadataManagerTest, SetFolderPolicyValidates) {
  FolderPolicy policy;
  policy.replication_target = 0;
  EXPECT_EQ(manager_.SetFolderPolicy("a", policy).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MetadataManagerTest, CrashMakesRpcsUnavailable) {
  manager_.Crash();
  EXPECT_FALSE(manager_.IsUp());
  EXPECT_EQ(manager_.ReserveStripe(1, 1).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(manager_.Heartbeat(nodes_[0], 1).code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager_.GetVersion(CheckpointName{"a", "n", 1}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(manager_.TickReplication().empty());
  EXPECT_TRUE(manager_.TickRetention().empty());
}

TEST_F(MetadataManagerTest, CommittedStateSurvivesRestart) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());
  manager_.Crash();
  manager_.Restart();
  EXPECT_TRUE(manager_.GetVersion(v.name).ok());
}

TEST_F(MetadataManagerTest, ExpiryDropsReplicasAndReportsLoss) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());

  // Only node 0 goes silent.
  clock_.AdvanceSeconds(11);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    ASSERT_TRUE(manager_.Heartbeat(nodes_[i], 1_GiB).ok());
  }
  std::vector<NodeId> expired = manager_.TickExpiry();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], nodes_[0]);

  std::vector<ChunkId> lost = manager_.TakeLostChunks();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], v.chunk_map.chunks[0].id);
  EXPECT_TRUE(manager_.TakeLostChunks().empty());  // drained
}

TEST_F(MetadataManagerTest, GcExchangeIdentifiesOrphans) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());

  ChunkId live = v.chunk_map.chunks[0].id;
  ChunkId orphan = MakeChunkId(777);
  auto doomed = manager_.GcExchange(nodes_[0], {live, orphan});
  ASSERT_TRUE(doomed.ok());
  ASSERT_EQ(doomed.value().size(), 1u);
  EXPECT_EQ(doomed.value()[0], orphan);
}

TEST_F(MetadataManagerTest, GcDefersWhileNodeHasActiveReservation) {
  auto res = manager_.ReserveStripe(4, 10_MiB);  // covers all nodes
  ASSERT_TRUE(res.ok());
  ChunkId inflight = MakeChunkId(888);
  auto doomed = manager_.GcExchange(nodes_[0], {inflight});
  ASSERT_TRUE(doomed.ok());
  EXPECT_TRUE(doomed.value().empty());  // not collected mid-write

  ASSERT_TRUE(manager_.ReleaseReservation(res.value().id).ok());
  doomed = manager_.GcExchange(nodes_[0], {inflight});
  ASSERT_TRUE(doomed.ok());
  EXPECT_EQ(doomed.value().size(), 1u);  // now an orphan
}

TEST_F(MetadataManagerTest, GcExchangeReintegratesReturningNodesReplicas) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());
  ChunkId chunk = v.chunk_map.chunks[0].id;

  // Node 0 goes silent; its replicas are dropped (data loss for r=1).
  clock_.AdvanceSeconds(11);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    ASSERT_TRUE(manager_.Heartbeat(nodes_[i], 1_GiB).ok());
  }
  manager_.TickExpiry();
  EXPECT_TRUE(manager_.LocateChunks({chunk}).value()[0].empty());

  // The desktop returns with its disk intact and runs a GC exchange: the
  // still-live chunk must be re-adopted, not deleted.
  ASSERT_TRUE(manager_.Heartbeat(nodes_[0], 1_GiB).ok());
  auto doomed = manager_.GcExchange(nodes_[0], {chunk});
  ASSERT_TRUE(doomed.ok());
  EXPECT_TRUE(doomed.value().empty());
  EXPECT_EQ(manager_.LocateChunks({chunk}).value()[0],
            std::vector<NodeId>{nodes_[0]});
}

TEST_F(MetadataManagerTest, RecoveryRequiresTwoThirdsConcurrence) {
  VersionRecord v = MakeVersion("app", 9, nodes_[0]);
  // Stripe width 3 -> need ceil(2/3 * 3) = 2 endorsements.
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[0], v, 3).ok());
  EXPECT_FALSE(manager_.GetVersion(v.name).ok());
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[1], v, 3).ok());
  EXPECT_TRUE(manager_.GetVersion(v.name).ok());
}

TEST_F(MetadataManagerTest, RecoveryIgnoresDuplicateEndorser) {
  VersionRecord v = MakeVersion("app", 9, nodes_[0]);
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[0], v, 3).ok());
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[0], v, 3).ok());
  EXPECT_FALSE(manager_.GetVersion(v.name).ok());  // same node twice != 2
}

TEST_F(MetadataManagerTest, RecoveryOffersWithDifferentMapsDoNotMix) {
  VersionRecord v1 = MakeVersion("app", 9, nodes_[0], /*chunk_seed=*/1);
  VersionRecord v2 = MakeVersion("app", 9, nodes_[1], /*chunk_seed=*/2);
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[0], v1, 3).ok());
  ASSERT_TRUE(manager_.OfferRecoveredVersion(nodes_[1], v2, 3).ok());
  // Two endorsements but for different chunk maps: no commit.
  EXPECT_FALSE(manager_.GetVersion(v1.name).ok());
}

TEST_F(MetadataManagerTest, RecoveryOfferAfterCommitIsNoOp) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());
  EXPECT_TRUE(manager_.OfferRecoveredVersion(nodes_[1], v, 3).ok());
  EXPECT_EQ(manager_.catalog().TotalVersions(), 1u);
}

TEST_F(MetadataManagerTest, ReplicationCommandsForUnderReplicatedChunks) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  v.replication_target = 3;
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());

  std::vector<ReplicationCommand> cmds = manager_.TickReplication();
  ASSERT_EQ(cmds.size(), 2u);
  for (const auto& cmd : cmds) {
    EXPECT_EQ(cmd.source, nodes_[0]);
    EXPECT_NE(cmd.target, nodes_[0]);
  }
  EXPECT_NE(cmds[0].target, cmds[1].target);
  EXPECT_EQ(manager_.pending_replications(), 2u);

  // No duplicate issuance while in flight.
  EXPECT_TRUE(manager_.TickReplication().empty());

  // Ack both; replica lists update; no further commands.
  for (const auto& cmd : cmds) {
    ASSERT_TRUE(manager_.AckReplication(cmd, true).ok());
  }
  EXPECT_EQ(manager_.pending_replications(), 0u);
  EXPECT_TRUE(manager_.TickReplication().empty());
  EXPECT_EQ(manager_.LocateChunks({v.chunk_map.chunks[0].id}).value()[0].size(),
            3u);
}

TEST_F(MetadataManagerTest, FailedReplicationIsRetried) {
  VersionRecord v = MakeVersion("app", 1, nodes_[0]);
  v.replication_target = 2;
  ASSERT_TRUE(manager_.CommitVersion(0, v).ok());

  auto cmds = manager_.TickReplication();
  ASSERT_EQ(cmds.size(), 1u);
  ASSERT_TRUE(manager_.AckReplication(cmds[0], false).ok());

  auto retry = manager_.TickReplication();
  ASSERT_EQ(retry.size(), 1u);  // re-issued
}

TEST_F(MetadataManagerTest, ReplicationRespectsPerTickBudget) {
  ManagerOptions options;
  options.max_replications_per_tick = 2;
  MetadataManager manager(&clock_, options);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    BenefactorInfo info;
    info.host = "x" + std::to_string(i);
    info.free_bytes = 1_GiB;
    nodes.push_back(manager.RegisterBenefactor(info).value());
  }
  // Five chunks each needing one extra replica.
  VersionRecord record;
  record.name = CheckpointName{"app", "n", 1};
  for (int c = 0; c < 5; ++c) {
    ChunkLocation loc;
    loc.id = MakeChunkId(5000 + c);
    loc.file_offset = static_cast<std::uint64_t>(c) * 100;
    loc.size = 100;
    loc.replicas = {nodes[0]};
    record.chunk_map.chunks.push_back(loc);
  }
  record.size = 500;
  record.replication_target = 2;
  ASSERT_TRUE(manager.CommitVersion(0, record).ok());

  EXPECT_EQ(manager.TickReplication().size(), 2u);
}

// ---- epoch-versioned placement RPCs ----------------------------------------

TEST_F(MetadataManagerTest, GetPlacementTableReturnsOnlineMembership) {
  auto table = manager_.GetPlacementTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().members.size(), nodes_.size());
  EXPECT_GT(table.value().epoch, 0u);

  manager_.registry_mutable().SetOffline(nodes_[0]);
  auto after = manager_.GetPlacementTable();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().members.size(), nodes_.size() - 1);
  EXPECT_EQ(after.value().epoch, table.value().epoch + 1);
}

TEST_F(MetadataManagerTest, ReserveStripeAtAcceptsCurrentEpoch) {
  auto table = manager_.GetPlacementTable();
  ASSERT_TRUE(table.ok());
  auto res = manager_.ReserveStripeAt(table.value().epoch,
                                      {nodes_[0], nodes_[1]}, 10_MiB);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().stripe, (std::vector<NodeId>{nodes_[0], nodes_[1]}));
  EXPECT_NE(res.value().id, 0u);
  // The eager reservation charges the named nodes, like the legacy path.
  auto status = manager_.registry_mutable().Get(nodes_[0]);
  ASSERT_TRUE(status.ok());
  EXPECT_GT(status.value().reserved_bytes, 0u);
}

TEST_F(MetadataManagerTest, ReserveStripeAtRejectsStaleEpoch) {
  auto table = manager_.GetPlacementTable();
  ASSERT_TRUE(table.ok());
  manager_.registry_mutable().SetOffline(nodes_[3]);  // bumps the epoch

  auto res =
      manager_.ReserveStripeAt(table.value().epoch, {nodes_[0]}, 1_MiB);
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager_.Counters().placement_epoch_mismatches, 1u);

  // Refetch-and-retry succeeds — the protocol's recovery loop.
  auto fresh = manager_.GetPlacementTable();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(
      manager_.ReserveStripeAt(fresh.value().epoch, {nodes_[0]}, 1_MiB).ok());
}

TEST_F(MetadataManagerTest, ReserveStripeAtRejectsBadStripes) {
  std::uint64_t epoch = manager_.GetPlacementTable().value().epoch;
  // Offline member: the client computed placement onto a departed node.
  manager_.registry_mutable().SetOffline(nodes_[2]);
  epoch = manager_.GetPlacementTable().value().epoch;
  EXPECT_EQ(manager_.ReserveStripeAt(epoch, {nodes_[2]}, 1_MiB).status().code(),
            StatusCode::kInvalidArgument);
  // Duplicate members: a client-side placement bug, not an epoch race.
  EXPECT_EQ(manager_.ReserveStripeAt(epoch, {nodes_[0], nodes_[0]}, 1_MiB)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Empty stripe.
  EXPECT_EQ(manager_.ReserveStripeAt(epoch, {}, 1_MiB).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MetadataManagerTest, CommitAtCurrentEpochKeepsAllReplicas) {
  std::uint64_t epoch = manager_.GetPlacementTable().value().epoch;
  ASSERT_TRUE(manager_
                  .CommitVersionAt(0, MakeVersion("app", 1, nodes_[0]), epoch)
                  .ok());
  auto got = manager_.GetVersion(CheckpointName{"app", "n1", 1});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().chunk_map.chunks[0].replicas,
            (std::vector<NodeId>{nodes_[0]}));
}

TEST_F(MetadataManagerTest, StaleCommitDropsDepartedReplicas) {
  std::uint64_t placed_epoch = manager_.GetPlacementTable().value().epoch;
  VersionRecord record = MakeVersion("app", 1, nodes_[0]);
  record.chunk_map.chunks[0].replicas = {nodes_[0], nodes_[1]};

  // The node the client wrote to departs between placement and commit.
  manager_.registry_mutable().SetOffline(nodes_[1]);
  ASSERT_TRUE(manager_.CommitVersionAt(0, record, placed_epoch).ok());

  // The committed map must never reference the departed benefactor.
  auto got = manager_.GetVersion(CheckpointName{"app", "n1", 1});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().chunk_map.chunks[0].replicas,
            (std::vector<NodeId>{nodes_[0]}));
  EXPECT_EQ(manager_.Counters().placement_epoch_mismatches, 0u);
}

TEST_F(MetadataManagerTest, StaleCommitRejectedWhenAllReplicasDeparted) {
  std::uint64_t placed_epoch = manager_.GetPlacementTable().value().epoch;
  VersionRecord record = MakeVersion("app", 1, nodes_[1]);

  manager_.registry_mutable().SetOffline(nodes_[1]);
  Status status = manager_.CommitVersionAt(0, record, placed_epoch);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(manager_.Counters().placement_epoch_mismatches, 1u);
  EXPECT_FALSE(manager_.GetVersion(CheckpointName{"app", "n1", 1}).ok());
}

TEST_F(MetadataManagerTest, LegacyCommitSkipsEpochValidation) {
  // placed_epoch 0 is the sentinel for "server placed this stripe": replicas
  // are trusted as before the epoch protocol existed.
  VersionRecord record = MakeVersion("app", 1, nodes_[1]);
  manager_.registry_mutable().SetOffline(nodes_[1]);
  EXPECT_TRUE(manager_.CommitVersionAt(0, record, 0).ok());
  EXPECT_EQ(manager_.Counters().placement_epoch_mismatches, 0u);
}

TEST_F(MetadataManagerTest, CountersTrackPlacementTraffic) {
  ManagerCounters before = manager_.Counters();
  EXPECT_EQ(before.placement_table_fetches, 0u);
  EXPECT_EQ(before.server_side_placements, 0u);
  ASSERT_EQ(before.catalog_shards.size(), 1u);  // default: one shard

  (void)manager_.GetPlacementTable();
  (void)manager_.GetPlacementTable();
  (void)manager_.ReserveStripe(2, 1_MiB);  // legacy server-side placement

  ManagerCounters after = manager_.Counters();
  EXPECT_EQ(after.placement_table_fetches, 2u);
  EXPECT_EQ(after.server_side_placements, 1u);
  EXPECT_EQ(after.placement_epoch, manager_.registry().placement_epoch());
}

TEST_F(MetadataManagerTest, ShardedCatalogCountsPerShardOps) {
  ManagerOptions options;
  options.catalog_shards = 4;
  MetadataManager manager(&clock_, options);
  BenefactorInfo info;
  info.host = "d0";
  info.free_bytes = 1_GiB;
  NodeId node = manager.RegisterBenefactor(info).value();

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        manager.CommitVersion(0, MakeVersion("app" + std::to_string(i), 1, node))
            .ok());
  }
  std::vector<CatalogShardStats> shards = manager.Counters().catalog_shards;
  ASSERT_EQ(shards.size(), 4u);
  std::uint64_t total_ops = 0;
  std::size_t active = 0;
  for (const CatalogShardStats& s : shards) {
    total_ops += s.ops;
    if (s.ops > 0) ++active;
    EXPECT_GE(s.lock_acquisitions, s.ops);
  }
  EXPECT_GE(total_ops, 8u);
  EXPECT_GT(active, 1u);  // eight distinct apps must spread across shards
}

}  // namespace
}  // namespace stdchk
