// Manager metadata snapshots and hot-standby failover (paper §IV.A: "A
// hot-standby manager as a failover is another option in such cases").
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{31};
};

TEST_F(SnapshotTest, RoundTripPreservesCatalogAndRegistry) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedPurge;
  policy.purge_age_us = 3'600'000'000;  // 1 hour — not reached in this test
  policy.replication_target = 2;
  ASSERT_TRUE(cluster_->manager().SetFolderPolicy("app", policy).ok());

  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  cluster_->Settle();  // replication to 2 replicas

  Bytes snapshot = cluster_->manager().SaveSnapshot();
  auto before = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(before.ok());

  // Load into a *fresh* manager (the standby).
  VirtualClock clock;
  MetadataManager standby(&clock);
  ASSERT_TRUE(standby.LoadSnapshot(snapshot).ok());

  auto after = standby.GetVersion(Name(1));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size, before.value().size);
  EXPECT_EQ(after.value().commit_time, before.value().commit_time);
  ASSERT_EQ(after.value().chunk_map.chunks.size(),
            before.value().chunk_map.chunks.size());
  for (std::size_t i = 0; i < after.value().chunk_map.chunks.size(); ++i) {
    EXPECT_EQ(after.value().chunk_map.chunks[i].replicas,
              before.value().chunk_map.chunks[i].replicas);
  }

  auto restored_policy = standby.GetFolderPolicy("app");
  ASSERT_TRUE(restored_policy.ok());
  EXPECT_EQ(restored_policy.value().retention,
            RetentionPolicy::kAutomatedPurge);
  EXPECT_EQ(restored_policy.value().purge_age_us, 3'600'000'000);

  EXPECT_EQ(standby.registry().online_count(),
            cluster_->manager().registry().online_count());
}

TEST_F(SnapshotTest, FailoverKeepsCommittedDataReadable) {
  Bytes data = rng_.RandomBytes(5 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  Bytes snapshot = cluster_->manager().SaveSnapshot();

  // Catastrophic manager loss: state replaced by the standby's snapshot.
  cluster_->manager().Crash();
  ASSERT_TRUE(cluster_->manager().LoadSnapshot(snapshot).ok());
  EXPECT_TRUE(cluster_->manager().IsUp());

  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);

  // Normal operation continues after failover.
  Bytes next = rng_.RandomBytes(2048);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(2), next).ok());
  cluster_->Settle();
}

TEST_F(SnapshotTest, PostSnapshotCommitsAreLostButConsistent) {
  Bytes kept = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), kept).ok());
  Bytes snapshot = cluster_->manager().SaveSnapshot();

  // This write happens after the snapshot and will be forgotten.
  Bytes lost = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(2), lost).ok());

  ASSERT_TRUE(cluster_->manager().LoadSnapshot(snapshot).ok());
  EXPECT_TRUE(cluster_->client().ReadFile(Name(1)).ok());
  EXPECT_FALSE(cluster_->client().ReadFile(Name(2)).ok());

  // The forgotten version's chunks are orphans; GC reclaims them and the
  // system converges to exactly the snapshot's contents.
  cluster_->Settle();
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    stored += cluster_->benefactor(i).BytesUsed();
  }
  EXPECT_EQ(stored, kept.size());
}

TEST_F(SnapshotTest, SnapshotClearsTransientState) {
  auto res = cluster_->manager().ReserveStripe(2, 1_MiB);
  ASSERT_TRUE(res.ok());
  Bytes snapshot = cluster_->manager().SaveSnapshot();
  ASSERT_TRUE(cluster_->manager().LoadSnapshot(snapshot).ok());
  // Reservations are transient: gone after failover.
  EXPECT_EQ(cluster_->manager().ExtendReservation(res.value().id, 1).code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotTest, RejectsGarbageAndTruncation) {
  MetadataManager& manager = cluster_->manager();
  Bytes good = manager.SaveSnapshot();

  Bytes garbage = rng_.RandomBytes(64);
  EXPECT_FALSE(manager.LoadSnapshot(garbage).ok());

  Bytes truncated(good.begin(),
                  good.begin() + static_cast<std::ptrdiff_t>(good.size() / 2));
  EXPECT_FALSE(manager.LoadSnapshot(truncated).ok());

  Bytes trailing = good;
  trailing.push_back(0xAB);
  EXPECT_FALSE(manager.LoadSnapshot(trailing).ok());

  // A failed load must not have clobbered the live state.
  EXPECT_TRUE(manager.ListApps().ok());
  EXPECT_TRUE(manager.LoadSnapshot(good).ok());
}

TEST_F(SnapshotTest, EmptyManagerSnapshotRoundTrips) {
  VirtualClock clock;
  MetadataManager empty(&clock);
  Bytes snapshot = empty.SaveSnapshot();
  MetadataManager standby(&clock);
  ASSERT_TRUE(standby.LoadSnapshot(snapshot).ok());
  EXPECT_TRUE(standby.ListApps().value().empty());
}

TEST_F(SnapshotTest, DedupSharedChunksSurviveSnapshot) {
  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  auto client = cluster_->MakeClient(options);
  Bytes image = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), image).ok());
  ASSERT_TRUE(client->WriteFile(Name(2), image).ok());  // fully deduped

  Bytes snapshot = cluster_->manager().SaveSnapshot();
  ASSERT_TRUE(cluster_->manager().LoadSnapshot(snapshot).ok());

  // Refcounts rebuilt correctly: deleting one version keeps the other.
  ASSERT_TRUE(cluster_->manager().DeleteVersion(Name(1)).ok());
  cluster_->Settle();
  auto read_back = client->ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), image);
}

}  // namespace
}  // namespace stdchk
