// End-to-end tests of the erasure-coded write/read path: striping k+m
// shards across distinct benefactors at write time, reconstructing from any
// k survivors at read time, k-survivor accounting in the manager (repair,
// loss, GC) and snapshot round-tripping of shard groups.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class ErasureClusterTest : public ::testing::Test {
 protected:
  static constexpr int kK = 4;
  static constexpr int kM = 2;

  ErasureClusterTest() {
    ClusterOptions options;
    options.benefactor_count = 9;
    options.client.chunk_size = 4096;
    options.client.erasure = {kK, kM};
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  // The cluster index of the benefactor owning `node`.
  std::size_t IndexOf(NodeId node) {
    for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
      if (cluster_->benefactor(i).id() == node) return i;
    }
    ADD_FAILURE() << "no benefactor with id " << node;
    return 0;
  }

  VersionRecord Record(const CheckpointName& name) {
    auto record = cluster_->manager().GetVersion(name);
    EXPECT_TRUE(record.ok()) << record.status().ToString();
    return record.ok() ? record.value() : VersionRecord{};
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{42};
};

TEST_F(ErasureClusterTest, CommitsShardGroupsWithZeroFullReplicas) {
  Bytes data = rng_.RandomBytes(3 * 4096 + 1234);  // tail chunk too
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(ByteSpan(data.data(), data.size())).ok());
  ASSERT_TRUE(session.value()->Close().ok());

  const WriteStats& ws = session.value()->stats();
  EXPECT_EQ(ws.erasure_encoded_chunks, 4u);
  EXPECT_EQ(ws.parity_shards_written, 4u * kM);
  EXPECT_EQ(ws.data_shards_written, 4u * kK);
  EXPECT_GT(ws.erasure_encode_ns, 0u);

  VersionRecord record = Record(Name(1));
  ASSERT_EQ(record.chunk_map.chunks.size(), 4u);
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    EXPECT_TRUE(loc.erasure_coded());
    EXPECT_EQ(loc.ec_k, kK);
    EXPECT_EQ(loc.ec_m, kM);
    EXPECT_TRUE(loc.replicas.empty()) << "EC chunks store zero full copies";
    ASSERT_EQ(loc.shards.size(), static_cast<std::size_t>(kK + kM));
    std::set<NodeId> nodes;
    for (const ShardLocation& sl : loc.shards) {
      ASSERT_NE(sl.node, kInvalidNode);
      nodes.insert(sl.node);
    }
    EXPECT_EQ(nodes.size(), loc.shards.size())
        << "shards of one group must land on distinct benefactors";
  }

  // Healthy path: reads reassemble from the k data shards, no parity, no
  // reconstruction, no whole-replica fallback.
  auto reader = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(reader.ok());
  auto read_back = reader.value()->ReadAll();
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
  ReadStats rs = reader.value()->stats();
  EXPECT_EQ(rs.shard_fetches, 4u * kK);
  EXPECT_EQ(rs.parity_shard_fetches, 0u);
  EXPECT_EQ(rs.reconstructions, 0u);
  EXPECT_EQ(rs.full_replica_fallbacks, 0u);
}

TEST_F(ErasureClusterTest, ReadsReconstructAfterMBenefactorDeaths) {
  Bytes data = rng_.RandomBytes(5 * 4096 + 77);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), ByteSpan(data.data(),
                                                             data.size()))
                  .ok());

  // Kill m holders of the first chunk's data shards — the worst allowed
  // case. No ticks in between: the catalog still points at the dead nodes,
  // so the read path itself must fail over to parity.
  VersionRecord record = Record(Name(1));
  const ChunkLocation& first = record.chunk_map.chunks.front();
  for (int i = 0; i < kM; ++i) {
    ASSERT_TRUE(
        cluster_->CrashBenefactor(IndexOf(first.shards[i].node)).ok());
  }

  auto reader = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(reader.ok());
  auto read_back = reader.value()->ReadAll();
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);

  ReadStats rs = reader.value()->stats();
  EXPECT_GT(rs.reconstructions, 0u);
  EXPECT_GT(rs.parity_shard_fetches, 0u);
  // Zero full-replica fallback: there are no full replicas to fall back to.
  EXPECT_EQ(rs.full_replica_fallbacks, 0u);
}

TEST_F(ErasureClusterTest, ShardRepairRestoresFullWidth) {
  Bytes data = rng_.RandomBytes(4 * 4096);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), ByteSpan(data.data(),
                                                             data.size()))
                  .ok());
  VersionRecord before = Record(Name(1));
  NodeId dead = before.chunk_map.chunks.front().shards[0].node;
  ASSERT_TRUE(cluster_->CrashBenefactor(IndexOf(dead)).ok());

  // Let the heartbeat expire, then let repair run.
  std::size_t repairs = 0;
  std::size_t repair_failures = 0;
  for (int i = 0; i < 30; ++i) {
    StdchkCluster::TickReport report = cluster_->Tick(1.0);
    repairs += report.shard_repair_commands;
    repair_failures += report.shard_repair_failures;
  }
  EXPECT_GT(repairs, 0u);
  EXPECT_EQ(repair_failures, 0u);

  // Every group is back to k+m shards on distinct, live benefactors, and
  // the rebuilt shards kept their content addresses.
  VersionRecord after = Record(Name(1));
  ASSERT_EQ(after.chunk_map.chunks.size(), before.chunk_map.chunks.size());
  for (std::size_t c = 0; c < after.chunk_map.chunks.size(); ++c) {
    const ChunkLocation& loc = after.chunk_map.chunks[c];
    std::set<NodeId> nodes;
    for (std::size_t s = 0; s < loc.shards.size(); ++s) {
      EXPECT_EQ(loc.shards[s].id, before.chunk_map.chunks[c].shards[s].id);
      ASSERT_NE(loc.shards[s].node, kInvalidNode);
      EXPECT_NE(loc.shards[s].node, dead);
      nodes.insert(loc.shards[s].node);
    }
    EXPECT_EQ(nodes.size(), loc.shards.size());
  }

  // And no data was lost along the way.
  EXPECT_TRUE(cluster_->manager().TakeLostChunks().empty());
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(ErasureClusterTest, LosingMoreThanMShardsReportsTheGroupLost) {
  Bytes data = rng_.RandomBytes(2 * 4096);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), ByteSpan(data.data(),
                                                             data.size()))
                  .ok());
  VersionRecord record = Record(Name(1));
  const ChunkLocation& first = record.chunk_map.chunks.front();
  // m+1 deaths in one group exceed the loss budget.
  for (int i = 0; i < kM + 1; ++i) {
    ASSERT_TRUE(
        cluster_->CrashBenefactor(IndexOf(first.shards[i].node)).ok());
  }
  for (int i = 0; i < 15; ++i) cluster_->Tick(1.0);

  std::vector<ChunkId> lost = cluster_->manager().TakeLostChunks();
  EXPECT_TRUE(std::find(lost.begin(), lost.end(), first.id) != lost.end())
      << "the group head (whole-chunk id) is the loss signal, not shard ids";
}

TEST_F(ErasureClusterTest, DeletingTheVersionReclaimsShardGroups) {
  Bytes data = rng_.RandomBytes(3 * 4096);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), ByteSpan(data.data(),
                                                             data.size()))
                  .ok());
  cluster_->Settle();
  EXPECT_EQ(cluster_->manager().Counters().shard_records_released, 0u);

  ASSERT_TRUE(cluster_->manager().DeleteVersion(Name(1)).ok());
  // Metadata half: every shard record of the three groups was released.
  EXPECT_EQ(cluster_->manager().Counters().shard_records_released,
            3u * (kK + kM));

  // Physical half: the GC exchange collects the orphaned shards.
  std::size_t reclaimed = 0;
  for (int i = 0; i < 10; ++i) {
    reclaimed += cluster_->Tick(1.0).gc_reclaimed_chunks;
  }
  EXPECT_EQ(reclaimed, 3u * (kK + kM));
}

TEST_F(ErasureClusterTest, SnapshotRoundTripsShardGroups) {
  Bytes data = rng_.RandomBytes(2 * 4096 + 500);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), ByteSpan(data.data(),
                                                             data.size()))
                  .ok());
  VersionRecord before = Record(Name(1));

  Bytes snapshot = cluster_->manager().SaveSnapshot();
  ASSERT_TRUE(cluster_->manager()
                  .LoadSnapshot(ByteSpan(snapshot.data(), snapshot.size()))
                  .ok());

  VersionRecord after = Record(Name(1));
  ASSERT_EQ(after.chunk_map.chunks.size(), before.chunk_map.chunks.size());
  for (std::size_t c = 0; c < after.chunk_map.chunks.size(); ++c) {
    const ChunkLocation& a = after.chunk_map.chunks[c];
    const ChunkLocation& b = before.chunk_map.chunks[c];
    EXPECT_EQ(a.ec_k, b.ec_k);
    EXPECT_EQ(a.ec_m, b.ec_m);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
      EXPECT_EQ(a.shards[s].id, b.shards[s].id);
      EXPECT_EQ(a.shards[s].node, b.shards[s].node);
    }
  }

  // The promoted standby serves erasure-coded reads.
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(ErasureClusterTest, MixedModeMapsDedupAgainstReplicatedChunks) {
  // A replicated write first; an erasure-coded writer with dedup enabled
  // then reuses those chunks — its map mixes replicated entries (reused)
  // with erasure-coded ones (novel), and the read path serves both.
  Bytes shared = rng_.RandomBytes(2 * 4096);
  Bytes novel = rng_.RandomBytes(2 * 4096);

  ClientOptions plain = cluster_->client().options();
  plain.erasure = {};  // replication mode
  auto replicated_writer = cluster_->MakeClient(plain);
  ASSERT_TRUE(replicated_writer
                  ->WriteFile(Name(1), ByteSpan(shared.data(), shared.size()))
                  .ok());

  ClientOptions dedup = cluster_->client().options();
  dedup.incremental_fsch = true;
  auto ec_writer = cluster_->MakeClient(dedup);
  Bytes both = shared;
  both.insert(both.end(), novel.begin(), novel.end());
  ASSERT_TRUE(
      ec_writer->WriteFile(Name(2), ByteSpan(both.data(), both.size())).ok());

  VersionRecord record = Record(Name(2));
  ASSERT_EQ(record.chunk_map.chunks.size(), 4u);
  int replicated = 0, erasure_coded = 0;
  for (const ChunkLocation& loc : record.chunk_map.chunks) {
    loc.erasure_coded() ? ++erasure_coded : ++replicated;
  }
  EXPECT_EQ(replicated, 2);
  EXPECT_EQ(erasure_coded, 2);

  auto read_back = ec_writer->ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), both);
}

}  // namespace
}  // namespace stdchk
