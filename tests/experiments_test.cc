// Experiment-level checks: the modeled baselines must land on the paper's
// platform-characterization numbers, and the composite experiments must
// show the paper's qualitative results.
#include "perf/experiments.h"

#include <gtest/gtest.h>

namespace stdchk::perf {
namespace {

TEST(BaselineTest, Table1LocalIo) {
  // Paper: 11.80 s +/- 0.16 for 1 GB.
  double s = LocalIoSeconds(PaperLanTestbed(), 1_GiB);
  EXPECT_NEAR(s, 11.88, 0.3);
}

TEST(BaselineTest, Table1FuseToLocal) {
  // Paper: 12.00 s — about 2% over plain local I/O.
  PlatformModel platform = PaperLanTestbed();
  double local = LocalIoSeconds(platform, 1_GiB);
  double fuse = FuseToLocalSeconds(platform, 1_GiB);
  EXPECT_NEAR(fuse, 12.1, 0.4);
  double overhead = (fuse - local) / local;
  EXPECT_GT(overhead, 0.01);
  EXPECT_LT(overhead, 0.04);
}

TEST(BaselineTest, Table1FuseNull) {
  // Paper: 1.04 s +/- 0.03 for 1 GB through /stdchk/null.
  EXPECT_NEAR(FuseNullSeconds(PaperLanTestbed(), 1_GiB), 1.04, 0.15);
}

TEST(BaselineTest, NfsMatchesMeasuredRate) {
  double s = NfsSeconds(PaperLanTestbed(), 1_GiB);
  EXPECT_NEAR(1024.0 / s, 24.8, 0.1);
}

TEST(ScalabilityTest, AggregateThroughputPlateausNearFabricLimit) {
  ScalabilityConfig config;
  // Shortened run, but long enough that the staggered clients overlap (each
  // client is active for ~25 s against the 10 s start interval).
  config.files_per_client = 30;
  ScalabilityResult r = RunScalability(PaperLanTestbed(), config);

  // Paper Fig. 8: sustained ~280 MB/s, fabric-limited.
  EXPECT_GT(r.sustained_mbps, 200.0);
  EXPECT_LE(r.peak_mbps, PaperLanTestbed().fabric_mbps * 1.05);
  EXPECT_EQ(r.total_bytes, 7u * 30u * 100_MiB);
  EXPECT_FALSE(r.timeline.empty());
}

TEST(ScalabilityTest, RampUpVisibleInTimeline) {
  ScalabilityConfig config;
  config.files_per_client = 30;
  config.timeline_bucket_s = 5.0;
  ScalabilityResult r = RunScalability(PaperLanTestbed(), config);
  // Clients start at 10 s intervals: the first bucket (one client) moves
  // less data than the plateau.
  ASSERT_GE(r.timeline.size(), 4u);
  EXPECT_LT(r.timeline[0].mb_per_second, r.sustained_mbps);
}

TEST(ScalabilityTest, SingleClientIsNicBound) {
  ScalabilityConfig config;
  config.clients = 1;
  config.files_per_client = 4;
  ScalabilityResult r = RunScalability(PaperLanTestbed(), config);
  EXPECT_LT(r.peak_mbps, 125.0);  // one GigE client cannot exceed its NIC
}

TEST(BlastTest, ReproducesTable5Directionally) {
  BlastConfig config;
  config.checkpoints = 40;  // shortened; ratios are per-checkpoint
  BlastResult r = RunBlastComparison(PaperLanTestbed(), config);

  // stdchk speeds up the checkpoint operation itself...
  EXPECT_GT(r.ckpt_improvement(), 0.15);
  // ...cuts the stored/transferred data substantially (paper: 69%)...
  EXPECT_GT(r.data_reduction(), 0.4);
  // ...but barely moves total execution time (paper: 1.3%), because
  // compute dominates.
  EXPECT_GT(r.total_improvement(), 0.0);
  EXPECT_LT(r.total_improvement(), 0.1);
}

TEST(BlastTest, DedupRatioComesFromRealTrace) {
  BlastConfig config;
  config.checkpoints = 10;
  BlastResult r = RunBlastComparison(PaperLanTestbed(), config);
  EXPECT_GT(r.avg_dedup_ratio, 0.2);
  EXPECT_LT(r.avg_dedup_ratio, 0.99);
  EXPECT_LT(r.stdchk_data_gb, r.local_data_gb);
}

TEST(SingleWriteTest, EmptyStripeDefaultsToAllBenefactors) {
  PipelineConfig config;
  config.protocol = ProtocolModel::kSW;
  config.file_bytes = 32_MiB;
  WriteResult r = RunSingleWrite(PaperLanTestbed(), 3, config);
  EXPECT_GT(r.asb_mbps, 0.0);
}

}  // namespace
}  // namespace stdchk::perf
