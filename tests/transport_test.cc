// The asynchronous transport core: submission/completion semantics, modeled
// link timing, cancellation, the in-flight watermark, batch ops, and the
// SyncBenefactorAccess migration adapter.
#include "client/transport.h"

#include <gtest/gtest.h>

#include "client/benefactor_access.h"
#include "core/local_transport.h"
#include "manager/virtual_clock.h"

namespace stdchk {
namespace {

Bytes Payload(const std::string& s) { return ToBytes(s); }

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : manager_(&clock_) {
    for (int i = 0; i < 3; ++i) {
      auto b = std::make_unique<Benefactor>("d" + std::to_string(i),
                                            MakeMemoryChunkStore(), 1_GiB);
      EXPECT_TRUE(b->JoinPool(manager_).ok());
      transport_.AddEndpoint(b.get());
      benefactors_.push_back(std::move(b));
    }
  }

  NodeId node(int i) const { return benefactors_[std::size_t(i)]->id(); }

  // Stores `data` on node `i` synchronously.
  ChunkId Store(int i, const Bytes& data) {
    ChunkId id = ChunkId::For(data);
    EXPECT_TRUE(transport_.PutChunk(node(i), id, data).ok());
    return id;
  }

  VirtualClock clock_;
  MetadataManager manager_;
  LocalTransport transport_;
  std::vector<std::unique_ptr<Benefactor>> benefactors_;
};

TEST_F(TransportTest, SubmitWaitDeliversStatusAndPayload) {
  Bytes data = Payload("async chunk");
  ChunkId id = ChunkId::For(data);
  OpHandle put =
      transport_.Submit(ChunkOp::Put(node(0), id, BufferSlice::Copy(data)));
  auto put_done = transport_.Wait(put);
  ASSERT_TRUE(put_done.ok());
  EXPECT_TRUE(put_done.value().status.ok());
  EXPECT_EQ(put_done.value().type, ChunkOpType::kPutChunk);

  OpHandle get = transport_.Submit(ChunkOp::Get(node(0), id));
  auto get_done = transport_.Wait(get);
  ASSERT_TRUE(get_done.ok());
  ASSERT_TRUE(get_done.value().status.ok());
  EXPECT_EQ(get_done.value().data, data);
  EXPECT_EQ(transport_.InFlight(), 0u);
}

TEST_F(TransportTest, PerOpStatusSurfacesInCompletionNotSubmit) {
  Bytes data = Payload("x");
  // Unknown node: Submit still hands out a handle; the failure is the op's.
  OpHandle h = transport_.Submit(
      ChunkOp::Put(777, ChunkId::For(data), BufferSlice::Copy(data)));
  ASSERT_NE(h, kInvalidOpHandle);
  auto done = transport_.Wait(h);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().status.code(), StatusCode::kUnavailable);
}

TEST_F(TransportTest, WaitAnyReturnsEarliestModeledCompletion) {
  transport_.SetLinkModel(node(0), sim::LinkModel{Milliseconds(10), 0.0});
  transport_.SetLinkModel(node(1), sim::LinkModel{Milliseconds(1), 0.0});
  ChunkId slow = Store(0, Payload("slow"));
  ChunkId fast = Store(1, Payload("fast"));
  SimTime t0 = transport_.now();

  OpHandle h_slow = transport_.Submit(ChunkOp::Get(node(0), slow));
  OpHandle h_fast = transport_.Submit(ChunkOp::Get(node(1), fast));
  std::vector<OpHandle> handles{h_slow, h_fast};

  auto first = transport_.WaitAny(handles);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().handle, h_fast);  // 1 ms link beats 10 ms link
  EXPECT_EQ(transport_.now() - t0, Milliseconds(1));

  auto second = transport_.WaitAny(std::vector<OpHandle>{h_slow});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().handle, h_slow);
  EXPECT_EQ(transport_.now() - t0, Milliseconds(10));
}

TEST_F(TransportTest, SameNodeSerializesDistinctNodesOverlap) {
  for (int i = 0; i < 2; ++i) {
    transport_.SetLinkModel(node(i), sim::LinkModel{Milliseconds(5), 0.0});
  }
  ChunkId a = Store(0, Payload("a"));
  ChunkId b = Store(1, Payload("b"));
  SimTime t0 = transport_.now();

  // Two ops on one link: the second queues behind the first.
  OpHandle h1 = transport_.Submit(ChunkOp::Get(node(0), a));
  OpHandle h2 = transport_.Submit(ChunkOp::Get(node(0), a));
  ASSERT_TRUE(transport_.Wait(h1).ok());
  ASSERT_TRUE(transport_.Wait(h2).ok());
  EXPECT_EQ(transport_.now() - t0, Milliseconds(10));

  // Two ops on distinct links: both done after one latency.
  SimTime t1 = transport_.now();
  OpHandle h3 = transport_.Submit(ChunkOp::Get(node(0), a));
  OpHandle h4 = transport_.Submit(ChunkOp::Get(node(1), b));
  ASSERT_TRUE(transport_.Wait(h3).ok());
  ASSERT_TRUE(transport_.Wait(h4).ok());
  EXPECT_EQ(transport_.now() - t1, Milliseconds(5));
}

TEST_F(TransportTest, BandwidthChargesTransferTime) {
  // 1 MiB at 1 MB/s = 1 s on the wire.
  transport_.SetLinkModel(node(0), sim::LinkModel{0, 1.0});
  Bytes data(1_MiB, 0x5A);
  ChunkId id = ChunkId::For(data);
  SimTime t0 = transport_.now();
  ASSERT_TRUE(transport_.PutChunk(node(0), id, data).ok());
  EXPECT_EQ(transport_.now() - t0, Seconds(1.0));
}

TEST_F(TransportTest, PollDeliversOnlyReadyCompletions) {
  transport_.SetLinkModel(node(0), sim::LinkModel{Milliseconds(3), 0.0});
  ChunkId id = Store(1, Payload("ready"));  // node 1 keeps the zero default

  OpHandle fast = transport_.Submit(ChunkOp::Get(node(1), id));
  OpHandle slow = transport_.Submit(ChunkOp::Get(node(0), id));
  std::vector<OpHandle> handles{fast, slow};

  // The zero-latency op is ready at the current clock; the modeled one not.
  auto ready = transport_.Poll(handles);
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->handle, fast);
  EXPECT_FALSE(transport_.Poll(handles).has_value());  // slow not ready
  ASSERT_TRUE(transport_.Wait(slow).ok());             // advances the clock
}

TEST_F(TransportTest, CancelDropsTheReply) {
  ChunkId id = Store(0, Payload("cancelled"));
  OpHandle h = transport_.Submit(ChunkOp::Get(node(0), id));
  EXPECT_EQ(transport_.InFlight(), 1u);
  EXPECT_TRUE(transport_.Cancel(h));
  EXPECT_EQ(transport_.InFlight(), 0u);
  EXPECT_FALSE(transport_.Cancel(h));  // already gone
  // The handle is no longer waitable.
  EXPECT_EQ(transport_.Wait(h).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(transport_.WaitAny(std::vector<OpHandle>{h}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(TransportTest, InflightPeakWitnessesOverlap) {
  ChunkId a = Store(0, Payload("a"));
  ChunkId b = Store(1, Payload("b"));
  ChunkId c = Store(2, Payload("c"));
  transport_.ResetInflightPeak();
  EXPECT_EQ(transport_.inflight_peak(), 0u);

  std::vector<OpHandle> handles;
  handles.push_back(transport_.Submit(ChunkOp::Get(node(0), a)));
  handles.push_back(transport_.Submit(ChunkOp::Get(node(1), b)));
  handles.push_back(transport_.Submit(ChunkOp::Get(node(2), c)));
  EXPECT_EQ(transport_.inflight_peak(), 3u);
  for (OpHandle h : handles) ASSERT_TRUE(transport_.Wait(h).ok());
  EXPECT_EQ(transport_.inflight_peak(), 3u);  // peak survives delivery
}

TEST_F(TransportTest, GetChunkBatchIsOneRpc) {
  Bytes d0 = Payload("batch zero"), d1 = Payload("batch one"),
        d2 = Payload("batch two");
  ChunkId i0 = Store(0, d0), i1 = Store(0, d1), i2 = Store(0, d2);

  std::uint64_t rpcs_before = transport_.rpc_count();
  std::vector<ChunkId> ids{i0, i1, i2};
  auto got = transport_.GetChunkBatch(node(0), ids);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(transport_.rpc_count(), rpcs_before + 1);
  ASSERT_EQ(got.value().size(), 3u);
  EXPECT_EQ(got.value()[0], d0);
  EXPECT_EQ(got.value()[1], d1);
  EXPECT_EQ(got.value()[2], d2);
}

TEST_F(TransportTest, GetChunkBatchIsAllOrNothing) {
  ChunkId present = Store(0, Payload("present"));
  ChunkId missing = ChunkId::For(Payload("missing"));
  std::vector<ChunkId> ids{present, missing};
  auto got = transport_.GetChunkBatch(node(0), ids);
  EXPECT_FALSE(got.ok());
}

TEST_F(TransportTest, StashAndCopyOps) {
  VersionRecord record;
  record.name = CheckpointName{"a", "n", 1};
  OpHandle h = transport_.Submit(ChunkOp::Stash(node(0), record, 2));
  auto done = transport_.Wait(h);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().status.ok());
  EXPECT_EQ(benefactors_[0]->stashed_count(), 1u);

  Bytes data = Payload("replicate me");
  ChunkId id = Store(0, data);
  OpHandle copy = transport_.Submit(ChunkOp::Copy(id, node(0), node(1)));
  auto copied = transport_.Wait(copy);
  ASSERT_TRUE(copied.ok());
  EXPECT_TRUE(copied.value().status.ok());
  EXPECT_TRUE(benefactors_[1]->HasChunk(id));
}

// ---- SyncBenefactorAccess: the legacy-facade migration adapter -------------

TEST_F(TransportTest, SyncAdapterRoundTrips) {
  SyncBenefactorAccess access(&transport_);
  Bytes data = Payload("via adapter");
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(access.PutChunk(node(0), id, data).ok());
  auto got = access.GetChunk(node(0), id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data);

  std::vector<ChunkId> ids{id};
  auto batch = access.GetChunkBatch(node(0), ids);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value()[0], data);

  ASSERT_TRUE(access.CopyChunk(id, node(0), node(2)).ok());
  EXPECT_TRUE(benefactors_[2]->HasChunk(id));
  // Each sync call fully drains its op: nothing left in flight.
  EXPECT_EQ(transport_.InFlight(), 0u);
}

// Minimal legacy implementation: only the pure-virtual surface. The batch
// and copy defaults must compose it correctly.
class LoopbackAccess final : public BenefactorAccess {
 public:
  Status PutChunk(NodeId node, const ChunkId& id, ByteSpan data) override {
    ++puts;
    stored[node][id] = Bytes(data.begin(), data.end());
    return OkStatus();
  }
  Result<Bytes> GetChunk(NodeId node, const ChunkId& id) override {
    ++gets;
    auto& chunks = stored[node];
    auto it = chunks.find(id);
    if (it == chunks.end()) return NotFoundError("no such chunk");
    return it->second;
  }
  Status StashChunkMap(NodeId, const VersionRecord&, int) override {
    return OkStatus();
  }

  std::map<NodeId, std::map<ChunkId, Bytes>> stored;
  int puts = 0;
  int gets = 0;
};

TEST(BenefactorAccessDefaults, BatchAndCopyLoopOverSingleOps) {
  LoopbackAccess access;
  Bytes d0 = Payload("one"), d1 = Payload("two");
  ChunkId i0 = ChunkId::For(d0), i1 = ChunkId::For(d1);

  std::vector<ChunkPut> puts{{i0, BufferSlice::Copy(d0)},
                             {i1, BufferSlice::Copy(d1)}};
  ASSERT_TRUE(access.PutChunkBatch(7, puts).ok());
  EXPECT_EQ(access.puts, 2);  // looped

  std::vector<ChunkId> ids{i0, i1};
  auto got = access.GetChunkBatch(7, ids);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(access.gets, 2);  // looped
  EXPECT_EQ(got.value()[0], d0);
  EXPECT_EQ(got.value()[1], d1);

  // Default copy bounces through the caller: one get + one put.
  ASSERT_TRUE(access.CopyChunk(i0, 7, 9).ok());
  EXPECT_EQ(access.stored[9][i0], d0);

  // All-or-nothing on a missing chunk.
  std::vector<ChunkId> with_missing{i0, ChunkId::For(Payload("missing"))};
  EXPECT_FALSE(access.GetChunkBatch(7, with_missing).ok());
}

}  // namespace
}  // namespace stdchk
