#include "common/hash.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stdchk {
namespace {

TEST(Sha1Test, EmptyInput) {
  EXPECT_EQ(Sha1(ByteSpan{}).ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1(AsBytes(std::string("abc"))).ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, LongerVector) {
  // FIPS 180-1 test vector.
  EXPECT_EQ(Sha1(AsBytes(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))
                .ToHex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(Sha1(AsBytes(a)).ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(
      Sha1(AsBytes(std::string("The quick brown fox jumps over the lazy dog")))
          .ToHex(),
      "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

class Sha1StreamingTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1StreamingTest, StreamingMatchesOneShot) {
  Rng rng(GetParam() * 7919 + 1);
  Bytes data = rng.RandomBytes(GetParam());

  Sha1Digest oneshot = Sha1(data);

  // Feed in irregular piece sizes.
  Sha1Hasher hasher;
  std::size_t pos = 0;
  std::size_t piece = 1;
  while (pos < data.size()) {
    std::size_t n = std::min(piece, data.size() - pos);
    hasher.Update(ByteSpan(data.data() + pos, n));
    pos += n;
    piece = piece * 3 + 1;
  }
  EXPECT_EQ(hasher.Finish(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Sha1StreamingTest,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 127, 128,
                                           1000, 4096, 65536, 100001));

// Randomized split points: every partition of the input must hash like the
// one-shot, exercising the multi-block fast path (whole blocks compressed
// straight from the caller's span) against the buffered head/tail path.
TEST(Sha1StreamingRandomizedTest, RandomSplitsMatchOneShot) {
  Rng rng(12345);
  for (int round = 0; round < 50; ++round) {
    std::size_t size = 1 + rng.Next() % 20000;
    Bytes data = rng.RandomBytes(size);
    Sha1Digest oneshot = Sha1(data);

    Sha1Hasher hasher;
    std::size_t pos = 0;
    while (pos < size) {
      // Bias toward small pieces so sub-block staging gets hit often, with
      // occasional multi-block spans for the fast path.
      std::size_t n = (rng.Next() % 4 == 0) ? 1 + rng.Next() % 700
                                               : 1 + rng.Next() % 64;
      n = std::min(n, size - pos);
      hasher.Update(ByteSpan(data.data() + pos, n));
      pos += n;
    }
    ASSERT_EQ(hasher.Finish(), oneshot) << "round " << round;
  }
}

// Every compressor must agree with the textbook reference bit for bit; on
// CPUs without SHA extensions kShaNi resolves to the portable code and
// that leg degenerates to a self-check.
TEST(Sha1ImplTest, AllCompressorsAgreeWithReference) {
  Rng rng(777);
  for (std::size_t size : {0u, 1u, 63u, 64u, 65u, 1000u, 100000u}) {
    Bytes data = rng.RandomBytes(size);
    Sha1ForceImpl(Sha1Impl::kReference);
    Sha1Digest reference = Sha1(data);
    Sha1ForceImpl(Sha1Impl::kPortable);
    Sha1Digest portable = Sha1(data);
    Sha1ForceImpl(Sha1Impl::kShaNi);
    Sha1Digest accelerated = Sha1(data);
    Sha1ForceImpl(Sha1Impl::kAuto);
    EXPECT_EQ(portable, reference) << "size " << size;
    EXPECT_EQ(accelerated, reference) << "size " << size;
  }
}

TEST(Sha1ImplTest, ForceAndRestore) {
  Sha1Impl detected = Sha1ActiveImpl();
  Sha1ForceImpl(Sha1Impl::kPortable);
  EXPECT_EQ(Sha1ActiveImpl(), Sha1Impl::kPortable);
  // Known-answer under the forced portable path.
  EXPECT_EQ(Sha1(AsBytes(std::string("abc"))).ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  Sha1ForceImpl(Sha1Impl::kAuto);
  EXPECT_EQ(Sha1ActiveImpl(), detected);
}

TEST(Sha1Test, DigestOrderingAndEquality) {
  Sha1Digest a = Sha1(AsBytes(std::string("a")));
  Sha1Digest b = Sha1(AsBytes(std::string("b")));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_EQ(a, Sha1(AsBytes(std::string("a"))));
}

TEST(Sha1Test, Prefix64MatchesHexPrefix) {
  Sha1Digest d = Sha1(AsBytes(std::string("abc")));
  // a9993e364706816a
  EXPECT_EQ(d.Prefix64(), 0xa9993e364706816aull);
}

TEST(Sha1Test, HexIs40LowercaseChars) {
  std::string hex = Sha1(AsBytes(std::string("xyz"))).ToHex();
  EXPECT_EQ(hex.size(), 40u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(Fnv1aTest, KnownValues) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64(std::string_view("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ull);
}

TEST(Fnv1aTest, SpanAndStringViewAgree) {
  std::string s = "checkpoint";
  EXPECT_EQ(Fnv1a64(std::string_view(s)), Fnv1a64(AsBytes(s)));
}

TEST(Sha1DigestHashTest, UsableAsMapKey) {
  Sha1DigestHash h;
  Sha1Digest a = Sha1(AsBytes(std::string("a")));
  Sha1Digest b = Sha1(AsBytes(std::string("b")));
  EXPECT_NE(h(a), h(b));  // astronomically unlikely to collide
}

}  // namespace
}  // namespace stdchk
