// Manager-failure recovery (paper §IV.A): a manager crash before the client
// pushes its final chunk map must not lose the write — the client stashes
// the map on the stripe's benefactors, and the recovered manager commits it
// once two-thirds of the stripe concur.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 3;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{5};
};

TEST_F(RecoveryTest, ManagerCrashAtCommitStashesOnBenefactors) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(session.value()->Write(data).ok());

  cluster_->manager().Crash();
  auto outcome = session.value()->Close();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value(), CloseOutcome::kStashedForRecovery);

  // At least the stripe width of benefactors hold the stashed map.
  std::size_t stashed = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    stashed += cluster_->benefactor(i).stashed_count();
  }
  EXPECT_GE(stashed, 3u);
}

TEST_F(RecoveryTest, RecoveredManagerCommitsStashedVersion) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(session.value()->Write(data).ok());
  cluster_->manager().Crash();
  ASSERT_TRUE(session.value()->Close().ok());

  cluster_->manager().Restart();
  cluster_->Tick(1.0);  // benefactors offer stashed maps

  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back.value(), data);

  // Stashes are dropped once committed.
  cluster_->Tick(1.0);
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    EXPECT_EQ(cluster_->benefactor(i).stashed_count(), 0u);
  }
}

TEST_F(RecoveryTest, RecoveryNeedsTwoThirdsOfStripe) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(6 * 1024)).ok());
  cluster_->manager().Crash();
  ASSERT_TRUE(session.value()->Close().ok());

  // Find which benefactors hold a stash; keep only one alive.
  std::vector<std::size_t> stash_holders;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (cluster_->benefactor(i).stashed_count() > 0) stash_holders.push_back(i);
  }
  ASSERT_GE(stash_holders.size(), 3u);
  for (std::size_t i = 1; i < stash_holders.size(); ++i) {
    cluster_->benefactor(stash_holders[i]).Crash();
  }

  cluster_->manager().Restart();
  cluster_->Tick(1.0);
  // One endorsement of a width-3 stripe: below quorum, not committed.
  EXPECT_FALSE(cluster_->manager().GetVersion(Name(1)).ok());

  // Second holder returns: quorum reached and the version commits.
  cluster_->benefactor(stash_holders[1]).Restart();
  cluster_->Tick(1.0);
  cluster_->Tick(1.0);
  EXPECT_TRUE(cluster_->manager().GetVersion(Name(1)).ok());

  // With every stripe member back, the data itself is readable too.
  for (std::size_t idx : stash_holders) {
    (void)cluster_->RestartBenefactor(idx);
  }
  EXPECT_TRUE(cluster_->client().ReadFile(Name(1)).ok());
}

TEST_F(RecoveryTest, RecoveredVersionSupportsFurtherWrites) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes v1 = rng_.RandomBytes(3 * 1024);
  ASSERT_TRUE(session.value()->Write(v1).ok());
  cluster_->manager().Crash();
  ASSERT_TRUE(session.value()->Close().ok());
  cluster_->manager().Restart();
  cluster_->Tick(1.0);

  // Normal operation continues: next timestep commits directly.
  Bytes v2 = rng_.RandomBytes(3 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(2), v2).ok());
  EXPECT_EQ(cluster_->manager().catalog().TotalVersions(), 2u);
}

TEST_F(RecoveryTest, CommittedDataUnaffectedByManagerBounce) {
  Bytes data = rng_.RandomBytes(4 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  cluster_->manager().Crash();
  EXPECT_FALSE(cluster_->client().ReadFile(Name(1)).ok());  // manager down
  cluster_->manager().Restart();
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

// A disk-donating benefactor process dies and comes back: a fresh store
// over the same directory recovers the segment log, and the rebuilt node
// re-offers every surviving chunk to the manager's GC exchange (the
// paper's soft-state re-registration story, now backed by real recovery).
TEST(BenefactorRestartTest, DiskBenefactorRejoinsWithRecoveredChunks) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_benefactor_restart_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  Rng rng(23);
  std::vector<std::pair<ChunkId, Bytes>> chunks;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 6; ++i) {
    Bytes data = rng.RandomBytes(2048);
    chunks.emplace_back(ChunkId::For(data), data);
    batch.push_back(ChunkPut{chunks.back().first, BufferSlice::Copy(data)});
  }

  {  // First life: admit a generation, then the process dies (no cleanup).
    auto store = MakeDiskChunkStore(dir.string());
    ASSERT_TRUE(store.ok());
    Benefactor node("desk0", std::move(store).value(), 1_GiB);
    ASSERT_TRUE(node.PutChunkBatch(batch).ok());
  }

  // Second life: a new store over the same directory, a new registration.
  VirtualClock clock;
  MetadataManager manager(&clock);
  auto store = MakeDiskChunkStore(dir.string());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->Stats().recovered_chunks, chunks.size());
  Benefactor reborn("desk0", std::move(store).value(), 1_GiB);
  ASSERT_TRUE(reborn.JoinPool(manager).ok());
  EXPECT_EQ(reborn.ChunkCount(), chunks.size());
  for (const auto& [id, data] : chunks) {
    auto got = reborn.GetChunk(id);  // served + SHA-1-verified
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got.value(), data);
  }

  // The GC exchange sees the recovered holdings; with no live catalog
  // entries they are orphans, so the manager reclaims all of them.
  auto reclaimed = reborn.RunGc(manager);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), chunks.size());
  EXPECT_EQ(reborn.ChunkCount(), 0u);

  std::filesystem::remove_all(dir);
}

TEST_F(RecoveryTest, GcDoesNotCollectStashedDataBeforeRecovery) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(session.value()->Write(data).ok());
  cluster_->manager().Crash();
  ASSERT_TRUE(session.value()->Close().ok());

  cluster_->manager().Restart();
  // Many GC rounds; recovery offers happen in the same Tick loop, so data
  // must survive and become readable.
  for (int i = 0; i < 80; ++i) cluster_->Tick(1.0);
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back.value(), data);
}

}  // namespace
}  // namespace stdchk
