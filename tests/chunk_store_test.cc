#include "chunk/chunk_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"

namespace stdchk {
namespace {

enum class StoreKind { kMemory, kDisk };

class ChunkStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kMemory) {
      store_ = MakeMemoryChunkStore();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("stdchk_store_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
      std::filesystem::remove_all(dir_);
      auto store = MakeDiskChunkStore(dir_.string());
      ASSERT_TRUE(store.ok()) << store.status();
      store_ = std::move(store).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  static Bytes MakeData(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return rng.RandomBytes(n);
  }

  std::unique_ptr<ChunkStore> store_;
  std::filesystem::path dir_;
};

TEST_P(ChunkStoreTest, PutThenGetRoundTrips) {
  Bytes data = MakeData(1000, 1);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store_->Put(id, data).ok());
  auto got = store_->Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data);
}

TEST_P(ChunkStoreTest, GetMissingIsNotFound) {
  ChunkId id = ChunkId::For(AsBytes(std::string("nothing")));
  EXPECT_EQ(store_->Get(id).status().code(), StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, ContainsReflectsState) {
  Bytes data = MakeData(64, 2);
  ChunkId id = ChunkId::For(data);
  EXPECT_FALSE(store_->Contains(id));
  ASSERT_TRUE(store_->Put(id, data).ok());
  EXPECT_TRUE(store_->Contains(id));
}

TEST_P(ChunkStoreTest, PutIsIdempotent) {
  Bytes data = MakeData(128, 3);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store_->Put(id, data).ok());
  ASSERT_TRUE(store_->Put(id, data).ok());
  EXPECT_EQ(store_->ChunkCount(), 1u);
  EXPECT_EQ(store_->BytesUsed(), 128u);
}

TEST_P(ChunkStoreTest, DeleteRemovesAndAccounts) {
  Bytes data = MakeData(256, 4);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store_->Put(id, data).ok());
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_FALSE(store_->Contains(id));
  EXPECT_EQ(store_->BytesUsed(), 0u);
  EXPECT_EQ(store_->ChunkCount(), 0u);
  EXPECT_EQ(store_->Delete(id).code(), StatusCode::kNotFound);
}

TEST_P(ChunkStoreTest, ListReturnsAllChunks) {
  std::set<std::string> expected;
  for (int i = 0; i < 10; ++i) {
    Bytes data = MakeData(100 + static_cast<std::size_t>(i), 100 + i);
    ChunkId id = ChunkId::For(data);
    expected.insert(id.ToHex());
    ASSERT_TRUE(store_->Put(id, data).ok());
  }
  std::set<std::string> got;
  for (const ChunkId& id : store_->List()) got.insert(id.ToHex());
  EXPECT_EQ(got, expected);
}

TEST_P(ChunkStoreTest, BytesUsedSumsSizes) {
  for (std::size_t n : {10u, 20u, 30u}) {
    Bytes data = MakeData(n, n);
    ASSERT_TRUE(store_->Put(ChunkId::For(data), data).ok());
  }
  EXPECT_EQ(store_->BytesUsed(), 60u);
}

TEST_P(ChunkStoreTest, EmptyChunkSupported) {
  Bytes empty;
  ChunkId id = ChunkId::For(empty);
  ASSERT_TRUE(store_->Put(id, empty).ok());
  auto got = store_->Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST_P(ChunkStoreTest, PutBatchStoresWholeGeneration) {
  std::vector<Bytes> payloads;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(MakeData(100 + static_cast<std::size_t>(i), 900 + i));
    batch.push_back(
        ChunkPut{ChunkId::For(payloads.back()), BufferSlice::Copy(payloads.back())});
  }
  // Duplicate id within the batch (repeated content): stored once.
  batch.push_back(batch.front());
  ASSERT_TRUE(store_->PutBatch(batch).ok());
  EXPECT_EQ(store_->ChunkCount(), 8u);
  for (const Bytes& data : payloads) {
    auto got = store_->Get(ChunkId::For(data));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data);
  }
  // Re-batching is idempotent.
  ASSERT_TRUE(store_->PutBatch(batch).ok());
  EXPECT_EQ(store_->ChunkCount(), 8u);
}

TEST_P(ChunkStoreTest, WipeDropsEverythingButHeldSlicesStayValid) {
  Bytes data = MakeData(2048, 31);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store_->Put(id, data).ok());
  auto held = store_->Get(id);
  ASSERT_TRUE(held.ok());

  ASSERT_TRUE(store_->Wipe().ok());
  EXPECT_EQ(store_->ChunkCount(), 0u);
  EXPECT_EQ(store_->BytesUsed(), 0u);
  EXPECT_FALSE(store_->Contains(id));
  EXPECT_EQ(held.value(), data);  // the slice outlives the wipe

  // The store remains usable after a wipe.
  ASSERT_TRUE(store_->Put(id, data).ok());
  EXPECT_EQ(store_->ChunkCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ChunkStoreTest,
                         ::testing::Values(StoreKind::kMemory,
                                           StoreKind::kDisk),
                         [](const auto& info) {
                           return info.param == StoreKind::kMemory ? "Memory"
                                                                   : "Disk";
                         });

// Randomized op-sequence driven against the memory and disk stores in
// lockstep: the two backends must be observationally identical — same
// status codes, same visible bytes, same accounting — and disk slices
// handed out along the way (zero-copy views of mmap'd segments) must stay
// byte-stable across every later Delete/Wipe/segment reclamation.
TEST(ChunkStorePropertyTest, MemoryAndDiskStoresAgreeUnderRandomOps) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_lockstep_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  auto memory = MakeMemoryChunkStore();
  DiskStoreOptions small;
  small.segment_target_bytes = 2048;  // force frequent rolls + reclamation
  auto disk_result = MakeDiskChunkStore(dir.string(), small);
  ASSERT_TRUE(disk_result.ok()) << disk_result.status();
  auto disk = std::move(disk_result).value();

  Rng rng(0xC0FFEE);
  std::vector<std::pair<ChunkId, Bytes>> universe;  // ids ops draw from
  auto random_chunk = [&]() {
    Bytes data = rng.RandomBytes(rng.NextBelow(700));  // includes empty
    universe.emplace_back(ChunkId::For(data), data);
    return universe.back();
  };
  auto known_id = [&]() {
    return universe[rng.NextBelow(universe.size())].first;
  };
  random_chunk();  // never draw from an empty universe

  struct HeldSlice {
    BufferSlice slice;
    Bytes expected;
  };
  std::vector<HeldSlice> held;

  for (int op = 0; op < 600; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    double dice = rng.NextDouble();
    if (dice < 0.30) {  // Put (fresh or re-put)
      auto [id, data] = rng.NextBool(0.7) ? random_chunk()
                                          : universe[rng.NextBelow(
                                                universe.size())];
      Status m = memory->Put(id, BufferSlice::Copy(data));
      Status d = disk->Put(id, BufferSlice::Copy(data));
      EXPECT_EQ(m.code(), d.code());
    } else if (dice < 0.45) {  // PutBatch of a small generation
      // Pack the generation into ONE shared backing for the memory store
      // (the real drain shape): later deletes then strand dead bytes in
      // the backing, which is what memory CompactStep exists to reclaim.
      std::size_t n = 1 + rng.NextBelow(6);
      std::vector<std::pair<ChunkId, Bytes>> gen;
      Bytes packed;
      for (std::size_t i = 0; i < n; ++i) {
        gen.push_back(random_chunk());
        packed.insert(packed.end(), gen.back().second.begin(),
                      gen.back().second.end());
      }
      BufferRef backing = BufferRef::Take(std::move(packed));
      std::vector<ChunkPut> mem_batch, disk_batch;
      std::size_t off = 0;
      for (const auto& [id, data] : gen) {
        mem_batch.push_back(
            ChunkPut{id, BufferSlice(backing, off, data.size())});
        disk_batch.push_back(ChunkPut{id, BufferSlice::Copy(data)});
        off += data.size();
      }
      Status m = memory->PutBatch(mem_batch);
      Status d = disk->PutBatch(disk_batch);
      EXPECT_EQ(m.code(), d.code());
    } else if (dice < 0.70) {  // Get, occasionally holding the disk slice
      ChunkId id = known_id();
      auto m = memory->Get(id);
      auto d = disk->Get(id);
      ASSERT_EQ(m.status().code(), d.status().code());
      if (m.ok()) {
        EXPECT_EQ(m.value(), d.value());
        if (rng.NextBool(0.5)) {
          held.push_back(HeldSlice{d.value(), d.value().ToBytes()});
        }
      }
    } else if (dice < 0.88) {  // Delete
      ChunkId id = known_id();
      Status m = memory->Delete(id);
      Status d = disk->Delete(id);
      EXPECT_EQ(m.code(), d.code());
    } else if (dice < 0.91) {  // Wipe (rare)
      EXPECT_TRUE(memory->Wipe().ok());
      EXPECT_TRUE(disk->Wipe().ok());
    } else if (dice < 0.97) {  // CompactStep interleaved with the traffic
      CompactionPolicy policy;
      // Eager threshold: any segment/backing with one dead record and one
      // survivor is a victim, so compaction interleaves with everything
      // else as often as the mix allows.
      policy.utilization_threshold = 0.9;
      policy.max_bytes_per_step = 4096;
      auto m = memory->CompactStep(policy);
      auto d = disk->CompactStep(policy);
      EXPECT_TRUE(m.ok()) << m.status();
      EXPECT_TRUE(d.ok()) << d.status();
    } else {  // Contains
      ChunkId id = known_id();
      EXPECT_EQ(memory->Contains(id), disk->Contains(id));
    }

    ASSERT_EQ(memory->BytesUsed(), disk->BytesUsed());
    ASSERT_EQ(memory->ChunkCount(), disk->ChunkCount());
  }

  // Visible state is identical chunk for chunk.
  std::set<std::string> memory_ids, disk_ids;
  for (const ChunkId& id : memory->List()) memory_ids.insert(id.ToHex());
  for (const ChunkId& id : disk->List()) disk_ids.insert(id.ToHex());
  EXPECT_EQ(memory_ids, disk_ids);
  for (const ChunkId& id : memory->List()) {
    auto m = memory->Get(id);
    auto d = disk->Get(id);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(m.value(), d.value());
  }

  // Every slice held across subsequent deletes, wipes and segment
  // reclamations still reads its original bytes (the mmap backing lives
  // until the last slice drops, unlinked files included).
  EXPECT_GE(held.size(), 5u);  // the op mix must actually exercise this
  for (std::size_t i = 0; i < held.size(); ++i) {
    SCOPED_TRACE("held slice " + std::to_string(i));
    EXPECT_EQ(held[i].slice, ByteSpan(held[i].expected));
  }
  EXPECT_GT(disk->Stats().segments_reclaimed, 0u);
  // The interleaved CompactStep ops must have actually compacted — on both
  // backends — while every invariant above held.
  EXPECT_GT(disk->Stats().segments_compacted, 0u);
  EXPECT_GT(memory->Stats().generations_released, 0u);

  held.clear();
  memory.reset();
  disk.reset();
  std::filesystem::remove_all(dir);
}

TEST(DiskChunkStoreTest, SurvivesReopen) {
  auto dir = std::filesystem::temp_directory_path() / "stdchk_reopen_test";
  std::filesystem::remove_all(dir);

  Rng rng(5);
  Bytes data = rng.RandomBytes(512);
  ChunkId id = ChunkId::For(data);
  {
    auto store = MakeDiskChunkStore(dir.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put(id, data).ok());
  }
  {
    auto store = MakeDiskChunkStore(dir.string());
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(store.value()->Contains(id));
    EXPECT_EQ(store.value()->BytesUsed(), 512u);
    auto got = store.value()->Get(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), data);
  }
  std::filesystem::remove_all(dir);
}

// The over-retention gap ResidentBytes() exists to expose: slices aliasing
// one drain generation pin the whole backing buffer, so a memory store
// retaining a small fraction of the generation's chunks still holds the
// full generation resident while BytesUsed() reports only the fraction.
TEST(MemoryStoreResidencyTest, RetainedSlicePinsWholeGeneration) {
  auto store = MakeMemoryChunkStore();
  constexpr std::size_t kGeneration = 1 << 20;  // one 1 MiB drain
  constexpr std::size_t kChunk = 64 << 10;
  Rng rng(77);
  BufferRef backing = BufferRef::Take(rng.RandomBytes(kGeneration));

  std::vector<ChunkId> ids;
  for (std::size_t off = 0; off < kGeneration; off += kChunk) {
    BufferSlice slice(backing, off, kChunk);
    ChunkId id = ChunkId::For(slice.span());
    ids.push_back(id);
    ASSERT_TRUE(store->Put(id, std::move(slice)).ok());
  }
  backing = BufferRef();  // the store is now the only owner

  EXPECT_EQ(store->BytesUsed(), kGeneration);
  EXPECT_EQ(store->ResidentBytes(), kGeneration);

  // Dedup-style retention: keep one chunk, delete the rest. BytesUsed
  // drops to one chunk; the resident footprint stays the whole generation.
  for (std::size_t i = 1; i < ids.size(); ++i) {
    ASSERT_TRUE(store->Delete(ids[i]).ok());
  }
  EXPECT_EQ(store->BytesUsed(), kChunk);
  EXPECT_EQ(store->ResidentBytes(), kGeneration);
  EXPECT_GE(store->ResidentBytes(), 16 * store->BytesUsed());

  // Dropping the last chunk unpins the generation.
  ASSERT_TRUE(store->Delete(ids[0]).ok());
  EXPECT_EQ(store->BytesUsed(), 0u);
  EXPECT_EQ(store->ResidentBytes(), 0u);
}

// CompactStep closes the over-retention gap: survivors of a mostly-dead
// generation move into a fresh tightly-packed backing, the store's pin on
// the old generation drops, and reader-held slices of the old generation
// stay byte-stable (their pin, not the store's).
TEST(MemoryStoreResidencyTest, CompactStepClosesTheGap) {
  auto store = MakeMemoryChunkStore();
  constexpr std::size_t kGeneration = 1 << 20;
  constexpr std::size_t kChunk = 64 << 10;
  Rng rng(80);
  BufferRef backing = BufferRef::Take(rng.RandomBytes(kGeneration));

  std::vector<ChunkId> ids;
  for (std::size_t off = 0; off < kGeneration; off += kChunk) {
    BufferSlice slice(backing, off, kChunk);
    ChunkId id = ChunkId::For(slice.span());
    // The planner stamps what it names: the pre-compaction slices carry
    // digest stamps that the compacted copies must NOT inherit.
    slice.StampDigest(id.digest);
    ids.push_back(id);
    ASSERT_TRUE(store->Put(id, std::move(slice)).ok());
  }
  backing = BufferRef();

  // Keep one chunk, delete the rest: the classic dedup-retention shape.
  for (std::size_t i = 1; i < ids.size(); ++i) {
    ASSERT_TRUE(store->Delete(ids[i]).ok());
  }
  ASSERT_EQ(store->BytesUsed(), kChunk);
  ASSERT_EQ(store->ResidentBytes(), kGeneration);

  // A reader holds the old-generation slice across the move.
  auto held = store->Get(ids[0]);
  ASSERT_TRUE(held.ok());
  Bytes expected = held.value().ToBytes();
  EXPECT_NE(held.value().stamped_digest(), nullptr);  // original is stamped

  CompactionPolicy policy;  // threshold 0.5; utilization here is 1/16
  auto step = store->CompactStep(policy);
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(step.value().generations_released, 1u);
  EXPECT_EQ(step.value().bytes_rewritten, kChunk);
  EXPECT_EQ(step.value().bytes_reclaimed, kGeneration - kChunk);

  // The store now pins only the packed copy...
  EXPECT_EQ(store->BytesUsed(), kChunk);
  EXPECT_EQ(store->ResidentBytes(), kChunk);
  EXPECT_EQ(store->Stats().generations_released, 1u);
  EXPECT_EQ(store->Stats().compacted_bytes_rewritten, kChunk);

  // ...the moved chunk reads the same bytes from a NEW, UNSTAMPED backing
  // (no stale-stamp shortcut on moved bytes)...
  auto got = store->Get(ids[0]);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), ByteSpan(expected));
  EXPECT_FALSE(got.value().SharesBufferWith(held.value()));
  EXPECT_EQ(got.value().stamped_digest(), nullptr);

  // ...and the reader's old-generation slice is byte-stable throughout.
  EXPECT_EQ(held.value(), ByteSpan(expected));

  // Fully-live backings are left alone: compaction converges.
  auto idle = store->CompactStep(policy);
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle.value().generations_released, 0u);
}

TEST(MemoryStoreResidencyTest, IndependentBackingsCountedOnce) {
  auto store = MakeMemoryChunkStore();
  Rng rng(78);
  // Two generations; two chunks each. Resident = sum of distinct backings.
  for (int g = 0; g < 2; ++g) {
    BufferRef backing = BufferRef::Take(rng.RandomBytes(4096));
    for (std::size_t off = 0; off < 4096; off += 2048) {
      BufferSlice slice(backing, off, 2048);
      ASSERT_TRUE(store->Put(ChunkId::For(slice.span()), slice).ok());
    }
  }
  EXPECT_EQ(store->BytesUsed(), 8192u);
  EXPECT_EQ(store->ResidentBytes(), 8192u);
}

TEST(DiskStoreResidencyTest, PinsNothing) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_residency_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  auto store = MakeDiskChunkStore(dir.string());
  ASSERT_TRUE(store.ok());
  Rng rng(79);
  Bytes data = rng.RandomBytes(4096);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(data), data).ok());
  EXPECT_EQ(store.value()->BytesUsed(), 4096u);
  EXPECT_EQ(store.value()->ResidentBytes(), 0u);
  std::filesystem::remove_all(dir);
}

// Satellite bugfix: ResidentBytes() used to hard-code 0, hiding the disk
// space reader-held mmap slices keep alive after their segment is
// unlinked (reclaim or compaction). Those bytes are invisible to `du` —
// the store must report them or the compaction invariant is unmeasurable.
TEST(DiskStoreResidencyTest, UnlinkedMappingsCountUntilReadersDrop) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_residency_unlinked_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  DiskStoreOptions small;
  small.segment_target_bytes = 1;  // roll per batch
  auto store = MakeDiskChunkStore(dir.string(), small);
  ASSERT_TRUE(store.ok());
  Rng rng(81);

  std::vector<ChunkId> gen_a;
  std::vector<ChunkPut> batch;
  for (int i = 0; i < 4; ++i) {
    Bytes data = rng.RandomBytes(1024);
    gen_a.push_back(ChunkId::For(data));
    batch.push_back(ChunkPut{gen_a.back(), BufferSlice::Copy(data)});
  }
  ASSERT_TRUE(store.value()->PutBatch(batch).ok());
  Bytes b = rng.RandomBytes(256);
  ASSERT_TRUE(store.value()->Put(ChunkId::For(b), b).ok());  // rolls

  // Reading maps the segment, but a mapping of a *linked* file is page
  // cache the kernel can drop — not pinned space.
  auto held = store.value()->Get(gen_a[0]);
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(store.value()->ResidentBytes(), 0u);

  // Kill the generation: its segment unlinks, but the reader's slice
  // keeps the whole mapped segment (and its disk blocks) alive.
  for (const ChunkId& id : gen_a) {
    ASSERT_TRUE(store.value()->Delete(id).ok());
  }
  ASSERT_EQ(store.value()->Stats().segments_reclaimed, 1u);
  EXPECT_GE(store.value()->ResidentBytes(), 4u * 1024u);
  EXPECT_EQ(held.value().size(), 1024u);  // still serving the dead segment

  // Dropping the last slice releases the mapping; the accounting follows.
  held.value() = BufferSlice();
  EXPECT_EQ(store.value()->ResidentBytes(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ChunkIdTest, ContentAddressing) {
  Bytes a = ToBytes("same content");
  Bytes b = ToBytes("same content");
  Bytes c = ToBytes("other content");
  EXPECT_EQ(ChunkId::For(a), ChunkId::For(b));
  EXPECT_NE(ChunkId::For(a), ChunkId::For(c));
}

TEST(ChunkMapTest, FileSizeFromChunks) {
  ChunkMap map;
  EXPECT_EQ(map.FileSize(), 0u);
  map.chunks.push_back(ChunkLocation{ChunkId{}, 0, 100, {1}});
  map.chunks.push_back(ChunkLocation{ChunkId{}, 100, 50, {2}});
  EXPECT_EQ(map.FileSize(), 150u);
}

}  // namespace
}  // namespace stdchk
