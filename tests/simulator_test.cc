#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace stdchk::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Milliseconds(30), [&] { order.push_back(3); });
  sim.At(Milliseconds(10), [&] { order.push_back(1); });
  sim.At(Milliseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Milliseconds(30));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.At(Seconds(1.0), [&] {
    sim.After(Seconds(2.0), [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Seconds(3.0));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.After(Microseconds(1), chain);
  };
  sim.After(Microseconds(1), chain);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), Microseconds(100));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<int> fired;
  sim.At(Seconds(1.0), [&] { fired.push_back(1); });
  sim.At(Seconds(2.0), [&] { fired.push_back(2); });
  sim.At(Seconds(3.0), [&] { fired.push_back(3); });

  sim.RunUntil(Seconds(2.0));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), Seconds(2.0));

  sim.RunUntil(Seconds(10.0));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Seconds(10.0));
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(Seconds(5.0));
  EXPECT_EQ(sim.Now(), Seconds(5.0));
}

TEST(SimTimeTest, ConversionHelpers) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1'000'000);
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
}

TEST(SimTimeTest, TransferTimeMatchesBandwidth) {
  // 100 MB at 100 MB/s = 1 s.
  EXPECT_NEAR(ToSeconds(TransferTime(100.0 * 1048576, 100.0)), 1.0, 1e-9);
}

TEST(SimTimeTest, ThroughputInverseOfTransferTime) {
  double bytes = 512.0 * 1048576;
  SimTime t = TransferTime(bytes, 86.2);
  EXPECT_NEAR(ThroughputMBps(bytes, t), 86.2, 0.01);
  EXPECT_EQ(ThroughputMBps(bytes, 0), 0.0);
}

}  // namespace
}  // namespace stdchk::sim
