#include "sim/pipe.h"

#include <gtest/gtest.h>

namespace stdchk::sim {
namespace {

constexpr double kMB = 1048576.0;

TEST(PipeTest, SingleTransferTiming) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0);  // 100 MB/s
  SimTime done = -1;
  pipe.Transfer(100 * kMB, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Seconds(1.0));
}

TEST(PipeTest, FifoQueueing) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0);
  SimTime first = -1, second = -1;
  pipe.Transfer(100 * kMB, [&] { first = sim.Now(); });
  pipe.Transfer(100 * kMB, [&] { second = sim.Now(); });
  sim.Run();
  EXPECT_EQ(first, Seconds(1.0));
  EXPECT_EQ(second, Seconds(2.0));  // waits for the first
}

TEST(PipeTest, PerOpOverheadAdds) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0, Milliseconds(10));
  SimTime done = -1;
  pipe.Transfer(100 * kMB, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Seconds(1.0) + Milliseconds(10));
}

TEST(PipeTest, LaterArrivalStartsWhenIdle) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0);
  SimTime done = -1;
  sim.At(Seconds(5.0), [&] {
    pipe.Transfer(100 * kMB, [&] { done = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(done, Seconds(6.0));
}

TEST(PipeTest, TracksBytesMoved) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0);
  pipe.Occupy(10 * kMB);
  pipe.Occupy(20 * kMB);
  sim.Run();
  EXPECT_DOUBLE_EQ(pipe.bytes_moved(), 30 * kMB);
}

TEST(PipeTest, BandwidthChangeAffectsNewTransfers) {
  Simulator sim;
  Pipe pipe(&sim, "p", 100.0);
  SimTime done = -1;
  pipe.set_bandwidth(50.0);
  pipe.Transfer(100 * kMB, [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Seconds(2.0));
}

// Pipelining property: chunks flowing through two chained pipes complete at
// the rate of the slower stage once the pipeline fills.
TEST(PipeTest, ChainedPipesBottleneckAtSlowestStage) {
  Simulator sim;
  Pipe fast(&sim, "fast", 200.0);
  Pipe slow(&sim, "slow", 50.0);

  const int chunks = 20;
  SimTime last_done = 0;
  for (int i = 0; i < chunks; ++i) {
    fast.Transfer(1 * kMB, [&] {
      slow.Transfer(1 * kMB, [&] { last_done = sim.Now(); });
    });
  }
  sim.Run();
  // 20 MB total; steady state 50 MB/s; first chunk pays the fast stage too.
  double seconds = ToSeconds(last_done);
  EXPECT_NEAR(seconds, 20.0 / 50.0 + 1.0 / 200.0, 0.01);
}

// Store-and-forward: a shared middle stage serializes two producers.
TEST(PipeTest, SharedStageSerializesStreams) {
  Simulator sim;
  Pipe shared(&sim, "shared", 100.0);
  double bytes_done = 0;
  SimTime last = 0;
  for (int i = 0; i < 10; ++i) {
    shared.Transfer(10 * kMB, [&] {
      bytes_done += 10 * kMB;
      last = sim.Now();
    });
  }
  sim.Run();
  EXPECT_DOUBLE_EQ(bytes_done, 100 * kMB);
  EXPECT_EQ(last, Seconds(1.0));
}

}  // namespace
}  // namespace stdchk::sim
