// The three write-optimized protocols of §IV.B through the staged write
// engine: CLW, IW and SW must commit byte-identical files with identical
// chunk maps, while their WriteStats expose the protocol-specific transfer
// timing (local spill vs increment flushes vs push-as-produced). Also
// covers CbCH-driven dedup on the functional streaming write path.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

constexpr std::size_t kFileSize = 64 * 1024;
constexpr std::size_t kChunkSize = 4096;
constexpr std::size_t kIncrementSize = 16384;

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

ClusterOptions BaseOptions() {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.stripe_width = 4;
  options.client.chunk_size = kChunkSize;
  options.client.increment_size = kIncrementSize;
  return options;
}

// Writes `data` in fixed-size pieces and returns the session's stats plus
// the committed record.
struct WrittenFile {
  WriteStats stats;
  VersionRecord record;
  std::uint64_t transport_rpcs = 0;
};

WrittenFile WriteWithProtocol(WriteProtocol protocol, ByteSpan data,
                              std::size_t piece) {
  ClusterOptions options = BaseOptions();
  options.client.protocol = protocol;
  StdchkCluster cluster(options);

  auto session = cluster.client().CreateFile(Name(1));
  EXPECT_TRUE(session.ok());
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t n = std::min(piece, data.size() - pos);
    EXPECT_TRUE(session.value()->Write(data.subspan(pos, n)).ok());
    pos += n;
  }
  auto outcome = session.value()->Close();
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value(), CloseOutcome::kCommitted);

  WrittenFile out;
  out.stats = session.value()->stats();
  out.transport_rpcs = cluster.transport().rpc_count();
  auto record = cluster.manager().GetVersion(Name(1));
  EXPECT_TRUE(record.ok());
  out.record = record.value();

  auto read_back = cluster.client().ReadFile(Name(1));
  EXPECT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), Bytes(data.begin(), data.end()));
  return out;
}

TEST(WriteProtocolEquivalenceTest, AllProtocolsCommitIdenticalChunkMaps) {
  Rng rng(42);
  Bytes data = rng.RandomBytes(kFileSize);

  WrittenFile clw =
      WriteWithProtocol(WriteProtocol::kCompleteLocal, data, 1000);
  WrittenFile iw = WriteWithProtocol(WriteProtocol::kIncremental, data, 1000);
  WrittenFile sw =
      WriteWithProtocol(WriteProtocol::kSlidingWindow, data, 1000);

  // Functionally equivalent: same size, same chunk boundaries, same
  // content addresses, in the same file order.
  for (const WrittenFile* f : {&iw, &sw}) {
    ASSERT_EQ(f->record.size, clw.record.size);
    ASSERT_EQ(f->record.chunk_map.chunks.size(),
              clw.record.chunk_map.chunks.size());
    for (std::size_t i = 0; i < clw.record.chunk_map.chunks.size(); ++i) {
      const ChunkLocation& a = clw.record.chunk_map.chunks[i];
      const ChunkLocation& b = f->record.chunk_map.chunks[i];
      EXPECT_EQ(a.id, b.id) << "chunk " << i;
      EXPECT_EQ(a.file_offset, b.file_offset) << "chunk " << i;
      EXPECT_EQ(a.size, b.size) << "chunk " << i;
    }
  }

  // Same bytes crossed the network either way.
  EXPECT_EQ(clw.stats.bytes_transferred, kFileSize);
  EXPECT_EQ(iw.stats.bytes_transferred, kFileSize);
  EXPECT_EQ(sw.stats.bytes_transferred, kFileSize);
  EXPECT_EQ(clw.stats.replica_puts, sw.stats.replica_puts);
}

TEST(WriteProtocolEquivalenceTest, StatsExposeProtocolTransferTiming) {
  Rng rng(43);
  Bytes data = rng.RandomBytes(kFileSize);

  WrittenFile clw =
      WriteWithProtocol(WriteProtocol::kCompleteLocal, data, 1000);
  WrittenFile iw = WriteWithProtocol(WriteProtocol::kIncremental, data, 1000);
  WrittenFile sw =
      WriteWithProtocol(WriteProtocol::kSlidingWindow, data, 1000);

  // CLW: everything spills locally and drains in exactly one batch at
  // close; the client buffers the entire file.
  EXPECT_EQ(clw.stats.flushes, 1u);
  EXPECT_EQ(clw.stats.bytes_spilled_local, kFileSize);
  EXPECT_EQ(clw.stats.max_buffered_bytes, kFileSize);

  // IW: one drain per completed increment (plus the close-time tail); the
  // buffer high-water mark sits near the increment size, not the file.
  EXPECT_GT(iw.stats.flushes, 1u);
  EXPECT_LT(iw.stats.flushes, sw.stats.flushes);
  EXPECT_EQ(iw.stats.bytes_spilled_local, kFileSize);
  EXPECT_GE(iw.stats.max_buffered_bytes, kIncrementSize);
  EXPECT_LT(iw.stats.max_buffered_bytes, kFileSize / 2);

  // SW: no local I/O at all, chunks leave as produced, so the window never
  // holds much more than one transfer chunk.
  EXPECT_EQ(sw.stats.bytes_spilled_local, 0u);
  EXPECT_GE(sw.stats.flushes, kFileSize / kChunkSize / 2);
  EXPECT_LT(sw.stats.max_buffered_bytes, 2 * kChunkSize);

  // Batching: CLW's single drain coalesces each benefactor's chunks into
  // one multi-chunk PUT, so it issues far fewer data RPCs than SW's
  // chunk-at-a-time pushes.
  EXPECT_LT(clw.stats.batched_puts, sw.stats.batched_puts);
  EXPECT_LT(clw.transport_rpcs, sw.transport_rpcs);
}

TEST(WriteProtocolEquivalenceTest, ProtocolsAgreeUnderContentBasedChunking) {
  // The planner's sealed-boundary rule must make the chunk map a pure
  // function of content even when drain timing differs per protocol.
  Rng rng(44);
  Bytes data = rng.RandomBytes(kFileSize);
  auto chunker = std::make_shared<ContentBasedChunker>(
      CbchParams{.window_m = 20, .boundary_bits_k = 11, .advance_p = 1});

  std::vector<VersionRecord> records;
  for (WriteProtocol protocol :
       {WriteProtocol::kCompleteLocal, WriteProtocol::kIncremental,
        WriteProtocol::kSlidingWindow}) {
    ClusterOptions options = BaseOptions();
    options.client.protocol = protocol;
    options.client.chunker = chunker;
    StdchkCluster cluster(options);
    auto session = cluster.client().CreateFile(Name(1));
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->Write(data).ok());
    ASSERT_TRUE(session.value()->Close().ok());
    auto record = cluster.manager().GetVersion(Name(1));
    ASSERT_TRUE(record.ok());
    records.push_back(record.value());

    auto read_back = cluster.client().ReadFile(Name(1));
    ASSERT_TRUE(read_back.ok());
    EXPECT_EQ(read_back.value(), Bytes(data.begin(), data.end()));
  }

  ASSERT_GT(records[0].chunk_map.chunks.size(), 4u);  // actually variable-size
  for (std::size_t p = 1; p < records.size(); ++p) {
    ASSERT_EQ(records[p].chunk_map.chunks.size(),
              records[0].chunk_map.chunks.size());
    for (std::size_t i = 0; i < records[0].chunk_map.chunks.size(); ++i) {
      EXPECT_EQ(records[p].chunk_map.chunks[i].id,
                records[0].chunk_map.chunks[i].id);
    }
  }
}

TEST(WriteProtocolEquivalenceTest,
     PessimisticFailoverReachesReplacementForAllChunks) {
  // A stripe member dies mid-write under pessimistic semantics with the
  // replication target equal to the stripe width: meeting the target then
  // requires *every* pending chunk — not just those queued on the dead
  // node when it failed — to reach the replacement donor.
  ClusterOptions options = BaseOptions();
  options.client.stripe_width = 3;
  options.client.chunk_size = 1024;
  options.client.semantics = WriteSemantics::kPessimistic;
  options.client.replication_target = 3;
  StdchkCluster cluster(options);

  auto session = cluster.client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Rng rng(45);
  Bytes part1 = rng.RandomBytes(4 * 1024);
  ASSERT_TRUE(session.value()->Write(part1).ok());

  // Crash a node that holds part1's replicas (a stripe member).
  std::size_t victim = cluster.benefactor_count();
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    if (cluster.benefactor(i).BytesUsed() > 0) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, cluster.benefactor_count());
  NodeId dead = cluster.benefactor(victim).id();
  cluster.benefactor(victim).Crash();

  Bytes part2 = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(session.value()->Write(part2).ok());
  auto outcome = session.value()->Close();
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  auto record = cluster.manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  // part2's chunks all met the full target on live nodes.
  const auto& chunks = record.value().chunk_map.chunks;
  for (std::size_t i = part1.size() / 1024; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].replicas.size(), 3u) << "chunk " << i;
    for (NodeId node : chunks[i].replicas) EXPECT_NE(node, dead);
  }
}

// ---- CbCH dedup through the functional streaming write path ----------------

class CbchStreamingDedupTest : public ::testing::Test {
 protected:
  // Writes `data` through a fresh session on `client`, in `piece`-sized
  // Write() calls, and returns the session stats.
  WriteStats StreamWrite(ClientProxy& client, const CheckpointName& name,
                         ByteSpan data, std::size_t piece) {
    auto session = client.CreateFile(name);
    EXPECT_TRUE(session.ok());
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t n = std::min(piece, data.size() - pos);
      EXPECT_TRUE(session.value()->Write(data.subspan(pos, n)).ok());
      pos += n;
    }
    auto outcome = session.value()->Close();
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return session.value()->stats();
  }

  Bytes MakeShiftedVersion(const Bytes& v1, Rng& rng) {
    // v1 with bytes inserted near the front — the FsCH killer: every
    // fixed-size boundary after the insertion shifts.
    Bytes v2;
    Append(v2, ByteSpan(v1.data(), 10'000));
    Bytes inserted = rng.RandomBytes(512);
    Append(v2, inserted);
    Append(v2, ByteSpan(v1.data() + 10'000, v1.size() - 10'000));
    return v2;
  }
};

TEST_F(CbchStreamingDedupTest, InjectedCbchDedupsAcrossVersions) {
  ClusterOptions options = BaseOptions();
  options.client.protocol = WriteProtocol::kSlidingWindow;
  options.client.incremental_fsch = true;
  options.client.chunker = std::make_shared<ContentBasedChunker>(
      CbchParams{.window_m = 20, .boundary_bits_k = 11, .advance_p = 1});
  StdchkCluster cluster(options);

  Rng rng(7);
  Bytes v1 = rng.RandomBytes(kFileSize);
  Bytes v2 = MakeShiftedVersion(v1, rng);

  WriteStats s1 = StreamWrite(cluster.client(), Name(1), v1, 1000);
  EXPECT_EQ(s1.chunks_deduplicated, 0u);
  EXPECT_EQ(s1.bytes_transferred, v1.size());

  // Different Write() granularity for v2: sealed boundaries must depend
  // only on content, so dedup still lines up.
  WriteStats s2 = StreamWrite(cluster.client(), Name(2), v2, 3333);
  EXPECT_GT(s2.chunks_deduplicated, 0u);
  EXPECT_GT(s2.bytes_deduplicated, v1.size() / 2);
  EXPECT_LT(s2.bytes_transferred, v1.size() / 4);

  // Both versions read back intact.
  auto v1_back = cluster.client().ReadFile(Name(1));
  ASSERT_TRUE(v1_back.ok());
  EXPECT_EQ(v1_back.value(), v1);
  auto v2_back = cluster.client().ReadFile(Name(2));
  ASSERT_TRUE(v2_back.ok());
  EXPECT_EQ(v2_back.value(), v2);
}

TEST_F(CbchStreamingDedupTest, FschFindsAlmostNothingAcrossShiftedVersions) {
  // Control: the same workload under fixed-size chunking detects only the
  // unshifted prefix (the two chunks before the insertion point) — the
  // insertion shifts every later boundary, destroying the similarity CbCH
  // keeps.
  ClusterOptions options = BaseOptions();
  options.client.protocol = WriteProtocol::kSlidingWindow;
  options.client.incremental_fsch = true;
  StdchkCluster cluster(options);

  Rng rng(7);
  Bytes v1 = rng.RandomBytes(kFileSize);
  Bytes v2 = MakeShiftedVersion(v1, rng);

  StreamWrite(cluster.client(), Name(1), v1, 1000);
  WriteStats s2 = StreamWrite(cluster.client(), Name(2), v2, 3333);
  EXPECT_LE(s2.chunks_deduplicated, 10'000 / kChunkSize);
  EXPECT_GE(s2.bytes_transferred, v2.size() - 10'000);
}

}  // namespace
}  // namespace stdchk
