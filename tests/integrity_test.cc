// Content-addressing as an integrity mechanism (paper §IV.C: "prevent
// faulty or malicious storage nodes from tampering with the chunks they
// store"): corrupt stored bytes and verify detection end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "benefactor/benefactor.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

namespace fs = std::filesystem;

TEST(IntegrityTest, TamperedDiskChunkIsDetectedOnRead) {
  auto dir = fs::temp_directory_path() / "stdchk_integrity_test";
  fs::remove_all(dir);

  VirtualClock clock;
  MetadataManager manager(&clock);
  auto store = MakeDiskChunkStore((dir / "node0").string());
  ASSERT_TRUE(store.ok());
  Benefactor benefactor("node0", std::move(store).value(), 1_GiB);
  ASSERT_TRUE(benefactor.JoinPool(manager).ok());

  Rng rng(1);
  Bytes data = rng.RandomBytes(4096);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(benefactor.PutChunk(id, data).ok());

  // A "malicious donor" flips bits in the stored chunk file.
  fs::path chunk_file;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) chunk_file = entry.path();
  }
  ASSERT_FALSE(chunk_file.empty());
  {
    std::fstream f(chunk_file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char evil = 0x66;
    f.write(&evil, 1);
  }

  auto got = benefactor.GetChunk(id);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);

  fs::remove_all(dir);
}

TEST(IntegrityTest, ReaderFailsOverFromCorruptReplicaToGoodOne) {
  // Two replicas; one donor's copy is corrupted in memory via a wipe+put
  // of different content under the same id (simulating silent corruption
  // is not possible through the public API — the content check in
  // PutChunk is itself the guard — so we model the corrupt donor as one
  // whose GetChunk fails, i.e. unreachable).
  ClusterOptions options;
  options.benefactor_count = 3;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.semantics = WriteSemantics::kPessimistic;
  options.client.replication_target = 2;
  StdchkCluster cluster(options);
  Rng rng(2);
  Bytes data = rng.RandomBytes(4096);
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"a", "n", 1}, data).ok());

  // Make the first replica of every chunk unreachable.
  auto record = cluster.manager().GetVersion(CheckpointName{"a", "n", 1});
  ASSERT_TRUE(record.ok());
  NodeId first = record.value().chunk_map.chunks[0].replicas[0];
  cluster.transport().SetUnreachable(first, true);

  auto read_back = cluster.client().ReadFile(CheckpointName{"a", "n", 1});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST(IntegrityTest, PutRejectsMismatchedContentEvenViaTransport) {
  ClusterOptions options;
  options.benefactor_count = 1;
  StdchkCluster cluster(options);
  Bytes data = ToBytes("legit");
  ChunkId wrong = ChunkId::For(ToBytes("other"));
  EXPECT_EQ(cluster.transport()
                .PutChunk(cluster.benefactor(0).id(), wrong, data)
                .code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace stdchk
