#include "manager/benefactor_registry.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace stdchk {
namespace {

class BenefactorRegistryTest : public ::testing::Test {
 protected:
  BenefactorRegistryTest() : registry_(&clock_, /*heartbeat_expiry_us=*/10'000'000) {}

  NodeId AddNode(std::uint64_t free = 1'000'000) {
    BenefactorInfo info;
    info.host = "host" + std::to_string(counter_++);
    info.total_bytes = free;
    info.free_bytes = free;
    return registry_.Register(info);
  }

  VirtualClock clock_;
  BenefactorRegistry registry_;
  int counter_ = 0;
};

TEST_F(BenefactorRegistryTest, RegisterAssignsDistinctIds) {
  NodeId a = AddNode(), b = AddNode();
  EXPECT_NE(a, b);
  EXPECT_TRUE(registry_.IsOnline(a));
  EXPECT_TRUE(registry_.IsOnline(b));
  EXPECT_EQ(registry_.online_count(), 2u);
}

TEST_F(BenefactorRegistryTest, HeartbeatFromUnknownNodeFails) {
  EXPECT_EQ(registry_.Heartbeat(999, 0).code(), StatusCode::kNotFound);
}

TEST_F(BenefactorRegistryTest, HeartbeatUpdatesFreeSpace) {
  NodeId a = AddNode(100);
  ASSERT_TRUE(registry_.Heartbeat(a, 55).ok());
  auto status = registry_.Get(a);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().info.free_bytes, 55u);
}

TEST_F(BenefactorRegistryTest, StaleNodesExpire) {
  NodeId a = AddNode();
  NodeId b = AddNode();
  clock_.AdvanceSeconds(5);
  ASSERT_TRUE(registry_.Heartbeat(b, 1).ok());
  clock_.AdvanceSeconds(6);  // a silent for 11 s, b for 6 s

  std::vector<NodeId> expired = registry_.ExpireStale();
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], a);
  EXPECT_FALSE(registry_.IsOnline(a));
  EXPECT_TRUE(registry_.IsOnline(b));
}

TEST_F(BenefactorRegistryTest, HeartbeatRevivesExpiredNode) {
  NodeId a = AddNode();
  clock_.AdvanceSeconds(11);
  registry_.ExpireStale();
  ASSERT_FALSE(registry_.IsOnline(a));
  ASSERT_TRUE(registry_.Heartbeat(a, 10).ok());
  EXPECT_TRUE(registry_.IsOnline(a));
}

TEST_F(BenefactorRegistryTest, SetOfflineExcludesFromStripes) {
  NodeId a = AddNode();
  AddNode();
  ASSERT_TRUE(registry_.SetOffline(a).ok());
  auto stripe = registry_.SelectStripe(2);
  EXPECT_FALSE(stripe.ok());
  EXPECT_EQ(stripe.status().code(), StatusCode::kUnavailable);
}

TEST_F(BenefactorRegistryTest, SelectStripeReturnsRequestedWidth) {
  for (int i = 0; i < 8; ++i) AddNode();
  for (int width : {1, 2, 4, 8}) {
    auto stripe = registry_.SelectStripe(width);
    ASSERT_TRUE(stripe.ok()) << width;
    EXPECT_EQ(stripe.value().size(), static_cast<std::size_t>(width));
    // All distinct.
    auto s = stripe.value();
    std::sort(s.begin(), s.end());
    EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  }
}

TEST_F(BenefactorRegistryTest, SelectStripePrefersFreeSpace) {
  NodeId small = AddNode(10);
  NodeId big = AddNode(1'000'000);
  auto stripe = registry_.SelectStripe(1);
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe.value()[0], big);
  (void)small;
}

TEST_F(BenefactorRegistryTest, SelectStripeHonorsExclusions) {
  NodeId a = AddNode(100);
  NodeId b = AddNode(100);
  auto stripe = registry_.SelectStripe(1, {a});
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe.value()[0], b);
  auto none = registry_.SelectStripe(1, {a, b});
  EXPECT_FALSE(none.ok());
}

TEST_F(BenefactorRegistryTest, SelectStripeFailsWhenTooFewNodes) {
  AddNode();
  EXPECT_FALSE(registry_.SelectStripe(2).ok());
  EXPECT_FALSE(registry_.SelectStripe(0).ok());  // invalid width
}

TEST_F(BenefactorRegistryTest, ReservationsReduceEffectiveFreeSpace) {
  NodeId a = AddNode(1000);
  NodeId b = AddNode(900);
  // Initially a wins (more free); reserve most of a, then b should win.
  registry_.AddReserved(a, 500);
  auto stripe = registry_.SelectStripe(1);
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe.value()[0], b);
  registry_.ReleaseReserved(a, 500);
  stripe = registry_.SelectStripe(1);
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe.value()[0], a);
}

TEST_F(BenefactorRegistryTest, EqualFreeSpaceSpreadsAcrossCalls) {
  for (int i = 0; i < 4; ++i) AddNode(1000);
  std::set<NodeId> chosen;
  for (int i = 0; i < 16; ++i) {
    auto stripe = registry_.SelectStripe(1);
    ASSERT_TRUE(stripe.ok());
    chosen.insert(stripe.value()[0]);
  }
  // The rotating tie-break should touch more than one node.
  EXPECT_GT(chosen.size(), 1u);
}

TEST_F(BenefactorRegistryTest, UsedAccountingAdjustsFreeBytes) {
  NodeId a = AddNode(1000);
  registry_.AddUsed(a, 400);
  EXPECT_EQ(registry_.Get(a).value().info.free_bytes, 600u);
  registry_.ReleaseUsed(a, 100);
  EXPECT_EQ(registry_.Get(a).value().info.free_bytes, 700u);
  registry_.AddUsed(a, 10'000);  // clamps at zero
  EXPECT_EQ(registry_.Get(a).value().info.free_bytes, 0u);
}

// ---- placement epoch --------------------------------------------------------

TEST_F(BenefactorRegistryTest, EpochStartsAtOneAndBumpsOnRegister) {
  EXPECT_EQ(registry_.placement_epoch(), 1u);
  AddNode();
  EXPECT_EQ(registry_.placement_epoch(), 2u);
  AddNode();
  EXPECT_EQ(registry_.placement_epoch(), 3u);
}

TEST_F(BenefactorRegistryTest, RefreshHeartbeatDoesNotBumpEpoch) {
  NodeId a = AddNode(1000);
  std::uint64_t epoch = registry_.placement_epoch();
  // Free-space-only heartbeats keep the membership unchanged; bumping here
  // would perpetually invalidate every client's cached table.
  ASSERT_TRUE(registry_.Heartbeat(a, 900).ok());
  ASSERT_TRUE(registry_.Heartbeat(a, 800).ok());
  EXPECT_EQ(registry_.placement_epoch(), epoch);
}

TEST_F(BenefactorRegistryTest, EpochBumpsOnDepartureAndRevival) {
  NodeId a = AddNode();
  std::uint64_t epoch = registry_.placement_epoch();
  registry_.SetOffline(a);
  EXPECT_EQ(registry_.placement_epoch(), epoch + 1);
  registry_.SetOffline(a);  // already offline: no membership change
  EXPECT_EQ(registry_.placement_epoch(), epoch + 1);
  ASSERT_TRUE(registry_.Heartbeat(a, 500).ok());  // offline -> online revival
  EXPECT_EQ(registry_.placement_epoch(), epoch + 2);
}

TEST_F(BenefactorRegistryTest, EpochBumpsOncePerExpiryWave) {
  AddNode();
  AddNode();
  std::uint64_t epoch = registry_.placement_epoch();
  clock_.AdvanceSeconds(11);
  std::vector<NodeId> expired = registry_.ExpireStale();
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_EQ(registry_.placement_epoch(), epoch + 1);
  EXPECT_TRUE(registry_.ExpireStale().empty());  // nothing left to expire
  EXPECT_EQ(registry_.placement_epoch(), epoch + 1);
}

TEST_F(BenefactorRegistryTest, PlacementSnapshotIsAtomicWithEpoch) {
  NodeId a = AddNode(1000);
  NodeId b = AddNode(2000);
  PlacementTable table = registry_.PlacementSnapshot();
  EXPECT_EQ(table.epoch, registry_.placement_epoch());
  ASSERT_EQ(table.members.size(), 2u);
  EXPECT_EQ(table.members[0].id, a);
  EXPECT_EQ(table.members[1].id, b);

  // A membership change must be visible in the same snapshot that carries
  // the bumped epoch — never a new epoch with the old member list.
  registry_.SetOffline(a);
  PlacementTable after = registry_.PlacementSnapshot();
  EXPECT_EQ(after.epoch, table.epoch + 1);
  ASSERT_EQ(after.members.size(), 1u);
  EXPECT_EQ(after.members[0].id, b);
}

TEST_F(BenefactorRegistryTest, PlacementSnapshotReportsEffectiveFree) {
  NodeId a = AddNode(1000);
  registry_.AddReserved(a, 300);
  PlacementTable table = registry_.PlacementSnapshot();
  ASSERT_EQ(table.members.size(), 1u);
  EXPECT_EQ(table.members[0].free_bytes, 700u);  // free minus eager reserve
  registry_.AddReserved(a, 10'000);               // over-reserve clamps at 0
  EXPECT_EQ(registry_.PlacementSnapshot().members[0].free_bytes, 0u);
}

TEST_F(BenefactorRegistryTest, ImportBumpsEpochPastSnapshot) {
  AddNode();
  AddNode();
  std::uint64_t epoch = registry_.placement_epoch();

  BenefactorRegistry restored(&clock_, 10'000'000);
  restored.Import(registry_.Export(), registry_.next_id(), epoch);
  // The restored manager must advance past the snapshot epoch so clients
  // holding pre-failover tables refetch instead of trusting stale layout.
  EXPECT_GT(restored.placement_epoch(), epoch);
}

}  // namespace
}  // namespace stdchk
