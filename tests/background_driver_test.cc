#include "core/background_driver.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/rng.h"

namespace stdchk {
namespace {

TEST(BackgroundDriverTest, PumpsTicksFromThread) {
  ClusterOptions options;
  options.benefactor_count = 3;
  StdchkCluster cluster(options);
  {
    BackgroundDriver driver(&cluster, /*period_seconds=*/0.01);
    // Wait until at least a few ticks have run.
    for (int i = 0; i < 200 && driver.ticks() < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GE(driver.ticks(), 3u);
  }
  // Destructor stops the thread; the virtual clock advanced with the ticks.
  EXPECT_GT(cluster.clock().NowUs(), 0);
}

TEST(BackgroundDriverTest, StopIsIdempotent) {
  StdchkCluster cluster{ClusterOptions{}};
  BackgroundDriver driver(&cluster, 0.01);
  driver.Stop();
  driver.Stop();  // second call is a no-op
  std::uint64_t ticks = driver.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(driver.ticks(), ticks);  // nothing pumps after Stop
}

TEST(BackgroundDriverTest, DrivesReplicationToTarget) {
  ClusterOptions options;
  options.benefactor_count = 5;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.replication_target = 3;
  options.client.semantics = WriteSemantics::kOptimistic;
  StdchkCluster cluster(options);

  Rng rng(1);
  Bytes data = rng.RandomBytes(4096);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"a", "n", 1}, data)
                  .ok());

  BackgroundDriver driver(&cluster, 0.005);
  // Poll until replication converges (driver thread does the work).
  bool converged = false;
  for (int i = 0; i < 400 && !converged; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto record = cluster.manager().GetVersion(CheckpointName{"a", "n", 1});
    if (!record.ok()) continue;
    converged = true;
    for (const auto& loc : record.value().chunk_map.chunks) {
      if (loc.replicas.size() < 3) converged = false;
    }
  }
  driver.Stop();
  EXPECT_TRUE(converged);
}

}  // namespace
}  // namespace stdchk
