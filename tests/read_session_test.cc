#include "client/read_session.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class ReadSessionTest : public ::testing::Test {
 protected:
  ReadSessionTest() {
    ClusterOptions options;
    options.benefactor_count = 5;
    options.client.stripe_width = 3;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
    data_ = rng_.RandomBytes(10 * 1024 + 500);
    auto outcome = cluster_->client().WriteFile(Name(1), data_);
    EXPECT_TRUE(outcome.ok());
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{42};
  Bytes data_;
};

TEST_F(ReadSessionTest, ReadAllMatches) {
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value()->size(), data_.size());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data_);
}

TEST_F(ReadSessionTest, ReadAtArbitraryOffsets) {
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  for (std::uint64_t offset : {0ull, 1ull, 1023ull, 1024ull, 5000ull,
                               10ull * 1024}) {
    Bytes buf(777);
    auto n = session.value()->ReadAt(offset, MutableByteSpan(buf));
    ASSERT_TRUE(n.ok());
    std::size_t expected =
        std::min<std::size_t>(777, data_.size() - offset);
    ASSERT_EQ(n.value(), expected);
    EXPECT_TRUE(std::equal(buf.begin(),
                           buf.begin() + static_cast<std::ptrdiff_t>(expected),
                           data_.begin() + static_cast<std::ptrdiff_t>(offset)));
  }
}

TEST_F(ReadSessionTest, ReadPastEofReturnsZero) {
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes buf(100);
  auto n = session.value()->ReadAt(data_.size(), MutableByteSpan(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  n = session.value()->ReadAt(data_.size() + 5000, MutableByteSpan(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST_F(ReadSessionTest, EmptyBufferReadsNothing) {
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  auto n = session.value()->ReadAt(0, MutableByteSpan{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST_F(ReadSessionTest, SequentialReadsUseReadAheadCache) {
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes buf(512);  // half a chunk per read
  std::uint64_t offset = 0;
  while (true) {
    auto n = session.value()->ReadAt(offset, MutableByteSpan(buf));
    ASSERT_TRUE(n.ok());
    if (n.value() == 0) break;
    offset += n.value();
  }
  // Every chunk is fetched exactly once thanks to caching + read-ahead.
  EXPECT_EQ(session.value()->chunks_fetched(), 11u);
  EXPECT_GT(session.value()->cache_hits(), 0u);
}

TEST_F(ReadSessionTest, OpenMissingVersionFails) {
  EXPECT_FALSE(cluster_->client().OpenFile(Name(99)).ok());
}

TEST_F(ReadSessionTest, OpenLatestPicksNewestTimestep) {
  Bytes newer = rng_.RandomBytes(2048);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(7), newer).ok());
  auto session = cluster_->client().OpenLatest("app", "n1");
  ASSERT_TRUE(session.ok());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), newer);
}

TEST_F(ReadSessionTest, FailsOverToSurvivingReplica) {
  // Write with 2 replicas, then kill one node. Every chunk keeps at least
  // one live replica, so reads must succeed via failover.
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kPessimistic;
  options.replication_target = 2;
  auto client = cluster_->MakeClient(options);
  Bytes data = rng_.RandomBytes(6 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(50), data).ok());

  // Kill a node that holds data, to make the failover real.
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (cluster_->benefactor(i).BytesUsed() > 0) {
      cluster_->benefactor(i).Crash();
      break;
    }
  }

  auto read_back = client->ReadFile(Name(50));
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(ReadSessionTest, ReadFailsWhenEveryReplicaGone) {
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->benefactor(i).Crash();
  }
  auto read_back = cluster_->client().ReadFile(Name(1));
  EXPECT_FALSE(read_back.ok());
  EXPECT_EQ(read_back.status().code(), StatusCode::kUnavailable);
}

TEST_F(ReadSessionTest, RestartScenarioReadLatestAfterNodeLoss) {
  // The process-migration use case: node writes checkpoints, dies, another
  // client restarts from the latest image.
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kPessimistic;
  options.replication_target = 2;
  auto writer = cluster_->MakeClient(options);
  Bytes t1 = rng_.RandomBytes(3000), t2 = rng_.RandomBytes(3500);
  ASSERT_TRUE(writer->WriteFile(CheckpointName{"job", "w1", 1}, t1).ok());
  ASSERT_TRUE(writer->WriteFile(CheckpointName{"job", "w1", 2}, t2).ok());

  cluster_->benefactor(2).Crash();

  auto reader = cluster_->MakeClient(cluster_->client().options());
  auto session = reader->OpenLatest("job", "w1");
  ASSERT_TRUE(session.ok());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), t2);
}

}  // namespace
}  // namespace stdchk
