// Epoch-versioned decentralized placement, end to end (publish -> cache ->
// local stripe computation -> epoch-validated reserve/commit). The headline
// invariant: with a warm table cache and stable membership, steady-state
// writes perform ZERO manager placement RPCs — the manager's placement
// work is one table fetch per client, ever, until the membership changes.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/cluster_stats.h"

namespace stdchk {
namespace {

ClusterOptions DecentralizedOptions(int benefactors) {
  ClusterOptions options;
  options.benefactor_count = benefactors;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.decentralized_placement = true;
  return options;
}

TEST(PlacementProtocolTest, SteadyStateWritesNeedZeroPlacementRpcs) {
  StdchkCluster cluster(DecentralizedOptions(6));
  Rng rng(11);

  Bytes image = rng.RandomBytes(8 * 1024);
  for (std::uint64_t t = 1; t <= 10; ++t) {
    ASSERT_TRUE(
        cluster.client().WriteFile(CheckpointName{"app", "n", t}, image).ok());
  }

  ManagerCounters counters = cluster.manager().Counters();
  // One fetch when the first session warmed the proxy-wide cache; every
  // subsequent write placed its stripe locally.
  EXPECT_EQ(counters.placement_table_fetches, 1u);
  EXPECT_EQ(counters.placement_epoch_mismatches, 0u);
  EXPECT_EQ(counters.server_side_placements, 0u);
  EXPECT_EQ(cluster.client().table_cache().fetch_count(), 1u);

  // The decentralized path still produces readable images.
  auto read = cluster.client().ReadFile(CheckpointName{"app", "n", 10});
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), image);
}

TEST(PlacementProtocolTest, DistinctFilesSpreadAcrossThePool) {
  StdchkCluster cluster(DecentralizedOptions(8));
  Rng rng(12);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(cluster.client()
                    .WriteFile(CheckpointName{"app" + std::to_string(i), "n", 1},
                               rng.RandomBytes(2048))
                    .ok());
  }
  // Rendezvous hashing keyed by file name must not dogpile one stripe.
  std::size_t nodes_with_data = 0;
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    if (cluster.benefactor(i).ChunkCount() > 0) ++nodes_with_data;
  }
  EXPECT_GT(nodes_with_data, 2u);
}

TEST(PlacementProtocolTest, MembershipChangeCostsExactlyOneRefetch) {
  StdchkCluster cluster(DecentralizedOptions(6));
  Rng rng(13);
  Bytes image = rng.RandomBytes(4096);
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n", 1}, image).ok());
  std::uint64_t epoch_before = cluster.manager().Counters().placement_epoch;

  // A desktop joins the grid: membership changes, the epoch bumps, and
  // every cached table in the fleet is now stale.
  ASSERT_TRUE(cluster.AddBenefactor(4_GiB).ok());
  EXPECT_GT(cluster.manager().Counters().placement_epoch, epoch_before);

  // The next write trips exactly one FailedPrecondition, refetches, and
  // succeeds — the full recovery loop, invisible to the application.
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n", 2}, image).ok());
  ManagerCounters counters = cluster.manager().Counters();
  EXPECT_EQ(counters.placement_epoch_mismatches, 1u);
  EXPECT_EQ(counters.placement_table_fetches, 2u);
  EXPECT_EQ(counters.server_side_placements, 0u);

  // Steady state again: further writes are placement-RPC-free.
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n", 3}, image).ok());
  counters = cluster.manager().Counters();
  EXPECT_EQ(counters.placement_epoch_mismatches, 1u);
  EXPECT_EQ(counters.placement_table_fetches, 2u);
}

TEST(PlacementProtocolTest, StaleClientCannotCommitOntoDepartedBenefactor) {
  ClusterOptions options = DecentralizedOptions(2);
  options.client.protocol = WriteProtocol::kSlidingWindow;
  StdchkCluster cluster(options);
  Rng rng(14);

  auto session = cluster.client().CreateFile(CheckpointName{"app", "n", 1});
  ASSERT_TRUE(session.ok());
  // Sliding-window pushes chunks as they seal, so the reservation (and its
  // placement epoch) is taken here, mid-write.
  ASSERT_TRUE(session.value()->Write(rng.RandomBytes(4096)).ok());

  // Both stripe members depart (administratively, so the data path still
  // responds) between placement and commit.
  PlacementTable table = cluster.manager().GetPlacementTable().value();
  for (const PlacementMember& member : table.members) {
    ASSERT_TRUE(cluster.manager().registry_mutable().SetOffline(member.id).ok());
  }

  // The commit must be rejected: every chunk's replicas sit on departed
  // benefactors, and a stale client may not publish such a map.
  auto outcome = session.value()->Close();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_GE(cluster.manager().Counters().placement_epoch_mismatches, 1u);
  EXPECT_FALSE(cluster.manager().GetVersion(CheckpointName{"app", "n", 1}).ok());
}

TEST(PlacementProtocolTest, LegacyClientsKeepServerSidePlacement) {
  ClusterOptions options = DecentralizedOptions(4);
  options.client.decentralized_placement = false;
  StdchkCluster cluster(options);
  Rng rng(15);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"app", "n", 1}, rng.RandomBytes(2048))
                  .ok());
  ManagerCounters counters = cluster.manager().Counters();
  EXPECT_EQ(counters.placement_table_fetches, 0u);
  EXPECT_GT(counters.server_side_placements, 0u);
}

}  // namespace
}  // namespace stdchk
