// Shard-equivalence battery: a sharded FileCatalog must be an invisible
// optimization. shards=1 is pinned bit-for-bit to the historical single-map
// catalog; shards=N must produce the same observable state — committed
// chunk maps, catalog walks, GC victims, retention purges — under both a
// randomized single-threaded workload and a multi-threaded stress run.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "client/placement.h"
#include "common/rng.h"
#include "manager/metadata_manager.h"

namespace stdchk {
namespace {

ChunkId ShardChunkId(int i) {
  std::string s = "shard-chunk-" + std::to_string(i);
  return ChunkId::For(AsBytes(s));
}

// Canonical textual form of everything a client can observe about a
// catalog. Two managers in the same logical state must render identically
// regardless of shard count or operation interleaving.
std::string Canonicalize(const MetadataManager& manager) {
  std::ostringstream out;
  FileCatalog::ExportedState state = manager.catalog().Export();
  out << "policies:\n";
  for (const auto& [app, policy] : state.policies) {
    out << "  " << app << " r=" << static_cast<int>(policy.retention)
        << " keep=" << policy.keep_last << " rep=" << policy.replication_target
        << "\n";
  }
  out << "versions:\n";
  for (const VersionRecord& record : state.versions) {
    out << "  " << record.name.ToString() << " size=" << record.size
        << " chunks=[";
    for (const ChunkLocation& loc : record.chunk_map.chunks) {
      std::vector<NodeId> replicas = loc.replicas;
      std::sort(replicas.begin(), replicas.end());
      out << loc.id.ToHex().substr(0, 12) << "@" << loc.file_offset << "+"
          << loc.size << "{";
      for (NodeId node : replicas) out << node << ",";
      out << "} ";
    }
    out << "]\n";
  }
  out << "chunks:\n";
  for (const auto& [id, replicas] : state.chunk_replicas) {
    out << "  " << id.ToHex().substr(0, 12) << " -> ";
    for (NodeId node : replicas) out << node << ",";
    out << "\n";
  }
  out << "totals: v=" << manager.catalog().TotalVersions()
      << " logical=" << manager.catalog().TotalLogicalBytes()
      << " unique=" << manager.catalog().TotalUniqueBytes() << "\n";
  return out.str();
}

std::vector<std::string> SortedNames(const std::vector<CheckpointName>& names) {
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const CheckpointName& name : names) out.push_back(name.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

// ---- single-threaded randomized equivalence --------------------------------

// Drives an identical randomized op mix (commit / delete / policy /
// retention / GC exchange) against shards=1 and shards=7 managers sharing
// one clock, asserting every observable output matches at each step.
TEST(MetadataShardTest, RandomizedWorkloadMatchesSingleShard) {
  VirtualClock clock;
  ManagerOptions base, sharded;
  sharded.catalog_shards = 7;
  MetadataManager m1(&clock, base);
  MetadataManager m7(&clock, sharded);

  std::vector<NodeId> nodes1, nodes7;
  for (int i = 0; i < 6; ++i) {
    BenefactorInfo info;
    info.host = "d" + std::to_string(i);
    info.total_bytes = 1_GiB;
    info.free_bytes = 1_GiB;
    nodes1.push_back(m1.RegisterBenefactor(info).value());
    nodes7.push_back(m7.RegisterBenefactor(info).value());
  }
  ASSERT_EQ(nodes1, nodes7);

  Rng rng(42);
  std::vector<CheckpointName> live;
  std::set<int> committed_chunks;
  std::uint64_t next_timestep = 1;

  for (int step = 0; step < 400; ++step) {
    int op = static_cast<int>(rng.NextBelow(10));
    if (op < 5) {  // commit a fresh version
      VersionRecord record;
      record.name = CheckpointName{
          "app" + std::to_string(rng.NextBelow(12)), "n", next_timestep++};
      int chunk_count = 1 + static_cast<int>(rng.NextBelow(3));
      for (int c = 0; c < chunk_count; ++c) {
        ChunkLocation loc;
        int seed = static_cast<int>(rng.NextBelow(64));  // pool => dedup
        loc.id = ShardChunkId(seed);
        loc.file_offset = static_cast<std::uint64_t>(c) * 512;
        loc.size = 512;
        loc.replicas = {nodes1[rng.NextBelow(nodes1.size())]};
        record.chunk_map.chunks.push_back(loc);
        committed_chunks.insert(seed);
      }
      record.size = static_cast<std::uint64_t>(chunk_count) * 512;
      Status s1 = m1.CommitVersion(0, record);
      Status s7 = m7.CommitVersion(0, record);
      ASSERT_EQ(s1.code(), s7.code());
      if (s1.ok()) live.push_back(record.name);
    } else if (op < 7 && !live.empty()) {  // delete a random version
      std::size_t victim = rng.NextBelow(live.size());
      CheckpointName name = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      ASSERT_EQ(m1.DeleteVersion(name).code(), m7.DeleteVersion(name).code());
    } else if (op == 7) {  // tighten a folder's retention, then run it
      FolderPolicy policy;
      policy.retention = RetentionPolicy::kAutomatedReplace;
      policy.keep_last = 1 + static_cast<int>(rng.NextBelow(3));
      std::string app = "app" + std::to_string(rng.NextBelow(12));
      ASSERT_TRUE(m1.SetFolderPolicy(app, policy).ok());
      ASSERT_TRUE(m7.SetFolderPolicy(app, policy).ok());
      std::vector<CheckpointName> p1 = m1.TickRetention();
      std::vector<CheckpointName> p7 = m7.TickRetention();
      // Purge *sets* must match; ordering may differ across shard layouts.
      std::vector<std::string> sorted1 = SortedNames(p1);
      ASSERT_EQ(sorted1, SortedNames(p7));
      std::set<std::string> purged(sorted1.begin(), sorted1.end());
      std::erase_if(live, [&](const CheckpointName& name) {
        return purged.count(name.ToString()) > 0;
      });
    } else {  // GC exchange: held set = some live chunks + some orphans
      std::vector<ChunkId> held;
      for (int seed : committed_chunks) {
        if (rng.NextBelow(2) == 0) held.push_back(ShardChunkId(seed));
      }
      held.push_back(ShardChunkId(100'000 + static_cast<int>(rng.NextBelow(8))));
      NodeId reporter = nodes1[rng.NextBelow(nodes1.size())];
      auto gc1 = m1.GcExchange(reporter, held);
      auto gc7 = m7.GcExchange(reporter, held);
      ASSERT_TRUE(gc1.ok());
      ASSERT_TRUE(gc7.ok());
      // GC victims — the heart of "GC consistency across shards".
      ASSERT_EQ(gc1.value(), gc7.value());
    }
  }

  // Final observable state must be identical.
  std::vector<std::string> apps = m1.ListApps().value();
  ASSERT_EQ(apps, m7.ListApps().value());
  for (const std::string& app : apps) {
    ASSERT_EQ(SortedNames(m1.ListVersions(app).value()),
              SortedNames(m7.ListVersions(app).value()))
        << "app " << app;
  }
  for (const CheckpointName& name : live) {
    auto v1 = m1.GetVersion(name);
    auto v7 = m7.GetVersion(name);
    ASSERT_EQ(v1.ok(), v7.ok());
  }
  EXPECT_EQ(Canonicalize(m1), Canonicalize(m7));
}

// ---- multi-threaded stress equivalence --------------------------------------

// One thread's worth of decentralized write/read/delete traffic against
// `manager`, confined to its own app namespace so cross-thread ordering
// cannot change the final catalog. Deterministic: placement comes from the
// cached table (stable epoch, all nodes stay has-free), chunk ids from the
// (thread, iteration) pair, and the clock is frozen.
void RunShardWorker(MetadataManager* manager, int thread_idx, int iterations) {
  PlacementTableCache cache(manager);
  std::string app = "stress-t" + std::to_string(thread_idx);
  for (int i = 0; i < iterations; ++i) {
    auto table = cache.Get();
    ASSERT_TRUE(table.ok());
    CheckpointName name{app, "n", static_cast<std::uint64_t>(i + 1)};
    auto stripe =
        ComputeStripe(table.value(), /*width=*/2, PlacementSeed(name));
    ASSERT_TRUE(stripe.ok());
    auto reservation =
        manager->ReserveStripeAt(table.value().epoch, stripe.value(), 2048);
    ASSERT_TRUE(reservation.ok());

    VersionRecord record;
    record.name = name;
    for (int c = 0; c < 2; ++c) {
      ChunkLocation loc;
      // Every 4th chunk comes from a small shared pool: cross-thread dedup
      // traffic exercising concurrent refcounting on the same chunk shard.
      int seed = (i % 4 == 0) ? 500'000 + (i / 4) % 8
                              : thread_idx * 1'000'000 + i * 10 + c;
      loc.id = ShardChunkId(seed);
      loc.file_offset = static_cast<std::uint64_t>(c) * 1024;
      loc.size = 1024;
      loc.replicas = stripe.value();
      record.chunk_map.chunks.push_back(loc);
    }
    record.size = 2048;
    ASSERT_TRUE(manager
                    ->CommitVersionAt(reservation.value().id, record,
                                      table.value().epoch)
                    .ok());

    if (i % 3 == 0) {
      ASSERT_TRUE(manager->GetVersion(name).ok());
      (void)manager->FilterKnownChunks({record.chunk_map.chunks[0].id});
    }
    // Delete an older version of this thread's own app — but never one
    // referencing the shared dedup pool: erasing a shared chunk's last ref
    // drops its merged replica set, and whether another thread's commit
    // re-creates it before or after is interleaving-dependent. Keeping
    // shared chunks referenced makes their replica sets pure unions, which
    // are order-independent.
    if (i % 7 == 6 && (i - 6) % 4 != 0) {
      CheckpointName old{app, "n", static_cast<std::uint64_t>(i - 5)};
      ASSERT_TRUE(manager->DeleteVersion(old).ok());
    }
  }
}

TEST(MetadataShardTest, ConcurrentWorkloadMatchesSerialSingleShard) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 64;

  VirtualClock clock;  // frozen: commit_time identical everywhere
  ManagerOptions sharded;
  sharded.catalog_shards = 4;
  MetadataManager concurrent(&clock, sharded);
  MetadataManager serial(&clock);  // shards=1 reference

  for (int i = 0; i < 8; ++i) {
    BenefactorInfo info;
    info.host = "d" + std::to_string(i);
    info.total_bytes = 8_GiB;  // never runs dry: has_free stays true
    info.free_bytes = 8_GiB;
    NodeId a = concurrent.RegisterBenefactor(info).value();
    NodeId b = serial.RegisterBenefactor(info).value();
    ASSERT_EQ(a, b);
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(RunShardWorker, &concurrent, t, kIterations);
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    RunShardWorker(&serial, t, kIterations);
  }

  // Same logical workload, wildly different interleavings: the catalogs
  // must be indistinguishable.
  EXPECT_EQ(Canonicalize(concurrent), Canonicalize(serial));
  EXPECT_EQ(concurrent.Counters().placement_epoch_mismatches, 0u);
  EXPECT_EQ(concurrent.Counters().server_side_placements, 0u);

  // Sharding actually spread the load: every shard saw traffic.
  std::vector<CatalogShardStats> shards = concurrent.Counters().catalog_shards;
  ASSERT_EQ(shards.size(), 4u);
  for (const CatalogShardStats& shard : shards) EXPECT_GT(shard.ops, 0u);
}

}  // namespace
}  // namespace stdchk
