#include "fs/file_system.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() {
    ClusterOptions options;
    options.benefactor_count = 4;
    options.client.stripe_width = 2;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
    fs_ = std::make_unique<FileSystem>(&cluster_->client());
  }

  std::unique_ptr<StdchkCluster> cluster_;
  std::unique_ptr<FileSystem> fs_;
  Rng rng_{21};
};

TEST_F(FileSystemTest, WriteCloseReadRoundTrip) {
  Bytes data = rng_.RandomBytes(5000);
  auto fd = fs_->Open("/stdchk/sim/sim.n0.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  auto n = fs_->Write(fd.value(), data);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), data.size());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  auto rfd = fs_->Open("/stdchk/sim/sim.n0.T1", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  Bytes out(data.size());
  auto read = fs_->Read(rfd.value(), MutableByteSpan(out));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data.size());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs_->Close(rfd.value()).ok());
}

TEST_F(FileSystemTest, SequentialReadAdvancesPosition) {
  Bytes data = rng_.RandomBytes(3000);
  auto fd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  auto rfd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  Bytes out;
  Bytes buf(700);
  while (true) {
    auto n = fs_->Read(rfd.value(), MutableByteSpan(buf));
    ASSERT_TRUE(n.ok());
    if (n.value() == 0) break;
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n.value()));
  }
  EXPECT_EQ(out, data);
}

TEST_F(FileSystemTest, SeekRepositionsReads) {
  Bytes data = rng_.RandomBytes(4000);
  auto fd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  auto rfd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(fs_->Seek(rfd.value(), 2000).ok());
  Bytes buf(100);
  auto n = fs_->Read(rfd.value(), MutableByteSpan(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), data.begin() + 2000));
}

TEST_F(FileSystemTest, SeekOnWriteFdRejected) {
  auto fd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fs_->Seek(fd.value(), 0).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Close(fd.value()).ok());
}

TEST_F(FileSystemTest, BareRootFileNameDerivesFolder) {
  Bytes data = rng_.RandomBytes(100);
  auto fd = fs_->Open("/stdchk/blast.n3.T9", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  auto entries = fs_->ReadDir("/stdchk/blast");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value(), (std::vector<std::string>{"blast.n3.T9"}));
}

TEST_F(FileSystemTest, PathValidation) {
  EXPECT_FALSE(fs_->Open("/other/a.n.T1", OpenMode::kWrite).ok());
  EXPECT_FALSE(fs_->Open("/stdchk/a/b/c.n.T1", OpenMode::kWrite).ok());
  EXPECT_FALSE(fs_->Open("/stdchk/a/badname", OpenMode::kWrite).ok());
  // Folder mismatch: file "b.n.T1" inside folder "a".
  EXPECT_FALSE(fs_->Open("/stdchk/a/b.n.T1", OpenMode::kWrite).ok());
  EXPECT_FALSE(fs_->Open("/stdchk", OpenMode::kWrite).ok());
}

TEST_F(FileSystemTest, BadFdErrors) {
  Bytes buf(10);
  EXPECT_FALSE(fs_->Write(999, buf).ok());
  EXPECT_FALSE(fs_->Read(999, MutableByteSpan(buf)).ok());
  EXPECT_FALSE(fs_->Close(999).ok());
}

TEST_F(FileSystemTest, ReadOnWriteFdAndViceVersa) {
  Bytes data = rng_.RandomBytes(100);
  auto wfd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(wfd.ok());
  Bytes buf(10);
  EXPECT_EQ(fs_->Read(wfd.value(), MutableByteSpan(buf)).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Write(wfd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(wfd.value()).ok());

  auto rfd = fs_->Open("/stdchk/a/a.n.T1", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  EXPECT_EQ(fs_->Write(rfd.value(), data).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FileSystemTest, GetAttrForFileAndDirs) {
  Bytes data = rng_.RandomBytes(2500);
  auto fd = fs_->Open("/stdchk/app/app.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  auto attr = fs_->GetAttr("/stdchk/app/app.n.T1");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 2500u);
  EXPECT_FALSE(attr.value().is_directory);

  auto dir = fs_->GetAttr("/stdchk/app");
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir.value().is_directory);

  auto root = fs_->GetAttr("/stdchk");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().is_directory);

  EXPECT_FALSE(fs_->GetAttr("/stdchk/app/app.n.T9").ok());
  EXPECT_FALSE(fs_->GetAttr("/stdchk/ghost").ok());
}

TEST_F(FileSystemTest, MetadataCacheServesRepeatLookups) {
  Bytes data = rng_.RandomBytes(100);
  auto fd = fs_->Open("/stdchk/app/app.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), data).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  ASSERT_TRUE(fs_->GetAttr("/stdchk/app/app.n.T1").ok());
  std::uint64_t misses = fs_->attr_cache_misses();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->GetAttr("/stdchk/app/app.n.T1").ok());
  }
  EXPECT_EQ(fs_->attr_cache_misses(), misses);  // all hits
  EXPECT_GE(fs_->attr_cache_hits(), 5u);

  fs_->InvalidateCaches();
  ASSERT_TRUE(fs_->GetAttr("/stdchk/app/app.n.T1").ok());
  EXPECT_EQ(fs_->attr_cache_misses(), misses + 1);
}

TEST_F(FileSystemTest, ReadDirListsAppsAndVersions) {
  for (int t = 1; t <= 3; ++t) {
    std::string path = "/stdchk/app/app.n." + std::string("T") + std::to_string(t);
    auto fd = fs_->Open(path, OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Write(fd.value(), rng_.RandomBytes(10)).ok());
    ASSERT_TRUE(fs_->Close(fd.value()).ok());
  }
  auto apps = fs_->ReadDir("/stdchk");
  ASSERT_TRUE(apps.ok());
  EXPECT_EQ(apps.value(), (std::vector<std::string>{"app"}));

  auto versions = fs_->ReadDir("/stdchk/app");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions.value().size(), 3u);

  EXPECT_FALSE(fs_->ReadDir("/stdchk/app/app.n.T1").ok());
}

TEST_F(FileSystemTest, UnlinkRemovesFile) {
  auto fd = fs_->Open("/stdchk/app/app.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), rng_.RandomBytes(10)).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());

  ASSERT_TRUE(fs_->Unlink("/stdchk/app/app.n.T1").ok());
  EXPECT_FALSE(fs_->Open("/stdchk/app/app.n.T1", OpenMode::kRead).ok());
  EXPECT_FALSE(fs_->Unlink("/stdchk/app/app.n.T1").ok());
  EXPECT_FALSE(fs_->Unlink("/stdchk/app").ok());  // not a file
}

TEST_F(FileSystemTest, RemoveAllDeletesAppFolder) {
  for (int t = 1; t <= 3; ++t) {
    auto fd = fs_->Open("/stdchk/app/app.n.T" + std::to_string(t),
                        OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Write(fd.value(), rng_.RandomBytes(10)).ok());
    ASSERT_TRUE(fs_->Close(fd.value()).ok());
  }
  ASSERT_TRUE(fs_->RemoveAll("/stdchk/app").ok());
  auto apps = fs_->ReadDir("/stdchk");
  ASSERT_TRUE(apps.ok());
  EXPECT_TRUE(apps.value().empty());
}

TEST_F(FileSystemTest, SetPolicyAttachesToFolder) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  policy.replication_target = 2;
  ASSERT_TRUE(fs_->SetPolicy("/stdchk/app", policy).ok());
  auto got = cluster_->manager().GetFolderPolicy("app");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().retention, RetentionPolicy::kAutomatedReplace);
  EXPECT_FALSE(fs_->SetPolicy("/stdchk/app/app.n.T1", policy).ok());
}

TEST_F(FileSystemTest, CloseCommitsAtomically) {
  // A second filesystem (another desktop) must not see the file mid-write.
  FileSystem other(&cluster_->client());
  auto fd = fs_->Open("/stdchk/app/app.n.T1", OpenMode::kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Write(fd.value(), rng_.RandomBytes(5000)).ok());
  EXPECT_FALSE(other.Open("/stdchk/app/app.n.T1", OpenMode::kRead).ok());
  ASSERT_TRUE(fs_->Close(fd.value()).ok());
  EXPECT_TRUE(other.Open("/stdchk/app/app.n.T1", OpenMode::kRead).ok());
}

}  // namespace
}  // namespace stdchk
