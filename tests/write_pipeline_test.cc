// Sanity properties of the DES write pipelines — the bottleneck structure
// the paper's Figures 2-6 rely on must emerge from the model.
#include "perf/write_pipeline.h"

#include <gtest/gtest.h>

#include "perf/experiments.h"

namespace stdchk::perf {
namespace {

PipelineConfig BaseConfig(ProtocolModel protocol, int stripe_width) {
  PipelineConfig config;
  config.protocol = protocol;
  config.file_bytes = 1_GiB;  // the paper's file size; reaches steady state
  config.chunk_size = 1_MiB;
  config.buffer_bytes = 64_MiB;
  config.increment_bytes = 64_MiB;
  for (int i = 0; i < stripe_width; ++i) config.stripe.push_back(i);
  return config;
}

WriteResult RunProto(ProtocolModel protocol, int stripe_width,
                const PlatformModel& platform = PaperLanTestbed()) {
  return RunSingleWrite(platform, stripe_width,
                        BaseConfig(protocol, stripe_width));
}

TEST(WritePipelineTest, ClwOabTracksLocalDiskRate) {
  WriteResult r = RunProto(ProtocolModel::kCLW, 4);
  // CLW's OAB is the FUSE-to-local-disk write rate (~84 MB/s).
  EXPECT_NEAR(r.oab_mbps, 84.0, 4.0);
}

TEST(WritePipelineTest, ClwAsbRoughlyHalvesOab) {
  WriteResult r = RunProto(ProtocolModel::kCLW, 4);
  // Local write then serial push: ASB ~ OAB/2.
  EXPECT_LT(r.asb_mbps, r.oab_mbps * 0.65);
  EXPECT_GT(r.asb_mbps, r.oab_mbps * 0.35);
}

TEST(WritePipelineTest, SwOabExceedsLocalDisk) {
  WriteResult r = RunProto(ProtocolModel::kSW, 4);
  // The headline result: SW checkpointing beats local I/O (~110 vs 86).
  EXPECT_GT(r.oab_mbps, 100.0);
  EXPECT_LT(r.oab_mbps, 135.0);
}

TEST(WritePipelineTest, OrderingClwWorstSwBestForAsb) {
  WriteResult clw = RunProto(ProtocolModel::kCLW, 4);
  WriteResult iw = RunProto(ProtocolModel::kIW, 4);
  WriteResult sw = RunProto(ProtocolModel::kSW, 4);
  EXPECT_LT(clw.asb_mbps, iw.asb_mbps);
  EXPECT_LE(iw.asb_mbps, sw.asb_mbps + 1.0);
}

TEST(WritePipelineTest, TwoGigabitBenefactorsSaturateClientNic) {
  WriteResult one = RunProto(ProtocolModel::kSW, 1);
  WriteResult two = RunProto(ProtocolModel::kSW, 2);
  WriteResult four = RunProto(ProtocolModel::kSW, 4);
  WriteResult eight = RunProto(ProtocolModel::kSW, 8);

  EXPECT_LT(one.asb_mbps, two.asb_mbps * 0.75);  // stripe 1 is disk-bound
  // Beyond two benefactors the client NIC is the bottleneck: flat curve.
  EXPECT_NEAR(two.asb_mbps, four.asb_mbps, 4.0);
  EXPECT_NEAR(four.asb_mbps, eight.asb_mbps, 4.0);
}

TEST(WritePipelineTest, AsbNeverExceedsClientNic) {
  for (int width : {1, 2, 4, 8}) {
    WriteResult r = RunProto(ProtocolModel::kSW, width);
    EXPECT_LE(r.asb_mbps, PaperLanTestbed().client_nic_mbps + 1.0);
  }
}

TEST(WritePipelineTest, LargerBufferRaisesSwOab) {
  PlatformModel platform = PaperLanTestbed();
  double prev = 0;
  for (std::uint64_t buffer : {32_MiB, 128_MiB, 512_MiB}) {
    PipelineConfig config = BaseConfig(ProtocolModel::kSW, 4);
    config.file_bytes = 1_GiB;
    config.buffer_bytes = buffer;
    WriteResult r = RunSingleWrite(platform, 4, config);
    EXPECT_GE(r.oab_mbps, prev - 0.5) << buffer;
    prev = r.oab_mbps;
  }
}

TEST(WritePipelineTest, BufferLargerThanFileMakesOabMemoryBound) {
  PipelineConfig config = BaseConfig(ProtocolModel::kSW, 4);
  config.file_bytes = 256_MiB;
  config.buffer_bytes = 512_MiB;
  WriteResult r = RunSingleWrite(PaperLanTestbed(), 4, config);
  // close() returns at ingest speed, far above the network rate (Fig. 7's
  // 256 MB buffer observation).
  EXPECT_GT(r.oab_mbps, 250.0);
  // But the data still reaches storage at network speed.
  EXPECT_LT(r.asb_mbps, 125.0);
}

TEST(WritePipelineTest, DedupReducesTransferAndRaisesThroughput) {
  PipelineConfig plain = BaseConfig(ProtocolModel::kSW, 4);
  PipelineConfig dedup = BaseConfig(ProtocolModel::kSW, 4);
  dedup.dedup_ratio = 0.5;
  dedup.hash_mbps = 800.0;

  WriteResult p = RunSingleWrite(PaperLanTestbed(), 4, plain);
  WriteResult d = RunSingleWrite(PaperLanTestbed(), 4, dedup);

  EXPECT_NEAR(static_cast<double>(d.bytes_transferred),
              static_cast<double>(p.bytes_transferred) * 0.5,
              static_cast<double>(p.bytes_transferred) * 0.02);
  EXPECT_GT(d.asb_mbps, p.asb_mbps * 1.5);
}

TEST(WritePipelineTest, ReplicationMultipliesTraffic) {
  PipelineConfig config = BaseConfig(ProtocolModel::kSW, 4);
  config.file_bytes = 64_MiB;
  config.replicas = 3;
  WriteResult r = RunSingleWrite(PaperLanTestbed(), 4, config);
  EXPECT_EQ(r.bytes_transferred, 3u * 64_MiB);
}

TEST(WritePipelineTest, PessimisticCloseWaitsForReplication) {
  PipelineConfig optimistic = BaseConfig(ProtocolModel::kSW, 4);
  optimistic.file_bytes = 64_MiB;
  optimistic.replicas = 3;
  optimistic.pessimistic = false;

  PipelineConfig pessimistic = optimistic;
  pessimistic.pessimistic = true;

  WriteResult o = RunSingleWrite(PaperLanTestbed(), 4, optimistic);
  WriteResult p = RunSingleWrite(PaperLanTestbed(), 4, pessimistic);
  EXPECT_GT(o.oab_mbps, p.oab_mbps * 1.2);  // durability costs throughput
}

TEST(WritePipelineTest, TenGigTestbedScalesWithStripe) {
  PlatformModel platform = Paper10GTestbed();
  double prev = 0;
  for (int width : {1, 2, 3, 4}) {
    PipelineConfig config = BaseConfig(ProtocolModel::kSW, width);
    config.file_bytes = 1_GiB;
    config.buffer_bytes = 512_MiB;
    WriteResult r = RunSingleWrite(platform, width, config);
    EXPECT_GT(r.asb_mbps, prev) << "stripe " << width;
    prev = r.asb_mbps;
  }
  // Four 1 Gbps benefactors: aggregate ASB in the ~200-260 range (paper: 225).
  EXPECT_GT(prev, 180.0);
  EXPECT_LT(prev, 280.0);
}

TEST(WritePipelineTest, DeterministicAcrossRuns) {
  WriteResult a = RunProto(ProtocolModel::kSW, 4);
  WriteResult b = RunProto(ProtocolModel::kSW, 4);
  EXPECT_DOUBLE_EQ(a.oab_mbps, b.oab_mbps);
  EXPECT_DOUBLE_EQ(a.asb_mbps, b.asb_mbps);
}

TEST(WritePipelineTest, SmallerIncrementsRaiseIwThroughput) {
  // The paper's omitted §V.C result: smaller temp files overlap creation
  // and propagation better.
  double prev_oab = 0;
  for (std::uint64_t increment : {256_MiB, 64_MiB, 16_MiB}) {
    PipelineConfig config = BaseConfig(ProtocolModel::kIW, 4);
    config.buffer_bytes = 256_MiB;
    config.increment_bytes = increment;
    WriteResult r = RunSingleWrite(PaperLanTestbed(), 4, config);
    EXPECT_GT(r.oab_mbps, prev_oab) << increment;
    prev_oab = r.oab_mbps;
  }
}

TEST(WritePipelineTest, IwIncrementLargerThanCacheDoesNotDeadlock) {
  PipelineConfig config = BaseConfig(ProtocolModel::kIW, 4);
  config.file_bytes = 256_MiB;
  config.buffer_bytes = 32_MiB;
  config.increment_bytes = 128_MiB;  // exceeds the cache allowance
  WriteResult r = RunSingleWrite(PaperLanTestbed(), 4, config);
  EXPECT_GT(r.asb_mbps, 0.0);
  EXPECT_EQ(r.bytes_transferred, 256_MiB);
}

TEST(WritePipelineTest, PartialTailChunkHandled) {
  PipelineConfig config = BaseConfig(ProtocolModel::kSW, 2);
  config.file_bytes = 10_MiB + 12345;
  WriteResult r = RunSingleWrite(PaperLanTestbed(), 2, config);
  EXPECT_EQ(r.bytes_transferred, 10_MiB + 12345);
  EXPECT_GT(r.asb_mbps, 0.0);
}

}  // namespace
}  // namespace stdchk::perf
