// Live compaction end to end: the cluster tick drives throttled
// CompactStep passes that hand dead bytes back while foreground traffic —
// including traffic from other threads — keeps running against the same
// stores. The store-level mechanics (victim selection, crash atomicity,
// slice stability) are covered in chunk_store_test.cc and
// disk_segment_recovery_test.cc; this file covers the wiring above them
// and the only-under-TSan races of compacting while the data path is hot.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/background_driver.h"
#include "core/cluster.h"
#include "core/cluster_stats.h"

namespace stdchk {
namespace {

// Incremental checkpointing + retention is exactly the workload that
// strands dead bytes: version t+1 dedups against version t's drain
// generations, so purging version t kills only the chunks t+1 did not
// re-use — the generation backing stays pinned by the survivors until
// compaction repacks them.
TEST(ClusterCompactionTest, TickReclaimsDeadGenerationBytes) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.chunk_size = 1024;
  options.client.stripe_width = 2;
  options.compaction_enabled = true;
  StdchkCluster cluster(options);

  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;  // keep latest only
  ASSERT_TRUE(cluster.manager().SetFolderPolicy("ckpt", policy).ok());

  Rng rng(0xD0C5);
  Bytes image = rng.RandomBytes(64 * 1024);
  std::uint64_t compacted_ticks_total = 0;
  for (std::uint64_t t = 1; t <= 6; ++t) {
    // Mutate ~25% of the image: the rest dedups against the prior version.
    for (int m = 0; m < 16; ++m) {
      std::size_t off = rng.NextBelow(image.size() - 1024);
      Bytes patch = rng.RandomBytes(1024);
      std::copy(patch.begin(), patch.end(), image.begin() + off);
    }
    ASSERT_TRUE(
        cluster.client().WriteFile(CheckpointName{"ckpt", "n0", t}, image).ok());
    StdchkCluster::TickReport report = cluster.Tick(1.0);
    compacted_ticks_total += report.generations_released;
  }
  cluster.Settle();
  // Settle() stops once background work drains, but compaction may still
  // have sub-threshold work; pump a few more explicit ticks.
  for (int i = 0; i < 8; ++i) {
    compacted_ticks_total += cluster.Tick(1.0).generations_released;
  }

  // Compaction ran, its progress is visible at every level, and the gap
  // between pinned memory and stored bytes is actually closed.
  ClusterStats stats = CollectStats(cluster);
  EXPECT_GT(stats.generations_released, 0u);
  EXPECT_GT(stats.compacted_bytes_rewritten, 0u);
  EXPECT_EQ(stats.generations_released, compacted_ticks_total);
  ASSERT_GT(stats.stored_bytes, 0u);
  EXPECT_LE(stats.resident_bytes, 2 * stats.stored_bytes)
      << "dead generation bytes were not handed back";

  // The surviving (latest) checkpoint reads back bit for bit — compaction
  // moved its dedup'd chunks without corrupting or losing any.
  auto read_back = cluster.client().ReadFile(CheckpointName{"ckpt", "n0", 6});
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back.value(), image);
}

// Without the opt-in, Tick never calls CompactStep: existing deployments
// and byte-exact bench baselines see identical segment layouts.
TEST(ClusterCompactionTest, DisabledByDefault) {
  ClusterOptions options;
  options.benefactor_count = 2;
  options.client.chunk_size = 1024;
  options.client.stripe_width = 2;
  StdchkCluster cluster(options);
  Rng rng(0xD0C6);
  Bytes data = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(
      cluster.client().WriteFile(CheckpointName{"app", "n0", 1}, data).ok());
  StdchkCluster::TickReport report = cluster.Tick(1.0);
  EXPECT_EQ(report.generations_released, 0u);
  EXPECT_EQ(report.segments_compacted, 0u);
  EXPECT_EQ(CollectStats(cluster).generations_released, 0u);
}

// The BackgroundDriver accumulates compaction progress across its ticks —
// the monitoring surface a wall-clock deployment watches.
TEST(ClusterCompactionTest, BackgroundDriverSurfacesCompactionTotals) {
  ClusterOptions options;
  options.benefactor_count = 2;
  options.client.chunk_size = 1024;
  options.client.stripe_width = 2;
  options.compaction_enabled = true;
  StdchkCluster cluster(options);
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  ASSERT_TRUE(cluster.manager().SetFolderPolicy("drv", policy).ok());

  Rng rng(0xD0C7);
  Bytes image = rng.RandomBytes(32 * 1024);
  {
    BackgroundDriver driver(&cluster, /*period_seconds=*/0.001);
    for (std::uint64_t t = 1; t <= 5; ++t) {
      for (int m = 0; m < 8; ++m) {
        std::size_t off = rng.NextBelow(image.size() - 1024);
        Bytes patch = rng.RandomBytes(1024);
        std::copy(patch.begin(), patch.end(), image.begin() + off);
      }
      ASSERT_TRUE(cluster.client()
                      .WriteFile(CheckpointName{"drv", "n0", t}, image)
                      .ok());
    }
    // Spin until the driver's ticks have purged + GC'd + compacted the
    // stranded generations (bounded by the test timeout).
    while (driver.generations_released() == 0 && driver.ticks() < 20000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    driver.Stop();
    EXPECT_GT(driver.generations_released(), 0u);
    EXPECT_GT(driver.compacted_bytes_rewritten(), 0u);
  }
  auto read_back = cluster.client().ReadFile(CheckpointName{"drv", "n0", 5});
  ASSERT_TRUE(read_back.ok()) << read_back.status();
  EXPECT_EQ(read_back.value(), image);
}

// TSan battery: hammer one disk store from put/get/delete threads while a
// dedicated thread runs CompactStep in a tight loop. Every foreground op
// must succeed (or be a legitimate NotFound), every read must return the
// chunk's true bytes, and the run must be free of data races and lock-rank
// violations.
TEST(CompactionStressTest, CompactionNeverStallsOrCorruptsTheDataPath) {
  auto dir = std::filesystem::temp_directory_path() /
             ("stdchk_compact_stress_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  DiskStoreOptions small;
  small.segment_target_bytes = 8 * 1024;  // frequent rolls
  auto made = MakeDiskChunkStore(dir.string(), small);
  ASSERT_TRUE(made.ok());
  ChunkStore& store = *made.value();

  constexpr int kWriters = 3;
  constexpr int kChunksPerWriter = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Pre-compute each writer's corpus so reader threads can verify bytes.
  std::vector<std::vector<std::pair<ChunkId, Bytes>>> corpus(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(static_cast<std::uint64_t>(w) + 101);
    for (int c = 0; c < kChunksPerWriter; ++c) {
      Bytes data = rng.RandomBytes(512 + rng.NextBelow(2048));
      corpus[w].emplace_back(ChunkId::For(data), std::move(data));
    }
  }

  std::thread compactor([&] {
    CompactionPolicy policy;
    policy.utilization_threshold = 0.8;  // aggressive: maximize interleaving
    policy.max_bytes_per_step = 16 * 1024;
    while (!stop.load()) {
      auto step = store.CompactStep(policy);
      if (!step.ok()) ++failures;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(static_cast<std::uint64_t>(w) + 201);
      for (int round = 0; round < 3; ++round) {
        // Put everything (in small batches), read it back, delete most.
        for (std::size_t at = 0; at < corpus[w].size(); at += 5) {
          std::vector<ChunkPut> batch;
          for (std::size_t i = at;
               i < std::min(at + 5, corpus[w].size()); ++i) {
            batch.push_back(ChunkPut{corpus[w][i].first,
                                     BufferSlice::Copy(corpus[w][i].second)});
          }
          if (!store.PutBatch(batch).ok()) ++failures;
        }
        for (const auto& [id, data] : corpus[w]) {
          auto got = store.Get(id);
          if (!got.ok() || !(got.value() == ByteSpan(data))) ++failures;
        }
        for (std::size_t i = 0; i < corpus[w].size(); ++i) {
          if (i % 5 == static_cast<std::size_t>(round)) continue;  // keep some
          if (!store.Delete(corpus[w][i].first).ok()) ++failures;
        }
        for (std::size_t i = 0; i < corpus[w].size(); ++i) {
          if (i % 5 != static_cast<std::size_t>(round)) continue;
          auto got = store.Get(corpus[w][i].first);
          if (!got.ok() || !(got.value() == ByteSpan(corpus[w][i].second))) {
            ++failures;
          }
          if (!store.Delete(corpus[w][i].first).ok()) ++failures;
        }
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true);
  compactor.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.ChunkCount(), 0u);
  EXPECT_EQ(store.BytesUsed(), 0u);
  // The churn left far more dead bytes than live; compaction (plus
  // roll/delete reclaim) must have kept the on-disk footprint from being
  // the sum of everything ever written.
  std::uintmax_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) on_disk += entry.file_size();
  }
  std::uintmax_t written = 0;
  for (const auto& per_writer : corpus) {
    for (const auto& [id, data] : per_writer) written += 3 * data.size();
  }
  EXPECT_LT(on_disk, written / 2);
  made.value().reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace stdchk
