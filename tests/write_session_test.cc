#include "client/write_session.h"

#include <gtest/gtest.h>

#include <map>

#include "core/cluster.h"
#include "common/rng.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t, const std::string& app = "app") {
  return CheckpointName{app, "n1", t};
}

struct ProtocolCase {
  WriteProtocol protocol;
  std::size_t file_size;
};

class WriteProtocolTest : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(WriteProtocolTest, WriteThenReadBackMatches) {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.stripe_width = 4;
  options.client.chunk_size = 4096;
  options.client.increment_size = 16384;
  options.client.protocol = GetParam().protocol;
  StdchkCluster cluster(options);

  Rng rng(GetParam().file_size + 99);
  Bytes data = rng.RandomBytes(GetParam().file_size);

  auto session = cluster.client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  // Write in odd-size pieces to exercise buffering boundaries.
  std::size_t pos = 0, piece = 1000;
  while (pos < data.size()) {
    std::size_t n = std::min(piece, data.size() - pos);
    ASSERT_TRUE(session.value()->Write(ByteSpan(data.data() + pos, n)).ok());
    pos += n;
    piece = piece * 2 + 13;
  }
  auto outcome = session.value()->Close();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), CloseOutcome::kCommitted);

  auto read_back = cluster.client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndSizes, WriteProtocolTest,
    ::testing::Values(
        ProtocolCase{WriteProtocol::kCompleteLocal, 0},
        ProtocolCase{WriteProtocol::kCompleteLocal, 100},
        ProtocolCase{WriteProtocol::kCompleteLocal, 50000},
        ProtocolCase{WriteProtocol::kIncremental, 100},
        ProtocolCase{WriteProtocol::kIncremental, 16384},
        ProtocolCase{WriteProtocol::kIncremental, 70001},
        ProtocolCase{WriteProtocol::kSlidingWindow, 100},
        ProtocolCase{WriteProtocol::kSlidingWindow, 4096},
        ProtocolCase{WriteProtocol::kSlidingWindow, 123457}));

class WriteSessionTest : public ::testing::Test {
 protected:
  WriteSessionTest() {
    ClusterOptions options;
    options.benefactor_count = 6;
    options.client.stripe_width = 3;
    options.client.chunk_size = 1024;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{7};
};

TEST_F(WriteSessionTest, FileInvisibleUntilClose) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(5000);
  ASSERT_TRUE(session.value()->Write(data).ok());
  // Session semantics: no commit yet -> readers see nothing.
  EXPECT_FALSE(cluster_->client().ReadFile(Name(1)).ok());
  ASSERT_TRUE(session.value()->Close().ok());
  EXPECT_TRUE(cluster_->client().ReadFile(Name(1)).ok());
}

TEST_F(WriteSessionTest, DoubleCloseFails) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(100)).ok());
  ASSERT_TRUE(session.value()->Close().ok());
  EXPECT_EQ(session.value()->Close().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.value()->Write(rng_.RandomBytes(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(WriteSessionTest, DuplicateVersionRejected) {
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), rng_.RandomBytes(100)).ok());
  EXPECT_EQ(cluster_->client().WriteFile(Name(1), rng_.RandomBytes(100))
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(WriteSessionTest, RoundRobinStripingSpreadsChunks) {
  Bytes data = rng_.RandomBytes(12 * 1024);  // 12 chunks across 3 nodes
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());

  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  ASSERT_EQ(record.value().chunk_map.chunks.size(), 12u);

  std::map<NodeId, int> counts;
  for (const auto& loc : record.value().chunk_map.chunks) {
    ASSERT_EQ(loc.replicas.size(), 1u);
    counts[loc.replicas[0]]++;
  }
  ASSERT_EQ(counts.size(), 3u);  // stripe width respected
  for (const auto& [node, count] : counts) EXPECT_EQ(count, 4);  // balanced
}

TEST_F(WriteSessionTest, ChunkMapOffsetsAreSequential) {
  Bytes data = rng_.RandomBytes(5 * 1024 + 123);
  ASSERT_TRUE(cluster_->client().WriteFile(Name(1), data).ok());
  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  std::uint64_t offset = 0;
  for (const auto& loc : record.value().chunk_map.chunks) {
    EXPECT_EQ(loc.file_offset, offset);
    offset += loc.size;
  }
  EXPECT_EQ(offset, data.size());
  EXPECT_EQ(record.value().size, data.size());
}

TEST_F(WriteSessionTest, PessimisticWriteReachesReplicationTarget) {
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kPessimistic;
  options.replication_target = 2;
  auto client = cluster_->MakeClient(options);

  Bytes data = rng_.RandomBytes(4096);
  ASSERT_TRUE(client->WriteFile(Name(1), data).ok());

  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  for (const auto& loc : record.value().chunk_map.chunks) {
    EXPECT_EQ(loc.replicas.size(), 2u);
  }
}

TEST_F(WriteSessionTest, PessimisticFailsWhenTargetUnreachable) {
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kPessimistic;
  options.replication_target = 7;  // pool only has 6 nodes
  options.stripe_width = 6;
  auto client = cluster_->MakeClient(options);
  auto outcome = client->WriteFile(Name(1), rng_.RandomBytes(2048));
  EXPECT_FALSE(outcome.ok());
}

TEST_F(WriteSessionTest, OptimisticWriteStoresOneReplicaImmediately) {
  ClientOptions options = cluster_->client().options();
  options.semantics = WriteSemantics::kOptimistic;
  options.replication_target = 3;
  auto client = cluster_->MakeClient(options);

  Bytes data = rng_.RandomBytes(2048);
  ASSERT_TRUE(client->WriteFile(Name(1), data).ok());
  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  for (const auto& loc : record.value().chunk_map.chunks) {
    EXPECT_EQ(loc.replicas.size(), 1u);  // background replication comes later
  }
  EXPECT_EQ(record.value().replication_target, 3);
}

TEST_F(WriteSessionTest, FailsOverToHealthyStripeMembers) {
  // A stripe member dies before the data flows: the session must route
  // every chunk around it and the committed file must avoid the dead node.
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  cluster_->benefactor(0).Crash();
  NodeId dead = cluster_->benefactor(0).id();

  Bytes data = rng_.RandomBytes(8 * 1024);
  ASSERT_TRUE(session.value()->Write(data).ok());
  auto outcome = session.value()->Close();
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  auto record = cluster_->manager().GetVersion(Name(1));
  ASSERT_TRUE(record.ok());
  for (const auto& loc : record.value().chunk_map.chunks) {
    for (NodeId node : loc.replicas) EXPECT_NE(node, dead);
  }
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(WriteSessionTest, MidWriteCrashLosesOnlyUnreplicatedPrefix) {
  // With replication target 1, chunks stored before a node dies are lost
  // (the paper's "low risk" tradeoff); the session itself still completes
  // by routing new chunks around the dead node.
  Bytes part1 = rng_.RandomBytes(4 * 1024);
  Bytes part2 = rng_.RandomBytes(4 * 1024);

  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(part1).ok());

  // Crash a desktop that actually received part1 chunks (the sliding
  // window pushed them already).
  std::size_t victim = cluster_->benefactor_count();
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (cluster_->benefactor(i).BytesUsed() > 0) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, cluster_->benefactor_count());
  cluster_->benefactor(victim).Crash();

  ASSERT_TRUE(session.value()->Write(part2).ok());
  ASSERT_TRUE(session.value()->Close().ok());

  // The whole file is committed; reading it fails only because the dead
  // node holds some single-replica chunks.
  ASSERT_TRUE(cluster_->manager().GetVersion(Name(1)).ok());
  auto read_back = cluster_->client().ReadFile(Name(1));
  EXPECT_FALSE(read_back.ok());

  // Once the desktop returns (data intact on its disk), the file is whole.
  ASSERT_TRUE(cluster_->RestartBenefactor(victim).ok());
  read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  Bytes expected = part1;
  Append(expected, part2);
  EXPECT_EQ(read_back.value(), expected);
}

TEST_F(WriteSessionTest, FailsWhenAllBenefactorsDown) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->benefactor(i).Crash();
  }
  Status status = session.value()->Write(rng_.RandomBytes(64 * 1024));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(WriteSessionTest, IncrementalFschSkipsKnownChunks) {
  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  auto client = cluster_->MakeClient(options);

  Bytes v1 = rng_.RandomBytes(8 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), v1).ok());

  // Second version: same content except the last chunk.
  Bytes v2 = v1;
  for (std::size_t i = 7 * 1024; i < v2.size(); ++i) v2[i] ^= 0x5A;

  auto session = client->CreateFile(Name(2));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(v2).ok());
  ASSERT_TRUE(session.value()->Close().ok());
  const WriteStats& stats = session.value()->stats();
  EXPECT_EQ(stats.chunks_total, 8u);
  EXPECT_EQ(stats.chunks_deduplicated, 7u);
  EXPECT_EQ(stats.bytes_transferred, 1024u);

  auto read_back = client->ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), v2);
}

TEST_F(WriteSessionTest, DedupAcrossIdenticalVersionTransfersNothing) {
  ClientOptions options = cluster_->client().options();
  options.incremental_fsch = true;
  auto client = cluster_->MakeClient(options);

  Bytes image = rng_.RandomBytes(16 * 1024);
  ASSERT_TRUE(client->WriteFile(Name(1), image).ok());

  auto session = client->CreateFile(Name(2));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(image).ok());
  ASSERT_TRUE(session.value()->Close().ok());
  EXPECT_EQ(session.value()->stats().bytes_transferred, 0u);

  // Storage holds one copy of the chunks, referenced by both versions.
  EXPECT_EQ(cluster_->manager().catalog().TotalLogicalBytes(), 32u * 1024);
  EXPECT_EQ(cluster_->manager().catalog().TotalUniqueBytes(), 16u * 1024);
}

TEST_F(WriteSessionTest, AbortReleasesReservationAndLeavesOrphans) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(4 * 1024)).ok());
  session.value()->Abort();
  EXPECT_FALSE(cluster_->client().ReadFile(Name(1)).ok());

  // Orphaned chunks on benefactors are reclaimed by the GC exchange.
  cluster_->Settle();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    total += cluster_->benefactor(i).BytesUsed();
  }
  EXPECT_EQ(total, 0u);
}

TEST_F(WriteSessionTest, LargeWriteExtendsReservationIncrementally) {
  // Force the eager reservation to be extended several times (§IV.A:
  // "storage space allocation is done incrementally").
  ClientOptions options = cluster_->client().options();
  options.reservation_extent = 4 * 1024;  // tiny extents
  auto client = cluster_->MakeClient(options);

  Bytes data = rng_.RandomBytes(20 * 1024);  // needs ~5 extents
  auto session = client->CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(data).ok());
  ASSERT_TRUE(session.value()->Close().ok());

  auto read_back = client->ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST_F(WriteSessionTest, ReservationExtensionFailsWhenManagerDies) {
  ClientOptions options = cluster_->client().options();
  options.reservation_extent = 2 * 1024;
  auto client = cluster_->MakeClient(options);

  auto session = client->CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->Write(rng_.RandomBytes(2 * 1024)).ok());
  cluster_->manager().Crash();
  // The next extension round-trips to the dead manager.
  Status status = session.value()->Write(rng_.RandomBytes(16 * 1024));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(WriteSessionTest, EmptyFileCommits) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  auto outcome = session.value()->Close();
  ASSERT_TRUE(outcome.ok());
  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_TRUE(read_back.value().empty());
}

TEST_F(WriteSessionTest, StatsCountWrites) {
  auto session = cluster_->client().CreateFile(Name(1));
  ASSERT_TRUE(session.ok());
  Bytes data = rng_.RandomBytes(3 * 1024 + 10);
  ASSERT_TRUE(session.value()->Write(data).ok());
  ASSERT_TRUE(session.value()->Close().ok());
  const WriteStats& stats = session.value()->stats();
  EXPECT_EQ(stats.bytes_written, data.size());
  EXPECT_EQ(stats.bytes_transferred, data.size());
  EXPECT_EQ(stats.chunks_total, 4u);
  EXPECT_EQ(stats.replica_puts, 4u);
}

}  // namespace
}  // namespace stdchk
