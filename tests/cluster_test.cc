// Whole-system integration tests: many files, multiple writers, desktop
// churn, and the combined background machinery.
#include "core/cluster.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/rng.h"
#include "fs/file_system.h"

namespace stdchk {
namespace {

TEST(ClusterTest, ConstructionRegistersBenefactors) {
  ClusterOptions options;
  options.benefactor_count = 5;
  StdchkCluster cluster(options);
  EXPECT_EQ(cluster.benefactor_count(), 5u);
  EXPECT_EQ(cluster.manager().registry().online_count(), 5u);
}

TEST(ClusterTest, ManyFilesFromManyClients) {
  ClusterOptions options;
  options.benefactor_count = 8;
  options.client.stripe_width = 4;
  options.client.chunk_size = 1024;
  StdchkCluster cluster(options);
  Rng rng(1);

  // Three desktop-grid "processes" each write 5 timesteps.
  std::map<std::string, std::map<int, Bytes>> written;
  for (int p = 0; p < 3; ++p) {
    auto client = cluster.MakeClient(cluster.client().options());
    std::string node = "n" + std::to_string(p);
    for (int t = 1; t <= 5; ++t) {
      Bytes data = rng.RandomBytes(2048 + static_cast<std::size_t>(t) * 777);
      ASSERT_TRUE(client
                      ->WriteFile(CheckpointName{"job", node,
                                                 static_cast<std::uint64_t>(t)},
                                  data)
                      .ok());
      written[node][t] = data;
    }
    cluster.Tick(1.0);
  }

  EXPECT_EQ(cluster.manager().catalog().TotalVersions(), 15u);
  for (const auto& [node, by_t] : written) {
    for (const auto& [t, data] : by_t) {
      auto read_back = cluster.client().ReadFile(
          CheckpointName{"job", node, static_cast<std::uint64_t>(t)});
      ASSERT_TRUE(read_back.ok());
      EXPECT_EQ(read_back.value(), data);
    }
  }
}

TEST(ClusterTest, SurvivesChurnWithReplication) {
  ClusterOptions options;
  options.benefactor_count = 8;
  options.client.stripe_width = 3;
  options.client.chunk_size = 1024;
  options.client.semantics = WriteSemantics::kPessimistic;
  options.client.replication_target = 2;
  StdchkCluster cluster(options);
  Rng rng(2);

  std::vector<Bytes> images;
  for (int t = 1; t <= 6; ++t) {
    Bytes data = rng.RandomBytes(4 * 1024);
    ASSERT_TRUE(cluster.client()
                    .WriteFile(CheckpointName{"app", "n1",
                                              static_cast<std::uint64_t>(t)},
                              data)
                    .ok());
    images.push_back(data);

    // Churn: one desktop leaves after each write, the oldest casualty
    // returns two writes later.
    cluster.benefactor(static_cast<std::size_t>(t % 8)).Crash();
    if (t >= 2) {
      (void)cluster.RestartBenefactor(static_cast<std::size_t>((t - 2) % 8));
    }
    for (int i = 0; i < 15; ++i) cluster.Tick(1.0);
  }
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    (void)cluster.RestartBenefactor(i);
  }
  cluster.Settle(256);

  for (int t = 1; t <= 6; ++t) {
    auto read_back = cluster.client().ReadFile(
        CheckpointName{"app", "n1", static_cast<std::uint64_t>(t)});
    ASSERT_TRUE(read_back.ok()) << "timestep " << t << ": "
                                << read_back.status();
    EXPECT_EQ(read_back.value(), images[static_cast<std::size_t>(t - 1)]);
  }
}

TEST(ClusterTest, AddBenefactorGrowsPool) {
  ClusterOptions options;
  options.benefactor_count = 2;
  options.client.stripe_width = 2;
  StdchkCluster cluster(options);

  auto added = cluster.AddBenefactor(1_GiB);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(cluster.benefactor_count(), 3u);
  EXPECT_EQ(cluster.manager().registry().online_count(), 3u);

  ClientOptions wide = cluster.client().options();
  wide.stripe_width = 3;
  auto client = cluster.MakeClient(wide);
  Rng rng(3);
  EXPECT_TRUE(
      client->WriteFile(CheckpointName{"a", "n", 1}, rng.RandomBytes(4096))
          .ok());
}

TEST(ClusterTest, FindBenefactorByNodeId) {
  StdchkCluster cluster{ClusterOptions{}};
  NodeId id = cluster.benefactor(0).id();
  EXPECT_EQ(cluster.FindBenefactor(id), &cluster.benefactor(0));
  EXPECT_EQ(cluster.FindBenefactor(0xDEAD), nullptr);
}

TEST(ClusterTest, TransportFaultInjectionDropsRpcs) {
  ClusterOptions options;
  options.benefactor_count = 3;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  StdchkCluster cluster(options);
  Rng rng(4);

  // Cut the network to node 0; writes must still succeed via others.
  cluster.transport().SetUnreachable(cluster.benefactor(0).id(), true);
  Bytes data = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(cluster.client().WriteFile(CheckpointName{"a", "n", 1}, data).ok());

  auto record = cluster.manager().GetVersion(CheckpointName{"a", "n", 1});
  ASSERT_TRUE(record.ok());
  for (const auto& loc : record.value().chunk_map.chunks) {
    for (NodeId node : loc.replicas) {
      EXPECT_NE(node, cluster.benefactor(0).id());
    }
  }
}

TEST(ClusterTest, LossyLinkStillCompletesWithRetries) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 4;
  options.client.chunk_size = 1024;
  StdchkCluster cluster(options);
  Rng rng(5);

  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    cluster.transport().SetLossRate(cluster.benefactor(i).id(), 0.3);
  }
  Bytes data = rng.RandomBytes(16 * 1024);
  auto outcome = cluster.client().WriteFile(CheckpointName{"a", "n", 1}, data);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    cluster.transport().SetLossRate(cluster.benefactor(i).id(), 0.0);
  }
  auto read_back = cluster.client().ReadFile(CheckpointName{"a", "n", 1});
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), data);
}

TEST(ClusterTest, DiskBackedBenefactorsPersistChunks) {
  auto dir = std::filesystem::temp_directory_path() / "stdchk_cluster_disk";
  std::filesystem::remove_all(dir);

  ClusterOptions options;
  options.benefactor_count = 2;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.disk_root = dir.string();
  {
    StdchkCluster cluster(options);
    Rng rng(6);
    Bytes data = rng.RandomBytes(4096);
    ASSERT_TRUE(
        cluster.client().WriteFile(CheckpointName{"a", "n", 1}, data).ok());
    auto read_back = cluster.client().ReadFile(CheckpointName{"a", "n", 1});
    ASSERT_TRUE(read_back.ok());
    EXPECT_EQ(read_back.value(), data);
  }
  // The chunks persisted into each node's segment log: one seg-*.log per
  // drained node (a whole generation lands in one segment), and together
  // they hold all 4 KiB of payload plus the per-record headers.
  std::size_t segment_files = 0;
  std::uintmax_t on_disk_bytes = 0;
  for (auto it = std::filesystem::recursive_directory_iterator(dir);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    EXPECT_TRUE(it->path().filename().string().starts_with("seg-"))
        << it->path();
    ++segment_files;
    on_disk_bytes += it->file_size();
  }
  EXPECT_EQ(segment_files, 2u);  // both donors drained one generation each
  EXPECT_GT(on_disk_bytes, 4096u);
  std::filesystem::remove_all(dir);
}

TEST(ClusterTest, EndToEndThroughFileSystemFacade) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.chunk_size = 1024;
  options.client.stripe_width = 2;
  StdchkCluster cluster(options);
  FileSystem fs(&cluster.client());
  Rng rng(7);

  // An application checkpoints through the mount point, a policy replaces
  // old images, and the grid churns underneath.
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  policy.replication_target = 2;
  ASSERT_TRUE(cluster.manager().SetFolderPolicy("hpc", policy).ok());

  Bytes last;
  for (int t = 1; t <= 4; ++t) {
    last = rng.RandomBytes(6 * 1024);
    auto fd = fs.Open("/stdchk/hpc/hpc.n0.T" + std::to_string(t),
                      OpenMode::kWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs.Write(fd.value(), last).ok());
    ASSERT_TRUE(fs.Close(fd.value()).ok());
    cluster.Tick(1.0);
  }
  cluster.Settle();

  auto entries = fs.ReadDir("/stdchk/hpc");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0], "hpc.n0.T4");

  auto rfd = fs.Open("/stdchk/hpc/hpc.n0.T4", OpenMode::kRead);
  ASSERT_TRUE(rfd.ok());
  Bytes out(last.size());
  ASSERT_TRUE(fs.Read(rfd.value(), MutableByteSpan(out)).ok());
  EXPECT_EQ(out, last);
}

}  // namespace
}  // namespace stdchk
