#include "common/status.h"

#include <gtest/gtest.h>

namespace stdchk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkStatusFactory) {
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  STDCHK_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  STDCHK_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(MacroTest, AssignOrReturnUnwraps) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(MacroTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace stdchk
