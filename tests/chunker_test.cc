#include "chkpt/chunker.h"

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "common/rng.h"

namespace stdchk {
namespace {

// Invariant shared by every chunker: spans are contiguous, non-empty, and
// cover [0, size) exactly.
void ExpectFullCoverage(const std::vector<ChunkSpan>& spans,
                        std::size_t size) {
  std::uint64_t expected_offset = 0;
  for (const ChunkSpan& span : spans) {
    ASSERT_EQ(span.offset, expected_offset);
    ASSERT_GT(span.size, 0u);
    expected_offset += span.size;
  }
  EXPECT_EQ(expected_offset, size);
}

TEST(FixedSizeChunkerTest, ExactMultiple) {
  FixedSizeChunker chunker(100);
  Rng rng(1);
  Bytes data = rng.RandomBytes(500);
  auto spans = chunker.Split(data);
  ASSERT_EQ(spans.size(), 5u);
  for (const auto& s : spans) EXPECT_EQ(s.size, 100u);
  ExpectFullCoverage(spans, data.size());
}

TEST(FixedSizeChunkerTest, TrailingPartialChunk) {
  FixedSizeChunker chunker(100);
  Rng rng(2);
  Bytes data = rng.RandomBytes(250);
  auto spans = chunker.Split(data);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.back().size, 50u);
  ExpectFullCoverage(spans, data.size());
}

TEST(FixedSizeChunkerTest, EmptyInput) {
  FixedSizeChunker chunker(100);
  EXPECT_TRUE(chunker.Split(ByteSpan{}).empty());
}

TEST(FixedSizeChunkerTest, InputSmallerThanChunk) {
  FixedSizeChunker chunker(1_MiB);
  Rng rng(3);
  Bytes data = rng.RandomBytes(10);
  auto spans = chunker.Split(data);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].size, 10u);
}

TEST(FixedSizeChunkerTest, NameIncludesSize) {
  EXPECT_EQ(FixedSizeChunker(1024).name(), "FsCH(1024)");
}

struct CbchCase {
  std::size_t m;
  int k;
  std::size_t p;
};

class CbchCoverageTest : public ::testing::TestWithParam<CbchCase> {};

TEST_P(CbchCoverageTest, CoversInputExactly) {
  const CbchCase& c = GetParam();
  ContentBasedChunker chunker(
      CbchParams{c.m, c.k, c.p, /*max_chunk=*/1u << 20});
  Rng rng(c.m * 1000 + static_cast<std::uint64_t>(c.k));
  for (std::size_t size : {0u, 1u, 5u, 100u, 4096u, 65536u, 300000u}) {
    Bytes data = rng.RandomBytes(size);
    auto spans = chunker.Split(data);
    ExpectFullCoverage(spans, size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, CbchCoverageTest,
    ::testing::Values(CbchCase{20, 14, 1}, CbchCase{20, 14, 20},
                      CbchCase{32, 10, 32}, CbchCase{64, 8, 64},
                      CbchCase{128, 12, 128}, CbchCase{256, 10, 256},
                      CbchCase{20, 8, 1}, CbchCase{48, 10, 16}));

class CbchRecomputeCoverageTest : public ::testing::TestWithParam<CbchCase> {};

TEST_P(CbchRecomputeCoverageTest, PaperStyleScanCoversInputExactly) {
  const CbchCase& c = GetParam();
  CbchParams params{c.m, c.k, c.p, /*max_chunk=*/1u << 20,
                    /*recompute=*/true};
  ContentBasedChunker chunker(params);
  Rng rng(c.m * 7 + static_cast<std::uint64_t>(c.k));
  for (std::size_t size : {0u, 1u, 100u, 4096u, 100000u}) {
    Bytes data = rng.RandomBytes(size);
    ExpectFullCoverage(chunker.Split(data), size);
  }
}

INSTANTIATE_TEST_SUITE_P(Params, CbchRecomputeCoverageTest,
                         ::testing::Values(CbchCase{20, 14, 1},
                                           CbchCase{20, 10, 20},
                                           CbchCase{32, 8, 32}));

TEST(CbchRecomputeTest, ShiftResilienceHoldsForPaperStyleOverlap) {
  Rng rng(77);
  Bytes original = rng.RandomBytes(1 << 17);
  Bytes shifted;
  shifted.push_back('Q');
  Append(shifted, original);

  CbchParams params{20, 10, 1, 1u << 20, /*recompute=*/true};
  ContentBasedChunker chunker(params);
  auto spans_a = chunker.Split(original);
  auto ids_a = HashChunks(original, spans_a);
  std::unordered_set<std::uint64_t> set_a;
  for (const auto& id : ids_a) set_a.insert(id.digest.Prefix64());
  auto spans_b = chunker.Split(shifted);
  auto ids_b = HashChunks(shifted, spans_b);
  std::uint64_t shared = 0;
  for (std::size_t i = 0; i < ids_b.size(); ++i) {
    if (set_a.contains(ids_b[i].digest.Prefix64())) shared += spans_b[i].size;
  }
  EXPECT_GT(static_cast<double>(shared) / static_cast<double>(shifted.size()),
            0.85);
}

TEST(CbchTest, DeterministicAcrossCalls) {
  ContentBasedChunker chunker(CbchParams{20, 10, 1});
  Rng rng(11);
  Bytes data = rng.RandomBytes(100000);
  EXPECT_EQ(chunker.Split(data), chunker.Split(data));
}

TEST(CbchTest, SmallerKMakesSmallerChunks) {
  Rng rng(12);
  Bytes data = rng.RandomBytes(1 << 20);
  ContentBasedChunker small_k(CbchParams{32, 8, 32, 0});
  ContentBasedChunker large_k(CbchParams{32, 12, 32, 0});
  auto s1 = ComputeChunkSizeStats(small_k.Split(data));
  auto s2 = ComputeChunkSizeStats(large_k.Split(data));
  EXPECT_LT(s1.avg_bytes, s2.avg_bytes);
}

TEST(CbchTest, MaxChunkBoundIsRespected) {
  // Content with no natural boundaries: constant bytes.
  Bytes data(1 << 20, 0x42);
  ContentBasedChunker chunker(CbchParams{20, 30, 20, /*max_chunk=*/4096});
  auto spans = chunker.Split(data);
  for (const auto& s : spans) EXPECT_LE(s.size, 4096u + 20u);
  ExpectFullCoverage(spans, data.size());
}

TEST(CbchTest, TinyInputIsOneChunk) {
  ContentBasedChunker chunker(CbchParams{20, 14, 1});
  Bytes data = ToBytes("short");
  auto spans = chunker.Split(data);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].size, 5u);
}

// The core CbCH property the paper relies on (§IV.C): after inserting bytes
// near the start, most chunk *hashes* still match, because boundaries are
// content-defined. FsCH, by contrast, loses everything past the insertion.
TEST(CbchTest, InsertionShiftResilience) {
  Rng rng(13);
  Bytes original = rng.RandomBytes(1 << 19);  // 512 KB
  Bytes shifted;
  shifted.reserve(original.size() + 3);
  shifted.push_back('X');
  shifted.push_back('Y');
  shifted.push_back('Z');
  Append(shifted, original);

  auto count_shared_bytes = [](const Chunker& chunker, ByteSpan a,
                               ByteSpan b) {
    auto spans_a = chunker.Split(a);
    auto ids_a = HashChunks(a, spans_a);
    std::unordered_set<std::uint64_t> set_a;
    for (const auto& id : ids_a) set_a.insert(id.digest.Prefix64());

    auto spans_b = chunker.Split(b);
    auto ids_b = HashChunks(b, spans_b);
    std::uint64_t shared = 0;
    for (std::size_t i = 0; i < ids_b.size(); ++i) {
      if (set_a.contains(ids_b[i].digest.Prefix64())) {
        shared += spans_b[i].size;
      }
    }
    return static_cast<double>(shared) / static_cast<double>(b.size());
  };

  ContentBasedChunker cbch(CbchParams{20, 11, 1});
  FixedSizeChunker fsch(4096);
  double cbch_shared = count_shared_bytes(cbch, original, shifted);
  double fsch_shared = count_shared_bytes(fsch, original, shifted);

  EXPECT_GT(cbch_shared, 0.85);  // almost everything survives the shift
  EXPECT_LT(fsch_shared, 0.05);  // fixed-grid chunking loses everything
}

TEST(CbchTest, OverlapDetectsMoreOrEqualSimilarityThanNoOverlap) {
  // p=1 inspects every offset; p=m only multiples of m from the last
  // boundary — overlap should never be (materially) worse.
  Rng rng(14);
  Bytes v1 = rng.RandomBytes(1 << 18);
  Bytes v2 = v1;
  // Mutate a 4 KB region in the middle.
  for (std::size_t i = 100000; i < 104096; ++i) v2[i] ^= 0xFF;

  auto shared_ratio = [&](const Chunker& chunker) {
    auto spans1 = chunker.Split(v1);
    auto ids1 = HashChunks(v1, spans1);
    std::unordered_set<std::uint64_t> set1;
    for (const auto& id : ids1) set1.insert(id.digest.Prefix64());
    auto spans2 = chunker.Split(v2);
    auto ids2 = HashChunks(v2, spans2);
    std::uint64_t shared = 0;
    for (std::size_t i = 0; i < ids2.size(); ++i) {
      if (set1.contains(ids2[i].digest.Prefix64())) shared += spans2[i].size;
    }
    return static_cast<double>(shared) / static_cast<double>(v2.size());
  };

  double overlap = shared_ratio(ContentBasedChunker(CbchParams{20, 11, 1}));
  double no_overlap =
      shared_ratio(ContentBasedChunker(CbchParams{20, 11, 20}));
  EXPECT_GE(overlap + 0.05, no_overlap);
  EXPECT_GT(overlap, 0.8);
}

// ---- Streaming scanners ----------------------------------------------------
// A scanner fed the stream in arbitrary piece sizes must report exactly the
// boundaries of the whole-file Split — the invariant the planner's
// no-rescan drain discipline rests on.

std::vector<std::uint64_t> SplitEnds(const Chunker& chunker, ByteSpan data) {
  std::vector<std::uint64_t> ends;
  for (const ChunkSpan& span : chunker.Split(data)) {
    ends.push_back(span.offset + span.size);
  }
  return ends;
}

std::vector<std::uint64_t> ScanEnds(const Chunker& chunker, ByteSpan data,
                                    std::uint64_t seed) {
  Rng rng(seed);
  auto scanner = chunker.MakeScanner();
  std::vector<std::uint64_t> ends;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t n = 1 + rng.Next() % 997;  // irregular feed sizes
    n = std::min(n, data.size() - pos);
    scanner->Feed(data.subspan(pos, n), ends);
    pos += n;
  }
  EXPECT_EQ(scanner->consumed(), data.size());
  scanner->Finish(ends);
  return ends;
}

TEST(ChunkScannerTest, FixedSizeStreamingMatchesSplit) {
  Rng rng(31);
  Bytes data = rng.RandomBytes(100000 + 123);
  FixedSizeChunker chunker(4096);
  EXPECT_EQ(ScanEnds(chunker, data, 1), SplitEnds(chunker, data));
}

class CbchScannerTest : public ::testing::TestWithParam<CbchParams> {};

TEST_P(CbchScannerTest, StreamingMatchesSplit) {
  Rng rng(32);
  Bytes data = rng.RandomBytes(200000);
  ContentBasedChunker chunker(GetParam());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EXPECT_EQ(ScanEnds(chunker, data, seed), SplitEnds(chunker, data))
        << chunker.name() << " feed seed " << seed;
  }
}

CbchParams WithMix64(CbchParams params) {
  params.boundary_hash = CbchBoundaryHash::kMix64Rolling;
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Params, CbchScannerTest,
    ::testing::Values(
        CbchParams{20, 10, 1},                       // gear overlap (default)
        CbchParams{20, 10, 20},                      // no-overlap hop
        CbchParams{32, 9, 8},                        // partial-overlap hop
        CbchParams{20, 8, 1, /*max_chunk=*/4096},    // gear, forced boundaries
        CbchParams{20, 10, 1, 16u << 20,
                   /*min_chunk=*/2048},              // gear min-chunk skip
        CbchParams{20, 12, 1, 16u << 20, 0, true},   // paper-style recompute
        CbchParams{20, 12, 20, 16u << 20, 0, true},  // recompute, hopping
        WithMix64(CbchParams{20, 10, 1}),            // Mix64 rolling overlap
        WithMix64(CbchParams{20, 8, 1, 4096}),       // Mix64, forced
        WithMix64(CbchParams{20, 10, 1, 16u << 20,
                             /*min_chunk=*/2048})    // Mix64 min-chunk skip
        ));

// Gear and Mix64 place boundaries differently (different hash functions)
// but must agree on the content-defined contract: same expected density
// (2^-k per inspected byte) and full coverage. Also pins that the two
// scans genuinely differ, so the differential selector is not a no-op.
TEST(CbchGearTest, GearAndMix64AreDistinctButComparablyDense) {
  Rng rng(36);
  Bytes data = rng.RandomBytes(1 << 20);
  ContentBasedChunker gear(CbchParams{20, 10, 1});
  ContentBasedChunker mix(WithMix64(CbchParams{20, 10, 1}));

  auto gear_spans = gear.Split(data);
  auto mix_spans = mix.Split(data);
  EXPECT_NE(SplitEnds(gear, data), SplitEnds(mix, data));

  auto gear_stats = ComputeChunkSizeStats(gear_spans);
  auto mix_stats = ComputeChunkSizeStats(mix_spans);
  // Same k: average chunk sizes within 2x of each other (both ~2^k + m).
  EXPECT_LT(gear_stats.avg_bytes, mix_stats.avg_bytes * 2);
  EXPECT_LT(mix_stats.avg_bytes, gear_stats.avg_bytes * 2);
}

TEST(CbchGearTest, GearShiftResilienceMatchesContentDefinedContract) {
  // The paper's §IV.C property must survive the hash swap: inserting bytes
  // near the start leaves most gear chunk hashes intact.
  Rng rng(37);
  Bytes original = rng.RandomBytes(1 << 18);
  Bytes shifted;
  shifted.push_back('G');
  Append(shifted, original);

  ContentBasedChunker gear(CbchParams{20, 11, 1});
  auto spans_a = gear.Split(original);
  auto ids_a = HashChunks(original, spans_a);
  std::unordered_set<std::uint64_t> set_a;
  for (const auto& id : ids_a) set_a.insert(id.digest.Prefix64());
  auto spans_b = gear.Split(shifted);
  auto ids_b = HashChunks(shifted, spans_b);
  std::uint64_t shared = 0;
  for (std::size_t i = 0; i < ids_b.size(); ++i) {
    if (set_a.contains(ids_b[i].digest.Prefix64())) shared += spans_b[i].size;
  }
  EXPECT_GT(static_cast<double>(shared) / static_cast<double>(shifted.size()),
            0.85);
}

TEST(ChunkScannerTest, ByteAtATimeFeedMatchesSplit) {
  Rng rng(33);
  Bytes data = rng.RandomBytes(5000);
  ContentBasedChunker chunker(CbchParams{8, 6, 1});
  auto scanner = chunker.MakeScanner();
  std::vector<std::uint64_t> ends;
  for (std::size_t i = 0; i < data.size(); ++i) {
    scanner->Feed(ByteSpan(data.data() + i, 1), ends);
  }
  scanner->Finish(ends);
  EXPECT_EQ(ends, SplitEnds(chunker, data));
}

TEST(ChunkScannerTest, MinChunkEnforcesLowerBound) {
  Rng rng(34);
  Bytes data = rng.RandomBytes(300000);
  CbchParams params{20, 8, 1};
  params.min_chunk = 1024;
  ContentBasedChunker chunker(params);
  auto spans = chunker.Split(data);
  ASSERT_GT(spans.size(), 1u);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {  // tail may be short
    EXPECT_GE(spans[i].size, params.min_chunk);
  }
}

// A default-constructed (generic) chunker falls back to the rescanning
// adapter; it must still agree with Split.
TEST(ChunkScannerTest, FallbackAdapterMatchesSplit) {
  class EveryOtherByteChunker final : public Chunker {
   public:
    std::vector<ChunkSpan> Split(ByteSpan data) const override {
      // Boundary after every byte whose value is even (content-defined,
      // deliberately odd): exercises the adapter, not the heuristics.
      std::vector<ChunkSpan> out;
      std::uint64_t start = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i] % 2 == 0 || i + 1 == data.size()) {
          out.push_back(
              ChunkSpan{start, static_cast<std::uint32_t>(i + 1 - start)});
          start = i + 1;
        }
      }
      return out;
    }
    std::string name() const override { return "every-other"; }
  };

  Rng rng(35);
  Bytes data = rng.RandomBytes(512);
  EveryOtherByteChunker chunker;
  EXPECT_EQ(ScanEnds(chunker, data, 9), SplitEnds(chunker, data));
}

TEST(ChunkSizeStatsTest, ComputesMinMaxAvg) {
  std::vector<ChunkSpan> spans{{0, 100}, {100, 300}, {400, 200}};
  ChunkSizeStats stats = ComputeChunkSizeStats(spans);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min_bytes, 100u);
  EXPECT_EQ(stats.max_bytes, 300u);
  EXPECT_DOUBLE_EQ(stats.avg_bytes, 200.0);
}

TEST(ChunkSizeStatsTest, EmptyInput) {
  ChunkSizeStats stats = ComputeChunkSizeStats({});
  EXPECT_EQ(stats.count, 0u);
}

TEST(HashChunksTest, HashesMatchManualSha1) {
  Bytes data = ToBytes("hello world checkpoint");
  FixedSizeChunker chunker(5);
  auto spans = chunker.Split(data);
  auto ids = HashChunks(data, spans);
  ASSERT_EQ(ids.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(ids[i],
              ChunkId::For(ByteSpan(data.data() + spans[i].offset,
                                    spans[i].size)));
  }
}

}  // namespace
}  // namespace stdchk
