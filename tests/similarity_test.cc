#include "chkpt/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stdchk {
namespace {

TEST(SimilarityTrackerTest, FirstImageHasNoPredecessor) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(1);
  Bytes image = rng.RandomBytes(64 * 1024);
  ImageSimilarity sim = tracker.AddImage(image);
  EXPECT_EQ(sim.duplicate_bytes, 0u);
  EXPECT_EQ(tracker.images_processed(), 1u);
  EXPECT_EQ(tracker.AverageSimilarity(), 0.0);  // excluded from averages
}

TEST(SimilarityTrackerTest, IdenticalSuccessorIsFullyDuplicate) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(2);
  Bytes image = rng.RandomBytes(64 * 1024);
  tracker.AddImage(image);
  ImageSimilarity sim = tracker.AddImage(image);
  EXPECT_DOUBLE_EQ(sim.ratio(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.AverageSimilarity(), 1.0);
}

TEST(SimilarityTrackerTest, DisjointSuccessorHasZeroSimilarity) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(3);
  tracker.AddImage(rng.RandomBytes(64 * 1024));
  ImageSimilarity sim = tracker.AddImage(rng.RandomBytes(64 * 1024));
  EXPECT_DOUBLE_EQ(sim.ratio(), 0.0);
}

TEST(SimilarityTrackerTest, HalfModifiedImage) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(4);
  Bytes v1 = rng.RandomBytes(128 * 1024);
  Bytes v2 = v1;
  // Rewrite the second half (chunk-aligned so FsCH sees it cleanly).
  for (std::size_t i = 64 * 1024; i < v2.size(); ++i) v2[i] ^= 0xA5;
  tracker.AddImage(v1);
  ImageSimilarity sim = tracker.AddImage(v2);
  EXPECT_NEAR(sim.ratio(), 0.5, 0.02);
}

TEST(SimilarityTrackerTest, ComparesToImmediatePredecessorOnly) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(5);
  Bytes a = rng.RandomBytes(32 * 1024);
  Bytes b = rng.RandomBytes(32 * 1024);
  tracker.AddImage(a);
  tracker.AddImage(b);
  // Image identical to a but the predecessor is now b -> zero similarity.
  ImageSimilarity sim = tracker.AddImage(a);
  EXPECT_DOUBLE_EQ(sim.ratio(), 0.0);
}

TEST(SimilarityTrackerTest, TracksTotalsAcrossTrace) {
  FixedSizeChunker chunker(1024);
  SimilarityTracker tracker(&chunker);
  Rng rng(6);
  Bytes image = rng.RandomBytes(16 * 1024);
  tracker.AddImage(image);
  tracker.AddImage(image);
  tracker.AddImage(image);
  EXPECT_EQ(tracker.total_bytes(), 48u * 1024);
  EXPECT_EQ(tracker.duplicate_bytes(), 32u * 1024);
  EXPECT_GT(tracker.ThroughputMBps(), 0.0);
}

TEST(SimilarityTrackerTest, ChunkSizeStatsAreAveraged) {
  FixedSizeChunker chunker(1000);
  SimilarityTracker tracker(&chunker);
  Rng rng(7);
  tracker.AddImage(rng.RandomBytes(5000));
  EXPECT_NEAR(tracker.AvgChunkKB(), 1000.0 / 1024.0, 1e-9);
  EXPECT_NEAR(tracker.AvgMinChunkKB(), 1000.0 / 1024.0, 1e-9);
  EXPECT_NEAR(tracker.AvgMaxChunkKB(), 1000.0 / 1024.0, 1e-9);
}

TEST(SimilarityTrackerTest, CbchTrackerDetectsShiftedContent) {
  ContentBasedChunker chunker(CbchParams{20, 10, 1});
  SimilarityTracker tracker(&chunker);
  Rng rng(8);
  Bytes v1 = rng.RandomBytes(256 * 1024);
  tracker.AddImage(v1);

  // Insert 7 bytes at the front: CbCH should still find nearly everything.
  Bytes v2;
  Append(v2, AsBytes(std::string("INSERT!")));
  Append(v2, v1);
  ImageSimilarity sim = tracker.AddImage(v2);
  EXPECT_GT(sim.ratio(), 0.85);
}

}  // namespace
}  // namespace stdchk
