#include "common/rolling_hash.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stdchk {
namespace {

// Recomputes the window hash from scratch for comparison.
std::uint64_t DirectHash(ByteSpan window) {
  RollingHash h(window.size());
  for (std::uint8_t b : window) h.Push(b);
  return h.value();
}

class RollingHashWindowTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RollingHashWindowTest, RollMatchesRecompute) {
  const std::size_t m = GetParam();
  Rng rng(m * 31 + 7);
  Bytes data = rng.RandomBytes(m + 500);

  RollingHash rolling(m);
  for (std::size_t i = 0; i < m; ++i) rolling.Push(data[i]);
  EXPECT_EQ(rolling.value(), DirectHash(ByteSpan(data.data(), m)));

  for (std::size_t pos = 1; pos + m <= data.size(); ++pos) {
    rolling.Roll(data[pos - 1], data[pos + m - 1]);
    ASSERT_EQ(rolling.value(), DirectHash(ByteSpan(data.data() + pos, m)))
        << "window at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, RollingHashWindowTest,
                         ::testing::Values(1, 2, 3, 8, 20, 32, 48, 64, 128,
                                           256));

TEST(RollingHashTest, ResetClearsState) {
  RollingHash h(4);
  h.Push(1);
  h.Push(2);
  ASSERT_NE(h.value(), 0u);
  h.Reset();
  EXPECT_EQ(h.value(), 0u);
}

TEST(RollingHashTest, DifferentContentDifferentHash) {
  RollingHash a(8), b(8);
  for (int i = 0; i < 8; ++i) {
    a.Push(static_cast<std::uint8_t>(i));
    b.Push(static_cast<std::uint8_t>(i + 1));
  }
  EXPECT_NE(a.value(), b.value());
}

TEST(RollingHashTest, BoundaryFrequencyRoughlyMatchesMask) {
  // With k bits masked, roughly 1 in 2^k positions should be boundaries.
  const int k = 8;
  const std::size_t m = 16;
  Rng rng(99);
  Bytes data = rng.RandomBytes(1 << 18);

  RollingHash h(m);
  for (std::size_t i = 0; i < m; ++i) h.Push(data[i]);
  std::size_t boundaries = 0;
  std::size_t positions = 0;
  for (std::size_t pos = 0; pos + m < data.size(); ++pos) {
    if (h.IsBoundary(k)) ++boundaries;
    ++positions;
    h.Roll(data[pos], data[pos + m]);
  }
  double rate = static_cast<double>(boundaries) / static_cast<double>(positions);
  double expected = 1.0 / 256.0;
  EXPECT_GT(rate, expected / 2);
  EXPECT_LT(rate, expected * 2);
}

TEST(RollingHashTest, ZeroRunsDoNotDegenerate) {
  // All-zero content must not trigger a boundary at every position (the
  // Mix64 finalizer decorrelates the masked bits).
  const std::size_t m = 20;
  Bytes zeros(100000, 0);
  RollingHash h(m);
  for (std::size_t i = 0; i < m; ++i) h.Push(zeros[i]);
  // For constant content the hash is constant: it is either always or never
  // a boundary. Requiring "never" for a small k would be flaky by design;
  // instead check the hash is stable and nonzero.
  std::uint64_t v = h.value();
  h.Roll(0, 0);
  EXPECT_EQ(h.value(), v);
  EXPECT_NE(Mix64(v), 0u);
}

TEST(Mix64Test, IsBijectiveOnSamples) {
  // Distinct inputs produce distinct outputs (spot check).
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t a = rng.Next(), b = rng.Next();
    if (a != b) {
      EXPECT_NE(Mix64(a), Mix64(b));
    }
  }
}

}  // namespace
}  // namespace stdchk
