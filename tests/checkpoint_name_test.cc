#include <gtest/gtest.h>

#include "manager/types.h"

namespace stdchk {
namespace {

TEST(CheckpointNameTest, ParseBasic) {
  auto name = CheckpointName::Parse("blast.node07.T42");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->app, "blast");
  EXPECT_EQ(name->node, "node07");
  EXPECT_EQ(name->timestep, 42u);
}

TEST(CheckpointNameTest, RoundTrip) {
  CheckpointName name{"bms", "N3", 17};
  auto parsed = CheckpointName::Parse(name.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->app, "bms");
  EXPECT_EQ(parsed->node, "N3");
  EXPECT_EQ(parsed->timestep, 17u);
}

TEST(CheckpointNameTest, AppMayContainDots) {
  auto name = CheckpointName::Parse("my.sim.v2.worker1.T9");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->app, "my.sim.v2");
  EXPECT_EQ(name->node, "worker1");
  EXPECT_EQ(name->timestep, 9u);
}

TEST(CheckpointNameTest, TimestepZero) {
  auto name = CheckpointName::Parse("a.n.T0");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->timestep, 0u);
}

TEST(CheckpointNameTest, LargeTimestep) {
  auto name = CheckpointName::Parse("a.n.T18446744073709551615");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->timestep, UINT64_MAX);
}

struct MalformedCase {
  const char* input;
};

class MalformedNameTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedNameTest, ParseRejects) {
  EXPECT_FALSE(CheckpointName::Parse(GetParam().input).has_value())
      << GetParam().input;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedNameTest,
    ::testing::Values(MalformedCase{""}, MalformedCase{"noseparators"},
                      MalformedCase{"app.T5"},        // missing node
                      MalformedCase{"app.node.5"},    // missing T prefix
                      MalformedCase{"app.node.T"},    // empty timestep
                      MalformedCase{"app.node.Txy"},  // non-numeric
                      MalformedCase{"app.node.T5x"},  // trailing junk
                      MalformedCase{".node.T5"},      // empty app
                      MalformedCase{"app..T5"},       // empty node
                      MalformedCase{"app.node.T-3"}));

TEST(CheckpointNameTest, ToStringFormat) {
  CheckpointName name{"app", "node", 5};
  EXPECT_EQ(name.ToString(), "app.node.T5");
}

}  // namespace
}  // namespace stdchk
