// Validates that the synthetic trace generators reproduce the structural
// signatures Table 3 depends on (DESIGN.md §2).
#include "workload/trace_generators.h"

#include <gtest/gtest.h>

#include "chkpt/similarity.h"

namespace stdchk {
namespace {

double AvgSimilarity(CheckpointTrace& trace, const Chunker& chunker,
                     int images) {
  SimilarityTracker tracker(&chunker);
  for (int i = 0; i < images; ++i) {
    Bytes image = trace.Next();
    tracker.AddImage(image);
  }
  return tracker.AverageSimilarity();
}

TEST(AppLevelTraceTest, SizesNearConfigured) {
  AppLevelTraceOptions options;
  options.image_bytes = 1 << 20;
  options.size_jitter = 0.02;
  auto trace = MakeAppLevelTrace(options);
  for (int i = 0; i < 5; ++i) {
    Bytes image = trace->Next();
    EXPECT_NEAR(static_cast<double>(image.size()), 1 << 20,
                0.03 * (1 << 20));
  }
}

TEST(AppLevelTraceTest, NoCrossVersionSimilarity) {
  AppLevelTraceOptions options;
  options.image_bytes = 256 * 1024;
  auto trace = MakeAppLevelTrace(options);
  FixedSizeChunker fsch(1024);
  EXPECT_LT(AvgSimilarity(*trace, fsch, 6), 0.01);

  auto trace2 = MakeAppLevelTrace(options);
  ContentBasedChunker cbch(CbchParams{20, 10, 20});
  EXPECT_LT(AvgSimilarity(*trace2, cbch, 6), 0.01);
}

TEST(AppLevelTraceTest, DeterministicBySeed) {
  AppLevelTraceOptions options;
  options.seed = 77;
  auto a = MakeAppLevelTrace(options);
  auto b = MakeAppLevelTrace(options);
  EXPECT_EQ(a->Next(), b->Next());
}

TEST(BlcrTraceTest, HighContentSimilarityDetectedByCbch) {
  BlcrTraceOptions options;
  options.initial_pages = 2048;  // 8 MiB
  options.mean_insertions = 1.0;
  options.seed = 1;
  options.mean_odd_insertions = 1.0;
  auto trace = MakeBlcrLikeTrace(options);
  // Overlap CbCH (p=1) inspects every offset, so boundaries re-anchor to
  // content immediately after any insertion — the heuristic the paper
  // credits with detecting up to 84% similarity on BLCR images.
  ContentBasedChunker cbch(CbchParams{20, 11, 1});
  double sim = AvgSimilarity(*trace, cbch, 6);
  EXPECT_GT(sim, 0.6);
}

TEST(BlcrTraceTest, FschDetectsLessThanCbchDueToInsertions) {
  BlcrTraceOptions options;
  options.initial_pages = 2048;
  options.seed = 2;
  auto trace_fsch = MakeBlcrLikeTrace(options);
  FixedSizeChunker fsch(256 * 1024);
  double fsch_sim = AvgSimilarity(*trace_fsch, fsch, 6);

  auto trace_cbch = MakeBlcrLikeTrace(options);
  ContentBasedChunker cbch(CbchParams{20, 11, 1});
  double cbch_sim = AvgSimilarity(*trace_cbch, cbch, 6);

  EXPECT_LT(fsch_sim, cbch_sim - 0.2);
  EXPECT_GT(fsch_sim, 0.0);
}

TEST(BlcrTraceTest, LongerIntervalLowersSimilarity) {
  std::size_t pages = 1024;
  auto opt5 = BlcrOptionsForInterval(5, pages, /*seed=*/3);
  auto opt15 = BlcrOptionsForInterval(15, pages, /*seed=*/3);
  EXPECT_GT(opt15.dirty_fraction, opt5.dirty_fraction);
  EXPECT_GT(opt15.mean_insertions, opt5.mean_insertions);

  auto t5 = MakeBlcrLikeTrace(opt5);
  auto t15 = MakeBlcrLikeTrace(opt15);
  ContentBasedChunker cbch(CbchParams{20, 11, 20});
  ContentBasedChunker cbch2(CbchParams{20, 11, 20});
  SimilarityTracker tr5(&cbch), tr15(&cbch2);
  for (int i = 0; i < 6; ++i) {
    tr5.AddImage(t5->Next());
    tr15.AddImage(t15->Next());
  }
  EXPECT_GT(tr5.AverageSimilarity(), tr15.AverageSimilarity());
}

TEST(BlcrTraceTest, ImageSizeEvolvesWithInsertions) {
  BlcrTraceOptions options;
  options.initial_pages = 512;
  options.mean_insertions = 10;
  options.deletion_prob = 0;
  auto trace = MakeBlcrLikeTrace(options);
  std::size_t first = trace->Next().size();
  std::size_t later = 0;
  for (int i = 0; i < 5; ++i) later = trace->Next().size();
  EXPECT_GT(later, first);  // heap growth
}

TEST(BlcrTraceTest, DeterministicBySeed) {
  BlcrTraceOptions options;
  options.initial_pages = 128;
  options.seed = 55;
  auto a = MakeBlcrLikeTrace(options);
  auto b = MakeBlcrLikeTrace(options);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a->Next(), b->Next());
}

TEST(XenTraceTest, NearZeroSimilarityForBothHeuristics) {
  XenTraceOptions options;
  options.pages = 512;  // 2 MiB
  options.seed = 4;
  auto trace_fsch = MakeXenLikeTrace(options);
  FixedSizeChunker fsch(256 * 1024);
  EXPECT_LT(AvgSimilarity(*trace_fsch, fsch, 4), 0.15);

  auto trace_cbch = MakeXenLikeTrace(options);
  ContentBasedChunker cbch(CbchParams{20, 11, 20});
  EXPECT_LT(AvgSimilarity(*trace_cbch, cbch, 4), 0.35);
}

TEST(XenTraceTest, RecordStructureMatchesConfig) {
  XenTraceOptions options;
  options.pages = 100;
  options.page_bytes = 4096;
  options.header_bytes = 16;
  auto trace = MakeXenLikeTrace(options);
  Bytes image = trace->Next();
  EXPECT_EQ(image.size(), 100u * (4096 + 16));
}

TEST(XenTraceTest, SimilarityMuchLowerThanBlcrAtSameDirtyRate) {
  // Same underlying page-dirty behaviour; the serialization order and
  // per-page headers are what destroy similarity (the paper's Xen finding).
  BlcrTraceOptions blcr;
  blcr.initial_pages = 512;
  blcr.dirty_fraction = 0.10;
  blcr.mean_insertions = 0;  // isolate the ordering effect
  blcr.mean_odd_insertions = 0;
  blcr.deletion_prob = 0;
  blcr.seed = 6;
  auto blcr_trace = MakeBlcrLikeTrace(blcr);

  XenTraceOptions xen;
  xen.pages = 512;
  xen.dirty_fraction = 0.10;
  xen.seed = 6;
  auto xen_trace = MakeXenLikeTrace(xen);

  FixedSizeChunker f1(64 * 1024), f2(64 * 1024);
  SimilarityTracker tb(&f1), tx(&f2);
  for (int i = 0; i < 4; ++i) {
    tb.AddImage(blcr_trace->Next());
    tx.AddImage(xen_trace->Next());
  }
  EXPECT_GT(tb.AverageSimilarity(), tx.AverageSimilarity() + 0.4);
}

TEST(Table2SpecsTest, MatchesPaperRows) {
  auto specs = PaperTable2Specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].application, "BMS");
  EXPECT_EQ(specs[0].checkpoint_count, 100u);
  EXPECT_NEAR(specs[1].avg_size_mb, 279.6, 1e-9);
  EXPECT_EQ(specs[3].checkpointing_type, "VM (Xen)");
}

}  // namespace
}  // namespace stdchk
