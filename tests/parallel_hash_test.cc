// The parallel drain hashing engine: HashPool mechanics, and the
// determinism contract — for any worker count N, any drain timing, and any
// chunker, the planner's chunk names, their order, and the committed chunk
// map must be byte-identical to the serial (N=1) path.
#include "common/hash_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "client/chunk_planner.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

// ---- HashPool ---------------------------------------------------------------

TEST(HashPoolTest, RunsEveryIndexExactlyOnce) {
  HashPool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, 4, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(HashPoolTest, SerialWhenMaxWorkersIsOne) {
  HashPool pool(8);
  // max_workers=1 must run entirely on the calling thread, in order.
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  int used = pool.ParallelFor(100, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: single-threaded by contract
  });
  EXPECT_EQ(used, 1);
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(HashPoolTest, ReportsActualEngagementWithinBounds) {
  HashPool pool(4);
  for (int round = 0; round < 20; ++round) {
    int used = pool.ParallelFor(64, 8, [](std::size_t) {});
    EXPECT_GE(used, 1);
    EXPECT_LE(used, 4);  // caller + 3 workers
  }
}

TEST(HashPoolTest, ZeroThreadPoolDegradesToSerial) {
  HashPool pool(0);  // no workers at all
  EXPECT_EQ(pool.worker_threads(), 0);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, 8, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(HashPoolTest, ConcurrentBatchesFromMultipleCallers) {
  HashPool pool(4);
  constexpr int kCallers = 4;
  constexpr std::size_t kPer = 300;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) v = std::vector<std::atomic<int>>(kPer);

  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kPer, 3, [&, c](std::size_t i) {
        hits[static_cast<std::size_t>(c)][i].fetch_add(
            1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kPer; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(c)][i].load(), 1);
    }
  }
}

TEST(HashPoolTest, EffectiveWorkersBounds) {
  HashPool pool(4);  // 3 helper threads + caller
  EXPECT_EQ(pool.EffectiveWorkers(100, 1), 1);
  EXPECT_EQ(pool.EffectiveWorkers(1, 8), 1);
  EXPECT_EQ(pool.EffectiveWorkers(100, 2), 2);
  EXPECT_EQ(pool.EffectiveWorkers(100, 16), 4);  // pool caps at 4
  EXPECT_EQ(pool.EffectiveWorkers(3, 16), 3);    // batch caps at n
}

// ---- Planner determinism ----------------------------------------------------

struct PlannedChunk {
  ChunkId id;
  std::size_t size;
  bool operator==(const PlannedChunk&) const = default;
};

// Streams `data` into a planner in `piece`-sized appends, draining every
// `drain_every` appends (0 = only the final drain).
std::vector<PlannedChunk> Plan(std::shared_ptr<const Chunker> chunker,
                               int hash_workers, ByteSpan data,
                               std::size_t piece, std::size_t drain_every) {
  ChunkPlanner planner(std::move(chunker), hash_workers);
  std::vector<PlannedChunk> out;
  auto take = [&](std::vector<StagedChunk> chunks) {
    for (StagedChunk& c : chunks) out.push_back({c.id, c.data.size()});
  };
  std::size_t pos = 0, appends = 0;
  while (pos < data.size()) {
    std::size_t n = std::min(piece, data.size() - pos);
    planner.Append(data.subspan(pos, n));
    pos += n;
    if (drain_every != 0 && ++appends % drain_every == 0) {
      take(planner.Drain(/*final=*/false));
    }
  }
  take(planner.Drain(/*final=*/true));
  return out;
}

TEST(ParallelHashDeterminismTest, PlannerMatchesSerialAcrossWorkersAndTiming) {
  Rng rng(2026);
  Bytes data = rng.RandomBytes(512 * 1024);

  CbchParams gear;  // default boundary hash
  gear.boundary_bits_k = 10;
  CbchParams mix = gear;
  mix.boundary_hash = CbchBoundaryHash::kMix64Rolling;

  std::vector<std::shared_ptr<const Chunker>> chunkers = {
      std::make_shared<FixedSizeChunker>(8192),
      std::make_shared<ContentBasedChunker>(gear),
      std::make_shared<ContentBasedChunker>(mix),
  };

  for (const auto& chunker : chunkers) {
    // Serial reference: whole image, one final drain, N=1.
    std::vector<PlannedChunk> reference =
        Plan(chunker, /*hash_workers=*/1, data, data.size(), 0);
    ASSERT_GT(reference.size(), 4u) << chunker->name();

    for (int workers : {1, 2, 8}) {
      for (std::size_t piece : {4097u, 64u * 1024u}) {
        for (std::size_t drain_every : {0u, 1u, 3u}) {
          EXPECT_EQ(Plan(chunker, workers, data, piece, drain_every),
                    reference)
              << chunker->name() << " N=" << workers << " piece=" << piece
              << " drain_every=" << drain_every;
        }
      }
    }
  }
}

// ---- End-to-end: committed chunk maps ---------------------------------------

ChunkMap CommitWithWorkers(int hash_workers, ByteSpan data,
                           std::shared_ptr<const Chunker> chunker) {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.chunk_size = 8192;
  options.client.protocol = WriteProtocol::kSlidingWindow;
  options.client.hash_workers = hash_workers;
  options.client.chunker = std::move(chunker);
  StdchkCluster cluster(options);

  CheckpointName name{"app", "par", 1};
  auto session = cluster.client().CreateFile(name);
  EXPECT_TRUE(session.ok());
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t n = std::min<std::size_t>(10000, data.size() - pos);
    EXPECT_TRUE(session.value()->Write(data.subspan(pos, n)).ok());
    pos += n;
  }
  EXPECT_TRUE(session.value()->Close().ok());
  if (hash_workers > 1) {
    // hash_workers_peak is a measurement of threads that actually joined —
    // at least the caller, never more than requested or the pool can give.
    const WriteStats& stats = session.value()->stats();
    EXPECT_GE(stats.hash_workers_peak, 1u);
    EXPECT_LE(stats.hash_workers_peak,
              static_cast<std::uint64_t>(
                  std::max(1, HashPool::Shared().worker_threads() + 1)));
    EXPECT_GT(stats.hash_chunks, 0u);
  }

  auto record = cluster.manager().GetVersion(name);
  EXPECT_TRUE(record.ok());
  auto read_back = cluster.client().ReadFile(name);
  EXPECT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), Bytes(data.begin(), data.end()));
  return record.value().chunk_map;
}

void ExpectSameMap(const ChunkMap& a, const ChunkMap& b) {
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t i = 0; i < a.chunks.size(); ++i) {
    EXPECT_EQ(a.chunks[i].id, b.chunks[i].id) << i;
    EXPECT_EQ(a.chunks[i].file_offset, b.chunks[i].file_offset) << i;
    EXPECT_EQ(a.chunks[i].size, b.chunks[i].size) << i;
  }
}

TEST(ParallelHashDeterminismTest, CommittedChunkMapsIdenticalToSerial) {
  Rng rng(99);
  Bytes data = rng.RandomBytes(300 * 1024);

  for (bool cbch : {false, true}) {
    std::shared_ptr<const Chunker> chunker;
    if (cbch) {
      CbchParams params;
      params.boundary_bits_k = 11;
      chunker = std::make_shared<ContentBasedChunker>(params);
    }
    ChunkMap serial = CommitWithWorkers(1, data, chunker);
    ExpectSameMap(serial, CommitWithWorkers(2, data, chunker));
    ExpectSameMap(serial, CommitWithWorkers(8, data, chunker));
  }
}

}  // namespace
}  // namespace stdchk
