#include "core/cluster_stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

TEST(ClusterStatsTest, FreshClusterIsEmpty) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.capacity_per_node = 1_GiB;
  StdchkCluster cluster(options);

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.benefactors_total, 4u);
  EXPECT_EQ(stats.benefactors_online, 4u);
  EXPECT_EQ(stats.capacity_bytes, 4_GiB);
  EXPECT_EQ(stats.stored_bytes, 0u);
  EXPECT_EQ(stats.versions, 0u);
  EXPECT_EQ(stats.logical_bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(stats.dedup_factor(), 1.0);
  EXPECT_EQ(stats.nodes.size(), 4u);
}

TEST(ClusterStatsTest, TracksWritesAndDedup) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.incremental_fsch = true;
  StdchkCluster cluster(options);
  Rng rng(5);

  Bytes image = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(cluster.client().WriteFile(CheckpointName{"a", "n", 1}, image).ok());
  ASSERT_TRUE(cluster.client().WriteFile(CheckpointName{"a", "n", 2}, image).ok());

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.versions, 2u);
  EXPECT_EQ(stats.applications, 1u);
  EXPECT_EQ(stats.logical_bytes, 16u * 1024);
  EXPECT_EQ(stats.unique_bytes, 8u * 1024);
  EXPECT_EQ(stats.stored_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(stats.dedup_factor(), 2.0);
  EXPECT_GT(stats.rpcs, 0u);
  EXPECT_GE(stats.network_bytes, 8u * 1024);
}

TEST(ClusterStatsTest, CountsOfflineNodes) {
  ClusterOptions options;
  options.benefactor_count = 3;
  StdchkCluster cluster(options);
  cluster.benefactor(1).Crash();
  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.benefactors_online, 2u);
  EXPECT_FALSE(stats.nodes[1].online);
}

TEST(ClusterStatsTest, PendingReplicationsVisibleMidRepair) {
  ClusterOptions options;
  options.benefactor_count = 5;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.replication_target = 3;
  StdchkCluster cluster(options);
  Rng rng(6);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"a", "n", 1}, rng.RandomBytes(4096))
                  .ok());
  // Issue replication commands without executing them.
  auto cmds = cluster.manager().TickReplication();
  ASSERT_FALSE(cmds.empty());
  EXPECT_EQ(CollectStats(cluster).pending_replications, cmds.size());
  for (const auto& cmd : cmds) {
    (void)cluster.manager().AckReplication(cmd, false);
  }
}

TEST(ClusterStatsTest, MetadataPlaneCountersSurface) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.manager.catalog_shards = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.decentralized_placement = true;
  StdchkCluster cluster(options);
  Rng rng(7);

  for (std::uint64_t t = 1; t <= 6; ++t) {
    ASSERT_TRUE(cluster.client()
                    .WriteFile(CheckpointName{"app" + std::to_string(t % 3),
                                              "n", t},
                               rng.RandomBytes(4096))
                    .ok());
  }

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.catalog_shards, 4u);
  ASSERT_EQ(stats.catalog_shard_stats.size(), 4u);
  std::uint64_t ops = 0, acquisitions = 0;
  for (const CatalogShardStats& shard : stats.catalog_shard_stats) {
    ops += shard.ops;
    acquisitions += shard.lock_acquisitions;
  }
  EXPECT_EQ(stats.catalog_ops, ops);
  EXPECT_EQ(stats.catalog_lock_acquisitions, acquisitions);
  EXPECT_GT(stats.catalog_ops, 0u);
  EXPECT_GE(stats.catalog_lock_acquisitions, stats.catalog_ops);

  // Steady state with a warm placement-table cache: exactly one fetch, no
  // epoch mismatches, and — the headline invariant — zero writes placed by
  // the manager.
  EXPECT_EQ(stats.placement_epoch,
            cluster.manager().registry().placement_epoch());
  EXPECT_EQ(stats.placement_table_fetches, 1u);
  EXPECT_EQ(stats.placement_epoch_mismatches, 0u);
  EXPECT_EQ(stats.server_side_placements, 0u);
}

TEST(ClusterStatsTest, LegacyPlacementShowsServerSidePlacements) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  StdchkCluster cluster(options);
  Rng rng(8);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"a", "n", 1}, rng.RandomBytes(4096))
                  .ok());

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.catalog_shards, 1u);  // default single shard
  EXPECT_EQ(stats.placement_table_fetches, 0u);
  EXPECT_GT(stats.server_side_placements, 0u);
}

}  // namespace
}  // namespace stdchk
