#include "core/cluster_stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

TEST(ClusterStatsTest, FreshClusterIsEmpty) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.capacity_per_node = 1_GiB;
  StdchkCluster cluster(options);

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.benefactors_total, 4u);
  EXPECT_EQ(stats.benefactors_online, 4u);
  EXPECT_EQ(stats.capacity_bytes, 4_GiB);
  EXPECT_EQ(stats.stored_bytes, 0u);
  EXPECT_EQ(stats.versions, 0u);
  EXPECT_EQ(stats.logical_bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.utilization(), 0.0);
  EXPECT_DOUBLE_EQ(stats.dedup_factor(), 1.0);
  EXPECT_EQ(stats.nodes.size(), 4u);
}

TEST(ClusterStatsTest, TracksWritesAndDedup) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.incremental_fsch = true;
  StdchkCluster cluster(options);
  Rng rng(5);

  Bytes image = rng.RandomBytes(8 * 1024);
  ASSERT_TRUE(cluster.client().WriteFile(CheckpointName{"a", "n", 1}, image).ok());
  ASSERT_TRUE(cluster.client().WriteFile(CheckpointName{"a", "n", 2}, image).ok());

  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.versions, 2u);
  EXPECT_EQ(stats.applications, 1u);
  EXPECT_EQ(stats.logical_bytes, 16u * 1024);
  EXPECT_EQ(stats.unique_bytes, 8u * 1024);
  EXPECT_EQ(stats.stored_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(stats.dedup_factor(), 2.0);
  EXPECT_GT(stats.rpcs, 0u);
  EXPECT_GE(stats.network_bytes, 8u * 1024);
}

TEST(ClusterStatsTest, CountsOfflineNodes) {
  ClusterOptions options;
  options.benefactor_count = 3;
  StdchkCluster cluster(options);
  cluster.benefactor(1).Crash();
  ClusterStats stats = CollectStats(cluster);
  EXPECT_EQ(stats.benefactors_online, 2u);
  EXPECT_FALSE(stats.nodes[1].online);
}

TEST(ClusterStatsTest, PendingReplicationsVisibleMidRepair) {
  ClusterOptions options;
  options.benefactor_count = 5;
  options.client.stripe_width = 2;
  options.client.chunk_size = 1024;
  options.client.replication_target = 3;
  StdchkCluster cluster(options);
  Rng rng(6);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"a", "n", 1}, rng.RandomBytes(4096))
                  .ok());
  // Issue replication commands without executing them.
  auto cmds = cluster.manager().TickReplication();
  ASSERT_FALSE(cmds.empty());
  EXPECT_EQ(CollectStats(cluster).pending_replications, cmds.size());
  for (const auto& cmd : cmds) {
    (void)cluster.manager().AckReplication(cmd, false);
  }
}

}  // namespace
}  // namespace stdchk
