#include "common/stats.h"

#include <gtest/gtest.h>

namespace stdchk {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of that classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, WelfordMatchesNaiveOnManyValues) {
  RunningStats s;
  double sum = 0, sumsq = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    double v = static_cast<double>((i * 37) % 101);
    s.Add(v);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = (sumsq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(SampleTest, PercentilesOfUniformRamp) {
  Sample s;
  for (int i = 0; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(0), 0.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 50.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(25), 25.0, 1e-9);
  EXPECT_NEAR(s.Mean(), 50.0, 1e-9);
}

TEST(SampleTest, EmptySampleIsZero) {
  Sample s;
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(ThroughputTimelineTest, BucketsAccumulate) {
  ThroughputTimeline t(1.0);
  t.Record(0.1, 1048576);  // 1 MB in bucket 0
  t.Record(0.9, 1048576);  // 1 MB in bucket 0
  t.Record(1.5, 1048576);  // 1 MB in bucket 1
  auto series = t.Series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0].mb_per_second, 2.0, 1e-9);
  EXPECT_NEAR(series[1].mb_per_second, 1.0, 1e-9);
  EXPECT_NEAR(series[0].time_seconds, 0.5, 1e-9);
}

TEST(ThroughputTimelineTest, PeakAndSustained) {
  ThroughputTimeline t(1.0);
  t.Record(0.5, 2 * 1048576.0);
  t.Record(1.5, 4 * 1048576.0);
  t.Record(3.5, 0.0);  // empty bucket does not count toward sustained
  EXPECT_NEAR(t.PeakMBps(), 4.0, 1e-9);
  EXPECT_NEAR(t.SustainedMBps(), 3.0, 1e-9);
}

TEST(ThroughputTimelineTest, NegativeTimeIgnored) {
  ThroughputTimeline t(1.0);
  t.Record(-1.0, 1048576);
  EXPECT_TRUE(t.Series().empty());
}

TEST(FormatTest, FormatMBps) {
  EXPECT_EQ(FormatMBps(110.04), "110.0 MB/s");
  EXPECT_EQ(FormatMBps(0.0), "0.0 MB/s");
}

}  // namespace
}  // namespace stdchk
