// Model-based randomized integration test: a long pseudo-random sequence
// of operations (writes, dedup writes, deletes, reads, churn, manager
// bounces, background ticks) runs against the cluster while a simple
// in-memory reference model tracks what must be true. Any divergence —
// lost committed data with surviving replicas, resurrected deleted files,
// corrupted contents — fails the test.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

struct ModelFile {
  Bytes content;
  int replication_target = 2;
};

class ModelBasedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelBasedTest, RandomOperationSequenceStaysConsistent) {
  ClusterOptions options;
  options.benefactor_count = 8;
  options.client.stripe_width = 3;
  options.client.chunk_size = 1024;
  options.client.semantics = WriteSemantics::kPessimistic;
  options.client.replication_target = 2;
  StdchkCluster cluster(options);

  Rng rng(GetParam());
  std::map<std::string, ModelFile> model;  // committed files by name
  std::uint64_t next_timestep = 1;
  int crashed_count = 0;

  auto any_two_nodes_up = [&] {
    return static_cast<int>(cluster.benefactor_count()) - crashed_count >= 3;
  };

  for (int step = 0; step < 120; ++step) {
    switch (rng.NextBelow(8)) {
      case 0:
      case 1: {  // write a new version
        if (!any_two_nodes_up()) break;
        CheckpointName name{"model", "n" + std::to_string(rng.NextBelow(3)),
                            next_timestep++};
        Bytes data = rng.RandomBytes(512 + rng.NextBelow(8 * 1024));
        auto outcome = cluster.client().WriteFile(name, data);
        if (outcome.ok() &&
            outcome.value() == CloseOutcome::kCommitted) {
          model[name.ToString()] = ModelFile{data, 2};
        }
        break;
      }
      case 2: {  // deduplicated write of an existing file's content
        if (model.empty() || !any_two_nodes_up()) break;
        auto it = model.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.NextBelow(model.size())));
        CheckpointName name{"model", "dup", next_timestep++};
        ClientOptions co = cluster.client().options();
        co.incremental_fsch = true;
        auto client = cluster.MakeClient(co);
        auto outcome = client->WriteFile(name, it->second.content);
        if (outcome.ok() && outcome.value() == CloseOutcome::kCommitted) {
          model[name.ToString()] = it->second;
        }
        break;
      }
      case 3: {  // delete a random file
        if (model.empty()) break;
        auto it = model.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.NextBelow(model.size())));
        auto parsed = CheckpointName::Parse(it->first);
        ASSERT_TRUE(parsed.has_value());
        Status status = cluster.client().Delete(*parsed);
        if (status.ok()) model.erase(it);
        break;
      }
      case 4: {  // crash a random benefactor
        std::size_t victim = rng.NextBelow(cluster.benefactor_count());
        if (cluster.benefactor(victim).online() && crashed_count < 4) {
          cluster.benefactor(victim).Crash();
          ++crashed_count;
        }
        break;
      }
      case 5: {  // restart a random benefactor
        std::size_t victim = rng.NextBelow(cluster.benefactor_count());
        if (!cluster.benefactor(victim).online()) {
          ASSERT_TRUE(cluster.RestartBenefactor(victim).ok());
          --crashed_count;
        }
        break;
      }
      case 6: {  // manager bounce (committed state is durable)
        cluster.manager().Crash();
        cluster.manager().Restart();
        break;
      }
      case 7: {  // let background machinery run
        for (int i = 0; i < static_cast<int>(rng.NextBelow(20)); ++i) {
          cluster.Tick(1.0);
        }
        break;
      }
    }

    // Invariant: a random committed file reads back byte-exact whenever
    // enough of the grid is up. With replication target 2 and at most one
    // crashed holder per chunk this should essentially always hold after
    // repair; skip verification while multiple nodes are down.
    if (!model.empty() && crashed_count == 0) {
      cluster.Settle(64);
      auto it = model.begin();
      std::advance(it,
                   static_cast<std::ptrdiff_t>(rng.NextBelow(model.size())));
      auto parsed = CheckpointName::Parse(it->first);
      ASSERT_TRUE(parsed.has_value());
      auto read_back = cluster.client().ReadFile(*parsed);
      ASSERT_TRUE(read_back.ok())
          << "step " << step << " file " << it->first << ": "
          << read_back.status();
      ASSERT_EQ(read_back.value(), it->second.content) << it->first;
    }
  }

  // Final convergence: everyone back, repair, then every committed file
  // must be intact and every deleted file gone.
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    if (!cluster.benefactor(i).online()) {
      ASSERT_TRUE(cluster.RestartBenefactor(i).ok());
    }
  }
  cluster.Settle(256);

  for (const auto& [name, file] : model) {
    auto parsed = CheckpointName::Parse(name);
    ASSERT_TRUE(parsed.has_value());
    auto read_back = cluster.client().ReadFile(*parsed);
    ASSERT_TRUE(read_back.ok()) << name << ": " << read_back.status();
    EXPECT_EQ(read_back.value(), file.content) << name;
  }
  EXPECT_EQ(cluster.manager().catalog().TotalVersions(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelBasedTest,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xDEADull));

}  // namespace
}  // namespace stdchk
