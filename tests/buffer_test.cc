// BufferRef/BufferSlice semantics and the zero-copy data-path invariants:
// slices alias (never duplicate) their backing buffer, survive the backing
// owner letting go, and CopyStats sees exactly the copies that happen.
#include "common/buffer.h"

#include <gtest/gtest.h>

#include <thread>

#include "benefactor/benefactor.h"
#include "chunk/chunk_store.h"
#include "common/rng.h"

namespace stdchk {
namespace {

Bytes MakeData(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return rng.RandomBytes(n);
}

TEST(BufferRefTest, TakeAdoptsWithoutCopy) {
  Bytes data = MakeData(1024, 1);
  const std::uint8_t* raw = data.data();
  copy_stats::Reset();
  BufferRef ref = BufferRef::Take(std::move(data));
  EXPECT_EQ(ref.data(), raw);  // same storage, no reallocation
  EXPECT_EQ(ref.size(), 1024u);
  EXPECT_EQ(copy_stats::Snapshot().payload_copies, 0u);
  EXPECT_EQ(copy_stats::Snapshot().materializations, 0u);
}

TEST(BufferRefTest, MaterializeCountsOnce) {
  Bytes data = MakeData(64, 2);
  copy_stats::Reset();
  BufferRef ref = BufferRef::Materialize(data);
  EXPECT_EQ(ref.span().size(), 64u);
  CopyStatsSnapshot s = copy_stats::Snapshot();
  EXPECT_EQ(s.materializations, 1u);
  EXPECT_EQ(s.materialized_bytes, 64u);
  EXPECT_EQ(s.payload_copies, 0u);
}

TEST(BufferSliceTest, SlicesAliasTheBacking) {
  Bytes data = MakeData(100, 3);
  BufferRef ref = BufferRef::Take(std::move(data));
  const std::uint8_t* base = ref.data();

  copy_stats::Reset();
  BufferSlice whole(ref);
  BufferSlice mid(ref, 10, 50);
  BufferSlice sub = mid.Subslice(5, 20);
  EXPECT_EQ(whole.data(), base);
  EXPECT_EQ(mid.data(), base + 10);
  EXPECT_EQ(sub.data(), base + 15);
  EXPECT_TRUE(whole.SharesBufferWith(mid));
  EXPECT_TRUE(mid.SharesBufferWith(sub));
  EXPECT_EQ(copy_stats::Snapshot().payload_copies, 0u);
}

TEST(BufferSliceTest, SliceOutlivesTheRef) {
  BufferSlice slice;
  Bytes expected = MakeData(256, 4);
  {
    BufferRef ref = BufferRef::Take(Bytes(expected));
    slice = BufferSlice(ref, 16, 100);
  }  // ref dropped; the slice keeps the backing alive
  EXPECT_EQ(slice.size(), 100u);
  EXPECT_TRUE(std::equal(slice.span().begin(), slice.span().end(),
                         expected.begin() + 16));
}

TEST(BufferSliceTest, CopyAndToBytesAreCounted) {
  Bytes data = MakeData(128, 5);
  copy_stats::Reset();
  BufferSlice copied = BufferSlice::Copy(data);
  Bytes back = copied.ToBytes();
  EXPECT_EQ(back, data);
  CopyStatsSnapshot s = copy_stats::Snapshot();
  EXPECT_EQ(s.payload_copies, 2u);
  EXPECT_EQ(s.payload_copy_bytes, 256u);
}

TEST(BufferSliceTest, EqualityComparesContent) {
  Bytes data = MakeData(64, 6);
  BufferSlice a = BufferSlice::Copy(data);
  BufferSlice b = BufferSlice::Copy(data);
  EXPECT_FALSE(a.SharesBufferWith(b));
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a == ByteSpan(data));
  Bytes other = MakeData(64, 7);
  EXPECT_FALSE(a == ByteSpan(other));
  EXPECT_TRUE(BufferSlice() == BufferSlice());
}

// ---- Store lifetime: the heart of the zero-copy contract -------------------

TEST(BufferSliceTest, DigestStampSharedByCopiesDroppedBySubslice) {
  Bytes data = MakeData(256, 21);
  BufferSlice slice(BufferRef::Take(std::move(data)));
  EXPECT_EQ(slice.stamped_digest(), nullptr);

  Sha1Digest digest = Sha1(slice.span());
  slice.StampDigest(digest);
  ASSERT_NE(slice.stamped_digest(), nullptr);
  EXPECT_EQ(*slice.stamped_digest(), digest);

  // Copies carry the stamp (same bytes); sub-views and payload copies via
  // Copy() must not (different bytes / fresh unverified buffer).
  BufferSlice copy = slice;
  ASSERT_NE(copy.stamped_digest(), nullptr);
  EXPECT_EQ(*copy.stamped_digest(), digest);
  EXPECT_EQ(slice.Subslice(1, 100).stamped_digest(), nullptr);
  EXPECT_EQ(BufferSlice::Copy(slice.span()).stamped_digest(), nullptr);
}

TEST(BufferRefTest, BackingHandleExpiresWithTheLastOwner) {
  // The non-owning liveness handle the disk store uses to account
  // mapped-but-unlinked bytes: it must track the backing's real lifetime
  // without extending it.
  BufferRef ref = BufferRef::Take(MakeData(128, 23));
  std::weak_ptr<const void> handle = ref.backing_handle();
  EXPECT_FALSE(handle.expired());

  // A slice keeps the backing alive after the ref itself drops...
  BufferSlice slice(ref, 16, 32);
  ref = BufferRef();
  EXPECT_FALSE(handle.expired());

  // ...and the handle flips exactly when the last slice does.
  slice = BufferSlice();
  EXPECT_TRUE(handle.expired());
}

TEST(BufferSliceTest, StampedSliceShortCircuitsChunkIdFor) {
  Bytes data = MakeData(512, 22);
  ChunkId true_id = ChunkId::For(data);
  BufferSlice slice(BufferRef::Take(std::move(data)));
  EXPECT_EQ(ChunkId::For(slice), true_id);  // unstamped: full hash

  slice.StampDigest(true_id.digest);
  EXPECT_EQ(ChunkId::For(slice), true_id);  // stamped: memo answers
}

TEST(StampedVerificationTest, BenefactorStillRejectsUnstampedMismatch) {
  // The stamp is an optimization, not a bypass: unstamped payloads (the
  // only kind an external/deserialized sender can produce) are re-hashed
  // and rejected on mismatch, stamped ones sail through by compare.
  Benefactor node("donor", MakeMemoryChunkStore(), 1_GiB);
  Bytes good = MakeData(300, 23);
  Bytes evil = MakeData(300, 24);
  ChunkId good_id = ChunkId::For(good);

  EXPECT_EQ(node.PutChunk(good_id, BufferSlice::Copy(evil)).code(),
            StatusCode::kDataLoss);

  BufferSlice stamped = BufferSlice::Copy(good);
  stamped.StampDigest(good_id.digest);
  EXPECT_TRUE(node.PutChunk(good_id, stamped).ok());

  // Read-back of the memory store's stamped slice verifies by compare and
  // returns the original bytes.
  auto got = node.GetChunk(good_id);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value() == ByteSpan(good));
  ASSERT_NE(got.value().stamped_digest(), nullptr);
}

TEST(StoreBufferLifetimeTest, ReaderHeldSliceSurvivesDelete) {
  auto store = MakeMemoryChunkStore();
  Bytes data = MakeData(4096, 8);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store->Put(id, BufferSlice::Copy(data)).ok());

  auto got = store->Get(id);
  ASSERT_TRUE(got.ok());
  BufferSlice held = got.value();

  // GC reclaims the chunk while the reader still holds the slice.
  ASSERT_TRUE(store->Delete(id).ok());
  EXPECT_FALSE(store->Contains(id));
  EXPECT_TRUE(held == ByteSpan(data));  // still valid, still correct
}

TEST(StoreBufferLifetimeTest, ConcurrentGetsShareOneBuffer) {
  auto store = MakeMemoryChunkStore();
  Bytes data = MakeData(1024, 9);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(store->Put(id, BufferSlice::Copy(data)).ok());

  copy_stats::Reset();
  std::vector<BufferSlice> seen(4);
  std::vector<std::thread> readers;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    readers.emplace_back([&store, &seen, i, id] {
      auto got = store->Get(id);
      ASSERT_TRUE(got.ok());
      seen[i] = std::move(got).value();
    });
  }
  for (std::thread& t : readers) t.join();

  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].data(), seen[0].data());  // same storage
    EXPECT_TRUE(seen[i].SharesBufferWith(seen[0]));
  }
  EXPECT_EQ(copy_stats::Snapshot().payload_copies, 0u);
}

TEST(StoreBufferLifetimeTest, PutAliasesTheCallersSlice) {
  auto store = MakeMemoryChunkStore();
  Bytes data = MakeData(2048, 10);
  ChunkId id = ChunkId::For(data);
  BufferSlice staged = BufferSlice::Copy(data);
  const std::uint8_t* raw = staged.data();

  copy_stats::Reset();
  ASSERT_TRUE(store->Put(id, staged).ok());
  auto got = store->Get(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().data(), raw);  // store holds the caller's buffer
  EXPECT_EQ(copy_stats::Snapshot().payload_copies, 0u);
}

TEST(StoreBufferLifetimeTest, BenefactorGetSurvivesWipe) {
  Benefactor node("donor", MakeMemoryChunkStore(), 1_GiB);
  Bytes data = MakeData(512, 11);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(node.PutChunk(id, BufferSlice::Copy(data)).ok());

  auto got = node.GetChunk(id);
  ASSERT_TRUE(got.ok());
  BufferSlice held = got.value();
  node.Wipe();  // donor disk scavenged under the reader
  EXPECT_TRUE(held == ByteSpan(data));
}

}  // namespace
}  // namespace stdchk
