// The lock-rank runtime validator (src/common/annotated_mutex.h) is the
// dynamic half of the concurrency contracts: Clang's -Wthread-safety proves
// lock *possession* at compile time, the validator proves lock *ordering*
// at run time. This battery pins both directions: legal ascending chains
// (including the deepest real one, a catalog snapshot Export over every
// shard) run silently, and each violation class — rank inversion, same-rank
// sequence inversion, recursive relock, holding a high rank into a real
// manager RPC — aborts with a report.
#include <gtest/gtest.h>

#include <thread>

#include "common/annotated_mutex.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "manager/metadata_manager.h"
#include "manager/virtual_clock.h"

// The death tests below are only meaningful while the validator is
// compiled in. Guard at build level: a configuration that silently
// disabled the checks for the default (tested) build would otherwise turn
// this whole file into a vacuous pass.
#if !STDCHK_LOCK_RANK_CHECKS
#error "lock_rank_test requires STDCHK_LOCK_RANK_CHECKS (default-on); \
build with -DSTDCHK_LOCK_RANK_CHECKS=ON"
#endif

namespace stdchk {
namespace {

ChunkId MakeChunkId(int i) {
  std::string s = "rank-chunk-" + std::to_string(i);
  return ChunkId{Sha1(AsBytes(s))};
}

// ---- Legal orders run silently ---------------------------------------------

TEST(LockRankTest, AscendingRanksAreLegal) {
  Mutex low(LockRank::kManager, 0, "test_low");
  Mutex high(LockRank::kChunkStore, 0, "test_high");
  MutexLock l1(low);
  MutexLock l2(high);
  EXPECT_EQ(lockrank::HeldDepth(), 2u);
}

TEST(LockRankTest, AscendingSequenceWithinOneRankIsLegal) {
  // The shard pattern: same rank, strictly ascending sequence numbers.
  Mutex s0(LockRank::kCatalogFolder, 0, "test_shard");
  Mutex s1(LockRank::kCatalogFolder, 1, "test_shard");
  Mutex s2(LockRank::kCatalogFolder, 2, "test_shard");
  MutexLock l0(s0);
  MutexLock l1(s1);
  MutexLock l2(s2);
  EXPECT_EQ(lockrank::HeldDepth(), 3u);
}

TEST(LockRankTest, SequentialReacquisitionIsLegal) {
  // Dropping back to a lower rank after releasing the higher one is fine:
  // only *currently held* locks constrain the next acquisition.
  Mutex low(LockRank::kManager, 0, "test_low");
  Mutex high(LockRank::kChunkStore, 0, "test_high");
  { MutexLock l(high); }
  { MutexLock l(low); }
  { MutexLock l(high); }
  EXPECT_EQ(lockrank::HeldDepth(), 0u);
}

TEST(LockRankTest, UnrankedMutexesAreExempt) {
  Mutex ranked(LockRank::kChunkStore, 0, "test_ranked");
  Mutex unranked;
  MutexLock l1(ranked);
  MutexLock l2(unranked);  // would invert if it were ranked below
  EXPECT_EQ(lockrank::HeldDepth(), 1u);  // unranked never enters the stack
}

TEST(LockRankTest, FailedTryLockLeavesNoResidue) {
  Mutex mu(LockRank::kChunkStore, 0, "test_try");
  mu.lock();
  std::thread t([&mu] {
    EXPECT_FALSE(mu.try_lock());
    // The failed attempt must not leave a phantom entry that would poison
    // this thread's later ordering checks.
    EXPECT_EQ(lockrank::HeldDepth(), 0u);
  });
  t.join();
  mu.unlock();
}

// The deepest real chain in the system: SaveSnapshot holds the manager's
// control lock, reads the registry, then Exports the catalog holding every
// folder shard followed by every chunk shard, all ascending. GcExchange
// nests manager → registry → chunk shards. If any of those walks were
// mis-ordered the validator would abort this (default-build) test.
TEST(LockRankTest, ManagerSnapshotAndGcWalkTheFullHierarchy) {
  VirtualClock clock;
  ManagerOptions options;
  options.catalog_shards = 4;
  MetadataManager manager(&clock, options);

  BenefactorInfo info;
  info.host = "d0";
  info.total_bytes = 1_GiB;
  info.free_bytes = 1_GiB;
  NodeId node = manager.RegisterBenefactor(info).value();

  VersionRecord record;
  record.name = CheckpointName{"rank", "n1", 1};
  ChunkLocation loc;
  loc.id = MakeChunkId(1);
  loc.file_offset = 0;
  loc.size = 1024;
  loc.replicas = {node};
  record.chunk_map.chunks.push_back(loc);
  record.size = 1024;
  ASSERT_TRUE(manager.CommitVersion(0, record).ok());

  Bytes snapshot = manager.SaveSnapshot();
  EXPECT_FALSE(snapshot.empty());
  ASSERT_TRUE(manager.LoadSnapshot(snapshot).ok());

  auto gc = manager.GcExchange(node, {MakeChunkId(1), MakeChunkId(2)});
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(gc.value().size(), 1u);  // the uncommitted chunk is the orphan

  EXPECT_EQ(lockrank::HeldDepth(), 0u);  // everything released on the way out
}

// ---- Violations abort with a report ----------------------------------------

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, RankInversionAborts) {
  Mutex folder(LockRank::kCatalogFolder, 0, "test_folder");
  Mutex chunk(LockRank::kCatalogChunk, 0, "test_chunk");
  EXPECT_DEATH(
      {
        MutexLock l1(chunk);
        MutexLock l2(folder);  // folder ranks below chunk: inversion
      },
      "out-of-order acquisition");
}

TEST(LockRankDeathTest, DescendingSequenceWithinOneRankAborts) {
  Mutex s0(LockRank::kCatalogChunk, 0, "test_shard");
  Mutex s1(LockRank::kCatalogChunk, 1, "test_shard");
  EXPECT_DEATH(
      {
        MutexLock l1(s1);
        MutexLock l2(s0);  // same rank, lower seq: shard-order inversion
      },
      "out-of-order acquisition");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  Mutex mu(LockRank::kManager, 0, "test_recursive");
  EXPECT_DEATH(
      {
        mu.lock();
        mu.lock();  // std::mutex would deadlock here; the validator reports
      },
      "recursive acquisition");
}

TEST(LockRankDeathTest, SharedMutexObeysTheSameOrder) {
  SharedMutex table(LockRank::kClientPlacement, 0, "test_table");
  Mutex session(LockRank::kClientReadSession, 0, "test_session");
  EXPECT_DEATH(
      {
        MutexLock l1(session);
        ReaderLock l2(table);  // placement ranks below the read session
      },
      "out-of-order acquisition");
}

TEST(LockRankDeathTest, HoldingChunkShardIntoManagerRpcAborts) {
  // The real-code shape the validator exists to catch: entering a manager
  // RPC (which takes the kManager control lock) while already holding a
  // catalog-shard-ranked lock. With plain mutexes this is a latent
  // deadlock against SaveSnapshot's manager → catalog walk; with the
  // validator it dies deterministically on first execution.
  VirtualClock clock;
  MetadataManager manager(&clock);
  BenefactorInfo info;
  info.host = "d0";
  info.total_bytes = 1_GiB;
  info.free_bytes = 1_GiB;
  NodeId node = manager.RegisterBenefactor(info).value();

  Mutex shard(LockRank::kCatalogChunk, 0, "test_chunk_shard");
  EXPECT_DEATH(
      {
        MutexLock held(shard);
        (void)manager.Heartbeat(node, 1_GiB);
      },
      "out-of-order acquisition");
}

}  // namespace
}  // namespace stdchk
